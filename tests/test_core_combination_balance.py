"""Tests for column grouping, the estimated speedup and load balancing."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    assign_consecutive_chunks,
    assign_round_robin,
    estimated_speedup,
    group_columns_graph,
    group_columns_greedy_chunks,
    group_columns_kmeans,
    load_imbalance,
    single_column_groups,
    submatrix_flop_costs,
)
from repro.core.combination import ColumnGrouping, groups_from_labels


def banded_pattern(n_blocks, bandwidth=2):
    """Banded block-sparsity pattern (dense diagonal band)."""
    rows, cols = [], []
    for i in range(n_blocks):
        for j in range(max(0, i - bandwidth), min(n_blocks, i + bandwidth + 1)):
            rows.append(i)
            cols.append(j)
    data = np.ones(len(rows), dtype=bool)
    return sp.coo_matrix((data, (rows, cols)), shape=(n_blocks, n_blocks)).tocsr()


class TestGroupings:
    def test_single_column_groups(self):
        grouping = single_column_groups(5)
        assert grouping.groups == [[0], [1], [2], [3], [4]]
        grouping.validate(5)

    def test_invalid_single_column_count(self):
        with pytest.raises(ValueError):
            single_column_groups(0)

    def test_validate_catches_duplicates(self):
        grouping = ColumnGrouping([[0, 1], [1, 2]])
        with pytest.raises(ValueError):
            grouping.validate(3)

    def test_validate_catches_missing(self):
        grouping = ColumnGrouping([[0], [2]])
        with pytest.raises(ValueError):
            grouping.validate(3)

    def test_validate_catches_out_of_range(self):
        grouping = ColumnGrouping([[0, 5]])
        with pytest.raises(IndexError):
            grouping.validate(3)

    def test_greedy_chunks(self):
        grouping = group_columns_greedy_chunks(10, 3)
        assert grouping.groups == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
        grouping.validate(10)

    def test_greedy_chunks_invalid(self):
        with pytest.raises(ValueError):
            group_columns_greedy_chunks(10, 0)

    def test_groups_from_labels(self):
        grouping = groups_from_labels([1, 0, 1, 0])
        assert grouping.groups == [[1, 3], [0, 2]]

    def test_kmeans_grouping_covers_all_columns(self, rng):
        centers = rng.random((20, 3)) * 10
        grouping = group_columns_kmeans(centers, 4, seed=0)
        grouping.validate(20)
        assert grouping.n_submatrices <= 4

    def test_kmeans_grouping_groups_nearby_columns(self):
        centers = np.zeros((10, 3))
        centers[5:, 0] = 100.0
        grouping = group_columns_kmeans(centers, 2, seed=0)
        grouping.validate(10)
        groups = [sorted(group) for group in grouping.groups]
        assert sorted(groups) == [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]

    def test_graph_grouping_covers_all_columns(self):
        pattern = banded_pattern(16)
        grouping = group_columns_graph(pattern, 4)
        grouping.validate(16)


class TestSubmatrixDimensions:
    def test_grouping_dimensions_on_banded_pattern(self):
        pattern = banded_pattern(10, bandwidth=1)
        sizes = [3] * 10
        single = single_column_groups(10)
        dims = single.submatrix_dimensions(pattern, sizes)
        # interior columns retain 3 blocks, edge columns 2
        assert dims[0] == 6 and dims[5] == 9

    def test_combined_dimensions_grow_sublinearly(self):
        pattern = banded_pattern(12, bandwidth=2)
        sizes = [2] * 12
        pair_grouping = group_columns_greedy_chunks(12, 2)
        single = single_column_groups(12)
        dims_single = single.submatrix_dimensions(pattern, sizes)
        dims_pairs = pair_grouping.submatrix_dimensions(pattern, sizes)
        # combining two adjacent columns adds at most one more block row
        assert max(dims_pairs) <= max(dims_single) + 2


class TestEstimatedSpeedup:
    def test_speedup_of_single_grouping_is_one(self):
        pattern = banded_pattern(10)
        sizes = [4] * 10
        assert estimated_speedup(
            pattern, sizes, single_column_groups(10)
        ) == pytest.approx(1.0)

    def test_combining_adjacent_columns_speeds_up_banded_pattern(self):
        """For banded patterns, merging adjacent columns reduces Σ n³."""
        pattern = banded_pattern(32, bandwidth=3)
        sizes = [4] * 32
        grouping = group_columns_greedy_chunks(32, 4)
        speedup = estimated_speedup(pattern, sizes, grouping)
        assert speedup > 1.0

    def test_combining_unrelated_columns_slows_down(self):
        """Merging columns that share no blocks increases the work."""
        pattern = sp.identity(8, dtype=bool, format="csr")
        sizes = [4] * 8
        grouping = ColumnGrouping([[0, 4], [1, 5], [2, 6], [3, 7]])
        assert estimated_speedup(pattern, sizes, grouping) < 1.0

    def test_precomputed_single_dimensions(self):
        pattern = banded_pattern(10)
        sizes = [4] * 10
        single = single_column_groups(10)
        dims = single.submatrix_dimensions(pattern, sizes)
        grouping = group_columns_greedy_chunks(10, 2)
        a = estimated_speedup(pattern, sizes, grouping)
        b = estimated_speedup(pattern, sizes, grouping, single_dimensions=dims)
        assert a == pytest.approx(b)


class TestLoadBalance:
    def test_flop_costs(self):
        costs = submatrix_flop_costs([2, 3], flop_constant=2.0)
        assert np.allclose(costs, [16.0, 54.0])

    def test_flop_costs_invalid(self):
        with pytest.raises(ValueError):
            submatrix_flop_costs([2], flop_constant=0.0)
        with pytest.raises(ValueError):
            submatrix_flop_costs([-1])

    def test_consecutive_chunks_cover_everything(self):
        costs = np.ones(10)
        chunks = assign_consecutive_chunks(costs, 3)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == 10
        for (s0, e0), (s1, e1) in zip(chunks, chunks[1:]):
            assert e0 == s1

    def test_every_rank_gets_at_least_one(self):
        costs = [100.0, 1.0, 1.0, 1.0]
        chunks = assign_consecutive_chunks(costs, 4)
        assert all(stop > start for start, stop in chunks)

    def test_balanced_for_uniform_costs(self):
        costs = np.ones(100)
        chunks = assign_consecutive_chunks(costs, 4)
        sizes = [stop - start for start, stop in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_heavy_submatrices_not_lumped_together(self):
        """Expensive submatrices end up in separate chunks (Sec. IV-E)."""
        costs = [1.0, 1.0, 1.0, 1.0, 8.0, 8.0]
        chunks = assign_consecutive_chunks(costs, 3)
        imbalance_greedy = load_imbalance(costs, chunks)
        imbalance_equal_counts = load_imbalance(costs, [(0, 2), (2, 4), (4, 6)])
        assert imbalance_greedy < imbalance_equal_counts

    def test_more_ranks_than_items(self):
        chunks = assign_consecutive_chunks([1.0, 1.0], 4)
        assert chunks[0] == (0, 1)
        assert chunks[1] == (1, 2)
        assert chunks[2] == (2, 2)  # empty
        assert chunks[3] == (2, 2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            assign_consecutive_chunks([1.0], 0)
        with pytest.raises(ValueError):
            assign_consecutive_chunks([-1.0], 2)

    def test_round_robin(self):
        assignment = assign_round_robin(7, 3)
        assert assignment == [[0, 3, 6], [1, 4], [2, 5]]

    def test_round_robin_invalid(self):
        with pytest.raises(ValueError):
            assign_round_robin(5, 0)

    def test_load_imbalance_with_index_lists(self):
        costs = [1.0, 2.0, 3.0, 6.0]
        assignment = [[0, 3], [1, 2]]
        # loads 7 and 5, mean 6 -> imbalance 7/6
        assert load_imbalance(costs, assignment) == pytest.approx(7.0 / 6.0)

    def test_load_imbalance_perfectly_balanced(self):
        assert load_imbalance([1.0, 1.0], [(0, 1), (1, 2)]) == pytest.approx(1.0)

    def test_load_imbalance_zero_costs(self):
        assert load_imbalance([0.0, 0.0], [(0, 1), (1, 2)]) == 1.0

    def test_greedy_beats_round_robin_on_skewed_costs(self, rng):
        """The paper's point: equal counts != equal work (Sec. IV-E)."""
        dims = np.concatenate([rng.integers(5, 15, 40), rng.integers(60, 80, 8)])
        costs = submatrix_flop_costs(dims)
        greedy = assign_consecutive_chunks(costs, 8)
        equal_counts = [
            (start, min(start + 6, len(costs)))
            for start in range(0, len(costs), 6)
        ]
        assert load_imbalance(costs, greedy) <= load_imbalance(costs, equal_counts)
