"""Tests for column grouping, the estimated speedup and load balancing."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    assign_balanced_stacks,
    assign_consecutive_chunks,
    assign_consecutive_chunks_reference,
    assign_round_robin,
    choose_bucket_pad,
    estimated_speedup,
    group_columns_graph,
    group_columns_greedy_chunks,
    group_columns_kmeans,
    load_imbalance,
    single_column_groups,
    submatrix_flop_costs,
)
from repro.core.combination import ColumnGrouping, groups_from_labels
from repro.core.load_balance import resolve_bucket_pad


def banded_pattern(n_blocks, bandwidth=2):
    """Banded block-sparsity pattern (dense diagonal band)."""
    rows, cols = [], []
    for i in range(n_blocks):
        for j in range(max(0, i - bandwidth), min(n_blocks, i + bandwidth + 1)):
            rows.append(i)
            cols.append(j)
    data = np.ones(len(rows), dtype=bool)
    return sp.coo_matrix((data, (rows, cols)), shape=(n_blocks, n_blocks)).tocsr()


class TestGroupings:
    def test_single_column_groups(self):
        grouping = single_column_groups(5)
        assert grouping.groups == [[0], [1], [2], [3], [4]]
        grouping.validate(5)

    def test_invalid_single_column_count(self):
        with pytest.raises(ValueError):
            single_column_groups(0)

    def test_validate_catches_duplicates(self):
        grouping = ColumnGrouping([[0, 1], [1, 2]])
        with pytest.raises(ValueError):
            grouping.validate(3)

    def test_validate_catches_missing(self):
        grouping = ColumnGrouping([[0], [2]])
        with pytest.raises(ValueError):
            grouping.validate(3)

    def test_validate_catches_out_of_range(self):
        grouping = ColumnGrouping([[0, 5]])
        with pytest.raises(IndexError):
            grouping.validate(3)

    def test_greedy_chunks(self):
        grouping = group_columns_greedy_chunks(10, 3)
        assert grouping.groups == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
        grouping.validate(10)

    def test_greedy_chunks_invalid(self):
        with pytest.raises(ValueError):
            group_columns_greedy_chunks(10, 0)

    def test_groups_from_labels(self):
        grouping = groups_from_labels([1, 0, 1, 0])
        assert grouping.groups == [[1, 3], [0, 2]]

    def test_kmeans_grouping_covers_all_columns(self, rng):
        centers = rng.random((20, 3)) * 10
        grouping = group_columns_kmeans(centers, 4, seed=0)
        grouping.validate(20)
        assert grouping.n_submatrices <= 4

    def test_kmeans_grouping_groups_nearby_columns(self):
        centers = np.zeros((10, 3))
        centers[5:, 0] = 100.0
        grouping = group_columns_kmeans(centers, 2, seed=0)
        grouping.validate(10)
        groups = [sorted(group) for group in grouping.groups]
        assert sorted(groups) == [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]

    def test_graph_grouping_covers_all_columns(self):
        pattern = banded_pattern(16)
        grouping = group_columns_graph(pattern, 4)
        grouping.validate(16)


class TestSubmatrixDimensions:
    def test_grouping_dimensions_on_banded_pattern(self):
        pattern = banded_pattern(10, bandwidth=1)
        sizes = [3] * 10
        single = single_column_groups(10)
        dims = single.submatrix_dimensions(pattern, sizes)
        # interior columns retain 3 blocks, edge columns 2
        assert dims[0] == 6 and dims[5] == 9

    def test_combined_dimensions_grow_sublinearly(self):
        pattern = banded_pattern(12, bandwidth=2)
        sizes = [2] * 12
        pair_grouping = group_columns_greedy_chunks(12, 2)
        single = single_column_groups(12)
        dims_single = single.submatrix_dimensions(pattern, sizes)
        dims_pairs = pair_grouping.submatrix_dimensions(pattern, sizes)
        # combining two adjacent columns adds at most one more block row
        assert max(dims_pairs) <= max(dims_single) + 2


class TestEstimatedSpeedup:
    def test_speedup_of_single_grouping_is_one(self):
        pattern = banded_pattern(10)
        sizes = [4] * 10
        assert estimated_speedup(
            pattern, sizes, single_column_groups(10)
        ) == pytest.approx(1.0)

    def test_combining_adjacent_columns_speeds_up_banded_pattern(self):
        """For banded patterns, merging adjacent columns reduces Σ n³."""
        pattern = banded_pattern(32, bandwidth=3)
        sizes = [4] * 32
        grouping = group_columns_greedy_chunks(32, 4)
        speedup = estimated_speedup(pattern, sizes, grouping)
        assert speedup > 1.0

    def test_combining_unrelated_columns_slows_down(self):
        """Merging columns that share no blocks increases the work."""
        pattern = sp.identity(8, dtype=bool, format="csr")
        sizes = [4] * 8
        grouping = ColumnGrouping([[0, 4], [1, 5], [2, 6], [3, 7]])
        assert estimated_speedup(pattern, sizes, grouping) < 1.0

    def test_precomputed_single_dimensions(self):
        pattern = banded_pattern(10)
        sizes = [4] * 10
        single = single_column_groups(10)
        dims = single.submatrix_dimensions(pattern, sizes)
        grouping = group_columns_greedy_chunks(10, 2)
        a = estimated_speedup(pattern, sizes, grouping)
        b = estimated_speedup(pattern, sizes, grouping, single_dimensions=dims)
        assert a == pytest.approx(b)


class TestLoadBalance:
    def test_flop_costs(self):
        costs = submatrix_flop_costs([2, 3], flop_constant=2.0)
        assert np.allclose(costs, [16.0, 54.0])

    def test_flop_costs_invalid(self):
        with pytest.raises(ValueError):
            submatrix_flop_costs([2], flop_constant=0.0)
        with pytest.raises(ValueError):
            submatrix_flop_costs([-1])

    def test_consecutive_chunks_cover_everything(self):
        costs = np.ones(10)
        chunks = assign_consecutive_chunks(costs, 3)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == 10
        for (s0, e0), (s1, e1) in zip(chunks, chunks[1:]):
            assert e0 == s1

    def test_every_rank_gets_at_least_one(self):
        costs = [100.0, 1.0, 1.0, 1.0]
        chunks = assign_consecutive_chunks(costs, 4)
        assert all(stop > start for start, stop in chunks)

    def test_balanced_for_uniform_costs(self):
        costs = np.ones(100)
        chunks = assign_consecutive_chunks(costs, 4)
        sizes = [stop - start for start, stop in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_heavy_submatrices_not_lumped_together(self):
        """Expensive submatrices end up in separate chunks (Sec. IV-E)."""
        costs = [1.0, 1.0, 1.0, 1.0, 8.0, 8.0]
        chunks = assign_consecutive_chunks(costs, 3)
        imbalance_greedy = load_imbalance(costs, chunks)
        imbalance_equal_counts = load_imbalance(costs, [(0, 2), (2, 4), (4, 6)])
        assert imbalance_greedy < imbalance_equal_counts

    def test_more_ranks_than_items(self):
        chunks = assign_consecutive_chunks([1.0, 1.0], 4)
        assert chunks[0] == (0, 1)
        assert chunks[1] == (1, 2)
        assert chunks[2] == (2, 2)  # empty
        assert chunks[3] == (2, 2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            assign_consecutive_chunks([1.0], 0)
        with pytest.raises(ValueError):
            assign_consecutive_chunks([-1.0], 2)

    def test_round_robin(self):
        assignment = assign_round_robin(7, 3)
        assert assignment == [[0, 3, 6], [1, 4], [2, 5]]

    def test_round_robin_invalid(self):
        with pytest.raises(ValueError):
            assign_round_robin(5, 0)

    def test_load_imbalance_with_index_lists(self):
        costs = [1.0, 2.0, 3.0, 6.0]
        assignment = [[0, 3], [1, 2]]
        # loads 7 and 5, mean 6 -> imbalance 7/6
        assert load_imbalance(costs, assignment) == pytest.approx(7.0 / 6.0)

    def test_load_imbalance_perfectly_balanced(self):
        assert load_imbalance([1.0, 1.0], [(0, 1), (1, 2)]) == pytest.approx(1.0)

    def test_load_imbalance_zero_costs(self):
        assert load_imbalance([0.0, 0.0], [(0, 1), (1, 2)]) == 1.0

    def test_greedy_beats_round_robin_on_skewed_costs(self, rng):
        """The paper's point: equal counts != equal work (Sec. IV-E)."""
        dims = np.concatenate([rng.integers(5, 15, 40), rng.integers(60, 80, 8)])
        costs = submatrix_flop_costs(dims)
        greedy = assign_consecutive_chunks(costs, 8)
        equal_counts = [
            (start, min(start + 6, len(costs)))
            for start in range(0, len(costs), 6)
        ]
        assert load_imbalance(costs, greedy) <= load_imbalance(costs, equal_counts)


class TestVectorizedChunksEquivalence:
    """The cumsum+searchsorted assigner must match the greedy reference."""

    @given(
        costs=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=0, max_size=120
        ),
        n_ranks=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=300, deadline=None)
    def test_equivalent_on_random_cost_vectors(self, costs, n_ranks):
        costs = np.asarray(costs, dtype=float)
        assert assign_consecutive_chunks(costs, n_ranks) == (
            assign_consecutive_chunks_reference(costs, n_ranks)
        )

    @given(
        costs=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=0,
            max_size=80,
        ),
        n_ranks=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_valid_partition_on_float_costs(self, costs, n_ranks):
        """On arbitrary floats the result is always a valid ordered cover."""
        costs = np.asarray(costs, dtype=float)
        chunks = assign_consecutive_chunks(costs, n_ranks)
        assert len(chunks) == n_ranks
        assert chunks[0][0] == 0
        assert chunks[-1][1] == costs.size
        for (_, stop), (start, _) in zip(chunks, chunks[1:]):
            assert stop == start
        if costs.size >= n_ranks:
            assert all(stop > start for start, stop in chunks)

    def test_zero_costs_behave_like_reference(self):
        costs = np.zeros(9)
        assert assign_consecutive_chunks(costs, 4) == (
            assign_consecutive_chunks_reference(costs, 4)
        )


class TestBalancedStacks:
    def test_every_stack_assigned_exactly_once(self):
        costs = [5.0, 1.0, 3.0, 2.0, 8.0]
        assignment = assign_balanced_stacks(costs, 3)
        flattened = sorted(i for stacks in assignment for i in stacks)
        assert flattened == list(range(5))

    def test_lpt_beats_round_robin_on_skewed_stacks(self):
        costs = [100.0, 1.0, 1.0, 1.0, 1.0, 96.0]
        lpt = assign_balanced_stacks(costs, 2)
        rr = assign_round_robin(6, 2)
        assert load_imbalance(costs, lpt) <= load_imbalance(costs, rr)

    def test_fewer_stacks_than_ranks(self):
        assignment = assign_balanced_stacks([2.0], 3)
        assert sorted(map(len, assignment)) == [0, 0, 1]

    def test_deterministic(self):
        costs = [3.0, 3.0, 3.0, 3.0]
        assert assign_balanced_stacks(costs, 2) == assign_balanced_stacks(costs, 2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            assign_balanced_stacks([1.0], 0)
        with pytest.raises(ValueError):
            assign_balanced_stacks([-1.0], 2)


class TestBucketPadChoice:
    def test_uniform_dimensions_need_no_padding(self):
        assert choose_bucket_pad([32] * 10) is None

    def test_padding_reduces_buckets_within_overhead(self):
        dims = [30, 31, 32, 33, 62, 63, 64, 65] * 4
        pad = choose_bucket_pad(dims, max_overhead=0.5)
        assert pad is not None
        padded = -(-np.asarray(dims) // pad) * pad
        assert np.unique(padded).size < np.unique(dims).size
        overhead = float(np.sum(padded.astype(float) ** 3)) / float(
            np.sum(np.asarray(dims, dtype=float) ** 3)
        ) - 1.0
        assert overhead <= 0.5 + 1e-12

    def test_tight_overhead_budget_disables_padding(self):
        # any merge of 2 and 200 would blow a 0.1% overhead budget
        assert choose_bucket_pad([2, 200], max_overhead=0.0) is None

    def test_resolve_bucket_pad(self):
        assert resolve_bucket_pad(None, [4, 8]) is None
        assert resolve_bucket_pad(16, [4, 8]) == 16
        dims = [30, 31, 32, 33, 62, 63, 64, 65] * 4
        assert resolve_bucket_pad("auto", dims, max_overhead=0.5) == (
            choose_bucket_pad(dims, max_overhead=0.5)
        )
        with pytest.raises(ValueError):
            resolve_bucket_pad(0, [4, 8])
