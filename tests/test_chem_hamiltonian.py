"""Tests for the model Hamiltonian / overlap builder."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.chem import HamiltonianModel, build_block_pattern, build_matrices, water_box
from repro.chem.basis import DZVP, SZV
from repro.chem.hamiltonian import block_structure, cutoff_radius


class TestBlockStructure:
    def test_szv_water_blocks(self, water32):
        blocks = block_structure(water32, SZV)
        assert blocks.n_blocks == 32
        assert np.all(blocks.block_sizes == 6)
        assert blocks.n_basis == 192
        assert blocks.block_starts[0] == 0
        assert blocks.block_starts[-1] == 192

    def test_dzvp_water_blocks(self, water32):
        blocks = block_structure(water32, DZVP)
        assert np.all(blocks.block_sizes == 23)
        assert blocks.n_basis == 32 * 23

    def test_block_of_function(self, water32):
        blocks = block_structure(water32, SZV)
        assert blocks.block_of_function(0) == 0
        assert blocks.block_of_function(5) == 0
        assert blocks.block_of_function(6) == 1
        assert blocks.block_of_function(191) == 31
        with pytest.raises(IndexError):
            blocks.block_of_function(192)

    def test_atom_offsets_monotone_within_molecule(self, water32):
        blocks = block_structure(water32, SZV)
        first_molecule = water32.atoms_in_molecule(0)
        offsets = blocks.atom_offsets[first_molecule]
        assert offsets[0] == 0  # oxygen first (4 functions)
        assert offsets[1] == 4
        assert offsets[2] == 5


class TestCutoffRadius:
    def test_monotone_in_eps(self):
        model = HamiltonianModel()
        assert cutoff_radius(model, 1e-7) > cutoff_radius(model, 1e-4)

    def test_zero_for_large_eps(self):
        model = HamiltonianModel()
        assert cutoff_radius(model, 10.0) == 0.0

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            cutoff_radius(HamiltonianModel(), 0.0)

    def test_dzvp_longer_ranged(self):
        szv = HamiltonianModel(basis=SZV)
        dzvp = HamiltonianModel(basis=DZVP)
        assert cutoff_radius(dzvp, 1e-5) > cutoff_radius(szv, 1e-5)


class TestBuildMatrices:
    def test_shapes_and_symmetry(self, water32_matrices):
        K, S = water32_matrices.K, water32_matrices.S
        assert K.shape == (192, 192)
        assert S.shape == (192, 192)
        assert np.max(np.abs((K - K.T).toarray())) < 1e-12
        assert np.max(np.abs((S - S.T).toarray())) < 1e-12

    def test_overlap_positive_definite(self, water32_matrices):
        eigenvalues = np.linalg.eigvalsh(water32_matrices.S.toarray())
        assert eigenvalues.min() > 0.1

    def test_overlap_diagonal_is_one(self, water32_matrices):
        assert np.allclose(water32_matrices.S.diagonal(), 1.0)

    def test_homo_lumo_gap_exists(self, water32_matrices, szv_model):
        """The model spectrum has a robust gap around the gap-centre μ."""
        from repro.chem import loewdin_inverse_sqrt

        s_inv_sqrt = loewdin_inverse_sqrt(water32_matrices.S)
        k_ortho = s_inv_sqrt @ water32_matrices.K.toarray() @ s_inv_sqrt
        eigenvalues = np.linalg.eigvalsh(k_ortho)
        mu = szv_model.homo_lumo_gap_center()
        below = eigenvalues[eigenvalues < mu]
        above = eigenvalues[eigenvalues > mu]
        # 4 occupied orbitals per molecule
        assert len(below) == 4 * 32
        assert above.min() - below.max() > 5.0

    def test_matrix_elements_decay_with_distance(self, water32, water32_matrices):
        """Couplings between far-apart molecules are weaker than close ones."""
        centers = water32.molecule_centers()
        blocks = water32_matrices.blocks
        K = water32_matrices.K.toarray()

        def block_norm(i, j):
            r0, r1 = blocks.block_starts[i], blocks.block_starts[i + 1]
            c0, c1 = blocks.block_starts[j], blocks.block_starts[j + 1]
            return np.max(np.abs(K[r0:r1, c0:c1]))

        from repro.chem.atoms import minimum_image_displacement

        deltas = minimum_image_displacement(centers - centers[0], water32.cell)
        distances = np.linalg.norm(deltas, axis=1)
        nearest = int(np.argsort(distances)[1])
        farthest = int(np.argmax(distances))
        assert block_norm(0, nearest) > block_norm(0, farthest)

    def test_deterministic(self, water32, szv_model):
        a = build_matrices(water32, model=szv_model)
        b = build_matrices(water32, model=szv_model)
        assert (a.K != b.K).nnz == 0
        assert (a.S != b.S).nnz == 0

    def test_eps_pair_controls_range(self, water32):
        sparse_pair = build_matrices(water32, eps_pair=1e-2)
        dense_pair = build_matrices(water32, eps_pair=1e-8)
        assert sparse_pair.K.nnz < dense_pair.K.nnz

    def test_conflicting_model_and_basis_rejected(self, water32, szv_model):
        with pytest.raises(ValueError):
            build_matrices(water32, model=szv_model, basis=DZVP)

    def test_dzvp_dimensions(self, water32):
        pair = build_matrices(water32, basis=DZVP)
        assert pair.n_basis == 32 * 23


class TestBlockPattern:
    def test_pattern_shape_and_diagonal(self, water32):
        pattern, blocks = build_block_pattern(water32, eps_filter=1e-5)
        assert pattern.shape == (32, 32)
        assert blocks.n_blocks == 32
        assert np.all(pattern.diagonal())

    def test_pattern_symmetric(self, water32):
        pattern, _ = build_block_pattern(water32, eps_filter=1e-5)
        assert (pattern != pattern.T).nnz == 0

    def test_smaller_eps_gives_denser_pattern(self, water64):
        loose, _ = build_block_pattern(water64, eps_filter=1e-3)
        tight, _ = build_block_pattern(water64, eps_filter=1e-7)
        assert tight.nnz >= loose.nnz

    def test_pattern_tracks_true_sparsity(self, water32, water32_matrices):
        """Every block with significant orthogonalized-KS weight is covered."""
        from repro.chem import orthogonalized_ks

        eps = 1e-5
        k_ortho, _ = orthogonalized_ks(
            water32_matrices.K, water32_matrices.S, eps_filter=eps
        )
        pattern, blocks = build_block_pattern(water32, eps_filter=eps)
        dense = np.abs(k_ortho.toarray())
        starts = blocks.block_starts
        missing = 0
        for i in range(blocks.n_blocks):
            for j in range(blocks.n_blocks):
                block_max = dense[
                    starts[i] : starts[i + 1], starts[j] : starts[j + 1]
                ].max()
                if block_max >= 10 * eps and not pattern[i, j]:
                    missing += 1
        assert missing == 0
