"""Tests for block-matrix conversions and filtering."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dbcsr import (
    BlockSparseMatrix,
    block_matrix_from_csr,
    block_matrix_from_dense,
    block_matrix_to_csr,
    block_matrix_to_dense,
    block_norms,
    filter_blocks,
    filter_csr_elements,
)


@pytest.fixture()
def banded_dense(rng):
    """A 12x12 banded matrix cut into 4 blocks of size 3."""
    dense = np.zeros((12, 12))
    for i in range(12):
        for j in range(12):
            if abs(i - j) <= 4:
                dense[i, j] = rng.normal()
    return dense


class TestRoundTrips:
    def test_dense_round_trip(self, banded_dense):
        blocked = block_matrix_from_dense(banded_dense, [3, 3, 3, 3])
        assert np.allclose(block_matrix_to_dense(blocked), banded_dense)

    def test_csr_round_trip(self, banded_dense):
        csr = sp.csr_matrix(banded_dense)
        blocked = block_matrix_from_csr(csr, [3, 3, 3, 3])
        back = block_matrix_to_csr(blocked)
        assert np.allclose(back.toarray(), banded_dense)

    def test_blocked_structure_of_banded_matrix(self, banded_dense):
        blocked = block_matrix_from_dense(banded_dense, [3, 3, 3, 3])
        # corner blocks (0,3) and (3,0) are outside the bandwidth
        assert not blocked.has_block(0, 3)
        assert not blocked.has_block(3, 0)
        assert blocked.has_block(0, 1)

    def test_shape_mismatch_rejected(self, banded_dense):
        with pytest.raises(ValueError):
            block_matrix_from_dense(banded_dense, [3, 3, 3])
        with pytest.raises(ValueError):
            block_matrix_from_csr(sp.csr_matrix(banded_dense), [3, 3])

    def test_rectangular_blocks(self, rng):
        dense = rng.random((5, 7))
        blocked = block_matrix_from_dense(dense, [2, 3], [4, 3])
        assert np.allclose(block_matrix_to_dense(blocked), dense)

    def test_empty_matrix(self):
        empty = sp.csr_matrix((6, 6))
        blocked = block_matrix_from_csr(empty, [3, 3])
        assert blocked.nnz_blocks == 0
        assert block_matrix_to_csr(blocked).nnz == 0

    def test_threshold_drops_small_blocks(self):
        dense = np.zeros((4, 4))
        dense[0, 0] = 1.0
        dense[2, 2] = 1e-8
        blocked = block_matrix_from_dense(dense, [2, 2], threshold=1e-6)
        assert blocked.has_block(0, 0)
        assert not blocked.has_block(1, 1)


class TestBlockNorms:
    def test_frobenius_and_max(self):
        matrix = BlockSparseMatrix([2, 2])
        matrix.put_block(0, 0, np.array([[3.0, 0.0], [0.0, 4.0]]))
        norms_f = block_norms(matrix, "frobenius")
        norms_m = block_norms(matrix, "max")
        assert norms_f[(0, 0)] == pytest.approx(5.0)
        assert norms_m[(0, 0)] == pytest.approx(4.0)

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            block_norms(BlockSparseMatrix([2]), "spectral")


class TestFilterBlocks:
    def test_removes_weak_blocks(self):
        matrix = BlockSparseMatrix([2, 2])
        matrix.put_block(0, 0, np.full((2, 2), 1.0))
        matrix.put_block(0, 1, np.full((2, 2), 1e-9))
        filtered = filter_blocks(matrix, 1e-6)
        assert filtered.has_block(0, 0)
        assert not filtered.has_block(0, 1)

    def test_input_unchanged(self):
        matrix = BlockSparseMatrix([2])
        matrix.put_block(0, 0, np.full((2, 2), 1e-9))
        filter_blocks(matrix, 1e-6)
        assert matrix.has_block(0, 0)

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError):
            filter_blocks(BlockSparseMatrix([2]), -1.0)

    def test_zero_eps_keeps_everything(self):
        matrix = BlockSparseMatrix([2])
        matrix.put_block(0, 0, np.full((2, 2), 1e-300))
        assert filter_blocks(matrix, 0.0).nnz_blocks == 1


class TestFilterCsr:
    def test_drops_small_elements(self):
        matrix = sp.csr_matrix(np.array([[1.0, 1e-9], [0.0, 2.0]]))
        filtered = filter_csr_elements(matrix, 1e-6)
        assert filtered.nnz == 2
        assert filtered[0, 1] == 0.0

    def test_zero_threshold_only_removes_explicit_zeros(self):
        matrix = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        matrix.data[0] = 0.0  # create an explicit zero
        filtered = filter_csr_elements(matrix, 0.0)
        assert filtered.nnz == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            filter_csr_elements(sp.identity(3, format="csr"), -1e-3)

    def test_filter_preserves_large_values(self, rng):
        dense = rng.normal(size=(20, 20))
        filtered = filter_csr_elements(sp.csr_matrix(dense), 0.5)
        kept = filtered.toarray()
        assert np.all(np.abs(kept[kept != 0]) >= 0.5)
        # every large element survived
        assert np.array_equal(kept != 0, np.abs(dense) >= 0.5)
