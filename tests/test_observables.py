"""Tests for the observable-generic execution pipeline.

Covers the PR's contracts:

* ``density`` through :func:`~repro.api.observables.compute_observables` is
  **bitwise identical** to ``context.density`` on every execution path
  (naive, batched, sharded ranks {1, 2, 4, 8}, overlap, both ensembles);
* requesting {density, pdos, energy_weighted_density} together performs
  exactly the same number of eigendecomposition calls as density alone —
  N observables, one decomposition pass per stack;
* PDOS and the energy-weighted density matrix agree with a dense reference
  on a system whose submatrices are the full matrix;
* the Chebyshev polynomial-expansion kernel matches the eigen density to
  tolerance, stays bitwise identical under rank sharding, and participates
  in reduced-precision ``PrecisionPolicy`` modes;
* the serving layer returns multi-observable bundles bitwise identical to
  direct ``context.observables`` calls, and the short-TTL decomposition
  cache serves bytewise-identical hot requests across micro-batch windows;
* trajectory steps and checkpoints round-trip the full multi-observable
  payload, and density-only checkpoints from a pre-refactor layout resume
  unchanged;
* the density-mixing SCF driver converges a nontrivial fixed-point map;
* registry and validation errors are specific and early.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import (
    EngineConfig,
    ObservableBundle,
    PrecisionPolicy,
    SubmatrixContext,
    TrajectoryCheckpoint,
    UnknownObservableError,
    available_observables,
    get_observable,
    run_scf,
)
from repro.api.checkpoint import CheckpointError
from repro.api.observables import (
    Observable,
    compute_observables,
    normalize_observables,
    register_observable,
    _OBSERVABLES,
)
from repro.chem.density import fermi_occupation
from repro.chem.hamiltonian import BlockStructure
from repro.serve import DensityService

N_ELECTRONS = 8.0 * 32
EPS = 1e-4
ALL_OBSERVABLES = ("density", "pdos", "energy_weighted_density")

CONFIG = EngineConfig(engine="batched", backend="thread", max_workers=2)


def assert_density_identical(result, reference):
    assert np.array_equal(result.density_ao, reference.density_ao)
    assert np.array_equal(
        result.density_ortho.toarray(), reference.density_ortho.toarray()
    )
    assert result.mu == reference.mu
    assert result.band_energy == reference.band_energy
    assert result.n_electrons == reference.n_electrons


def assert_bundle_identical(bundle, reference):
    assert tuple(bundle.observables) == tuple(reference.observables)
    assert_density_identical(bundle["density"], reference["density"])
    if "pdos" in bundle:
        ours, theirs = bundle["pdos"], reference["pdos"]
        assert np.array_equal(ours.energies, theirs.energies)
        assert np.array_equal(ours.dos, theirs.dos)
        assert np.array_equal(ours.projections, theirs.projections)
        assert np.array_equal(ours.eigenvalues, theirs.eigenvalues)
        assert np.array_equal(ours.weights, theirs.weights)
        assert ours.mu == theirs.mu
    if "energy_weighted_density" in bundle:
        ours = bundle["energy_weighted_density"]
        theirs = reference["energy_weighted_density"]
        assert np.array_equal(ours.energy_weighted_ao, theirs.energy_weighted_ao)
        assert np.array_equal(
            ours.energy_weighted_ortho.toarray(),
            theirs.energy_weighted_ortho.toarray(),
        )
        assert ours.band_energy == theirs.band_energy
        assert ours.mu == theirs.mu


@pytest.fixture(scope="module")
def reference_bundle(water32_matrices):
    """Direct batched multi-observable result every path is checked against."""
    pair = water32_matrices
    with SubmatrixContext(CONFIG) as ctx:
        bundle = ctx.observables(
            pair.K,
            pair.S,
            pair.blocks,
            observables=ALL_OBSERVABLES,
            n_electrons=N_ELECTRONS,
        )
        density = ctx.density(pair.K, pair.S, pair.blocks, n_electrons=N_ELECTRONS)
    return bundle, density


# --------------------------------------------------------------------------- #
# tentpole: density through the generic pipeline is the old density, bitwise
# --------------------------------------------------------------------------- #
class TestDensityThroughPipeline:
    def test_batched_canonical(self, water32_matrices, reference_bundle):
        bundle, density = reference_bundle
        assert isinstance(bundle, ObservableBundle)
        assert_density_identical(bundle["density"], density)

    def test_batched_grand_canonical(self, water32_matrices, gap_mu):
        pair = water32_matrices
        with SubmatrixContext(CONFIG) as ctx:
            density = ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu)
            bundle = ctx.observables(pair.K, pair.S, pair.blocks, mu=gap_mu)
        assert_density_identical(bundle["density"], density)

    def test_naive_engine(self, water32_matrices, gap_mu):
        pair = water32_matrices
        config = EngineConfig(engine="naive", backend="thread", max_workers=2)
        with SubmatrixContext(config) as ctx:
            density = ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu)
            bundle = ctx.observables(
                pair.K, pair.S, pair.blocks, observables=ALL_OBSERVABLES, mu=gap_mu
            )
        assert_density_identical(bundle["density"], density)

    @pytest.mark.parametrize("ranks", [1, 2, 4, 8])
    def test_sharded_ranks(self, water32_matrices, ranks, reference_bundle):
        pair = water32_matrices
        _, density_reference = reference_bundle
        with SubmatrixContext(CONFIG) as ctx:
            density = ctx.density(
                pair.K, pair.S, pair.blocks, n_electrons=N_ELECTRONS, ranks=ranks
            )
            bundle = ctx.observables(
                pair.K,
                pair.S,
                pair.blocks,
                observables=ALL_OBSERVABLES,
                n_electrons=N_ELECTRONS,
                ranks=ranks,
            )
        assert_density_identical(bundle["density"], density)
        # sharding itself must not perturb the result either
        assert_density_identical(bundle["density"], density_reference)

    def test_overlap_path(self, water32_matrices, reference_bundle):
        pair = water32_matrices
        _, density_reference = reference_bundle
        config = EngineConfig(
            engine="batched", backend="thread", max_workers=2, overlap=True
        )
        with SubmatrixContext(config) as ctx:
            bundle = ctx.observables(
                pair.K,
                pair.S,
                pair.blocks,
                observables=ALL_OBSERVABLES,
                n_electrons=N_ELECTRONS,
                ranks=2,
            )
        assert_density_identical(bundle["density"], density_reference)

    def test_bundle_quacks_like_density(self, reference_bundle):
        bundle, density = reference_bundle
        # attribute fall-through keeps bundles drop-in where density flowed
        assert bundle.mu == density.mu
        assert bundle.band_energy == density.band_energy
        assert np.array_equal(bundle.density_ao, density.density_ao)


# --------------------------------------------------------------------------- #
# tentpole: N observables, one eigendecomposition pass per stack
# --------------------------------------------------------------------------- #
class TestSharedDecomposition:
    def _count_eigh_calls(self, monkeypatch, run):
        """(total eigh calls, submatrix-stack eigh calls, result).

        The batched engine decomposes whole 3-D stacks, so stack calls are
        the ``ndim == 3`` ones; 2-D calls are the Löwdin orthogonalization.
        """
        total, stacks = [], []
        true_eigh = np.linalg.eigh

        def counting_eigh(matrix, *args, **kwargs):
            total.append(1)
            if np.asarray(matrix).ndim == 3:
                stacks.append(1)
            return true_eigh(matrix, *args, **kwargs)

        monkeypatch.setattr(np.linalg, "eigh", counting_eigh)
        result = run()
        monkeypatch.undo()
        return len(total), len(stacks), result

    def test_three_observables_one_pass(self, water32_matrices, monkeypatch):
        pair = water32_matrices
        config = EngineConfig(engine="batched", backend="serial")
        with SubmatrixContext(config) as ctx:
            density_calls, density_stacks, _ = self._count_eigh_calls(
                monkeypatch,
                lambda: ctx.density(
                    pair.K, pair.S, pair.blocks, n_electrons=N_ELECTRONS
                ),
            )
            bundle_calls, bundle_stacks, bundle = self._count_eigh_calls(
                monkeypatch,
                lambda: ctx.observables(
                    pair.K,
                    pair.S,
                    pair.blocks,
                    observables=ALL_OBSERVABLES,
                    n_electrons=N_ELECTRONS,
                ),
            )
        # the acceptance assertion: three observables cost exactly as many
        # eigendecomposition calls as density alone — one per stack
        assert bundle_calls == density_calls
        assert bundle_stacks == density_stacks
        assert bundle.stack_decompositions == bundle_stacks >= 1
        assert len(bundle.results) == 3

    def test_counter_survives_checkpoint(self, reference_bundle):
        bundle, _ = reference_bundle
        assert bundle.stack_decompositions >= 1


# --------------------------------------------------------------------------- #
# satellite: PDOS and energy-weighted density vs a dense reference
# --------------------------------------------------------------------------- #
def full_matrix_system(n_blocks=4, block_size=3, seed=7):
    """Small system whose block pattern is fully dense.

    Every submatrix is then the entire matrix, so the submatrix method's
    spectral data must reproduce a dense diagonalization exactly — the
    regime where PDOS and W have a closed dense reference.
    """
    generator = np.random.default_rng(seed)
    n = n_blocks * block_size
    dense = generator.normal(size=(n, n))
    dense = (dense + dense.T) / 2.0
    sizes = np.asarray([block_size] * n_blocks)
    starts = np.concatenate(([0], np.cumsum(sizes)))
    blocks = BlockStructure(
        block_sizes=sizes,
        block_starts=starts,
        atom_offsets=starts[:-1].copy(),
        n_basis=n,
    )
    return sp.csr_matrix(dense), sp.identity(n, format="csr"), blocks, dense


class TestAgainstDenseReference:
    @pytest.fixture(scope="class")
    def dense_case(self):
        K, S, blocks, dense = full_matrix_system()
        mu = 0.1
        config = EngineConfig(engine="batched", backend="serial", eps_filter=1e-12)
        with SubmatrixContext(config) as ctx:
            bundle = ctx.observables(
                K,
                S,
                blocks,
                observables=ALL_OBSERVABLES,
                mu=mu,
                observable_params={"pdos": {"broadening": 0.2, "n_points": 300}},
            )
        eigenvalues, eigenvectors = np.linalg.eigh(dense)
        return bundle, dense, eigenvalues, eigenvectors, mu, config

    def test_pdos_matches_dense_spectrum(self, dense_case):
        bundle, _, eigenvalues, _, _, config = dense_case
        pdos = bundle["pdos"]
        # each dense eigenvalue carries total spectral weight 1 (eigenvector
        # normalization), so the broadened DOS has a closed dense form
        norm = config.spin_degeneracy / (
            pdos.broadening * np.sqrt(2.0 * np.pi)
        )
        delta = (pdos.energies[None, :] - eigenvalues[:, None]) / pdos.broadening
        dense_dos = norm * np.sum(np.exp(-0.5 * delta * delta), axis=0)
        np.testing.assert_allclose(pdos.dos, dense_dos, rtol=1e-10, atol=1e-12)
        # the integrated DOS counts all states
        assert pdos.integrated_states() == pytest.approx(
            config.spin_degeneracy * len(eigenvalues), rel=1e-6
        )

    def test_energy_weighted_matches_dense(self, dense_case):
        bundle, _, eigenvalues, eigenvectors, mu, config = dense_case
        result = bundle["energy_weighted_density"]
        occupations = fermi_occupation(eigenvalues, mu, config.temperature)
        dense_w = (
            eigenvectors * (eigenvalues * occupations)
        ) @ eigenvectors.T
        np.testing.assert_allclose(
            result.energy_weighted_ao, dense_w, atol=1e-12
        )
        assert result.band_energy == pytest.approx(
            config.spin_degeneracy * float(np.sum(eigenvalues * occupations)),
            abs=1e-10,
        )

    def test_density_band_energy_consistent(self, dense_case):
        """Tr(D·K) (density result) equals g_s·Tr(W) on the exact system."""
        bundle = dense_case[0]
        assert bundle["density"].band_energy == pytest.approx(
            bundle["energy_weighted_density"].band_energy, rel=1e-9
        )


# --------------------------------------------------------------------------- #
# tentpole: the Chebyshev polynomial-expansion kernel
# --------------------------------------------------------------------------- #
class TestChebyshevKernel:
    @pytest.fixture(scope="class")
    def small_pair(self):
        # gapped spectrum around μ = 0.1: eigenvalues in [−3, −1] ∪ [1, 3],
        # so sign(K − μI) is well conditioned for the polynomial expansion
        generator = np.random.default_rng(11)
        n_blocks, block_size = 5, 4
        n = n_blocks * block_size
        noise = generator.normal(size=(n, n))
        _, q = np.linalg.eigh((noise + noise.T) / 2.0)
        spectrum = np.concatenate(
            [
                generator.uniform(-3.0, -1.0, size=n // 2),
                generator.uniform(1.0, 3.0, size=n - n // 2),
            ]
        )
        dense = (q * spectrum) @ q.T
        dense = (dense + dense.T) / 2.0
        sizes = np.asarray([block_size] * n_blocks)
        starts = np.concatenate(([0], np.cumsum(sizes)))
        blocks = BlockStructure(
            block_sizes=sizes,
            block_starts=starts,
            atom_offsets=starts[:-1].copy(),
            n_basis=n,
        )
        return sp.csr_matrix(dense), sp.identity(n, format="csr"), blocks

    def test_matches_eigen_density(self, small_pair):
        K, S, blocks = small_pair
        with SubmatrixContext(CONFIG) as ctx:
            eigen = ctx.density(K, S, blocks, mu=0.1)
            cheb = ctx.density(K, S, blocks, mu=0.1, solver="chebyshev")
        assert np.max(np.abs(cheb.density_ao - eigen.density_ao)) < 1e-6

    def test_sharded_bitwise_identical(self, small_pair):
        K, S, blocks = small_pair
        with SubmatrixContext(CONFIG) as ctx:
            single = ctx.density(K, S, blocks, mu=0.1, solver="chebyshev")
            sharded = ctx.density(
                K, S, blocks, mu=0.1, solver="chebyshev", ranks=2
            )
        assert np.array_equal(single.density_ao, sharded.density_ao)
        assert np.array_equal(
            single.density_ortho.toarray(), sharded.density_ortho.toarray()
        )

    def test_reduced_precision_participation(self, small_pair):
        K, S, blocks = small_pair
        config = EngineConfig(
            engine="batched",
            backend="serial",
            precision=PrecisionPolicy(mode="fp32"),
        )
        with SubmatrixContext(CONFIG) as ctx:
            fp64 = ctx.density(K, S, blocks, mu=0.1, solver="chebyshev")
        with SubmatrixContext(config) as ctx:
            reduced = ctx.density(K, S, blocks, mu=0.1, solver="chebyshev")
        assert reduced.stacks_reduced >= 1
        error = float(np.max(np.abs(reduced.density_ao - fp64.density_ao)))
        assert error < 1e-4
        if reduced.precision_error_bound is not None:
            assert error <= max(reduced.precision_error_bound, 1e-6)

    def test_canonical_requires_eigen(self, small_pair):
        K, S, blocks = small_pair
        with SubmatrixContext(CONFIG) as ctx:
            with pytest.raises(ValueError, match="eigendecomposition solver"):
                ctx.density(K, S, blocks, n_electrons=10.0, solver="chebyshev")


# --------------------------------------------------------------------------- #
# satellite: served multi-observable requests and the decomposition cache
# --------------------------------------------------------------------------- #
class TestServedObservables:
    def test_served_bundle_bitwise_vs_direct(
        self, water32_matrices, reference_bundle
    ):
        pair = water32_matrices
        bundle_reference, density_reference = reference_bundle
        with DensityService(CONFIG) as service:
            served_density = service.density(
                pair.K, pair.S, pair.blocks, n_electrons=N_ELECTRONS
            )
            served_bundle = service.density(
                pair.K,
                pair.S,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                observables=ALL_OBSERVABLES,
            )
        assert_density_identical(served_density, density_reference)
        assert isinstance(served_bundle, ObservableBundle)
        assert_bundle_identical(served_bundle, bundle_reference)

    def test_served_direct_path_bundle(self, water32_matrices):
        """Rank-sharded requests take the direct path, still observable-keyed."""
        pair = water32_matrices
        with SubmatrixContext(CONFIG) as ctx:
            direct = ctx.observables(
                pair.K,
                pair.S,
                pair.blocks,
                observables=ALL_OBSERVABLES,
                n_electrons=N_ELECTRONS,
                ranks=2,
            )
        with DensityService(CONFIG) as service:
            served = service.density(
                pair.K,
                pair.S,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                ranks=2,
                observables=ALL_OBSERVABLES,
            )
        assert_bundle_identical(served, direct)

    def test_decomposition_cache_hits_across_windows(self, water32_matrices):
        pair = water32_matrices
        with DensityService(CONFIG, decomposition_ttl=60.0) as service:
            first = service.density(
                pair.K, pair.S, pair.blocks, n_electrons=N_ELECTRONS
            )
            # a second, separately micro-batched identical request: the
            # μ-independent work must come from the decomposition cache
            second = service.density(
                pair.K, pair.S, pair.blocks, n_electrons=N_ELECTRONS
            )
            stats = service.stats()
        assert_density_identical(second, first)
        assert stats["decomposition_cache"]["hits"] >= 1
        totals = stats["metrics"]["total"]
        assert totals["decomposition_hits"] >= 1
        assert totals["decomposition_misses"] >= 1

    def test_cache_disabled_by_default(self, water32_matrices):
        pair = water32_matrices
        with DensityService(CONFIG) as service:
            service.density(pair.K, pair.S, pair.blocks, n_electrons=N_ELECTRONS)
            service.density(pair.K, pair.S, pair.blocks, n_electrons=N_ELECTRONS)
            stats = service.stats()
        assert stats["decomposition_cache"] is None
        totals = stats["metrics"]["total"]
        assert totals["decomposition_hits"] == 0
        assert totals["decomposition_misses"] == 0

    def test_unknown_served_observable_fails_fast(self, water32_matrices):
        pair = water32_matrices
        with DensityService(CONFIG) as service:
            with pytest.raises(UnknownObservableError):
                service.submit(
                    pair.K,
                    pair.S,
                    pair.blocks,
                    n_electrons=N_ELECTRONS,
                    observables=("dentisy",),
                )


# --------------------------------------------------------------------------- #
# satellite: trajectory steps and checkpoints carry the full payload
# --------------------------------------------------------------------------- #
def value_steps(pair, n_steps, scale=1e-4):
    return [(pair.K * (1.0 + scale * step), pair.S) for step in range(n_steps)]


class TestTrajectoryObservables:
    def test_steps_are_bundles_matching_fresh_calls(self, water32_matrices):
        pair = water32_matrices
        steps = value_steps(pair, 3)
        with SubmatrixContext(CONFIG) as ctx:
            traj = ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                observables=ALL_OBSERVABLES,
            )
            for index, (K, S) in enumerate(steps):
                fresh = ctx.observables(
                    K,
                    S,
                    pair.blocks,
                    observables=ALL_OBSERVABLES,
                    n_electrons=N_ELECTRONS,
                )
                assert isinstance(traj.results[index], ObservableBundle)
                assert_bundle_identical(traj.results[index], fresh)

    def test_checkpoint_round_trips_bundles(self, water32_matrices, tmp_path):
        pair = water32_matrices
        steps = value_steps(pair, 2)
        with SubmatrixContext(CONFIG) as ctx:
            first = ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                observables=ALL_OBSERVABLES,
                checkpoint=tmp_path / "bundles",
            )
        with SubmatrixContext(CONFIG) as ctx:
            replay = ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                observables=ALL_OBSERVABLES,
                checkpoint=tmp_path / "bundles",
            )
        assert replay.stats.steps_resumed == len(steps)
        for before, after in zip(first.results, replay.results):
            assert isinstance(after, ObservableBundle)
            assert_bundle_identical(after, before)

    def test_density_only_checkpoint_layout_unchanged(
        self, water32_matrices, tmp_path
    ):
        """Pre-refactor compatibility: density-only runs write the native
        layout (no ``observables`` key) and resume as plain results."""
        pair = water32_matrices
        steps = value_steps(pair, 2)
        with SubmatrixContext(CONFIG) as ctx:
            ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                checkpoint=tmp_path / "legacy",
            )
        checkpoint = TrajectoryCheckpoint(tmp_path / "legacy")
        with np.load(checkpoint._step_path(0)) as data:
            assert "observables" not in data.files
            assert not any(key.startswith("obs_") for key in data.files)
        loaded = checkpoint.load_step(0)
        assert not isinstance(loaded, ObservableBundle)
        with SubmatrixContext(CONFIG) as ctx:
            resumed = ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                checkpoint=tmp_path / "legacy",
            )
        assert resumed.stats.steps_resumed == len(steps)

    def test_trajectory_requires_density(self, water32_matrices):
        pair = water32_matrices
        with SubmatrixContext(CONFIG) as ctx:
            with pytest.raises(ValueError, match="must include 'density'"):
                ctx.trajectory(
                    value_steps(pair, 1),
                    pair.blocks,
                    n_electrons=N_ELECTRONS,
                    observables=("pdos",),
                )


# --------------------------------------------------------------------------- #
# tentpole: the density-mixing SCF driver
# --------------------------------------------------------------------------- #
class TestSCFDriver:
    def test_converges_nontrivial_fixed_point(self, water32_matrices):
        pair = water32_matrices
        coupling = 0.05

        def update(density_ao, iteration):
            # K(D) = K0 + c·diag(diag(D)): a genuine self-consistent
            # coupling (symmetric, density-dependent), weak enough for the
            # damped fixed-point iteration to contract
            return pair.K + coupling * sp.diags(np.diag(density_ao))

        with SubmatrixContext(CONFIG) as ctx:
            result = run_scf(
                ctx,
                pair.K,
                pair.S,
                pair.blocks,
                update,
                n_electrons=N_ELECTRONS,
                mixing=0.6,
                tolerance=1e-8,
                max_iterations=40,
            )
        assert result.converged
        # the map moves the density: convergence must take several passes
        assert result.n_iterations >= 3
        assert result.density_changes[-1] < 1e-8
        assert np.isinf(result.density_changes[0])
        assert result.mixed_density.shape == result.final.density_ao.shape
        assert len(result.band_energies) == result.n_iterations
        assert len(result.mus) == result.n_iterations
        # with the density fixed, the updated K must reproduce itself
        fixed_K = update(result.mixed_density, result.n_iterations)
        with SubmatrixContext(CONFIG) as ctx:
            check = ctx.density(
                fixed_K, pair.S, pair.blocks, n_electrons=N_ELECTRONS
            )
        assert (
            float(np.max(np.abs(check.density_ao - result.mixed_density))) < 1e-6
        )

    def test_scf_with_observables(self, water32_matrices):
        pair = water32_matrices

        def update(density_ao, iteration):
            return pair.K + 0.05 * sp.diags(np.diag(density_ao))

        with SubmatrixContext(CONFIG) as ctx:
            result = run_scf(
                ctx,
                pair.K,
                pair.S,
                pair.blocks,
                update,
                n_electrons=N_ELECTRONS,
                mixing=0.6,
                tolerance=1e-6,
                max_iterations=25,
                observables=("density", "energy_weighted_density"),
            )
        assert result.converged
        assert isinstance(result.final, ObservableBundle)
        assert "energy_weighted_density" in result.final

    def test_iteration_budget_returns_unconverged(self, water32_matrices):
        pair = water32_matrices

        def update(density_ao, iteration):
            return pair.K + 0.05 * sp.diags(np.diag(density_ao))

        with SubmatrixContext(CONFIG) as ctx:
            result = run_scf(
                ctx,
                pair.K,
                pair.S,
                pair.blocks,
                update,
                n_electrons=N_ELECTRONS,
                mixing=0.6,
                tolerance=1e-14,  # unreachable
                max_iterations=3,
            )
        assert not result.converged
        assert result.n_iterations == 3

    def test_parameter_validation(self, water32_matrices):
        pair = water32_matrices
        with SubmatrixContext(CONFIG) as ctx:
            with pytest.raises(ValueError, match="mixing"):
                run_scf(
                    ctx, pair.K, pair.S, pair.blocks, lambda d, i: pair.K,
                    n_electrons=N_ELECTRONS, mixing=1.5,
                )
            with pytest.raises(ValueError, match="tolerance"):
                run_scf(
                    ctx, pair.K, pair.S, pair.blocks, lambda d, i: pair.K,
                    n_electrons=N_ELECTRONS, tolerance=0.0,
                )
            with pytest.raises(TypeError, match="callable"):
                run_scf(
                    ctx, pair.K, pair.S, pair.blocks, "not-a-function",
                    n_electrons=N_ELECTRONS,
                )


# --------------------------------------------------------------------------- #
# satellite: registry semantics and error messages
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtins_registered(self):
        assert set(ALL_OBSERVABLES) <= set(available_observables())

    def test_unknown_observable_did_you_mean(self):
        with pytest.raises(UnknownObservableError, match="did you mean"):
            get_observable("dentisy")

    def test_normalize_deduplicates_preserving_order(self):
        assert normalize_observables(("pdos", "density", "pdos")) == (
            "pdos",
            "density",
        )
        assert normalize_observables("density") == ("density",)
        with pytest.raises(ValueError, match="at least one"):
            normalize_observables(())

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            register_observable(
                Observable(name="density", assemble=lambda e, p: None)
            )

    def test_custom_observable_round_trip(self, water32_matrices, gap_mu):
        pair = water32_matrices

        def assemble_trace(evaluation, params):
            return float(
                sum(entry.eigenvalues.sum() for entry in evaluation.decomposed)
            )

        register_observable(
            Observable(name="_test_trace", assemble=assemble_trace)
        )
        try:
            with SubmatrixContext(CONFIG) as ctx:
                bundle = ctx.observables(
                    pair.K,
                    pair.S,
                    pair.blocks,
                    observables=("density", "_test_trace"),
                    mu=gap_mu,
                )
            assert isinstance(bundle["_test_trace"], float)
        finally:
            _OBSERVABLES.pop("_test_trace", None)

    def test_iterative_kernel_refuses_spectral_observables(
        self, water32_matrices, gap_mu
    ):
        pair = water32_matrices
        with SubmatrixContext(CONFIG) as ctx:
            with pytest.raises(ValueError, match="spectral data"):
                ctx.observables(
                    pair.K,
                    pair.S,
                    pair.blocks,
                    observables=("density", "pdos"),
                    mu=gap_mu,
                    solver="newton_schulz",
                )

    def test_params_for_unrequested_observable_raise(
        self, water32_matrices, gap_mu
    ):
        pair = water32_matrices
        with SubmatrixContext(CONFIG) as ctx:
            with pytest.raises(ValueError, match="not in the requested"):
                compute_observables(
                    ctx,
                    pair.K,
                    pair.S,
                    pair.blocks,
                    observables=("density",),
                    mu=gap_mu,
                    observable_params={"pdos": {"broadening": 0.1}},
                )

    def test_bad_pdos_params_raise(self, water32_matrices, gap_mu):
        pair = water32_matrices
        with SubmatrixContext(CONFIG) as ctx:
            with pytest.raises(ValueError, match="broadening"):
                ctx.observables(
                    pair.K,
                    pair.S,
                    pair.blocks,
                    observables=("pdos",),
                    mu=gap_mu,
                    observable_params={"pdos": {"broadening": -1.0}},
                )
            with pytest.raises(ValueError, match="unknown pdos parameters"):
                ctx.observables(
                    pair.K,
                    pair.S,
                    pair.blocks,
                    observables=("pdos",),
                    mu=gap_mu,
                    observable_params={"pdos": {"sigma": 0.1}},
                )

    def test_density_takes_no_params(self, water32_matrices, gap_mu):
        pair = water32_matrices
        with SubmatrixContext(CONFIG) as ctx:
            with pytest.raises(ValueError, match="no parameters"):
                ctx.observables(
                    pair.K,
                    pair.S,
                    pair.blocks,
                    observables=("density",),
                    mu=gap_mu,
                    observable_params={"density": {"broadening": 0.1}},
                )
