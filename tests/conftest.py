"""Shared fixtures for the test suite.

The fixtures build small water systems and their model matrices once per
session, because matrix construction and the dense reference solutions are by
far the most expensive parts of the test suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem import (
    HamiltonianModel,
    build_matrices,
    reference_density_matrix,
    water_box,
)
from repro.chem.basis import DZVP, SZV


@pytest.fixture(scope="session")
def water32():
    """The 32-molecule base water cell (96 atoms)."""
    return water_box(1)


@pytest.fixture(scope="session")
def water64():
    """A 64-molecule slab (2x1x1 replication of the base cell)."""
    return water_box((2, 1, 1))


@pytest.fixture(scope="session")
def szv_model():
    """Default SZV Hamiltonian model."""
    return HamiltonianModel(basis=SZV)


@pytest.fixture(scope="session")
def dzvp_model():
    """DZVP Hamiltonian model."""
    return HamiltonianModel(basis=DZVP)


@pytest.fixture(scope="session")
def water32_matrices(water32, szv_model):
    """K, S and block structure of the 32-molecule system (SZV)."""
    return build_matrices(water32, model=szv_model)


@pytest.fixture(scope="session")
def water64_matrices(water64, szv_model):
    """K, S and block structure of the 64-molecule slab (SZV)."""
    return build_matrices(water64, model=szv_model)


@pytest.fixture(scope="session")
def gap_mu(szv_model):
    """Chemical potential in the middle of the molecular HOMO-LUMO gap."""
    return szv_model.homo_lumo_gap_center()


@pytest.fixture(scope="session")
def water32_reference(water32_matrices, gap_mu):
    """Dense reference density matrix of the 32-molecule system."""
    return reference_density_matrix(
        water32_matrices.K, water32_matrices.S, mu=gap_mu
    )


@pytest.fixture()
def rng():
    """Fresh seeded random generator per test."""
    return np.random.default_rng(42)


def make_decay_matrix(n: int, bandwidth: float = 6.0, seed: int = 3) -> np.ndarray:
    """Symmetric test matrix with exponentially decaying off-diagonals.

    Matrices of this kind (diagonally dominant with spatial decay) are the
    natural habitat of the submatrix method; several tests use them when a
    physical Hamiltonian would be overkill.
    """
    generator = np.random.default_rng(seed)
    indices = np.arange(n)
    decay = np.exp(-np.abs(indices[:, None] - indices[None, :]) / bandwidth)
    noise = generator.normal(size=(n, n))
    matrix = decay * (noise + noise.T) / 2.0
    diagonal = 3.0 + generator.random(n)
    matrix[np.diag_indices(n)] = np.where(
        generator.random(n) < 0.5, diagonal, -diagonal
    )
    return matrix
