"""Tests for transfer planning, the run cost models and the machine model glue."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    newton_schulz_cost,
    plan_transfers,
    single_column_groups,
    submatrix_method_cost,
)
from repro.core.combination import group_columns_greedy_chunks
from repro.core.runner import estimate_newton_schulz_iterations
from repro.dbcsr import BlockDistribution, CooBlockList, ProcessGrid2D
from repro.parallel import MachineModel


def banded_pattern(n_blocks, bandwidth=2):
    rows, cols = [], []
    for i in range(n_blocks):
        for j in range(max(0, i - bandwidth), min(n_blocks, i + bandwidth + 1)):
            rows.append(i)
            cols.append(j)
    data = np.ones(len(rows), dtype=bool)
    return sp.coo_matrix((data, (rows, cols)), shape=(n_blocks, n_blocks)).tocsr()


@pytest.fixture()
def small_plan_inputs():
    n_blocks = 12
    pattern = banded_pattern(n_blocks, bandwidth=2)
    coo = CooBlockList.from_pattern(pattern)
    block_sizes = [6] * n_blocks
    grid = ProcessGrid2D(4, (2, 2))
    distribution = BlockDistribution(n_blocks, n_blocks, grid)
    grouping = single_column_groups(n_blocks)
    rank_of_group = [i % 4 for i in range(n_blocks)]
    return coo, block_sizes, distribution, grouping, rank_of_group


class TestTransferPlan:
    def test_every_rank_summarised(self, small_plan_inputs):
        coo, sizes, distribution, grouping, ranks = small_plan_inputs
        plan = plan_transfers(coo, sizes, distribution, grouping, ranks)
        assert plan.n_ranks == 4
        assert sum(s.n_submatrices for s in plan.per_rank) == grouping.n_submatrices

    def test_dedup_saves_traffic(self, small_plan_inputs):
        """Blocks shared by overlapping submatrices are fetched only once."""
        coo, sizes, distribution, grouping, ranks = small_plan_inputs
        plan = plan_transfers(coo, sizes, distribution, grouping, ranks)
        assert plan.total_fetch_bytes < plan.total_fetch_bytes_without_dedup
        assert 0.0 < plan.deduplication_savings < 1.0

    def test_single_rank_has_no_remote_fetches(self, small_plan_inputs):
        coo, sizes, _, grouping, _ = small_plan_inputs
        grid = ProcessGrid2D(1, (1, 1))
        distribution = BlockDistribution(coo.n_block_rows, coo.n_block_cols, grid)
        plan = plan_transfers(coo, sizes, distribution, grouping, [0] * grouping.n_submatrices)
        assert plan.total_fetch_bytes == 0.0
        assert plan.total_writeback_bytes == 0.0

    def test_required_blocks_cover_submatrix_pattern(self, small_plan_inputs):
        coo, sizes, distribution, grouping, ranks = small_plan_inputs
        plan = plan_transfers(coo, sizes, distribution, grouping, ranks)
        # rank 0 owns submatrices for columns 0, 4, 8
        from repro.core.submatrix import submatrix_block_rows

        needed = set()
        for column in (0, 4, 8):
            retained = submatrix_block_rows(coo, column)
            for bi in retained:
                for bj in retained:
                    if coo.contains(int(bi), int(bj)):
                        needed.add(coo.block_id(int(bi), int(bj)))
        assert set(plan.per_rank[0].required_blocks.tolist()) == needed

    def test_fetch_matrix_consistent_with_totals(self, small_plan_inputs):
        coo, sizes, distribution, grouping, ranks = small_plan_inputs
        plan = plan_transfers(coo, sizes, distribution, grouping, ranks)
        assert plan.fetch_matrix.sum() == pytest.approx(plan.total_fetch_bytes)
        assert plan.writeback_matrix.sum() == pytest.approx(plan.total_writeback_bytes)

    def test_traffic_log_reflects_plan(self, small_plan_inputs):
        coo, sizes, distribution, grouping, ranks = small_plan_inputs
        plan = plan_transfers(coo, sizes, distribution, grouping, ranks)
        log = plan.to_traffic_log(include_coo_allgather=False)
        assert log.total_bytes_sent() == pytest.approx(
            plan.total_fetch_bytes + plan.total_writeback_bytes
        )
        with_coo = plan.to_traffic_log(include_coo_allgather=True, coo_length=len(coo))
        assert with_coo.total_bytes_sent() > log.total_bytes_sent()

    def test_rank_of_group_length_checked(self, small_plan_inputs):
        coo, sizes, distribution, grouping, _ = small_plan_inputs
        with pytest.raises(ValueError):
            plan_transfers(coo, sizes, distribution, grouping, [0])

    def test_fast_per_rank_planning_close_to_exact(self, small_plan_inputs):
        """The per-rank fast path gives the same (or slightly larger) fetch."""
        coo, sizes, distribution, grouping, ranks = small_plan_inputs
        exact = plan_transfers(coo, sizes, distribution, grouping, ranks)
        fast = plan_transfers(
            coo, sizes, distribution, grouping, ranks, per_group_dedup=False
        )
        assert fast.total_fetch_bytes >= exact.total_fetch_bytes
        assert fast.total_fetch_bytes <= 2.0 * exact.total_fetch_bytes
        assert fast.total_writeback_bytes == pytest.approx(
            exact.total_writeback_bytes
        )
        # the fast path does not report a without-dedup volume
        assert fast.deduplication_savings == pytest.approx(0.0)

    def test_rank_out_of_range(self, small_plan_inputs):
        coo, sizes, distribution, grouping, _ = small_plan_inputs
        with pytest.raises(IndexError):
            plan_transfers(
                coo, sizes, distribution, grouping, [99] * grouping.n_submatrices
            )


class TestSubmatrixMethodCost:
    def test_basic_invariants(self):
        pattern = banded_pattern(32, bandwidth=3)
        machine = MachineModel()
        cost = submatrix_method_cost(pattern, [6] * 32, n_ranks=4, machine=machine)
        assert cost.method == "submatrix"
        assert cost.total_flops > 0
        assert cost.simulated.total > 0
        assert cost.details["n_submatrices"] == 32

    def test_more_ranks_reduce_time(self):
        pattern = banded_pattern(64, bandwidth=3)
        machine = MachineModel()
        slow = submatrix_method_cost(pattern, [6] * 64, n_ranks=2, machine=machine)
        fast = submatrix_method_cost(pattern, [6] * 64, n_ranks=16, machine=machine)
        assert fast.simulated.total < slow.simulated.total

    def test_strong_scaling_efficiency_below_one(self):
        """Strong scaling cannot be super-linear in this model."""
        pattern = banded_pattern(64, bandwidth=3)
        machine = MachineModel()
        base = submatrix_method_cost(pattern, [6] * 64, n_ranks=2, machine=machine)
        scaled = submatrix_method_cost(pattern, [6] * 64, n_ranks=8, machine=machine)
        efficiency = base.simulated.total * 2 / (scaled.simulated.total * 8)
        assert efficiency <= 1.01

    def test_total_flops_match_grouping(self):
        pattern = banded_pattern(16, bandwidth=2)
        sizes = [6] * 16
        machine = MachineModel()
        grouping = single_column_groups(16)
        dims = grouping.submatrix_dimensions(pattern, sizes)
        expected = 9.0 * sum(float(d) ** 3 for d in dims)
        cost = submatrix_method_cost(pattern, sizes, n_ranks=4, machine=machine)
        assert cost.total_flops == pytest.approx(expected)

    def test_grouping_parameter_honoured(self):
        pattern = banded_pattern(16, bandwidth=2)
        machine = MachineModel()
        grouping = group_columns_greedy_chunks(16, 4)
        cost = submatrix_method_cost(
            pattern, [6] * 16, n_ranks=4, machine=machine, grouping=grouping
        )
        assert cost.details["n_submatrices"] == 4

    def test_accepts_coo_input(self):
        pattern = banded_pattern(16, bandwidth=2)
        coo = CooBlockList.from_pattern(pattern)
        machine = MachineModel()
        a = submatrix_method_cost(pattern, [6] * 16, 4, machine)
        b = submatrix_method_cost(coo, [6] * 16, 4, machine)
        assert a.total_flops == pytest.approx(b.total_flops)


class TestNewtonSchulzCost:
    def test_basic_invariants(self):
        pattern = banded_pattern(32, bandwidth=3)
        machine = MachineModel()
        cost = newton_schulz_cost(pattern, [6] * 32, n_ranks=4, machine=machine)
        assert cost.method == "newton_schulz"
        assert cost.total_flops > 0
        assert cost.simulated.total > 0

    def test_flops_scale_with_iterations(self):
        pattern = banded_pattern(32, bandwidth=3)
        machine = MachineModel()
        short = newton_schulz_cost(pattern, [6] * 32, 4, machine, n_iterations=10)
        long = newton_schulz_cost(pattern, [6] * 32, 4, machine, n_iterations=20)
        assert long.total_flops == pytest.approx(2 * short.total_flops)

    def test_communication_grows_with_rank_count(self):
        """Cannon traffic per rank grows with sqrt(P): weak-scaling penalty."""
        pattern = banded_pattern(64, bandwidth=3)
        machine = MachineModel()
        few = newton_schulz_cost(pattern, [6] * 64, 4, machine)
        many = newton_schulz_cost(pattern, [6] * 64, 64, machine)
        bytes_per_rank_few = few.traffic.ranks[0].bytes_sent
        bytes_per_rank_many = many.traffic.ranks[0].bytes_sent
        # per-rank volume shrinks slower than 1/P (it scales as 1/sqrt(P))
        assert bytes_per_rank_many > bytes_per_rank_few / 16

    def test_fill_pattern_increases_cost(self):
        pattern = banded_pattern(32, bandwidth=2)
        machine = MachineModel()
        without = newton_schulz_cost(
            pattern, [6] * 32, 4, machine, fill_pattern=False
        )
        with_fill = newton_schulz_cost(
            pattern, [6] * 32, 4, machine, fill_pattern=True
        )
        assert with_fill.total_flops > without.total_flops

    def test_iteration_estimate_monotone(self):
        assert estimate_newton_schulz_iterations(1e-9) >= estimate_newton_schulz_iterations(1e-5)
        assert estimate_newton_schulz_iterations(1e-2) >= 1
        with pytest.raises(ValueError):
            estimate_newton_schulz_iterations(0.0)

    def test_submatrix_beats_ns_in_weak_scaling_efficiency(self):
        """Qualitative reproduction of Fig. 10's message on the cost model."""
        machine = MachineModel()
        sizes_per_block = 6

        def weak_point(n_blocks, n_ranks):
            pattern = banded_pattern(n_blocks, bandwidth=4)
            sizes = [sizes_per_block] * n_blocks
            sm = submatrix_method_cost(pattern, sizes, n_ranks, machine)
            ns = newton_schulz_cost(pattern, sizes, n_ranks, machine)
            return sm.simulated.total, ns.simulated.total

        sm_small, ns_small = weak_point(64, 4)
        sm_large, ns_large = weak_point(256, 16)
        sm_efficiency = sm_small / sm_large
        ns_efficiency = ns_small / ns_large
        assert sm_efficiency > ns_efficiency
