"""Tests for the mixed-precision emulation and the device performance model."""

import numpy as np
import pytest

from repro.accel import (
    PRECISION_MODES,
    RTX_2080_TI,
    STRATIX_10,
    convert,
    gemm,
    mixed_precision_sign_iteration,
    model_sign_algorithm_performance,
    performance_table,
)
from repro.signfn import sign_via_eigendecomposition

from conftest import make_decay_matrix


class TestPrecisionModes:
    def test_all_paper_modes_present(self):
        assert set(PRECISION_MODES) == {"FP16", "FP16'", "FP32", "FP64"}

    def test_epsilon_ordering(self):
        assert (
            PRECISION_MODES["FP16"].epsilon
            > PRECISION_MODES["FP32"].epsilon
            > PRECISION_MODES["FP64"].epsilon
        )

    def test_convert_dtype(self):
        matrix = np.ones((3, 3))
        assert convert(matrix, PRECISION_MODES["FP16"]).dtype == np.float16
        assert convert(matrix, PRECISION_MODES["FP64"]).dtype == np.float64

    def test_gemm_fp64_exact(self, rng):
        a = rng.normal(size=(20, 20))
        b = rng.normal(size=(20, 20))
        assert np.allclose(gemm(a, b, PRECISION_MODES["FP64"]), a @ b)

    def test_gemm_fp16_loses_precision(self, rng):
        a = rng.normal(size=(50, 50))
        b = rng.normal(size=(50, 50))
        exact = a @ b
        half = gemm(a, b, PRECISION_MODES["FP16"]).astype(np.float64)
        error = np.max(np.abs(half - exact))
        assert 1e-8 < error < 1.0

    def test_gemm_mixed_more_accurate_than_half(self, rng):
        a = rng.normal(size=(80, 80))
        b = rng.normal(size=(80, 80))
        exact = a @ b
        fp16 = gemm(a, b, PRECISION_MODES["FP16"]).astype(np.float64)
        fp16p = gemm(a, b, PRECISION_MODES["FP16'"]).astype(np.float64)
        assert np.linalg.norm(fp16p - exact) <= np.linalg.norm(fp16 - exact) * 1.5

    def test_gemm_output_dtype_is_storage(self, rng):
        a = rng.normal(size=(4, 4))
        assert gemm(a, a, PRECISION_MODES["FP16'"]).dtype == np.float16
        assert gemm(a, a, PRECISION_MODES["FP32"]).dtype == np.float32


class TestMixedPrecisionIteration:
    @pytest.fixture(scope="class")
    def submatrix(self):
        """A well-conditioned decay matrix standing in for a 32-water block."""
        matrix = make_decay_matrix(96, bandwidth=8.0, seed=7)
        return matrix

    def test_fp64_converges_to_exact_sign(self, submatrix):
        result = mixed_precision_sign_iteration(submatrix, "FP64", n_iterations=14)
        exact = sign_via_eigendecomposition(submatrix)
        assert np.max(np.abs(result.sign - exact)) < 1e-8
        assert result.involutority[-1] < 1e-8

    def test_fp64_involutority_floor_below_fp32_below_fp16(self, submatrix):
        """Fig. 13: each precision has its own involutority noise floor."""
        floors = {}
        for mode in ("FP16", "FP32", "FP64"):
            result = mixed_precision_sign_iteration(submatrix, mode, n_iterations=14)
            floors[mode] = min(result.involutority)
        assert floors["FP64"] < floors["FP32"] < floors["FP16"]

    def test_low_precision_energy_close_to_fp64(self, submatrix):
        """Fig. 12: FP16 energies stay within a few meV/atom-scale offsets."""
        fp64 = mixed_precision_sign_iteration(submatrix, "FP64", n_iterations=14)
        fp16 = mixed_precision_sign_iteration(submatrix, "FP16", n_iterations=14)
        converged = fp64.energies[-1]
        relative = abs(fp16.energies[-1] - converged) / abs(converged)
        assert relative < 0.05

    def test_energy_converges_before_involutority(self, submatrix):
        """The paper's observation: the energy minimum is reached early, so it
        is not a reliable convergence criterion."""
        result = mixed_precision_sign_iteration(submatrix, "FP64", n_iterations=14)
        energy_errors = np.abs(np.array(result.energies) - result.energies[-1])
        first_energy_converged = int(np.argmax(energy_errors < 1e-6))
        first_involutory = int(np.argmax(np.array(result.involutority) < 1e-6))
        assert first_energy_converged <= first_involutory

    def test_unknown_precision_rejected(self, submatrix):
        with pytest.raises(KeyError):
            mixed_precision_sign_iteration(submatrix, "FP8")

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            mixed_precision_sign_iteration(np.ones((2, 3)), "FP64")

    def test_hamiltonian_shape_checked(self, submatrix):
        with pytest.raises(ValueError):
            mixed_precision_sign_iteration(
                submatrix, "FP64", hamiltonian=np.ones((2, 2))
            )

    def test_energy_difference_helper(self, submatrix):
        result = mixed_precision_sign_iteration(submatrix, "FP64", n_iterations=5)
        diff = result.energy_difference_to(result.energies[-1])
        assert diff[-1] == pytest.approx(0.0)

    def test_mu_shift_changes_result(self, submatrix):
        a = mixed_precision_sign_iteration(submatrix, "FP64", mu=0.0, n_iterations=10)
        b = mixed_precision_sign_iteration(submatrix, "FP64", mu=1.5, n_iterations=10)
        assert not np.allclose(a.sign, b.sign)

    def test_flops_counted(self, submatrix):
        # the Horner evaluation of the order-3 polynomial uses 4 GEMMs per
        # iteration (X², two Horner steps, final X·poly)
        result = mixed_precision_sign_iteration(submatrix, "FP32", n_iterations=3)
        n = submatrix.shape[0]
        assert result.flops == pytest.approx(3 * 4 * 2 * n**3)


class TestPerformanceModel:
    def test_overall_below_gemm_below_peak(self):
        for row in performance_table(RTX_2080_TI):
            assert row.overall_tflops <= row.gemm_tflops <= row.peak_tflops

    def test_fp16_order_of_magnitude_matches_paper(self):
        """Table I: FP16 end-to-end ≈ 35 TFLOP/s on the RTX 2080 Ti."""
        row = model_sign_algorithm_performance(RTX_2080_TI, "FP16")
        assert 25.0 < row.overall_tflops < 50.0

    def test_fp64_is_gemm_bound(self):
        row = model_sign_algorithm_performance(RTX_2080_TI, "FP64")
        assert row.overall_tflops == pytest.approx(0.5, rel=0.1)
        assert row.gemm_seconds > 10 * row.transfer_seconds

    def test_precision_ordering(self):
        rows = {r.precision: r.overall_tflops for r in performance_table(RTX_2080_TI)}
        assert rows["FP16"] > rows["FP16'"] > rows["FP32"] > rows["FP64"]

    def test_fpga_overall_matches_paper_scale(self):
        """Sec. VI-B: ≈2.7 TFLOP/s GEMM, ≈1.75 TFLOP/s end-to-end."""
        row = model_sign_algorithm_performance(STRATIX_10, "FP32")
        assert 1.0 < row.overall_tflops < 2.7
        assert row.overall_tflops < row.gemm_tflops

    def test_fpga_communication_dominates(self):
        """Per-GEMM offload makes the FPGA communication-limited."""
        row = model_sign_algorithm_performance(STRATIX_10, "FP32")
        assert row.transfer_seconds > 0.3 * row.gemm_seconds

    def test_unsupported_precision_rejected(self):
        with pytest.raises(ValueError):
            model_sign_algorithm_performance(STRATIX_10, "FP16")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            model_sign_algorithm_performance(RTX_2080_TI, "FP32", matrix_dimension=0)

    def test_energy_efficiency_reported(self):
        row = model_sign_algorithm_performance(RTX_2080_TI, "FP16")
        # paper: ~140 GFLOP/(W s) end-to-end at 250 W
        assert 80.0 < row.gflops_per_watt_second < 250.0

    def test_table_covers_requested_precisions(self):
        rows = performance_table(RTX_2080_TI, precisions=["FP32", "FP64"])
        assert [r.precision for r in rows] == ["FP32", "FP64"]
