"""Tests for the 2D block distribution and the global COO block list."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dbcsr import BlockDistribution, BlockSparseMatrix, CooBlockList, ProcessGrid2D
from repro.parallel import SimComm


@pytest.fixture()
def pattern_matrix(rng):
    """A 6x6-block banded matrix with 2x2 blocks."""
    matrix = BlockSparseMatrix([2] * 6)
    for i in range(6):
        for j in range(6):
            if abs(i - j) <= 1:
                matrix.put_block(i, j, rng.random((2, 2)))
    return matrix


class TestBlockDistribution:
    def test_round_robin_default(self):
        grid = ProcessGrid2D(4, (2, 2))
        distribution = BlockDistribution(6, 6, grid)
        assert distribution.owner_of(0, 0) == 0
        assert distribution.owner_of(0, 1) == 1
        assert distribution.owner_of(1, 0) == 2
        assert distribution.owner_of(1, 1) == 3
        assert distribution.owner_of(2, 2) == 0  # wraps around

    def test_owners_array_matches_owner_of(self):
        grid = ProcessGrid2D(6, (3, 2))
        distribution = BlockDistribution(5, 7, grid)
        owners = distribution.owners_array()
        for i in range(5):
            for j in range(7):
                assert owners[i, j] == distribution.owner_of(i, j)

    def test_explicit_distribution(self):
        grid = ProcessGrid2D(4, (2, 2))
        distribution = BlockDistribution(
            4, 4, grid, row_distribution=[0, 0, 1, 1], col_distribution=[0, 1, 0, 1]
        )
        assert distribution.owner_of(0, 0) == 0
        assert distribution.owner_of(3, 2) == 2

    def test_invalid_distribution_rejected(self):
        grid = ProcessGrid2D(4, (2, 2))
        with pytest.raises(ValueError):
            BlockDistribution(4, 4, grid, row_distribution=[0, 0, 5, 1])
        with pytest.raises(ValueError):
            BlockDistribution(4, 4, grid, row_distribution=[0, 0, 1])

    def test_local_blocks_partition_all_blocks(self, pattern_matrix):
        grid = ProcessGrid2D(4, (2, 2))
        distribution = BlockDistribution(6, 6, grid)
        all_local = []
        for rank in range(4):
            all_local.extend(distribution.local_blocks(pattern_matrix, rank))
        assert sorted(all_local) == sorted(pattern_matrix.block_keys())

    def test_local_block_bytes(self, pattern_matrix):
        grid = ProcessGrid2D(1, (1, 1))
        distribution = BlockDistribution(6, 6, grid)
        total = distribution.local_block_bytes(pattern_matrix, 0)
        assert total == pattern_matrix.nnz_blocks * 4 * 8

    def test_rank_block_counts(self, pattern_matrix):
        grid = ProcessGrid2D(4, (2, 2))
        distribution = BlockDistribution(6, 6, grid)
        counts = distribution.rank_block_counts(pattern_matrix)
        assert sum(counts.values()) == pattern_matrix.nnz_blocks


class TestCooBlockList:
    def test_sorted_by_column_then_row(self, pattern_matrix):
        coo = CooBlockList.from_block_matrix(pattern_matrix)
        keys = list(zip(coo.cols.tolist(), coo.rows.tolist()))
        assert keys == sorted(keys)

    def test_block_ids_are_positions(self, pattern_matrix):
        coo = CooBlockList.from_block_matrix(pattern_matrix)
        for block_id in range(len(coo)):
            bi, bj = coo.block_at(block_id)
            assert coo.block_id(bi, bj) == block_id

    def test_contains(self, pattern_matrix):
        coo = CooBlockList.from_block_matrix(pattern_matrix)
        assert coo.contains(0, 0)
        assert not coo.contains(0, 5)

    def test_missing_block_raises(self, pattern_matrix):
        coo = CooBlockList.from_block_matrix(pattern_matrix)
        with pytest.raises(KeyError):
            coo.block_id(0, 5)
        with pytest.raises(IndexError):
            coo.block_at(len(coo))

    def test_blocks_in_column(self, pattern_matrix):
        coo = CooBlockList.from_block_matrix(pattern_matrix)
        assert coo.blocks_in_column(0) == [0, 1]
        assert coo.blocks_in_column(2) == [1, 2, 3]

    def test_blocks_in_columns_union(self, pattern_matrix):
        coo = CooBlockList.from_block_matrix(pattern_matrix)
        assert coo.blocks_in_columns([0, 2]) == [0, 1, 2, 3]

    def test_column_counts(self, pattern_matrix):
        coo = CooBlockList.from_block_matrix(pattern_matrix)
        counts = coo.column_counts()
        assert counts[0] == 2
        assert counts[2] == 3
        assert counts.sum() == len(coo)

    def test_from_pattern_matches_from_matrix(self, pattern_matrix):
        from repro.dbcsr.convert import block_matrix_to_dense

        del block_matrix_to_dense
        pattern = sp.csr_matrix(
            np.array(
                [
                    [1 if pattern_matrix.has_block(i, j) else 0 for j in range(6)]
                    for i in range(6)
                ]
            )
        )
        from_pattern = CooBlockList.from_pattern(pattern)
        from_matrix = CooBlockList.from_block_matrix(pattern_matrix)
        assert np.array_equal(from_pattern.rows, from_matrix.rows)
        assert np.array_equal(from_pattern.cols, from_matrix.cols)

    def test_to_pattern_round_trip(self, pattern_matrix):
        coo = CooBlockList.from_block_matrix(pattern_matrix)
        pattern = coo.to_pattern()
        again = CooBlockList.from_pattern(pattern)
        assert np.array_equal(coo.rows, again.rows)
        assert np.array_equal(coo.cols, again.cols)

    def test_gather_distributed_identical_to_serial(self, pattern_matrix):
        grid = ProcessGrid2D(4, (2, 2))
        distribution = BlockDistribution(6, 6, grid)
        comm = SimComm(4)
        gathered = CooBlockList.gather_distributed(pattern_matrix, distribution, comm)
        serial = CooBlockList.from_block_matrix(pattern_matrix)
        assert np.array_equal(gathered.rows, serial.rows)
        assert np.array_equal(gathered.cols, serial.cols)
        # the allgather traffic was recorded
        assert comm.log.total_bytes_sent() > 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CooBlockList([0, 7], [0, 0], n_block_rows=4, n_block_cols=4)
