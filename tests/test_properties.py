"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis import parallel_efficiency
from repro.chem.density import fermi_occupation
from repro.core.load_balance import assign_consecutive_chunks, submatrix_flop_costs
from repro.core.submatrix import extract_submatrix, submatrix_block_rows
from repro.dbcsr import BlockSparseMatrix, CooBlockList
from repro.dbcsr.convert import block_matrix_from_dense, block_matrix_to_dense
from repro.parallel.topology import CartesianGrid2D, balanced_dims
from repro.signfn import (
    pade_polynomial_coefficients,
    sign_via_eigendecomposition,
    spectral_scale_estimate,
)

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
block_sizes_strategy = st.lists(st.integers(1, 5), min_size=1, max_size=6)

small_symmetric = arrays(
    np.float64,
    st.integers(2, 12).map(lambda n: (n, n)),
    elements=st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False),
).map(lambda a: (a + a.T) / 2)


@st.composite
def block_matrix_and_dense(draw):
    """A random block-sparse matrix and its dense equivalent."""
    sizes = draw(block_sizes_strategy)
    n = sum(sizes)
    dense = draw(
        arrays(
            np.float64,
            (n, n),
            elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
        )
    )
    # knock out some blocks to create sparsity
    n_blocks = len(sizes)
    keep = draw(
        arrays(np.bool_, (n_blocks, n_blocks), elements=st.booleans())
    )
    starts = np.concatenate(([0], np.cumsum(sizes)))
    for i in range(n_blocks):
        for j in range(n_blocks):
            if not keep[i, j]:
                dense[starts[i] : starts[i + 1], starts[j] : starts[j + 1]] = 0.0
    return sizes, dense


# --------------------------------------------------------------------------- #
# block matrix round trips and algebra
# --------------------------------------------------------------------------- #
@given(block_matrix_and_dense())
@settings(max_examples=40, deadline=None)
def test_block_matrix_dense_round_trip(data):
    sizes, dense = data
    blocked = block_matrix_from_dense(dense, sizes)
    assert np.allclose(block_matrix_to_dense(blocked), dense)


@given(block_matrix_and_dense())
@settings(max_examples=30, deadline=None)
def test_block_matrix_transpose_involution(data):
    sizes, dense = data
    blocked = block_matrix_from_dense(dense, sizes)
    double_transpose = blocked.transpose().transpose()
    assert np.allclose(block_matrix_to_dense(double_transpose), dense)


@given(block_matrix_and_dense())
@settings(max_examples=30, deadline=None)
def test_block_matrix_product_matches_dense(data):
    sizes, dense = data
    blocked = block_matrix_from_dense(dense, sizes)
    product = blocked @ blocked
    assert np.allclose(block_matrix_to_dense(product), dense @ dense, atol=1e-9)


@given(block_matrix_and_dense())
@settings(max_examples=30, deadline=None)
def test_block_matrix_trace_and_norm(data):
    sizes, dense = data
    blocked = block_matrix_from_dense(dense, sizes)
    assert np.isclose(blocked.trace(), np.trace(dense))
    assert np.isclose(blocked.frobenius_norm(), np.linalg.norm(dense))


@given(block_matrix_and_dense())
@settings(max_examples=30, deadline=None)
def test_coo_block_list_consistent(data):
    sizes, dense = data
    blocked = block_matrix_from_dense(dense, sizes)
    coo = CooBlockList.from_block_matrix(blocked)
    assert len(coo) == blocked.nnz_blocks
    for block_id in range(len(coo)):
        bi, bj = coo.block_at(block_id)
        assert blocked.has_block(bi, bj)
        assert coo.block_id(bi, bj) == block_id
    # column counts sum to the number of blocks
    assert coo.column_counts().sum() == len(coo)


# --------------------------------------------------------------------------- #
# submatrix invariants
# --------------------------------------------------------------------------- #
@given(block_matrix_and_dense(), st.data())
@settings(max_examples=30, deadline=None)
def test_submatrix_block_rows_include_generators(data, data_draw):
    sizes, dense = data
    # make sure the diagonal blocks exist so every column is non-empty
    starts = np.concatenate(([0], np.cumsum(sizes)))
    for i in range(len(sizes)):
        s = slice(starts[i], starts[i + 1])
        if not np.any(dense[s, s]):
            dense[s, s] = np.eye(sizes[i])
    blocked = block_matrix_from_dense(dense, sizes)
    coo = CooBlockList.from_block_matrix(blocked)
    column = data_draw.draw(st.integers(0, len(sizes) - 1))
    rows = submatrix_block_rows(coo, column)
    assert column in rows
    assert np.all(np.diff(rows) > 0)  # sorted, unique


@given(small_symmetric, st.data())
@settings(max_examples=40, deadline=None)
def test_element_submatrix_is_principal_submatrix(matrix, data_draw):
    np.fill_diagonal(matrix, np.where(np.abs(np.diag(matrix)) < 0.5, 1.0, np.diag(matrix)))
    sparse = sp.csr_matrix(matrix)
    column = data_draw.draw(st.integers(0, matrix.shape[0] - 1))
    submatrix = extract_submatrix(sparse, column)
    expected = matrix[np.ix_(submatrix.indices, submatrix.indices)]
    assert np.allclose(submatrix.data, expected)
    assert column in submatrix.indices


# --------------------------------------------------------------------------- #
# sign function invariants
# --------------------------------------------------------------------------- #
@given(small_symmetric)
@settings(max_examples=40, deadline=None)
def test_eigensign_is_involutory_and_symmetric(matrix):
    # shift eigenvalues away from zero to make the sign well-conditioned
    shifted = matrix + np.sign(np.trace(matrix) + 0.1) * 6.0 * np.eye(matrix.shape[0])
    sign = sign_via_eigendecomposition(shifted)
    n = matrix.shape[0]
    assert np.allclose(sign @ sign, np.eye(n), atol=1e-8)
    assert np.allclose(sign, sign.T, atol=1e-10)


@given(small_symmetric)
@settings(max_examples=40, deadline=None)
def test_spectral_scale_bounds_all_eigenvalues(matrix):
    bound = spectral_scale_estimate(matrix)
    eigenvalues = np.linalg.eigvalsh(matrix)
    assert bound + 1e-12 >= np.max(np.abs(eigenvalues))


@given(st.integers(2, 8))
@settings(max_examples=20, deadline=None)
def test_pade_coefficients_sum_to_one(order):
    """At X = I the iteration must be stationary: the polynomial equals 1."""
    coefficients = pade_polynomial_coefficients(order)
    assert np.isclose(coefficients.sum(), 1.0)


@given(
    arrays(np.float64, st.integers(1, 30), elements=st.floats(-20, 20, allow_nan=False)),
    st.floats(-5, 5, allow_nan=False),
    st.floats(0, 5000),
)
@settings(max_examples=50, deadline=None)
def test_fermi_occupation_bounded_and_monotone(energies, mu, temperature):
    occupations = fermi_occupation(energies, mu, temperature)
    assert np.all(occupations >= 0.0)
    assert np.all(occupations <= 1.0)
    order = np.argsort(energies)
    sorted_occupations = occupations[order]
    assert np.all(np.diff(sorted_occupations) <= 1e-12)


# --------------------------------------------------------------------------- #
# load balancing and topology invariants
# --------------------------------------------------------------------------- #
@given(
    st.lists(st.integers(1, 60), min_size=1, max_size=60),
    st.integers(1, 12),
)
@settings(max_examples=60, deadline=None)
def test_consecutive_chunks_partition(dimensions, n_ranks):
    costs = submatrix_flop_costs(dimensions)
    chunks = assign_consecutive_chunks(costs, n_ranks)
    assert len(chunks) == n_ranks
    assert chunks[0][0] == 0
    assert chunks[-1][1] == len(dimensions)
    covered = 0
    for start, stop in chunks:
        assert stop >= start
        covered += stop - start
    assert covered == len(dimensions)
    # as long as there are enough items, nobody is idle
    if len(dimensions) >= n_ranks:
        assert all(stop > start for start, stop in chunks)


@given(st.integers(1, 256))
@settings(max_examples=60, deadline=None)
def test_balanced_dims_factorization(n_ranks):
    rows, cols = balanced_dims(n_ranks)
    assert rows * cols == n_ranks
    assert rows >= cols >= 1


@given(st.integers(1, 64))
@settings(max_examples=40, deadline=None)
def test_cartesian_grid_coords_bijective(n_ranks):
    grid = CartesianGrid2D(n_ranks)
    seen = set()
    for rank in range(n_ranks):
        seen.add(grid.coords(rank))
        assert grid.rank_at(*grid.coords(rank)) == rank
    assert len(seen) == n_ranks


@given(
    st.lists(st.floats(0.1, 100.0, allow_nan=False), min_size=2, max_size=10),
    st.lists(st.floats(1.0, 1000.0, allow_nan=False), min_size=2, max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_parallel_efficiency_first_point_is_one(times, resources):
    n = min(len(times), len(resources))
    strong = parallel_efficiency(times[:n], resources[:n], mode="strong")
    weak = parallel_efficiency(times[:n], resources[:n], mode="weak")
    assert np.isclose(strong[0], 1.0)
    assert np.isclose(weak[0], 1.0)
