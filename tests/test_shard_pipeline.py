"""Tests for plan sharding, packed-segment transfers and the pipeline.

Covers the acceptance criteria of the rank-sharded refactor:

* :class:`~repro.core.shard.ShardedPlan` reproduces the unsharded plan's
  extraction and scatter bitwise from rank-local packed buffers;
* :class:`~repro.core.runner.DistributedSubmatrixPipeline` reproduces the
  single-process ``engine="batched"`` result bitwise for every rank count
  in {1, 2, 4, 8}, on synthetic systems and on the water benchmark;
* :func:`~repro.core.transfers.plan_transfers` with a segment index reports
  per-rank packed-segment fetch volumes that never exceed the whole-block
  volumes, with deduplication invariants and conserved totals across rank
  counts.
"""

import numpy as np
import pytest

from repro.chem import orthogonalized_ks
from repro.core import (
    DistributedSubmatrixPipeline,
    ShardedPlan,
    SubmatrixMethod,
    block_plan,
    plan_transfers,
    single_column_groups,
)
from repro.core.combination import group_columns_greedy_chunks
from repro.dbcsr import BlockDistribution, BlockSparseMatrix, CooBlockList, ProcessGrid2D
from repro.dbcsr.convert import block_matrix_from_csr
from repro.parallel import MachineModel
from repro.signfn import (
    sign_via_eigendecomposition,
    sign_via_eigendecomposition_batched,
)

RANK_COUNTS = (1, 2, 4, 8)
MU = 0.1


def banded_block_matrix(n_blocks=24, bandwidth=2, seed=7):
    """Symmetric banded block matrix with mixed block sizes."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(2, 6, n_blocks)
    matrix = BlockSparseMatrix(sizes, sizes)
    for i in range(n_blocks):
        for j in range(i, min(n_blocks, i + bandwidth + 1)):
            block = rng.standard_normal((sizes[i], sizes[j]))
            if i == j:
                matrix.put_block(i, j, 0.5 * (block + block.T))
            else:
                matrix.put_block(i, j, block)
                matrix.put_block(j, i, block.T.copy())
    return matrix, sizes


@pytest.fixture(scope="module")
def block_system():
    matrix, sizes = banded_block_matrix()
    coo = CooBlockList.from_block_matrix(matrix)
    return matrix, sizes, coo


@pytest.fixture(scope="module")
def reference_blocks(block_system):
    """Single-process batched-engine result (the bitwise oracle)."""
    matrix, _, coo = block_system
    method = SubmatrixMethod(
        lambda a: sign_via_eigendecomposition(a, MU),
        batch_function=lambda s: sign_via_eigendecomposition_batched(s, MU),
        engine="batched",
    )
    return method.apply_blockwise(matrix, coo=coo).result.raw_blocks()


def assert_blocks_bitwise_equal(expected, actual):
    assert set(expected) == set(actual)
    for key in expected:
        assert np.array_equal(expected[key], actual[key]), key


class TestShardedPlan:
    def test_shard_extraction_bitwise(self, block_system):
        matrix, sizes, coo = block_system
        plan = block_plan(coo, sizes, [[c] for c in range(coo.n_block_cols)])
        packed = plan.pack(matrix)
        rank_of_group = np.arange(plan.n_groups) % 3
        sharded = ShardedPlan(plan, rank_of_group, 3)
        for shard in sharded.shards:
            local = shard.pack_local(packed)
            assert local.size == shard.n_local_values
            for slot, group in enumerate(shard.group_indices):
                expected = plan.extract(packed, int(group))
                assert np.array_equal(expected, shard.view.extract(local, slot))

    def test_shard_scatter_matches_unsharded(self, block_system):
        matrix, sizes, coo = block_system
        plan = block_plan(coo, sizes, [[c] for c in range(coo.n_block_cols)])
        rng = np.random.default_rng(3)
        rank_of_group = rng.integers(0, 4, plan.n_groups)
        sharded = ShardedPlan(plan, rank_of_group, 4)
        direct, via_shards = plan.new_output(), plan.new_output()
        for group in range(plan.n_groups):
            values = rng.random((plan.groups[group].dimension,) * 2)
            plan.scatter(direct, group, values)
            shard = sharded.shards[int(rank_of_group[group])]
            slot = int(np.searchsorted(shard.group_indices, group))
            shard.view.scatter(via_shards, slot, values)
        assert np.array_equal(direct, via_shards)

    def test_required_segments_sorted_unique_and_cover_gathers(self, block_system):
        matrix, sizes, coo = block_system
        plan = block_plan(coo, sizes, [[c] for c in range(coo.n_block_cols)])
        sharded = ShardedPlan(plan, np.arange(plan.n_groups) % 4, 4)
        offsets = plan.segment_offsets()
        for shard in sharded.shards:
            ids = shard.required_segments
            assert np.array_equal(ids, np.unique(ids))  # sorted, deduplicated
            # the local buffer holds exactly the referenced segments
            assert shard.local_to_global.size == shard.segment_lengths.sum()
            referenced = {
                int(s)
                for group in shard.view.groups
                for s in np.unique(
                    np.searchsorted(
                        shard.local_offsets, group.gather_src, side="right"
                    )
                    - 1
                )
            }
            assert referenced <= set(range(ids.size))

    def test_empty_rank_gets_empty_shard(self, block_system):
        matrix, sizes, coo = block_system
        plan = block_plan(coo, sizes, [[c] for c in range(coo.n_block_cols)])
        sharded = ShardedPlan(plan, np.zeros(plan.n_groups, dtype=int), 2)
        empty = sharded.shards[1]
        assert empty.n_groups == 0
        assert empty.n_local_values == 0
        assert empty.segment_bytes() == 0.0

    def test_rank_assignment_validated(self, block_system):
        matrix, sizes, coo = block_system
        plan = block_plan(coo, sizes, [[c] for c in range(coo.n_block_cols)])
        with pytest.raises(ValueError):
            ShardedPlan(plan, [0])
        with pytest.raises(IndexError):
            ShardedPlan(plan, [9] * plan.n_groups, 2)


class TestPackedSegmentTransfers:
    @pytest.fixture()
    def transfer_inputs(self, block_system):
        matrix, sizes, coo = block_system
        grouping = single_column_groups(coo.n_block_cols)
        plan = block_plan(coo, sizes, grouping.groups)
        return coo, sizes, grouping, plan

    def _plans_for(self, coo, sizes, grouping, plan, n_ranks, per_group_dedup=True):
        grid = ProcessGrid2D(n_ranks, (n_ranks, 1))
        distribution = BlockDistribution(coo.n_block_rows, coo.n_block_cols, grid)
        rank_of_group = [g % n_ranks for g in range(grouping.n_submatrices)]
        sharded = ShardedPlan(plan, rank_of_group, n_ranks)
        transfer = plan_transfers(
            coo,
            sizes,
            distribution,
            grouping,
            rank_of_group,
            per_group_dedup=per_group_dedup,
            segment_index=sharded.required_segments_per_rank(),
        )
        return sharded, transfer

    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    def test_per_rank_segment_fetch_at_most_block_fetch(
        self, transfer_inputs, n_ranks
    ):
        coo, sizes, grouping, plan = transfer_inputs
        _, transfer = self._plans_for(coo, sizes, grouping, plan, n_ranks)
        for summary in transfer.per_rank:
            assert summary.segment_fetch_bytes is not None
            assert summary.segment_fetch_bytes <= summary.fetch_bytes + 1e-9
            assert summary.fetch_bytes <= summary.fetch_bytes_without_dedup + 1e-9

    def test_fast_path_block_volume_strictly_overestimates_segments(
        self, transfer_inputs
    ):
        """per_group_dedup=False over-approximates; segments stay exact."""
        coo, sizes, grouping, plan = transfer_inputs
        _, exact = self._plans_for(coo, sizes, grouping, plan, 4)
        _, fast = self._plans_for(
            coo, sizes, grouping, plan, 4, per_group_dedup=False
        )
        # the shard-derived segment volume is identical in both modes ...
        assert fast.total_segment_fetch_bytes == pytest.approx(
            exact.total_segment_fetch_bytes
        )
        # ... and strictly below the fast path's whole-block volume
        assert fast.total_segment_fetch_bytes < fast.total_fetch_bytes
        assert fast.segment_savings > 0.0

    def test_dedup_invariants(self, transfer_inputs):
        coo, sizes, grouping, plan = transfer_inputs
        sharded, transfer = self._plans_for(coo, sizes, grouping, plan, 4)
        sizes = np.asarray(list(sizes))
        bytes_by_id = sizes[coo.rows] * sizes[coo.cols] * 8.0
        for shard, summary in zip(sharded.shards, transfer.per_rank):
            # shard-required segments are exactly the plan's required blocks
            # (exact per-group planning), so the deduplicated volumes agree
            assert np.array_equal(
                shard.required_segments, summary.required_blocks
            )
            assert set(summary.remote_blocks.tolist()) <= set(
                summary.required_blocks.tolist()
            )
            # each remote segment is charged exactly once, at its true size
            assert summary.segment_fetch_bytes == pytest.approx(
                float(bytes_by_id[summary.remote_blocks].sum())
            )

    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    def test_totals_conserved_across_rank_counts(self, transfer_inputs, n_ranks):
        coo, sizes, grouping, plan = transfer_inputs
        sharded, transfer = self._plans_for(coo, sizes, grouping, plan, n_ranks)
        # every group is owned exactly once
        assert sum(s.n_submatrices for s in transfer.per_rank) == grouping.n_submatrices
        assert sum(s.n_groups for s in sharded.shards) == plan.n_groups
        # the union of required segments covers every segment some group needs
        union = np.unique(np.concatenate(sharded.required_segments_per_rank()))
        single_rank = ShardedPlan(plan, np.zeros(plan.n_groups, dtype=int), 1)
        assert np.array_equal(union, single_rank.shards[0].required_segments)
        # matrices agree with the per-rank summaries
        assert transfer.segment_fetch_matrix.sum() == pytest.approx(
            transfer.total_segment_fetch_bytes
        )
        assert transfer.fetch_matrix.sum() == pytest.approx(
            transfer.total_fetch_bytes
        )

    def test_single_rank_has_no_segment_traffic(self, transfer_inputs):
        coo, sizes, grouping, plan = transfer_inputs
        _, transfer = self._plans_for(coo, sizes, grouping, plan, 1)
        assert transfer.total_segment_fetch_bytes == 0.0

    def test_traffic_log_can_use_segments(self, transfer_inputs):
        coo, sizes, grouping, plan = transfer_inputs
        _, transfer = self._plans_for(coo, sizes, grouping, plan, 4)
        block_log = transfer.to_traffic_log(include_coo_allgather=False)
        segment_log = transfer.to_traffic_log(
            include_coo_allgather=False, use_segments=True
        )
        assert segment_log.total_bytes_sent() <= block_log.total_bytes_sent() + 1e-9
        without_segments = plan_transfers(
            coo,
            sizes,
            BlockDistribution(
                coo.n_block_rows, coo.n_block_cols, ProcessGrid2D(4, (4, 1))
            ),
            grouping,
            [g % 4 for g in range(grouping.n_submatrices)],
        )
        with pytest.raises(ValueError):
            without_segments.to_traffic_log(use_segments=True)


class TestDistributedPipeline:
    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    def test_bitwise_identical_to_batched_engine(
        self, block_system, reference_blocks, n_ranks
    ):
        matrix, sizes, coo = block_system
        pipeline = DistributedSubmatrixPipeline(coo, sizes, n_ranks)
        result = pipeline.run(
            matrix,
            function=lambda a: sign_via_eigendecomposition(a, MU),
            batch_function=lambda s: sign_via_eigendecomposition_batched(s, MU),
        )
        assert_blocks_bitwise_equal(reference_blocks, result.result.raw_blocks())
        assert result.total_segment_fetch_bytes <= result.total_block_fetch_bytes + 1e-9

    @pytest.mark.parametrize("balance", ["chunks", "stacks", "round_robin"])
    def test_balance_strategies_bitwise(
        self, block_system, reference_blocks, balance
    ):
        matrix, sizes, coo = block_system
        pipeline = DistributedSubmatrixPipeline(coo, sizes, 4, balance=balance)
        result = pipeline.run(
            matrix,
            function=lambda a: sign_via_eigendecomposition(a, MU),
            batch_function=lambda s: sign_via_eigendecomposition_batched(s, MU),
        )
        assert_blocks_bitwise_equal(reference_blocks, result.result.raw_blocks())

    def test_bucket_padding_stays_exact_for_matrix_functions(
        self, block_system, reference_blocks
    ):
        matrix, sizes, coo = block_system
        pipeline = DistributedSubmatrixPipeline(
            coo, sizes, 4, balance="stacks", bucket_pad="auto"
        )
        result = pipeline.run(
            matrix,
            batch_function=lambda s: sign_via_eigendecomposition_batched(s, MU),
        )
        for key, expected in reference_blocks.items():
            np.testing.assert_allclose(
                expected, result.result.raw_blocks()[key], atol=1e-10
            )

    def test_grouped_columns_supported(self, block_system):
        matrix, sizes, coo = block_system
        grouping = group_columns_greedy_chunks(coo.n_block_cols, 3)
        single = SubmatrixMethod(
            lambda a: sign_via_eigendecomposition(a, MU), engine="batched"
        ).apply_blockwise(matrix, column_groups=grouping.groups, coo=coo)
        pipeline = DistributedSubmatrixPipeline(coo, sizes, 4, grouping=grouping)
        result = pipeline.run(
            matrix, function=lambda a: sign_via_eigendecomposition(a, MU)
        )
        assert_blocks_bitwise_equal(
            single.result.raw_blocks(), result.result.raw_blocks()
        )

    def test_threaded_run_with_reused_executor(self, block_system, reference_blocks):
        from concurrent.futures import ThreadPoolExecutor

        matrix, sizes, coo = block_system
        pipeline = DistributedSubmatrixPipeline(coo, sizes, 4)
        with ThreadPoolExecutor(max_workers=4) as pool:
            for _ in range(2):  # the pool survives repeated evaluations
                result = pipeline.run(
                    matrix,
                    function=lambda a: sign_via_eigendecomposition(a, MU),
                    batch_function=lambda s: sign_via_eigendecomposition_batched(
                        s, MU
                    ),
                    backend="thread",
                    executor=pool,
                )
                assert_blocks_bitwise_equal(
                    reference_blocks, result.result.raw_blocks()
                )

    def test_process_backend_rejected(self, block_system):
        """Ranks scatter into shared memory; a process pool cannot."""
        matrix, sizes, coo = block_system
        pipeline = DistributedSubmatrixPipeline(coo, sizes, 2)
        with pytest.raises(ValueError):
            pipeline.run(
                matrix,
                function=lambda a: sign_via_eigendecomposition(a, MU),
                backend="process",
            )

    def test_traffic_log_matches_assignment_flops(self, block_system):
        matrix, sizes, coo = block_system
        pipeline = DistributedSubmatrixPipeline(coo, sizes, 4)
        log = pipeline.traffic_log()
        dims = np.asarray(pipeline.dimensions, dtype=float)
        assert log.total_flops() == pytest.approx(9.0 * float(np.sum(dims**3)))

    def test_cost_wrapper_consistent_with_pipeline(self, block_system):
        from repro.core import submatrix_method_cost

        matrix, sizes, coo = block_system
        machine = MachineModel()
        cost = submatrix_method_cost(coo, sizes, 4, machine)
        pipeline = DistributedSubmatrixPipeline(coo, sizes, 4)
        assert cost.total_flops == pytest.approx(
            pipeline.cost(machine).total_flops
        )
        assert "segment_fetch_bytes" in cost.details
        assert cost.details["segment_fetch_bytes"] <= cost.details["fetch_bytes"] + 1e-9


class TestWaterBenchmarkAcceptance:
    """Acceptance criteria on the water system (paper's benchmark family)."""

    @pytest.fixture(scope="class")
    def water_setup(self, water32_matrices):
        k_ortho, _ = orthogonalized_ks(
            water32_matrices.K, water32_matrices.S, eps_filter=1e-5
        )
        blocked = block_matrix_from_csr(
            k_ortho, water32_matrices.blocks.block_sizes, threshold=0.0
        )
        coo = CooBlockList.from_block_matrix(blocked)
        return blocked, water32_matrices.blocks.block_sizes, coo

    @pytest.fixture(scope="class")
    def water_reference(self, water_setup):
        blocked, sizes, coo = water_setup
        method = SubmatrixMethod(
            lambda a: sign_via_eigendecomposition(a, MU),
            batch_function=lambda s: sign_via_eigendecomposition_batched(s, MU),
            engine="batched",
        )
        return method.apply_blockwise(blocked, coo=coo).result.raw_blocks()

    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    def test_bitwise_and_segment_volume(
        self, water_setup, water_reference, n_ranks
    ):
        blocked, sizes, coo = water_setup
        pipeline = DistributedSubmatrixPipeline(coo, sizes, n_ranks)
        result = pipeline.run(
            blocked,
            function=lambda a: sign_via_eigendecomposition(a, MU),
            batch_function=lambda s: sign_via_eigendecomposition_batched(s, MU),
        )
        assert_blocks_bitwise_equal(water_reference, result.result.raw_blocks())
        for report in result.per_rank:
            assert report.segment_fetch_bytes <= report.block_fetch_bytes + 1e-9
