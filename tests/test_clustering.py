"""Tests for k-means and graph partitioning."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.clustering import kmeans, partition_graph
from repro.clustering.graph_partition import edge_cut


def well_separated_points(rng, clusters=3, per_cluster=20, separation=50.0):
    """Points in well-separated Gaussian blobs plus the true labels."""
    points = []
    labels = []
    for index in range(clusters):
        center = np.array([index * separation, 0.0, 0.0])
        points.append(center + rng.normal(scale=1.0, size=(per_cluster, 3)))
        labels.extend([index] * per_cluster)
    return np.vstack(points), np.array(labels)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        points, truth = well_separated_points(rng)
        result = kmeans(points, 3, seed=0)
        # same-cluster points must share a label, different clusters must not
        for cluster in range(3):
            members = result.labels[truth == cluster]
            assert len(np.unique(members)) == 1
        assert len(np.unique(result.labels)) == 3

    def test_inertia_decreases_with_more_clusters(self, rng):
        points, _ = well_separated_points(rng)
        few = kmeans(points, 2, seed=0)
        many = kmeans(points, 6, seed=0)
        assert many.inertia < few.inertia

    def test_deterministic_for_fixed_seed(self, rng):
        points, _ = well_separated_points(rng)
        a = kmeans(points, 3, seed=5)
        b = kmeans(points, 3, seed=5)
        assert np.array_equal(a.labels, b.labels)

    def test_k_equals_n(self, rng):
        points = rng.random((5, 3))
        result = kmeans(points, 5, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-20)

    def test_single_cluster(self, rng):
        points = rng.random((10, 2))
        result = kmeans(points, 1, seed=0)
        assert np.all(result.labels == 0)
        assert np.allclose(result.centers[0], points.mean(axis=0))

    def test_invalid_k(self, rng):
        points = rng.random((5, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 6)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)

    def test_duplicate_points(self):
        points = np.zeros((10, 3))
        result = kmeans(points, 2, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_centers_shape(self, rng):
        points, _ = well_separated_points(rng)
        result = kmeans(points, 4, seed=0)
        assert result.centers.shape == (4, 3)
        assert result.n_clusters == 4


def ring_graph(n):
    """Sparsity pattern of a ring of n nodes (plus the diagonal)."""
    rows, cols = [], []
    for i in range(n):
        for j in (i - 1, i, i + 1):
            rows.append(i)
            cols.append(j % n)
    data = np.ones(len(rows), dtype=bool)
    return sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()


def two_cliques(n_per_clique=8):
    """Two dense cliques connected by a single edge."""
    n = 2 * n_per_clique
    dense = np.zeros((n, n), dtype=bool)
    dense[:n_per_clique, :n_per_clique] = True
    dense[n_per_clique:, n_per_clique:] = True
    dense[n_per_clique - 1, n_per_clique] = True
    dense[n_per_clique, n_per_clique - 1] = True
    return sp.csr_matrix(dense)


class TestGraphPartition:
    def test_two_cliques_split_cleanly(self):
        pattern = two_cliques()
        result = partition_graph(pattern, 2)
        labels = result.labels
        # the two cliques end up in different parts with exactly one cut edge
        assert len(np.unique(labels[:8])) == 1
        assert len(np.unique(labels[8:])) == 1
        assert labels[0] != labels[8]
        assert result.edge_cut == 1

    def test_balanced_sizes_on_ring(self):
        pattern = ring_graph(24)
        result = partition_graph(pattern, 4)
        assert result.part_sizes.sum() == 24
        assert result.part_sizes.max() <= 8  # within tolerance of ideal 6

    def test_ring_cut_is_small(self):
        pattern = ring_graph(24)
        result = partition_graph(pattern, 4)
        # a ring cut into 4 contiguous arcs has exactly 4 cut edges; allow a
        # little slack for the greedy heuristic
        assert result.edge_cut <= 8

    def test_single_part(self):
        pattern = ring_graph(10)
        result = partition_graph(pattern, 1)
        assert np.all(result.labels == 0)
        assert result.edge_cut == 0

    def test_n_parts_equals_n_nodes(self):
        pattern = ring_graph(6)
        result = partition_graph(pattern, 6)
        assert len(np.unique(result.labels)) == 6

    def test_invalid_part_count(self):
        pattern = ring_graph(5)
        with pytest.raises(ValueError):
            partition_graph(pattern, 0)
        with pytest.raises(ValueError):
            partition_graph(pattern, 6)

    def test_non_square_pattern_rejected(self):
        pattern = sp.csr_matrix(np.ones((3, 4)))
        with pytest.raises(ValueError):
            partition_graph(pattern, 2)

    def test_disconnected_graph_still_covered(self):
        pattern = sp.block_diag([ring_graph(6), ring_graph(6)]).tocsr()
        result = partition_graph(pattern, 3)
        assert result.part_sizes.sum() == 12
        assert np.all(result.labels >= 0)

    def test_edge_cut_helper_matches_result(self):
        pattern = two_cliques()
        result = partition_graph(pattern, 2)
        assert edge_cut(pattern, result.labels) == result.edge_cut

    def test_refinement_does_not_worsen_cut(self):
        pattern = two_cliques(10)
        unrefined = partition_graph(pattern, 2, refine_passes=0)
        refined = partition_graph(pattern, 2, refine_passes=3)
        assert refined.edge_cut <= unrefined.edge_cut
