"""Tests for the submatrix-method density-matrix solver (grand-canonical,
canonical, finite temperature, alternative per-submatrix solvers)."""

import numpy as np
import pytest

from repro.api import EngineConfig
from repro.chem import reference_density_matrix
from repro.core.combination import group_columns_greedy_chunks
from repro.core.sign_dft import SubmatrixDFTSolver


class TestGrandCanonical:
    def test_matches_reference_energy(self, water32_matrices, water32_reference, gap_mu, water32):
        solver = SubmatrixDFTSolver(eps_filter=1e-7)
        result = solver.compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        error_mev_per_atom = (
            abs(result.band_energy - water32_reference.band_energy)
            / water32.n_atoms
            * 1000.0
        )
        assert error_mev_per_atom < 1.0

    def test_electron_count_matches(self, water32_matrices, gap_mu):
        solver = SubmatrixDFTSolver(eps_filter=1e-7)
        result = solver.compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        assert result.n_electrons == pytest.approx(8 * 32, abs=1e-3)

    def test_looser_filter_larger_error(self, water64_matrices, gap_mu, water64):
        reference = reference_density_matrix(
            water64_matrices.K, water64_matrices.S, mu=gap_mu
        )
        errors = []
        for eps in (1e-2, 1e-6):
            solver = SubmatrixDFTSolver(eps_filter=eps)
            result = solver.compute_density(
                water64_matrices.K, water64_matrices.S, water64_matrices.blocks, mu=gap_mu
            )
            errors.append(abs(result.band_energy - reference.band_energy))
        assert errors[0] > errors[1]

    def test_looser_filter_smaller_submatrices(self, water64_matrices, gap_mu):
        dims = []
        for eps in (1e-2, 1e-7):
            solver = SubmatrixDFTSolver(eps_filter=eps)
            result = solver.compute_density(
                water64_matrices.K, water64_matrices.S, water64_matrices.blocks, mu=gap_mu
            )
            dims.append(result.max_submatrix_dimension)
        assert dims[0] < dims[1]

    def test_density_pattern_matches_filtered_ks(self, water32_matrices, gap_mu):
        from repro.chem import orthogonalized_ks

        eps = 1e-5
        solver = SubmatrixDFTSolver(eps_filter=eps)
        result = solver.compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        k_ortho, _ = orthogonalized_ks(water32_matrices.K, water32_matrices.S, eps)
        # the density matrix retains the sparsity pattern of the input
        density_pattern = result.density_ortho.toarray() != 0
        ks_pattern = k_ortho.toarray() != 0
        assert np.array_equal(density_pattern & ~ks_pattern, np.zeros_like(ks_pattern))

    def test_requires_exactly_one_ensemble_choice(self, water32_matrices, gap_mu):
        solver = SubmatrixDFTSolver()
        with pytest.raises(ValueError):
            solver.compute_density(
                water32_matrices.K, water32_matrices.S, water32_matrices.blocks
            )
        with pytest.raises(ValueError):
            solver.compute_density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                n_electrons=256,
            )

    def test_grouping_reduces_submatrix_count(self, water32_matrices, gap_mu):
        grouping = group_columns_greedy_chunks(32, 8)
        solver = SubmatrixDFTSolver(eps_filter=1e-5, grouping=grouping)
        result = solver.compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        assert result.n_submatrices == 4

    def test_grouped_result_close_to_ungrouped(self, water32_matrices, gap_mu, water32):
        ungrouped = SubmatrixDFTSolver(eps_filter=1e-6).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        grouped = SubmatrixDFTSolver(
            eps_filter=1e-6, grouping=group_columns_greedy_chunks(32, 4)
        ).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        difference = abs(ungrouped.band_energy - grouped.band_energy) / water32.n_atoms
        assert difference * 1000 < 1.0  # meV/atom

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SubmatrixDFTSolver(eps_filter=-1.0)
        with pytest.raises(ValueError):
            SubmatrixDFTSolver(temperature=-1.0)
        with pytest.raises(ValueError):
            SubmatrixDFTSolver(solver="magic")


class TestCanonical:
    def test_finds_mu_in_gap(self, water32_matrices, water32_reference):
        solver = SubmatrixDFTSolver(eps_filter=1e-6)
        result = solver.compute_density(
            water32_matrices.K,
            water32_matrices.S,
            water32_matrices.blocks,
            n_electrons=8 * 32,
        )
        energies = water32_reference.orbital_energies
        homo = energies[4 * 32 - 1]
        lumo = energies[4 * 32]
        assert homo < result.mu < lumo
        assert result.n_electrons == pytest.approx(8 * 32, abs=1e-2)
        assert result.mu_iterations >= 1

    def test_canonical_matches_grand_canonical_energy(
        self, water32_matrices, gap_mu, water32
    ):
        grand = SubmatrixDFTSolver(eps_filter=1e-6).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        canonical = SubmatrixDFTSolver(eps_filter=1e-6).compute_density(
            water32_matrices.K,
            water32_matrices.S,
            water32_matrices.blocks,
            n_electrons=8 * 32,
        )
        difference = abs(grand.band_energy - canonical.band_energy) / water32.n_atoms
        assert difference * 1000 < 0.1

    def test_fractional_electron_count_adjusts_mu(self, water32_matrices, gap_mu):
        """Removing electrons moves μ down into the occupied band."""
        neutral = SubmatrixDFTSolver(eps_filter=1e-6).compute_density(
            water32_matrices.K,
            water32_matrices.S,
            water32_matrices.blocks,
            n_electrons=8 * 32,
        )
        cation = SubmatrixDFTSolver(eps_filter=1e-6).compute_density(
            water32_matrices.K,
            water32_matrices.S,
            water32_matrices.blocks,
            n_electrons=8 * 32 - 16,
        )
        assert cation.mu < neutral.mu
        assert cation.n_electrons == pytest.approx(8 * 32 - 16, abs=0.5)

    def test_canonical_requires_eigen_solver(self, water32_matrices):
        solver = SubmatrixDFTSolver(solver="newton_schulz")
        with pytest.raises(ValueError):
            solver.compute_density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                n_electrons=256,
            )


class TestFiniteTemperature:
    def test_occupations_smooth_at_high_temperature(self, water32_matrices, gap_mu):
        cold = SubmatrixDFTSolver(eps_filter=1e-6, temperature=0.0).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        hot = SubmatrixDFTSolver(eps_filter=1e-6, temperature=40000.0).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        # at zero temperature the count is the integer number of electrons;
        # at very high temperature fractional occupations redistribute weight
        # between the occupied and virtual bands, so count and energy change
        assert cold.n_electrons == pytest.approx(8 * 32, abs=1e-6)
        assert abs(hot.n_electrons - cold.n_electrons) > 0.1
        assert hot.band_energy != pytest.approx(cold.band_energy, abs=1e-6)

    def test_finite_temperature_matches_reference(self, water32_matrices, gap_mu, water32):
        temperature = 20000.0
        reference = reference_density_matrix(
            water32_matrices.K, water32_matrices.S, mu=gap_mu, temperature=temperature
        )
        result = SubmatrixDFTSolver(
            eps_filter=1e-8, temperature=temperature
        ).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        error = abs(result.band_energy - reference.band_energy) / water32.n_atoms * 1000
        assert error < 1.0


class TestAlternativeSolvers:
    @pytest.mark.parametrize("solver_name", ["newton_schulz", "pade"])
    def test_iterative_solvers_match_eigen(self, water32_matrices, gap_mu, solver_name, water32):
        eigen = SubmatrixDFTSolver(eps_filter=1e-6, solver="eigen").compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        iterative = SubmatrixDFTSolver(
            eps_filter=1e-6, solver=solver_name
        ).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        difference = abs(eigen.band_energy - iterative.band_energy) / water32.n_atoms
        assert difference * 1000 < 0.5

    def test_thread_backend_matches_serial(self, water32_matrices, gap_mu):
        serial = SubmatrixDFTSolver(
            config=EngineConfig(engine="batched", eps_filter=1e-5)
        ).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        threaded = SubmatrixDFTSolver(
            config=EngineConfig(
                engine="batched", eps_filter=1e-5, backend="thread", max_workers=2
            )
        ).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        assert serial.band_energy == pytest.approx(threaded.band_energy, abs=1e-9)

    def test_bucket_padded_iterative_solver_matches_unpadded(
        self, water32_matrices, gap_mu
    ):
        """Padded stacks (pad eigenvalue pinned at 1 after the μ-shift) are
        exact for the sign iteration up to solver tolerance."""
        unpadded = SubmatrixDFTSolver(
            eps_filter=1e-6, solver="newton_schulz"
        ).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        padded = SubmatrixDFTSolver(
            eps_filter=1e-6, solver="newton_schulz", bucket_pad="auto"
        ).compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        assert padded.band_energy == pytest.approx(unpadded.band_energy, abs=1e-7)
        assert padded.n_electrons == pytest.approx(unpadded.n_electrons, abs=1e-7)
