"""Tests for principal-submatrix extraction and scatter-back."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.submatrix import (
    extract_block_submatrix,
    extract_submatrix,
    scatter_block_submatrix_result,
    scatter_submatrix_result,
    submatrix_block_rows,
    submatrix_dimension,
)
from repro.dbcsr import BlockSparseMatrix, CooBlockList
from repro.dbcsr.convert import block_matrix_from_dense, block_matrix_to_dense

from conftest import make_decay_matrix


@pytest.fixture()
def sparse_decay_matrix():
    """Sparse symmetric matrix with decaying off-diagonals (40x40)."""
    dense = make_decay_matrix(40, bandwidth=4.0)
    dense[np.abs(dense) < 1e-3] = 0.0
    return sp.csr_matrix(dense)


@pytest.fixture()
def banded_block_matrix(rng):
    """Block matrix with 8 blocks of size 3, bandwidth one block."""
    matrix = BlockSparseMatrix([3] * 8)
    for i in range(8):
        for j in range(8):
            if abs(i - j) <= 1:
                block = rng.normal(size=(3, 3))
                matrix.put_block(i, j, block)
    # symmetrize
    dense = block_matrix_to_dense(matrix)
    dense = (dense + dense.T) / 2
    return block_matrix_from_dense(dense, [3] * 8)


class TestElementLevelExtraction:
    def test_single_column(self, sparse_decay_matrix):
        submatrix = extract_submatrix(sparse_decay_matrix, 5)
        column_rows = sparse_decay_matrix.tocsc()[:, 5].nonzero()[0]
        assert np.array_equal(submatrix.indices, np.unique(np.append(column_rows, 5)))
        assert submatrix.data.shape == (submatrix.dimension, submatrix.dimension)

    def test_generating_column_always_included(self):
        """Column with zero diagonal still appears in its own submatrix."""
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        submatrix = extract_submatrix(matrix, 0)
        assert 0 in submatrix.indices

    def test_submatrix_is_principal_submatrix(self, sparse_decay_matrix):
        submatrix = extract_submatrix(sparse_decay_matrix, 7)
        dense = sparse_decay_matrix.toarray()
        expected = dense[np.ix_(submatrix.indices, submatrix.indices)]
        assert np.allclose(submatrix.data, expected)

    def test_multiple_columns_union(self, sparse_decay_matrix):
        single_a = extract_submatrix(sparse_decay_matrix, 3)
        single_b = extract_submatrix(sparse_decay_matrix, 20)
        combined = extract_submatrix(sparse_decay_matrix, [3, 20])
        union = np.union1d(single_a.indices, single_b.indices)
        assert np.array_equal(combined.indices, union)
        assert combined.dimension >= max(single_a.dimension, single_b.dimension)

    def test_local_columns_point_to_generators(self, sparse_decay_matrix):
        submatrix = extract_submatrix(sparse_decay_matrix, [3, 20])
        assert np.array_equal(submatrix.indices[submatrix.local_columns], [3, 20])

    def test_out_of_range_column(self, sparse_decay_matrix):
        with pytest.raises(IndexError):
            extract_submatrix(sparse_decay_matrix, 100)

    def test_empty_columns_rejected(self, sparse_decay_matrix):
        with pytest.raises(ValueError):
            extract_submatrix(sparse_decay_matrix, [])

    def test_dense_column_gives_full_matrix(self):
        dense = np.ones((6, 6))
        submatrix = extract_submatrix(sp.csr_matrix(dense), 2)
        assert submatrix.dimension == 6


class TestElementLevelScatter:
    def test_scatter_preserves_pattern_and_values(self, sparse_decay_matrix):
        csc = sparse_decay_matrix.tocsc()
        submatrix = extract_submatrix(csc, 11)
        f_sub = submatrix.data @ submatrix.data  # any function
        accumulator = {}
        scatter_submatrix_result(accumulator, f_sub, submatrix, csc)
        column = accumulator[11]
        expected_rows = set(csc[:, 11].nonzero()[0].tolist())
        assert set(column.keys()) == expected_rows
        # values come from the correct local column
        local_col = submatrix.local_columns[0]
        for row, value in column.items():
            local_row = int(np.searchsorted(submatrix.indices, row))
            assert value == pytest.approx(f_sub[local_row, local_col])


class TestBlockLevelHelpers:
    def test_submatrix_block_rows_from_pattern(self, banded_block_matrix):
        coo = CooBlockList.from_block_matrix(banded_block_matrix)
        rows = submatrix_block_rows(coo, 0)
        assert np.array_equal(rows, [0, 1])
        rows = submatrix_block_rows(coo, 4)
        assert np.array_equal(rows, [3, 4, 5])

    def test_submatrix_block_rows_accepts_pattern_matrix(self, banded_block_matrix):
        coo = CooBlockList.from_block_matrix(banded_block_matrix)
        pattern = coo.to_pattern()
        assert np.array_equal(
            submatrix_block_rows(pattern, 4), submatrix_block_rows(coo, 4)
        )

    def test_submatrix_dimension(self, banded_block_matrix):
        coo = CooBlockList.from_block_matrix(banded_block_matrix)
        assert submatrix_dimension(coo, [3] * 8, 0) == 6
        assert submatrix_dimension(coo, [3] * 8, 4) == 9
        assert submatrix_dimension(coo, [3] * 8, [0, 4]) == 15

    def test_dimension_with_heterogeneous_blocks(self):
        pattern = sp.csr_matrix(np.eye(3, dtype=bool))
        assert submatrix_dimension(pattern, [2, 5, 7], 1) == 5


class TestBlockLevelExtraction:
    def test_dense_content_matches(self, banded_block_matrix):
        coo = CooBlockList.from_block_matrix(banded_block_matrix)
        submatrix = extract_block_submatrix(banded_block_matrix, 3, coo)
        dense = block_matrix_to_dense(banded_block_matrix)
        retained_elements = np.concatenate(
            [np.arange(b * 3, b * 3 + 3) for b in submatrix.indices]
        )
        expected = dense[np.ix_(retained_elements, retained_elements)]
        assert np.allclose(submatrix.data, expected)

    def test_requires_square_block_structure(self, rng):
        matrix = BlockSparseMatrix([2, 3], [3, 2])
        with pytest.raises(ValueError):
            extract_block_submatrix(matrix, 0)

    def test_coo_built_on_demand(self, banded_block_matrix):
        a = extract_block_submatrix(banded_block_matrix, 2)
        coo = CooBlockList.from_block_matrix(banded_block_matrix)
        b = extract_block_submatrix(banded_block_matrix, 2, coo)
        assert np.allclose(a.data, b.data)

    def test_block_sizes_recorded(self, banded_block_matrix):
        submatrix = extract_block_submatrix(banded_block_matrix, 0)
        assert np.array_equal(submatrix.block_sizes, [3, 3])
        assert submatrix.dimension == 6


class TestBlockLevelScatter:
    def test_scatter_writes_only_generating_column_blocks(self, banded_block_matrix):
        coo = CooBlockList.from_block_matrix(banded_block_matrix)
        submatrix = extract_block_submatrix(banded_block_matrix, 3, coo)
        f_sub = np.eye(submatrix.dimension)
        result = BlockSparseMatrix([3] * 8)
        scatter_block_submatrix_result(result, f_sub, submatrix, coo)
        written = set(result.block_keys())
        assert written == {(2, 3), (3, 3), (4, 3)}

    def test_identity_function_reproduces_input_column(self, banded_block_matrix):
        """Applying f = identity through the submatrix machinery returns A."""
        coo = CooBlockList.from_block_matrix(banded_block_matrix)
        result = BlockSparseMatrix([3] * 8)
        for column in range(8):
            submatrix = extract_block_submatrix(banded_block_matrix, column, coo)
            scatter_block_submatrix_result(result, submatrix.data, submatrix, coo)
        assert np.allclose(
            block_matrix_to_dense(result), block_matrix_to_dense(banded_block_matrix)
        )

    def test_scatter_requires_block_submatrix(self, sparse_decay_matrix):
        submatrix = extract_submatrix(sparse_decay_matrix, 0)
        result = BlockSparseMatrix([3] * 8)
        coo = CooBlockList.from_block_matrix(result)
        with pytest.raises(ValueError):
            scatter_block_submatrix_result(result, submatrix.data, submatrix, coo)
