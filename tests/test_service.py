"""Tests for the serving layer: shared plan cache, batching, admission.

Covers the PR's contracts:

* :class:`~repro.core.plan.PlanCache` is thread-safe — N threads racing on
  one cache build each pattern exactly once — and byte-accounted, with LRU
  eviction under a byte budget;
* :class:`~repro.api.context.SubmatrixContext` supports concurrent use and
  refuses to close while requests are in flight;
* :class:`~repro.serve.DensityService` serves results **bitwise identical**
  to direct ``context.density`` calls on both the micro-batched and the
  direct path, across tenants sharing one plan cache;
* admission control enforces global and per-tenant in-flight ceilings and
  the plan-cache byte budget;
* a poisoned request in a merged batch fails alone — its neighbours still
  get their exact results.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    AdmissionPolicy,
    DensityService,
    EngineConfig,
    ServiceOverloadError,
    SubmatrixContext,
)
from repro.api import UnknownKernelError
from repro.core.plan import PlanCache, block_plan, plan_nbytes
from repro.dbcsr import CooBlockList
from repro.dbcsr.convert import block_matrix_from_dense
from repro.serve import AdmissionController, ServiceMetrics

N_ELECTRONS = 8.0 * 32

CONFIG = EngineConfig(engine="batched", backend="thread", max_workers=2)


def assert_identical(result, reference):
    """Bitwise comparison of two SubmatrixDFTResult payloads."""
    assert np.array_equal(result.density_ao, reference.density_ao)
    assert np.array_equal(
        result.density_ortho.toarray(), reference.density_ortho.toarray()
    )
    assert result.mu == reference.mu
    assert result.band_energy == reference.band_energy
    assert result.n_electrons == reference.n_electrons
    assert result.pattern_fingerprint == reference.pattern_fingerprint
    assert sorted(result.submatrix_dimensions) == sorted(
        reference.submatrix_dimensions
    )


def banded_block_pattern(n_blocks, block_size, bandwidth, seed):
    """Small random banded block matrix and its COO pattern.

    Off-diagonal blocks are dropped at random (seed-dependent), so distinct
    seeds produce distinct sparsity *patterns* — which is what the plan
    cache keys on — not merely distinct values.
    """
    generator = np.random.default_rng(seed)
    n = n_blocks * block_size
    dense = np.zeros((n, n))
    for i in range(n_blocks):
        for j in range(i, n_blocks):
            if abs(i - j) <= bandwidth and (i == j or generator.random() < 0.6):
                dense[
                    i * block_size : (i + 1) * block_size,
                    j * block_size : (j + 1) * block_size,
                ] = generator.normal(size=(block_size, block_size))
    dense = (dense + dense.T) / 2.0
    matrix = block_matrix_from_dense(dense, [block_size] * n_blocks)
    return matrix, CooBlockList.from_block_matrix(matrix)


@pytest.fixture(scope="module")
def reference_results(water32_matrices, gap_mu):
    """Direct single-context results both ensembles are checked against."""
    with SubmatrixContext(CONFIG) as context:
        grand_canonical = context.density(
            water32_matrices.K,
            water32_matrices.S,
            water32_matrices.blocks,
            mu=gap_mu,
        )
        canonical = context.density(
            water32_matrices.K,
            water32_matrices.S,
            water32_matrices.blocks,
            n_electrons=N_ELECTRONS,
        )
    return grand_canonical, canonical


# --------------------------------------------------------------------------- #
# satellite: PlanCache thread safety and byte accounting
# --------------------------------------------------------------------------- #
class TestPlanCacheConcurrency:
    def test_exactly_one_build_per_pattern_under_contention(self):
        cache = PlanCache(max_plans=64)
        patterns = [
            banded_block_pattern(6, 3, 2, seed)[1] for seed in range(4)
        ]
        sizes = [3] * 6
        groups = [[c] for c in range(6)]
        n_threads = 8
        rounds = 5
        barrier = threading.Barrier(n_threads)
        errors = []

        def hammer():
            try:
                barrier.wait()
                for _ in range(rounds):
                    for coo in patterns:
                        block_plan(coo, sizes, groups, cache=cache)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats
        assert stats["builds"] == len(patterns)
        assert stats["misses"] == len(patterns)
        assert stats["plans"] == len(patterns)
        assert stats["hits"] == n_threads * rounds * len(patterns) - len(patterns)

    def test_identical_plan_object_across_threads(self):
        cache = PlanCache()
        _, coo = banded_block_pattern(5, 2, 1, 11)
        sizes, groups = [2] * 5, [[c] for c in range(5)]
        results = [None] * 4
        barrier = threading.Barrier(4)

        def fetch(slot):
            barrier.wait()
            results[slot] = block_plan(coo, sizes, groups, cache=cache)

        threads = [
            threading.Thread(target=fetch, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(plan is results[0] for plan in results)


class TestPlanCacheMemory:
    def test_total_bytes_tracks_resident_plans(self):
        cache = PlanCache()
        assert cache.total_bytes == 0
        _, coo = banded_block_pattern(6, 3, 2, 0)
        plan = block_plan(coo, [3] * 6, [[c] for c in range(6)], cache=cache)
        assert cache.total_bytes == plan_nbytes(plan) > 0
        _, coo2 = banded_block_pattern(6, 3, 2, 1)
        plan2 = block_plan(coo2, [3] * 6, [[c] for c in range(6)], cache=cache)
        assert cache.total_bytes == plan_nbytes(plan) + plan_nbytes(plan2)

    def test_byte_budget_evicts_lru_but_keeps_newest(self):
        cache = PlanCache(max_plans=64, max_bytes=1)
        for seed in range(3):
            _, coo = banded_block_pattern(6, 3, 2, seed)
            block_plan(coo, [3] * 6, [[c] for c in range(6)], cache=cache)
        # every insertion exceeds the 1-byte budget, so only the plan just
        # built survives each time
        assert len(cache) == 1
        assert cache.stats["evictions"] == 2

    def test_evict_to_empties_cache(self):
        cache = PlanCache()
        for seed in range(3):
            _, coo = banded_block_pattern(6, 3, 2, seed)
            block_plan(coo, [3] * 6, [[c] for c in range(6)], cache=cache)
        assert len(cache) == 3
        evicted = cache.evict_to(0)
        assert evicted == 3
        assert len(cache) == 0
        assert cache.total_bytes == 0
        assert cache.stats["evictions"] == 3


# --------------------------------------------------------------------------- #
# satellite: concurrent SubmatrixContext use
# --------------------------------------------------------------------------- #
class TestConcurrentContext:
    def test_parallel_density_calls_are_bitwise_identical(
        self, water32_matrices, gap_mu, reference_results
    ):
        reference, _ = reference_results
        n_threads = 6
        results = [None] * n_threads
        errors = []
        barrier = threading.Barrier(n_threads)
        with SubmatrixContext(CONFIG) as context:

            def work(slot):
                try:
                    barrier.wait()
                    results[slot] = context.density(
                        water32_matrices.K,
                        water32_matrices.S,
                        water32_matrices.blocks,
                        mu=gap_mu,
                    )
                except Exception as error:  # pragma: no cover - diagnostic
                    errors.append(error)

            threads = [
                threading.Thread(target=work, args=(slot,))
                for slot in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            for result in results:
                assert_identical(result, reference)
            # one shared plan served every thread
            assert context.plan_cache.stats["builds"] == 1

    def test_close_while_request_in_flight_raises(self):
        context = SubmatrixContext(EngineConfig(engine="plan", backend="serial"))
        matrix = sp.csr_matrix(np.diag([2.0, 3.0, 4.0]))
        entered = threading.Event()
        release = threading.Event()

        def blocking_function(submatrix):
            entered.set()
            release.wait(10)
            return np.asarray(submatrix, dtype=float)

        worker = threading.Thread(
            target=lambda: context.apply(matrix, blocking_function)
        )
        worker.start()
        assert entered.wait(10)
        assert context.in_flight == 1
        with pytest.raises(RuntimeError, match="in flight"):
            context.close()
        assert not context.closed  # the session stays open and usable
        release.set()
        worker.join()
        assert context.in_flight == 0
        context.close()  # drained: close now succeeds
        assert context.closed
        with pytest.raises(RuntimeError, match="closed"):
            context.apply(matrix, blocking_function)


# --------------------------------------------------------------------------- #
# tentpole: the density service
# --------------------------------------------------------------------------- #
class TestServiceIdentity:
    def test_served_equals_direct_both_ensembles(
        self, water32_matrices, gap_mu, reference_results
    ):
        ref_gc, ref_canonical = reference_results
        with DensityService(config=CONFIG) as service:
            served_gc = service.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                tenant="alice",
                mu=gap_mu,
            )
            served_canonical = service.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                tenant="bob",
                n_electrons=N_ELECTRONS,
            )
        assert_identical(served_gc, ref_gc)
        assert_identical(served_canonical, ref_canonical)

    def test_direct_path_iterative_solver_equals_context(self, water32_matrices, gap_mu):
        with SubmatrixContext(CONFIG) as context:
            reference = context.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
            )
        with DensityService(config=CONFIG) as service:
            served = service.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
            )
            snapshot = service.stats()
        assert_identical(served, reference)
        # iterative kernels are not batchable: no batched request recorded
        assert snapshot["metrics"]["total"]["batched"] == 0

    def test_batched_path_identical_with_coalescing(
        self, water32_matrices, gap_mu, reference_results
    ):
        ref_gc, ref_canonical = reference_results
        with DensityService(
            config=CONFIG, batch_wait=0.25, max_batch=8
        ) as service:
            futures = []
            for index in range(4):
                futures.append(
                    service.submit(
                        water32_matrices.K,
                        water32_matrices.S,
                        water32_matrices.blocks,
                        tenant=f"tenant-{index % 2}",
                        mu=gap_mu if index % 2 == 0 else None,
                        n_electrons=None if index % 2 == 0 else N_ELECTRONS,
                    )
                )
            results = [future.result(120) for future in futures]
            snapshot = service.stats()
        for index, result in enumerate(results):
            assert_identical(result, ref_gc if index % 2 == 0 else ref_canonical)
        total = snapshot["metrics"]["total"]
        assert total["completed"] == 4
        # the coalescing window is long enough that at least one merged
        # group of size > 1 formed
        assert total["batched"] > 0
        assert total["coalesced"] > total["batched"]
        # tenants share one plan: one build, hits for every later request
        assert snapshot["plan_cache"]["builds"] == 1
        assert snapshot["plan_cache_hit_rate"] > 0.5

    def test_merged_group_dedups_identical_content(
        self, water32_matrices, gap_mu, reference_results
    ):
        """Bytewise-identical inputs in one group share the μ-independent
        work; a value-perturbed peer is not deduplicated against them."""
        from repro.serve import DensityRequest, evaluate_merged_group

        ref_gc, ref_canonical = reference_results
        perturbed_K = water32_matrices.K.copy()
        perturbed_K.data = perturbed_K.data * (1.0 + 1e-3)
        with SubmatrixContext(CONFIG) as context:
            perturbed_ref = context.density(
                perturbed_K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
            )
            requests = [
                DensityRequest(
                    tenant="alice",
                    context=context,
                    K=water32_matrices.K,
                    S=water32_matrices.S,
                    blocks=water32_matrices.blocks,
                    mu=gap_mu,
                ),
                DensityRequest(
                    tenant="bob",
                    context=context,
                    K=water32_matrices.K,
                    S=water32_matrices.S,
                    blocks=water32_matrices.blocks,
                    n_electrons=N_ELECTRONS,
                ),
                DensityRequest(
                    tenant="carol",
                    context=context,
                    K=perturbed_K,
                    S=water32_matrices.S,
                    blocks=water32_matrices.blocks,
                    mu=gap_mu,
                ),
            ]
            results = evaluate_merged_group(context, requests)
        assert_identical(results[0], ref_gc)
        assert_identical(results[1], ref_canonical)
        assert_identical(results[2], perturbed_ref)
        # first occurrence owns the work; the same-content canonical request
        # reattaches at the μ-dependent stages; different values stay apart
        assert [request.shared for request in requests] == [False, True, False]

    def test_poisoned_request_fails_alone_in_merged_group(
        self, water32_matrices, gap_mu, reference_results
    ):
        ref_gc, _ = reference_results
        bad_K = sp.csr_matrix(np.eye(5))  # wrong size for the block structure
        with DensityService(
            config=CONFIG, batch_wait=0.25, max_batch=8
        ) as service:
            good = service.submit(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
            )
            bad = service.submit(
                bad_K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
            )
            result = good.result(120)
            with pytest.raises(Exception):
                bad.result(120)
            snapshot = service.stats()
        assert_identical(result, ref_gc)
        assert snapshot["metrics"]["total"]["completed"] == 1
        assert snapshot["metrics"]["total"]["failed"] == 1
        assert snapshot["admission"]["in_flight"] == 0


class TestServiceTrajectory:
    def test_trajectory_through_service_equals_direct(
        self, water32_matrices, gap_mu
    ):
        steps = [(water32_matrices.K, water32_matrices.S)] * 2
        with SubmatrixContext(CONFIG) as context:
            reference = context.trajectory(
                steps, water32_matrices.blocks, mu=gap_mu
            )
        with DensityService(config=CONFIG) as service:
            served = service.trajectory(
                steps, water32_matrices.blocks, tenant="md", mu=gap_mu
            )
            snapshot = service.stats()
        assert len(served.results) == len(reference.results)
        for step, ref_step in zip(served.results, reference.results):
            assert_identical(step, ref_step)
        tenant = snapshot["metrics"]["tenants"]["md"]
        assert tenant["completed"] == 1
        assert tenant["bytes_out"] > 0


# --------------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------------- #
class TestAdmissionController:
    def test_counting_and_release(self):
        controller = AdmissionController(
            AdmissionPolicy(max_in_flight=3, max_in_flight_per_tenant=2)
        )
        controller.admit("a")
        controller.admit("a")
        with pytest.raises(ServiceOverloadError, match="tenant at capacity"):
            controller.admit("a")
        controller.admit("b")
        with pytest.raises(ServiceOverloadError, match="service at capacity"):
            controller.admit("c")
        controller.release("a")
        controller.admit("c")  # global slot freed
        snapshot = controller.snapshot()
        assert snapshot["in_flight"] == 3
        assert snapshot["per_tenant"] == {"a": 1, "b": 1, "c": 1}
        assert snapshot["rejections"] == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_in_flight_per_tenant=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_plan_cache_bytes=-1)


class TestServiceAdmission:
    def test_per_tenant_cap_rejects_and_recovers(self, water32_matrices, gap_mu):
        policy = AdmissionPolicy(max_in_flight=8, max_in_flight_per_tenant=2)
        with DensityService(
            config=CONFIG, policy=policy, batch_wait=0.5, max_batch=16
        ) as service:
            first = service.submit(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                tenant="greedy",
                mu=gap_mu,
            )
            second = service.submit(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                tenant="greedy",
                mu=gap_mu,
            )
            # both slots of the tenant are occupied while the batcher's
            # coalescing window is open
            with pytest.raises(ServiceOverloadError, match="tenant at capacity"):
                service.submit(
                    water32_matrices.K,
                    water32_matrices.S,
                    water32_matrices.blocks,
                    tenant="greedy",
                    mu=gap_mu,
                )
            # a different tenant is unaffected
            other = service.submit(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                tenant="patient",
                mu=gap_mu,
            )
            for future in (first, second, other):
                future.result(120)
            snapshot = service.stats()
            # slots free again after completion
            assert snapshot["admission"]["in_flight"] == 0
            assert snapshot["metrics"]["tenants"]["greedy"]["rejected"] == 1
            retry = service.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                tenant="greedy",
                mu=gap_mu,
            )
            assert retry is not None

    def test_global_cap(self, water32_matrices, gap_mu):
        policy = AdmissionPolicy(max_in_flight=2, max_in_flight_per_tenant=2)
        with DensityService(
            config=CONFIG, policy=policy, batch_wait=0.5, max_batch=16
        ) as service:
            futures = [
                service.submit(
                    water32_matrices.K,
                    water32_matrices.S,
                    water32_matrices.blocks,
                    tenant=tenant,
                    mu=gap_mu,
                )
                for tenant in ("a", "b")
            ]
            with pytest.raises(ServiceOverloadError, match="service at capacity"):
                service.submit(
                    water32_matrices.K,
                    water32_matrices.S,
                    water32_matrices.blocks,
                    tenant="c",
                    mu=gap_mu,
                )
            for future in futures:
                future.result(120)

    def test_plan_cache_byte_budget_enforced_after_requests(
        self, water32_matrices, gap_mu
    ):
        policy = AdmissionPolicy(max_plan_cache_bytes=1)
        with DensityService(config=CONFIG, policy=policy) as service:
            result = service.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
            )
            snapshot = service.stats()
        assert result is not None  # the request itself is unaffected
        assert snapshot["plan_cache_bytes"] <= 1
        assert snapshot["admission"]["memory_evictions"] >= 1


# --------------------------------------------------------------------------- #
# validation, metrics, lifecycle
# --------------------------------------------------------------------------- #
class TestServiceValidation:
    def test_unknown_solver_rejected_at_submit(self, water32_matrices, gap_mu):
        with DensityService(config=CONFIG) as service:
            with pytest.raises(UnknownKernelError):
                service.submit(
                    water32_matrices.K,
                    water32_matrices.S,
                    water32_matrices.blocks,
                    mu=gap_mu,
                    solver="definitely-not-a-kernel",
                )
            # failed validation must not leak admission slots
            assert service.stats()["admission"]["in_flight"] == 0

    def test_ensemble_validation(self, water32_matrices, gap_mu):
        with DensityService(config=CONFIG) as service:
            with pytest.raises(ValueError, match="exactly one"):
                service.submit(
                    water32_matrices.K,
                    water32_matrices.S,
                    water32_matrices.blocks,
                )
            with pytest.raises(ValueError, match="exactly one"):
                service.submit(
                    water32_matrices.K,
                    water32_matrices.S,
                    water32_matrices.blocks,
                    mu=gap_mu,
                    n_electrons=N_ELECTRONS,
                )
            with pytest.raises(ValueError, match="eigendecomposition"):
                service.submit(
                    water32_matrices.K,
                    water32_matrices.S,
                    water32_matrices.blocks,
                    n_electrons=N_ELECTRONS,
                    solver="newton_schulz",
                )
            assert service.stats()["admission"]["in_flight"] == 0


class TestServiceMetrics:
    def test_counters_and_percentiles(self):
        metrics = ServiceMetrics(latency_window=8)
        for latency in (0.1, 0.2, 0.3, 0.4):
            metrics.record_admitted("t")
            metrics.record_completed(
                "t", latency, batched=True, n_coalesced=2, bytes_out=100,
                cache_hits=1,
            )
        metrics.record_admitted("t")
        metrics.record_failed("t", 0.5)
        metrics.record_rejected("t")
        snapshot = metrics.snapshot()
        tenant = snapshot["tenants"]["t"]
        assert tenant["admitted"] == 5
        assert tenant["completed"] == 4
        assert tenant["failed"] == 1
        assert tenant["rejected"] == 1
        assert tenant["batched"] == 4
        assert tenant["coalesced"] == 8
        assert tenant["bytes_out"] == 400
        assert tenant["cache_hit_rate"] == 1.0
        assert tenant["p50_latency"] == pytest.approx(0.3)
        assert tenant["p99_latency"] <= 0.5
        assert snapshot["total"]["completed"] == 4
        percentiles = metrics.percentiles("t")
        assert percentiles[50.0] == pytest.approx(0.3)

    def test_latency_window_is_bounded(self):
        metrics = ServiceMetrics(latency_window=4)
        for index in range(100):
            metrics.record_completed("t", float(index))
        # only the last 4 latencies survive in the window
        assert metrics.percentiles("t")[50.0] >= 96.0

    def test_empty_snapshot(self):
        metrics = ServiceMetrics()
        snapshot = metrics.snapshot()
        assert snapshot["tenants"] == {}
        assert snapshot["total"]["cache_hit_rate"] == 0.0
        assert metrics.percentiles()[99.0] == 0.0


class TestServiceLifecycle:
    def test_close_is_idempotent_and_rejects_new_work(
        self, water32_matrices, gap_mu
    ):
        service = DensityService(config=CONFIG)
        result = service.density(
            water32_matrices.K,
            water32_matrices.S,
            water32_matrices.blocks,
            mu=gap_mu,
        )
        assert result is not None
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
            )

    def test_context_pool_reuses_and_bounds_contexts(
        self, water32_matrices, gap_mu
    ):
        with DensityService(config=CONFIG, max_contexts=1) as service:
            service.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
            )
            assert service.stats()["contexts"] == 1
            # a different configuration gets its own context; the pool
            # stays within its bound by closing the idle LRU entry
            service.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                config=EngineConfig(engine="plan", backend="serial"),
            )
            snapshot = service.stats()
            assert snapshot["contexts"] == 1
            # both configurations hit the same shared plan cache
            assert snapshot["plan_cache"]["builds"] == 1
            assert snapshot["plan_cache"]["hits"] >= 1


# --------------------------------------------------------------------------- #
# satellite: prefetch backend configuration (PR-7 follow-on)
# --------------------------------------------------------------------------- #
class TestPrefetchBackend:
    def test_invalid_prefetch_backend_rejected(self):
        with pytest.raises(ValueError, match="prefetch_backend"):
            EngineConfig(prefetch_backend="carrier-pigeon")

    @pytest.mark.parametrize("prefetch_backend", ["thread", "process"])
    def test_overlap_trajectory_bitwise_identical_per_backend(
        self, water32_matrices, gap_mu, prefetch_backend
    ):
        steps = [(water32_matrices.K, water32_matrices.S)] * 2
        with SubmatrixContext(CONFIG) as context:
            reference = context.trajectory(
                steps, water32_matrices.blocks, mu=gap_mu
            )
        overlapped = CONFIG.replace(
            overlap=True, prefetch_backend=prefetch_backend
        )
        with SubmatrixContext(overlapped) as context:
            result = context.trajectory(
                steps, water32_matrices.blocks, mu=gap_mu
            )
        for step, ref_step in zip(result.results, reference.results):
            assert_identical(step, ref_step)
