"""Tests for the unified session API: EngineConfig, kernel registry, context.

Covers the acceptance criteria of the API consolidation:

* ``SubmatrixContext.apply`` / ``.density`` are bitwise identical to the
  legacy ``SubmatrixMethod`` / ``SubmatrixDFTSolver`` paths (including a
  hypothesis property test over random sparse symmetric matrices);
* one plan build and one worker pool across N repeated ``context.apply``
  calls (plan-cache statistics and executor reuse through the session);
* rank-sharded μ-bisection matches the single-process solver bitwise for
  ranks {1, 2, 4};
* the kernel registry resolves names everywhere and produces one unified
  lookup error with a "did you mean" suggestion.

This file is part of the strict CI pass (``-W error::DeprecationWarning``):
nothing in here may touch the deprecated legacy surface.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro
from repro.api import (
    EngineConfig,
    SubmatrixContext,
    UnknownKernelError,
    available_kernels,
    get_kernel,
    register_callable,
    resolve_kernel,
)
from repro.chem import orthogonalized_ks
from repro.core import SubmatrixDFTSolver, SubmatrixMethod
from repro.dbcsr.convert import block_matrix_from_csr, block_matrix_to_dense
from repro.signfn import (
    sign_via_eigendecomposition,
    sign_via_eigendecomposition_batched,
)

EPS = 1e-5


def orthogonalized_block(pair, eps=EPS):
    k_ortho, _ = orthogonalized_ks(pair.K, pair.S, eps_filter=eps)
    blocked = block_matrix_from_csr(k_ortho, pair.blocks.block_sizes, threshold=0.0)
    return k_ortho, blocked


# --------------------------------------------------------------------------- #
# EngineConfig
# --------------------------------------------------------------------------- #
class TestEngineConfig:
    def test_defaults_validate(self):
        config = EngineConfig()
        assert config.validate() is config
        assert config.engine == "plan" and config.uses_plan

    @pytest.mark.parametrize(
        "field, value",
        [
            ("engine", "warp"),
            ("backend", "gpu"),
            ("balance", "magic"),
            ("bucket_pad", 0),
            ("bucket_pad", "sometimes"),
            ("n_ranks", 0),
            ("eps_filter", -1.0),
            ("temperature", -1.0),
            ("spin_degeneracy", 0.0),
            ("plan_cache_size", 0),
            ("max_workers", 0),
            ("flop_constant", 0.0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            EngineConfig(**{field: value})

    def test_replace_revalidates(self):
        config = EngineConfig()
        assert config.replace(engine="batched").engine == "batched"
        with pytest.raises(ValueError):
            config.replace(engine="warp")

    def test_resolved_fills_workers(self):
        resolved = EngineConfig().resolved()
        assert resolved.max_workers >= 1
        pinned = EngineConfig(max_workers=3)
        assert pinned.resolved() is pinned

    def test_config_is_immutable(self):
        with pytest.raises(Exception):
            EngineConfig().engine = "naive"


# --------------------------------------------------------------------------- #
# kernel registry
# --------------------------------------------------------------------------- #
class TestKernelRegistry:
    def test_builtins_registered(self):
        names = available_kernels()
        for name in ("eigen", "newton_schulz", "pade", "occupation"):
            assert name in names

    def test_unknown_kernel_has_suggestion(self):
        with pytest.raises(UnknownKernelError) as err:
            get_kernel("eigne")
        assert "did you mean 'eigen'" in str(err.value)
        # the unified error satisfies both legacy exception contracts
        assert isinstance(err.value, ValueError)
        assert isinstance(err.value, TypeError)

    def test_unified_lookup_error_everywhere(self):
        # solver strings (sign_dft), method specs (method) and session
        # kernels all fail through the same registry lookup
        with pytest.raises(UnknownKernelError):
            SubmatrixDFTSolver(solver="eigne", config=EngineConfig())
        with pytest.raises(UnknownKernelError):
            SubmatrixMethod("eigne")
        with pytest.raises(UnknownKernelError):
            SubmatrixContext().apply(sp.eye(4, format="csr"), "eigne")

    def test_bind_parameters(self):
        bound = resolve_kernel("eigen", mu=0.25)
        a = np.diag([-1.0, 0.0, 1.0])
        expected = sign_via_eigendecomposition(a, mu=0.25)
        assert np.array_equal(bound.function(a), expected)
        assert bound.batch_function is not None

    def test_callable_spec_passthrough(self):
        fn = lambda a: a @ a  # noqa: E731
        bound = resolve_kernel(fn)
        assert bound.function is fn
        with pytest.raises(TypeError):
            resolve_kernel(fn, mu=0.5)

    def test_register_callable_and_apply(self):
        name = "test-square-kernel"
        if name not in available_kernels():
            register_callable(name, lambda a: a @ a)
        matrix = sp.random(20, 20, density=0.2, random_state=7, format="csr")
        matrix = matrix + matrix.T
        ctx = SubmatrixContext()
        via_name = ctx.apply(matrix, name)
        via_callable = ctx.apply(matrix, lambda a: a @ a)
        assert np.array_equal(
            via_name.result.toarray(), via_callable.result.toarray()
        )

    def test_elementwise_kernel_rejects_bucket_padding(self):
        name = "test-elementwise-kernel"
        if name not in available_kernels():
            register_callable(name, np.tanh)
        matrix = sp.random(16, 16, density=0.3, random_state=3, format="csr")
        matrix = matrix + matrix.T
        ctx = SubmatrixContext(EngineConfig(engine="batched", bucket_pad=8))
        with pytest.raises(ValueError, match="bucket padding"):
            ctx.apply(matrix, name)

    def test_kernel_metadata(self):
        # iterative vs spectral, and the μ-shifted padding anchor
        assert get_kernel("newton_schulz").iterative
        assert get_kernel("pade").iterative
        assert not get_kernel("eigen").iterative
        assert not get_kernel("occupation").iterative
        assert get_kernel("newton_schulz").padding_value(0.25) == 1.25
        assert get_kernel("eigen").padding_value() == 1.0

    def test_top_level_exports(self):
        assert repro.EngineConfig is EngineConfig
        assert repro.SubmatrixContext is SubmatrixContext
        assert "SubmatrixContext" in repro.__all__
        assert "EngineConfig" in repro.__all__
        assert "TrajectoryResult" in repro.__all__
        assert "TrajectoryStats" in repro.api.__all__
        assert "run_trajectory" in repro.api.__all__


# --------------------------------------------------------------------------- #
# context.apply equivalence with the legacy paths
# --------------------------------------------------------------------------- #
class TestApplyEquivalence:
    def test_blockwise_matches_legacy_bitwise(self, water32_matrices, gap_mu):
        _, blocked = orthogonalized_block(water32_matrices)
        ctx = SubmatrixContext(EngineConfig(engine="batched"))
        new = ctx.apply(blocked, "eigen", mu=gap_mu)
        legacy = SubmatrixMethod(
            lambda a: sign_via_eigendecomposition(a, gap_mu),
            batch_function=lambda s: sign_via_eigendecomposition_batched(s, gap_mu),
            engine="batched",
        ).apply_blockwise(blocked)
        assert np.array_equal(
            block_matrix_to_dense(new.result), block_matrix_to_dense(legacy.result)
        )
        assert new.submatrix_dimensions == legacy.submatrix_dimensions

    def test_elementwise_matches_legacy_bitwise(self, water32_matrices, gap_mu):
        k_ortho, _ = orthogonalized_block(water32_matrices)
        for engine in ("naive", "plan", "batched"):
            ctx = SubmatrixContext(EngineConfig(engine=engine))
            new = ctx.apply(k_ortho, "eigen", mu=gap_mu)
            legacy = SubmatrixMethod(
                lambda a: sign_via_eigendecomposition(a, gap_mu), engine=engine
            ).apply_elementwise(k_ortho)
            assert np.array_equal(
                new.result.toarray(), legacy.result.toarray()
            ), engine

    def test_apply_dispatch_rejects_dense(self):
        with pytest.raises(TypeError):
            SubmatrixContext().apply(np.eye(4), "eigen")

    @settings(max_examples=25, deadline=None)
    @given(
        dense=arrays(
            np.float64,
            st.integers(4, 16).map(lambda n: (n, n)),
            elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
        ),
        seed=st.integers(0, 2**16),
    )
    def test_property_context_matches_legacy(self, dense, seed):
        """Bitwise identity on random sparse symmetric matrices."""
        rng = np.random.default_rng(seed)
        mask = rng.random(dense.shape) < 0.4
        mask = mask | mask.T
        np.fill_diagonal(mask, True)
        matrix = sp.csr_matrix(np.where(mask, (dense + dense.T) / 2, 0.0))
        ctx = SubmatrixContext(EngineConfig(engine="plan"))
        new = ctx.apply(matrix, "eigen")
        legacy = SubmatrixMethod(sign_via_eigendecomposition, engine="naive")
        reference = legacy.apply_elementwise(matrix)
        assert np.array_equal(new.result.toarray(), reference.result.toarray())


# --------------------------------------------------------------------------- #
# session resource reuse
# --------------------------------------------------------------------------- #
class TestSessionReuse:
    def test_one_plan_build_across_repeated_apply(self, water32_matrices, gap_mu):
        _, blocked = orthogonalized_block(water32_matrices)
        ctx = SubmatrixContext(EngineConfig(engine="batched"))
        n_calls = 4
        for _ in range(n_calls):
            ctx.apply(blocked, "eigen", mu=gap_mu)
        stats = ctx.stats()["plan_cache"]
        assert stats["misses"] == 1  # one plan build...
        assert stats["hits"] == n_calls - 1  # ...shared by every later call
        assert stats["plans"] == 1

    def test_one_pool_across_repeated_apply(self, water32_matrices, gap_mu):
        _, blocked = orthogonalized_block(water32_matrices)
        ctx = SubmatrixContext(
            EngineConfig(engine="batched", backend="thread", max_workers=2)
        )
        first = ctx.apply(blocked, "eigen", mu=gap_mu)
        pool = ctx.executor
        assert pool is not None
        for _ in range(3):
            again = ctx.apply(blocked, "eigen", mu=gap_mu)
            assert ctx.executor is pool
            assert np.array_equal(
                block_matrix_to_dense(again.result),
                block_matrix_to_dense(first.result),
            )
        assert ctx.stats()["executors_created"] == 1
        ctx.close()

    def test_serial_context_creates_no_pool(self, water32_matrices, gap_mu):
        _, blocked = orthogonalized_block(water32_matrices)
        ctx = SubmatrixContext(EngineConfig(engine="batched"))
        ctx.apply(blocked, "eigen", mu=gap_mu)
        assert ctx.executor is None
        assert ctx.stats()["executors_created"] == 0

    def test_closed_context_rejects_work(self):
        ctx = SubmatrixContext(EngineConfig(backend="thread", max_workers=2))
        assert ctx.executor is not None
        ctx.close()
        with pytest.raises(RuntimeError):
            _ = ctx.executor
        ctx.close()  # idempotent

    def test_context_manager_closes(self):
        with SubmatrixContext(EngineConfig(backend="thread", max_workers=2)) as ctx:
            assert ctx.executor is not None
        with pytest.raises(RuntimeError):
            _ = ctx.executor


# --------------------------------------------------------------------------- #
# session lifecycle: close is idempotent and a closed context is unusable
# --------------------------------------------------------------------------- #
class TestSessionLifecycle:
    def test_double_close_is_idempotent(self):
        ctx = SubmatrixContext(EngineConfig(backend="thread", max_workers=2))
        assert not ctx.closed
        assert ctx.executor is not None
        ctx.close()
        ctx.close()
        assert ctx.closed

    def test_close_without_executor(self):
        ctx = SubmatrixContext(EngineConfig())
        ctx.close()
        ctx.close()
        assert ctx.closed

    def test_close_after_finalizer_fired(self):
        # the weakref.finalize shutdown path (gc of an abandoned session)
        # may run before an explicit close(); close() must stay silent
        ctx = SubmatrixContext(EngineConfig(backend="thread", max_workers=2))
        assert ctx.executor is not None
        ctx._finalizer()
        ctx.close()
        ctx.close()
        assert ctx.closed

    def test_closed_context_raises_runtime_error_everywhere(
        self, water32_matrices, gap_mu
    ):
        pair = water32_matrices
        matrix = sp.eye(4, format="csr")
        # a *serial* context never creates an executor, so without an
        # explicit guard reuse would fail late (or not at all) instead of
        # with a clear RuntimeError
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        ctx.close()
        with pytest.raises(RuntimeError, match="closed"):
            ctx.apply(matrix, "eigen")
        with pytest.raises(RuntimeError, match="closed"):
            ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu)
        with pytest.raises(RuntimeError, match="closed"):
            ctx.trajectory([(pair.K, pair.S)], pair.blocks, mu=gap_mu)
        with pytest.raises(RuntimeError, match="closed"):
            ctx.distributed(2)
        with pytest.raises(RuntimeError, match="closed"):
            ctx.pipeline(matrix, [1, 1, 1, 1], n_ranks=2)

    def test_closed_context_rejects_distributed_run_on_process_config(
        self, water32_matrices, gap_mu
    ):
        # the process-backend distributed path never touches the session
        # executor, so before the explicit guard it silently kept working
        # on a closed context
        _, blocked = orthogonalized_block(water32_matrices)
        ctx = SubmatrixContext(
            EngineConfig(engine="batched", backend="process", max_workers=2)
        )
        session = ctx.distributed(2)
        ctx.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run(blocked, "eigen", mu=gap_mu)

    def test_facade_close_is_idempotent_after_finalize(self):
        solver = SubmatrixDFTSolver(
            config=EngineConfig(backend="thread", max_workers=2)
        )
        assert solver.context.executor is not None
        solver.context._finalizer()
        solver.close()
        solver.close()
        with pytest.raises(RuntimeError, match="closed"):
            solver.compute_density(None, None, None, mu=0.0)


# --------------------------------------------------------------------------- #
# temperature handling of the occupation kernel
# --------------------------------------------------------------------------- #
class TestOccupationTemperature:
    def test_zero_temperature_selects_extended_signum(
        self, water32_matrices, gap_mu
    ):
        """T = 0 must mean the extended-signum limit, never a 1/(kB·T)."""
        pair = water32_matrices
        config = EngineConfig(engine="batched", eps_filter=EPS, temperature=0.0)
        with np.errstate(divide="raise", invalid="raise", over="raise"):
            occupation = SubmatrixContext(config).density(
                pair.K, pair.S, pair.blocks, mu=gap_mu, solver="occupation"
            )
            eigen = SubmatrixContext(config).density(
                pair.K, pair.S, pair.blocks, mu=gap_mu, solver="eigen"
            )
        assert np.array_equal(occupation.density_ao, eigen.density_ao)

    def test_tiny_temperature_is_continuous_with_zero(
        self, water32_matrices, gap_mu
    ):
        """Sub-resolution temperatures behave exactly like T = 0, and small
        finite temperatures approach the T = 0 result smoothly."""
        pair = water32_matrices

        def density_at(temperature):
            config = EngineConfig(
                engine="batched", eps_filter=EPS, temperature=temperature
            )
            with np.errstate(divide="raise", invalid="raise", over="raise"):
                return SubmatrixContext(config).density(
                    pair.K, pair.S, pair.blocks, mu=gap_mu, solver="occupation"
                )

        cold = density_at(0.0)
        # below the resolution threshold: bitwise the extended-signum limit
        assert np.array_equal(density_at(1e-12).density_ao, cold.density_ao)
        # small finite temperatures: continuous approach to the limit
        for temperature, tolerance in ((1e-6, 1e-12), (1.0, 1e-8)):
            warm = density_at(temperature)
            assert np.allclose(
                warm.density_ao, cold.density_ao, atol=tolerance
            ), temperature

    def test_zero_temperature_canonical_bisection(self, water32_matrices):
        """The T = 0 bisection (Heaviside counting) must not divide by zero."""
        pair = water32_matrices
        config = EngineConfig(engine="batched", eps_filter=EPS, temperature=0.0)
        with np.errstate(divide="raise", invalid="raise", over="raise"):
            result = SubmatrixContext(config).density(
                pair.K, pair.S, pair.blocks, n_electrons=256.0,
                solver="occupation",
            )
        assert result.n_electrons == pytest.approx(256.0, abs=1e-6)


# --------------------------------------------------------------------------- #
# density through the session, including rank sharding
# --------------------------------------------------------------------------- #
class TestDensitySession:
    def test_density_matches_legacy_solver_bitwise(self, water32_matrices, gap_mu):
        pair = water32_matrices
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        new = ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu)
        legacy = SubmatrixDFTSolver(
            config=EngineConfig(engine="batched", eps_filter=EPS)
        ).compute_density(pair.K, pair.S, pair.blocks, mu=gap_mu)
        assert np.array_equal(new.density_ao, legacy.density_ao)
        assert np.array_equal(
            new.density_ortho.toarray(), legacy.density_ortho.toarray()
        )
        assert new.mu == legacy.mu
        assert new.band_energy == legacy.band_energy

    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_sharded_mu_bisection_bitwise(self, water32_matrices, ranks):
        """Acceptance: sharded canonical search ≡ single-process, ranks {1,2,4}."""
        pair = water32_matrices
        n_electrons = 8.0 * 32
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        single = ctx.density(pair.K, pair.S, pair.blocks, n_electrons=n_electrons)
        sharded = ctx.density(
            pair.K, pair.S, pair.blocks, n_electrons=n_electrons, ranks=ranks
        )
        assert sharded.mu == single.mu  # bitwise: the bisection iterates match
        assert sharded.mu_iterations == single.mu_iterations
        assert np.array_equal(sharded.density_ao, single.density_ao)
        assert np.array_equal(
            sharded.density_ortho.toarray(), single.density_ortho.toarray()
        )
        assert sharded.n_ranks == ranks

    @pytest.mark.parametrize("ranks", [2, 4])
    def test_sharded_grand_canonical_bitwise(self, water32_matrices, gap_mu, ranks):
        pair = water32_matrices
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        single = ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu)
        sharded = ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu, ranks=ranks)
        assert np.array_equal(sharded.density_ao, single.density_ao)

    def test_sharded_solver_via_config_ranks(self, water32_matrices):
        """SubmatrixDFTSolver routes the sharded search through its config."""
        pair = water32_matrices
        n_electrons = 8.0 * 32
        sharded = SubmatrixDFTSolver(
            config=EngineConfig(engine="batched", eps_filter=EPS, n_ranks=4)
        ).compute_density(pair.K, pair.S, pair.blocks, n_electrons=n_electrons)
        single = SubmatrixDFTSolver(
            config=EngineConfig(engine="batched", eps_filter=EPS)
        ).compute_density(pair.K, pair.S, pair.blocks, n_electrons=n_electrons)
        assert sharded.n_ranks == 4
        assert sharded.mu == single.mu
        assert np.array_equal(sharded.density_ao, single.density_ao)

    def test_sharded_requires_plan_engine(self, water32_matrices, gap_mu):
        pair = water32_matrices
        naive = SubmatrixContext(EngineConfig(engine="naive", eps_filter=EPS))
        with pytest.raises(ValueError, match="plan engine"):
            naive.density(pair.K, pair.S, pair.blocks, mu=gap_mu, ranks=2)

    def test_canonical_still_requires_eigen_cache(self, water32_matrices):
        # the μ-bisection needs the cached spectra; iterative kernels stay
        # grand-canonical only, sharded or not
        pair = water32_matrices
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        with pytest.raises(ValueError, match="eigendecomposition"):
            ctx.density(
                pair.K, pair.S, pair.blocks, n_electrons=256.0,
                solver="newton_schulz", ranks=2,
            )

    @pytest.mark.parametrize("solver", ["newton_schulz", "pade"])
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_sharded_iterative_solver_bitwise(
        self, water32_matrices, gap_mu, solver, ranks
    ):
        """Acceptance: sharded Newton–Schulz/Padé ≡ single-process, ranks {1,2,4}."""
        pair = water32_matrices
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        single = ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu, solver=solver)
        sharded = ctx.density(
            pair.K, pair.S, pair.blocks, mu=gap_mu, solver=solver, ranks=ranks
        )
        assert np.array_equal(sharded.density_ao, single.density_ao)
        assert np.array_equal(
            sharded.density_ortho.toarray(), single.density_ortho.toarray()
        )
        assert sharded.n_ranks == ranks
        # the sharded run reports its initialization-exchange volumes
        assert sharded.block_fetch_bytes is not None
        assert sharded.segment_fetch_bytes is not None
        assert sharded.segment_fetch_bytes <= sharded.block_fetch_bytes
        assert single.segment_fetch_bytes is None

    def test_sharded_iterative_with_bucket_padding_bitwise(
        self, water32_matrices, gap_mu
    ):
        """Padded buckets use the kernel's pad-value metadata on every rank."""
        pair = water32_matrices
        config = EngineConfig(engine="batched", eps_filter=EPS, bucket_pad=8)
        ctx = SubmatrixContext(config)
        single = ctx.density(
            pair.K, pair.S, pair.blocks, mu=gap_mu, solver="newton_schulz"
        )
        sharded = ctx.density(
            pair.K, pair.S, pair.blocks, mu=gap_mu, solver="newton_schulz", ranks=2
        )
        assert np.array_equal(sharded.density_ao, single.density_ao)

    def test_solver_config_not_clobbered_by_defaults(self):
        """A supplied config keeps its eps_filter/temperature/spin_degeneracy."""
        solver = SubmatrixDFTSolver(
            config=EngineConfig(eps_filter=1e-6, temperature=300.0)
        )
        assert solver.eps_filter == 1e-6
        assert solver.temperature == 300.0
        explicit = SubmatrixDFTSolver(
            eps_filter=1e-7, config=EngineConfig(eps_filter=1e-6)
        )
        assert explicit.eps_filter == 1e-7  # explicit kwargs still win

    def test_method_explicit_default_kwarg_overrides_config(self):
        method = SubmatrixMethod(
            lambda a: a, engine="plan", config=EngineConfig(engine="naive")
        )
        assert method.engine == "plan"
        untouched = SubmatrixMethod(lambda a: a, config=EngineConfig(engine="naive"))
        assert untouched.engine == "naive"

    def test_facades_close_their_session(self):
        with SubmatrixMethod(
            lambda a: a, config=EngineConfig(backend="thread", max_workers=2)
        ) as method:
            assert method.context.executor is not None
        with pytest.raises(RuntimeError):
            _ = method.context.executor
        solver = SubmatrixDFTSolver(config=EngineConfig())
        solver.close()  # idempotent, also for serial configs
        solver.close()

    def test_registered_kernels_work_as_solver(self, water32_matrices, gap_mu):
        """Any registered matrix-function kernel is a valid solver string."""
        pair = water32_matrices
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        eigen = ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu)
        # a supports_mu_bisection kernel runs through the eigen cache
        occupation = ctx.density(
            pair.K, pair.S, pair.blocks, mu=gap_mu, solver="occupation"
        )
        assert np.array_equal(occupation.density_ao, eigen.density_ao)
        # a custom registered sign kernel runs through the iterative path
        name = "test-eigen-sign-kernel"
        if name not in available_kernels():
            register_callable(
                name, sign_via_eigendecomposition, matrix_function=True
            )
        custom = ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu, solver=name)
        assert np.allclose(custom.density_ao, eigen.density_ao, atol=1e-10)

    def test_session_grouping_forwarded_to_density(self, water32_matrices):
        from repro.core import group_columns_greedy_chunks

        pair = water32_matrices
        grouping = group_columns_greedy_chunks(32, 4)
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        direct = ctx.density(
            pair.K, pair.S, pair.blocks, n_electrons=256.0,
            grouping=grouping, ranks=2,
        )
        via_session = ctx.distributed(2, grouping=grouping).density(
            pair.K, pair.S, pair.blocks, n_electrons=256.0
        )
        assert via_session.n_submatrices == grouping.n_submatrices
        assert np.array_equal(via_session.density_ao, direct.density_ao)

    def test_density_requires_exactly_one_ensemble(self, water32_matrices):
        pair = water32_matrices
        ctx = SubmatrixContext()
        with pytest.raises(ValueError):
            ctx.density(pair.K, pair.S, pair.blocks)
        with pytest.raises(ValueError):
            ctx.density(pair.K, pair.S, pair.blocks, mu=0.0, n_electrons=1.0)


# --------------------------------------------------------------------------- #
# distributed sessions
# --------------------------------------------------------------------------- #
class TestDistributedSession:
    def test_run_matches_batched_engine_bitwise(self, water32_matrices, gap_mu):
        _, blocked = orthogonalized_block(water32_matrices)
        ctx = SubmatrixContext(EngineConfig(engine="batched"))
        reference = ctx.apply(blocked, "eigen", mu=gap_mu)
        run = ctx.distributed(4).run(blocked, "eigen", mu=gap_mu)
        assert np.array_equal(
            block_matrix_to_dense(run.result),
            block_matrix_to_dense(reference.result),
        )
        assert run.n_ranks == 4
        assert run.traffic.total_flops() > 0

    def test_pipeline_cached_across_runs(self, water32_matrices, gap_mu):
        _, blocked = orthogonalized_block(water32_matrices)
        ctx = SubmatrixContext(EngineConfig(engine="batched"))
        session = ctx.distributed(2)
        session.run(blocked, "eigen", mu=gap_mu)
        assert ctx.stats()["pipelines_built"] == 1
        session.run(blocked, "eigen", mu=gap_mu)
        ctx.distributed(2).run(blocked, "eigen", mu=gap_mu)
        assert ctx.stats()["pipelines_built"] == 1  # same pattern, same ranks
        ctx.distributed(4).run(blocked, "eigen", mu=gap_mu)
        assert ctx.stats()["pipelines_built"] == 2

    def test_cost_through_session(self, water32_matrices):
        from repro.dbcsr import CooBlockList
        from repro.parallel import MachineModel

        _, blocked = orthogonalized_block(water32_matrices)
        coo = CooBlockList.from_block_matrix(blocked)
        cost = SubmatrixContext().distributed(4).cost(
            coo, blocked.col_block_sizes, MachineModel()
        )
        assert cost.n_ranks == 4
        assert cost.simulated_seconds > 0

    def test_invalid_rank_count_rejected(self):
        with pytest.raises(ValueError):
            SubmatrixContext().distributed(0)
