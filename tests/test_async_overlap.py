"""Tests for the asynchronous overlapped pipeline (PR 7).

Covers the acceptance criteria of the async-overlap tentpole:

* property test: ``pipeline.run(..., overlap=True)`` — the arrival-driven
  :class:`~repro.core.overlap.OverlappedExchange` engine — is **bitwise
  identical** to the bulk-synchronous path for ranks {1, 2, 4, 8} over
  random patterns and seeds, on both the serial and thread backends and
  through ``run_stacks``;
* faults mid-overlap: injected rank crashes and message loss recover
  bitwise through the resilience layer, and a persistent failure degrades
  to the single-process engine (``result.overlap is None``) bitwise;
* incremental transfer planning: ``pipeline.patch`` diffs required-segment
  sets against the previous :class:`TransferPlan` and the patched plan is
  bitwise identical to a full replan, with a sane :class:`TransferDelta`;
* the ``SimComm`` mailbox stays exact under out-of-order consumption
  (non-blocking receives completed by modeled arrival, not posting order);
* trajectory-level overlap: step prefetch is bitwise identical to the
  synchronous driver, checkpoint/resume works mid-overlap, and exceptions
  from the steps callback surface at the same observable point;
* the satellite fixes: adaptive warm-start half-widths from μ-drift
  history and ``PreparedStep`` reuse/fallback in ``compute_density``.

This file is part of the strict CI pass (``-W error::DeprecationWarning``).
"""

import numpy as np
import pytest

from test_incremental_replan import (
    drift_pattern,
    matrix_for_pattern,
    poly,
    random_pattern,
)

from repro.api import (
    EngineConfig,
    ResiliencePolicy,
    SubmatrixContext,
    TrajectoryCheckpoint,
)
from repro.api.density import compute_density, prepare_step
from repro.api.trajectory import WARM_START_HALF_WIDTH, adaptive_half_width
from repro.core.runner import DistributedSubmatrixPipeline
from repro.core.transfers import plan_transfers
from repro.dbcsr.convert import block_matrix_to_csr
from repro.parallel import MachineModel
from repro.parallel.comm import CommRecvError, SimComm
from repro.parallel.faults import FaultInjector, FaultPlan, FaultSpec

EPS = 1e-5
N_ELECTRONS = 8.0 * 32

#: Small enough to split every synthetic pattern's buckets, so the overlap
#: engine actually interleaves arrivals with compute (uniform dimensions
#: otherwise collapse a shard into a single bucket).
SMALL_BATCH = 256


def _random_case(seed, n_min=8, n_max=18):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(n_min, n_max))
    sizes = rng.integers(2, 6, n)
    coo = random_pattern(n, 0.25, rng)
    matrix = matrix_for_pattern(coo, sizes, rng)
    return coo, sizes, matrix


def _dense(result):
    return block_matrix_to_csr(result.result).toarray()


# --------------------------------------------------------------------------- #
# tentpole: arrival-driven execution is bitwise identical to the sync path
# --------------------------------------------------------------------------- #
class TestOverlapBitwise:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_overlap_run_bitwise_identical(self, ranks, seed):
        """Property: overlapped run ≡ synchronous run, ranks {1,2,4,8}."""
        coo, sizes, matrix = _random_case(10 * ranks + seed)
        sync = DistributedSubmatrixPipeline(coo, sizes, ranks).run(
            matrix, function=poly, max_batch_elements=SMALL_BATCH
        )
        overlapped = DistributedSubmatrixPipeline(coo, sizes, ranks).run(
            matrix, function=poly, max_batch_elements=SMALL_BATCH, overlap=True
        )
        assert np.array_equal(_dense(overlapped), _dense(sync))
        report = overlapped.overlap
        assert report is not None
        assert sync.overlap is None
        assert 0.0 <= report.exchange_hidden_fraction <= 1.0
        assert report.modeled_async_seconds <= report.modeled_sync_seconds
        assert report.overlap_seconds >= 0.0
        assert len(report.per_rank) == ranks

    def test_single_rank_has_no_exchange_to_hide(self):
        coo, sizes, matrix = _random_case(7)
        result = DistributedSubmatrixPipeline(coo, sizes, 1).run(
            matrix, function=poly, overlap=True
        )
        report = result.overlap
        # self-sends are free: nothing inbound, the fraction is 1.0 by
        # convention and no overlap is claimed
        assert report.max_exchange_seconds == 0.0
        assert report.exchange_hidden_fraction == 1.0
        assert report.overlap_seconds == 0.0

    def test_multi_bucket_shards_hide_exchange(self):
        """With split buckets some exchange must actually hide."""
        rng = np.random.default_rng(42)
        n = 24
        sizes = rng.integers(3, 6, n)
        coo = random_pattern(n, 0.3, rng)
        matrix = matrix_for_pattern(coo, sizes, rng)
        result = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix, function=poly, max_batch_elements=SMALL_BATCH, overlap=True
        )
        assert result.overlap.exchange_hidden_fraction > 0.0
        assert result.overlap.overlap_seconds > 0.0

    def test_thread_backend_bitwise(self):
        coo, sizes, matrix = _random_case(11)
        sync = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix, function=poly, max_batch_elements=SMALL_BATCH
        )
        overlapped = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix,
            function=poly,
            max_batch_elements=SMALL_BATCH,
            overlap=True,
            backend="thread",
        )
        assert np.array_equal(_dense(overlapped), _dense(sync))
        assert overlapped.overlap is not None

    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_run_stacks_overlap_bitwise(self, ranks):
        coo, sizes, matrix = _random_case(20 + ranks)
        pipeline_sync = DistributedSubmatrixPipeline(coo, sizes, ranks)
        pipeline_async = DistributedSubmatrixPipeline(coo, sizes, ranks)

        def solve(stack):
            return np.stack([poly(s) for s in stack])

        # extraction plans and shards are built lazily on the first run()
        pipeline_sync.run(matrix, function=poly)
        pipeline_async.run(matrix, function=poly)
        packed = pipeline_sync.plan.pack(matrix)
        out_sync = pipeline_sync.plan.new_output()
        out_async = pipeline_async.plan.new_output()
        pipeline_sync.run_stacks(
            packed, solve, out_sync, max_batch_elements=SMALL_BATCH
        )
        pipeline_async.run_stacks(
            packed, solve, out_async, max_batch_elements=SMALL_BATCH, overlap=True
        )
        assert np.array_equal(out_async, out_sync)
        assert pipeline_sync.last_overlap is None
        assert pipeline_async.last_overlap is not None

    def test_custom_machine_model_changes_accounting_not_results(self):
        coo, sizes, matrix = _random_case(31)
        slow_network = MachineModel(
            name="slow-net", network_bandwidth=1.0e6, network_latency=1.0e-3
        )
        default = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix, function=poly, max_batch_elements=SMALL_BATCH, overlap=True
        )
        slow = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix,
            function=poly,
            max_batch_elements=SMALL_BATCH,
            overlap=True,
            machine=slow_network,
        )
        assert np.array_equal(_dense(slow), _dense(default))
        assert slow.overlap.max_exchange_seconds > default.overlap.max_exchange_seconds


# --------------------------------------------------------------------------- #
# faults mid-overlap: retry, message loss, graceful degradation
# --------------------------------------------------------------------------- #
class TestOverlapFaults:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_rank_crash_mid_overlap_recovers_bitwise(self, seed):
        coo, sizes, matrix = _random_case(40 + seed)
        sync = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix, function=poly, max_batch_elements=SMALL_BATCH
        )
        injector = FaultInjector(FaultPlan.rank_crashes([seed % 4], seed=seed))
        policy = ResiliencePolicy(fault_injector=injector)
        result = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix,
            function=poly,
            max_batch_elements=SMALL_BATCH,
            overlap=True,
            policy=policy,
        )
        assert np.array_equal(_dense(result), _dense(sync))
        assert result.resilience.rank_retries >= 1
        assert not result.resilience.degraded
        assert result.overlap is not None

    def test_message_loss_mid_overlap_recovers_bitwise(self):
        coo, sizes, matrix = _random_case(50)
        sync = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix, function=poly, max_batch_elements=SMALL_BATCH
        )
        injector = FaultInjector([FaultSpec(site="message", times=2)])
        policy = ResiliencePolicy(fault_injector=injector)
        result = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix,
            function=poly,
            max_batch_elements=SMALL_BATCH,
            overlap=True,
            policy=policy,
        )
        assert np.array_equal(_dense(result), _dense(sync))
        assert result.resilience.rank_retries >= 1

    def test_persistent_crash_degrades_bitwise_without_overlap(self):
        coo, sizes, matrix = _random_case(60)
        sync = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix, function=poly, max_batch_elements=SMALL_BATCH
        )
        injector = FaultInjector(
            FaultPlan.rank_crashes([0, 1, 2, 3], seed=5, times=None)
        )
        policy = ResiliencePolicy(fault_injector=injector)
        result = DistributedSubmatrixPipeline(coo, sizes, 4).run(
            matrix,
            function=poly,
            max_batch_elements=SMALL_BATCH,
            overlap=True,
            policy=policy,
        )
        assert result.resilience.degraded
        # degraded single-process execution has no arrival-driven report
        assert result.overlap is None
        assert np.array_equal(_dense(result), _dense(sync))


# --------------------------------------------------------------------------- #
# incremental transfer planning on pipeline.patch
# --------------------------------------------------------------------------- #
class TestIncrementalTransferPlanning:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_patched_transfer_plan_equals_full_replan(self, ranks, seed):
        """Property: ``patch_transfer_plan`` ≡ ``plan_transfers`` bitwise."""
        rng = np.random.default_rng(70 + 10 * ranks + seed)
        n = 16
        sizes = rng.integers(2, 5, n)
        old_coo = random_pattern(n, 0.2, rng)
        new_coo = drift_pattern(old_coo, rng, 3)
        pipeline = DistributedSubmatrixPipeline(old_coo, sizes, ranks)
        pipeline.run(matrix_for_pattern(old_coo, sizes, rng), function=poly)

        patched = pipeline.patch(new_coo)
        # the patched pipeline keeps the old run's load-balanced rank
        # assignment, so the reference full replan must plan against the
        # same grouping and ranks (a fresh pipeline would re-balance)
        want = plan_transfers(
            patched.coo,
            patched.block_sizes,
            patched.distribution,
            patched.grouping,
            patched.rank_of_group,
            bytes_per_element=patched.bytes_per_element,
            per_group_dedup=True,
            segment_index="required",
        )
        got = patched.transfer_plan
        for got_rank, want_rank in zip(got.per_rank, want.per_rank):
            assert np.array_equal(got_rank.required_blocks, want_rank.required_blocks)
            assert np.array_equal(got_rank.remote_blocks, want_rank.remote_blocks)
            assert got_rank.fetch_bytes == want_rank.fetch_bytes
            assert got_rank.writeback_bytes == want_rank.writeback_bytes
            assert got_rank.segment_fetch_bytes == want_rank.segment_fetch_bytes
            assert got_rank.n_submatrices == want_rank.n_submatrices
        assert np.array_equal(got.fetch_matrix, want.fetch_matrix)
        assert np.array_equal(got.writeback_matrix, want.writeback_matrix)

    def test_transfer_delta_records_incremental_exchange(self):
        rng = np.random.default_rng(81)
        n = 16
        ranks = 4
        sizes = rng.integers(2, 5, n)
        old_coo = random_pattern(n, 0.2, rng)
        new_coo = drift_pattern(old_coo, rng, 4)
        pipeline = DistributedSubmatrixPipeline(old_coo, sizes, ranks)
        pipeline.run(matrix_for_pattern(old_coo, sizes, rng), function=poly)
        patched = pipeline.patch(new_coo)

        delta = patched.transfer_delta
        assert delta is not None
        assert delta.dirty_ranks <= set(range(ranks))
        assert len(delta.added_segments_per_rank) == ranks
        for rank, summary in enumerate(patched.transfer_plan.per_rank):
            added = delta.added_segments_per_rank[rank]
            # newly required segments are a subset of the new requirements
            assert np.all(np.isin(added, summary.required_blocks))
            assert delta.removed_per_rank[rank] >= 0
            assert 0.0 <= delta.added_fetch_bytes_per_rank[rank] <= summary.fetch_bytes
        # the incremental exchange never ships more than a full one
        assert delta.added_fetch_bytes_per_rank.sum() <= delta.full_fetch_bytes
        # the full replan sees no delta
        assert pipeline.transfer_delta is None

    def test_patched_pipeline_overlap_still_bitwise(self):
        rng = np.random.default_rng(91)
        n = 14
        sizes = rng.integers(2, 5, n)
        old_coo = random_pattern(n, 0.2, rng)
        new_coo = drift_pattern(old_coo, rng, 2)
        pipeline = DistributedSubmatrixPipeline(old_coo, sizes, 4)
        pipeline.run(matrix_for_pattern(old_coo, sizes, rng), function=poly)
        patched = pipeline.patch(new_coo)

        matrix = matrix_for_pattern(new_coo, sizes, rng)
        sync = DistributedSubmatrixPipeline(new_coo, sizes, 4).run(
            matrix, function=poly, max_batch_elements=SMALL_BATCH
        )
        overlapped = patched.run(
            matrix, function=poly, max_batch_elements=SMALL_BATCH, overlap=True
        )
        assert np.array_equal(_dense(overlapped), _dense(sync))


# --------------------------------------------------------------------------- #
# SimComm mailbox accounting under out-of-order consumption
# --------------------------------------------------------------------------- #
class TestMailboxAccounting:
    def test_out_of_order_tag_consumption_keeps_counts_exact(self):
        comm = SimComm(2)
        for tag, payload in (("x", 1), ("y", 2), ("z", 3)):
            comm.isend(0, 1, payload, tag=tag)
        assert comm.mailbox_state() == {(1, "x"): 1, (1, "y"): 1, (1, "z"): 1}

        middle = comm.wait_any([comm.irecv(1, tag="y")])
        assert middle.payload == 2
        assert comm.pending_messages(1, "y") == 0
        assert comm.mailbox_state() == {(1, "x"): 1, (1, "z"): 1}

        last = comm.wait_any([comm.irecv(1, tag="z")])
        first = comm.wait_any([comm.irecv(1, tag="x")])
        assert (first.payload, last.payload) == (1, 3)
        assert comm.mailbox_state() == {}
        assert comm.pending_messages(1, "x") == 0

    def test_source_filtered_out_of_order_consumption(self):
        comm = SimComm(3)
        comm.isend(0, 1, "from-zero", tag="t")
        comm.isend(2, 1, "from-two", tag="t")
        assert comm.pending_messages(1, "t") == 2

        filtered = comm.wait_any([comm.irecv(1, tag="t", source=2)])
        assert (filtered.source, filtered.payload) == (2, "from-two")
        assert comm.pending_messages(1, "t") == 1

        source, remaining = comm.recv(1, tag="t")
        assert (source, remaining) == (0, "from-zero")
        assert comm.pending_messages(1, "t") == 0
        assert comm.mailbox_state() == {}

    def test_wait_any_completes_by_modeled_arrival_order(self):
        """A later-posted small message to an idle ingress arrives first."""
        machine = MachineModel(
            name="test-net", network_bandwidth=1.0e6, network_latency=1.0e-9
        )
        comm = SimComm(3, machine=machine)
        comm.isend(2, 1, np.zeros(100_000), tag="big")
        comm.isend(2, 0, np.zeros(8), tag="small")
        requests = [comm.irecv(1, tag="big"), comm.irecv(0, tag="small")]

        first = comm.wait_any(requests)
        assert (first.destination, first.tag) == (0, "small")
        second = comm.wait_any(requests)
        assert (second.destination, second.tag) == (1, "big")
        assert second.ready_time > first.ready_time
        assert comm.clock == second.ready_time

    def test_deadlock_reports_exact_mailbox_state(self):
        comm = SimComm(2)
        comm.isend(0, 1, "unrelated", tag="other")
        with pytest.raises(CommRecvError) as info:
            comm.wait_any([comm.irecv(1, tag="wanted")])
        assert info.value.mailbox_state == {(1, "other"): 1}


# --------------------------------------------------------------------------- #
# satellite: adaptive warm-start half-widths from μ-drift history
# --------------------------------------------------------------------------- #
class TestAdaptiveHalfWidth:
    def test_no_history_uses_fixed_width(self):
        assert adaptive_half_width([], 1e-9) == WARM_START_HALF_WIDTH
        assert adaptive_half_width([-0.2], 1e-9) == WARM_START_HALF_WIDTH

    def test_fixed_width_respects_floor(self):
        tolerance = 0.5
        assert adaptive_half_width([-0.2], tolerance) == 8.0 * tolerance

    def test_settled_history_shrinks_to_floor(self):
        assert adaptive_half_width([-0.2, -0.2, -0.2], 1e-6) == 8.0e-6

    def test_drifting_history_doubles_largest_recent_step(self):
        width = adaptive_half_width([-0.30, -0.29, -0.285], 1e-9)
        assert width == pytest.approx(2.0 * 0.01)

    def test_only_recent_drift_counts(self):
        # the big early jump falls outside the 5-value window
        history = [5.0, 0.0, 0.01, 0.011, 0.0112, 0.0113]
        width = adaptive_half_width(history, 1e-9)
        assert width == pytest.approx(2.0 * 0.01)

    def test_floor_dominates_tiny_drift(self):
        assert adaptive_half_width([-0.2, -0.2 + 1e-12], 1e-6) == 8.0e-6


# --------------------------------------------------------------------------- #
# satellite: PreparedStep reuse and fallback in compute_density
# --------------------------------------------------------------------------- #
class TestPreparedStep:
    def test_prepared_step_is_bitwise_identical(self, water32_matrices, gap_mu):
        pair = water32_matrices
        config = EngineConfig(engine="batched", eps_filter=EPS)
        with SubmatrixContext(config) as ctx:
            baseline = ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu)
        prepared = prepare_step(pair.K, pair.S, pair.blocks, EPS)
        assert prepared.matches(pair.blocks, EPS)
        with SubmatrixContext(config) as ctx:
            reused = compute_density(
                ctx, pair.K, pair.S, pair.blocks, mu=gap_mu, prepared=prepared
            )
        assert np.array_equal(reused.density_ao, baseline.density_ao)
        assert reused.mu == baseline.mu

    def test_mismatched_prepared_step_falls_back(self, water32_matrices, gap_mu):
        """A stale preparation (different filter) is silently ignored."""
        pair = water32_matrices
        stale = prepare_step(pair.K, pair.S, pair.blocks, 1e-3)
        assert not stale.matches(pair.blocks, EPS)
        config = EngineConfig(engine="batched", eps_filter=EPS)
        with SubmatrixContext(config) as ctx:
            baseline = ctx.density(pair.K, pair.S, pair.blocks, mu=gap_mu)
        with SubmatrixContext(config) as ctx:
            fallback = compute_density(
                ctx, pair.K, pair.S, pair.blocks, mu=gap_mu, prepared=stale
            )
        assert np.array_equal(fallback.density_ao, baseline.density_ao)


# --------------------------------------------------------------------------- #
# trajectory-level overlap: prefetch, checkpoint/resume, exception timing
# --------------------------------------------------------------------------- #
def _value_steps(pair, n_steps, scale=1e-4):
    return [(pair.K * (1.0 + scale * step), pair.S) for step in range(n_steps)]


class _Killed(Exception):
    pass


class TestTrajectoryOverlap:
    def test_prefetched_trajectory_is_bitwise_identical(self, water32_matrices):
        pair = water32_matrices
        steps = _value_steps(pair, 4)
        with SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS)) as ctx:
            sync = ctx.trajectory(
                steps, pair.blocks, n_electrons=N_ELECTRONS, ranks=2
            )
        overlap_config = EngineConfig(
            engine="batched", eps_filter=EPS, overlap=True
        )
        with SubmatrixContext(overlap_config) as ctx:
            overlapped = ctx.trajectory(
                steps, pair.blocks, n_electrons=N_ELECTRONS, ranks=2
            )
        for before, after in zip(sync.results, overlapped.results):
            assert np.array_equal(before.density_ao, after.density_ao)
            assert before.mu == after.mu
        assert overlapped.stats.steps_prefetched >= len(steps) - 1
        assert sync.stats.steps_prefetched == 0
        # arrival-driven ranks report their overlap through the records
        assert all(
            record.exchange_hidden_fraction is not None
            for record in overlapped.stats.steps
        )
        assert 0.0 <= overlapped.stats.exchange_hidden_fraction <= 1.0
        assert overlapped.stats.overlap_seconds >= 0.0

    def test_checkpoint_resume_mid_overlap_is_bitwise(
        self, water32_matrices, tmp_path
    ):
        pair = water32_matrices
        steps = _value_steps(pair, 4)
        config = EngineConfig(engine="batched", eps_filter=EPS, overlap=True)
        with SubmatrixContext(config) as ctx:
            uninterrupted = ctx.trajectory(
                steps, pair.blocks, n_electrons=N_ELECTRONS, ranks=2
            )

        checkpoint = tmp_path / "overlap-ckpt"

        def dying_steps(index):
            if index == 2:
                raise _Killed()
            return steps[index] if index < len(steps) else None

        with SubmatrixContext(config) as ctx:
            with pytest.raises(_Killed):
                ctx.trajectory(
                    dying_steps,
                    pair.blocks,
                    n_electrons=N_ELECTRONS,
                    ranks=2,
                    checkpoint=checkpoint,
                )
        assert TrajectoryCheckpoint(checkpoint).n_saved_steps == 2

        with SubmatrixContext(config) as ctx:
            resumed = ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                ranks=2,
                checkpoint=checkpoint,
            )
        assert resumed.stats.steps_resumed == 2
        assert not any(
            record.prefetched for record in resumed.stats.steps if record.resumed
        )
        for before, after in zip(uninterrupted.results, resumed.results):
            assert np.array_equal(before.density_ao, after.density_ao)
            assert before.mu == after.mu

    def test_steps_exception_surfaces_after_prior_results(self, water32_matrices):
        """The prefetch lookahead must not reorder the failure point."""
        pair = water32_matrices
        steps = _value_steps(pair, 4)
        calls = []

        def dying_steps(index):
            calls.append(index)
            if index == 2:
                raise _Killed()
            return steps[index] if index < len(steps) else None

        config = EngineConfig(engine="batched", eps_filter=EPS, overlap=True)
        with SubmatrixContext(config) as ctx:
            with pytest.raises(_Killed):
                ctx.trajectory(
                    dying_steps, pair.blocks, n_electrons=N_ELECTRONS, ranks=2
                )
        assert calls == [0, 1, 2]
