"""Tests for sparsity statistics and evaluation metrics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import (
    block_occupation,
    crossover_point,
    element_occupation,
    energy_error_per_atom,
    linear_fit,
    parallel_efficiency,
    submatrix_block_occupation,
    submatrix_element_occupation,
)


class TestSparsity:
    def test_block_occupation(self):
        pattern = sp.csr_matrix(np.eye(4, dtype=bool))
        assert block_occupation(pattern) == pytest.approx(0.25)

    def test_element_occupation_dense_and_sparse(self):
        dense = np.array([[1.0, 0.0], [0.5, 0.0]])
        assert element_occupation(dense) == pytest.approx(0.5)
        assert element_occupation(sp.csr_matrix(dense)) == pytest.approx(0.5)

    def test_element_occupation_threshold(self):
        dense = np.array([[1.0, 1e-9], [0.0, 0.0]])
        assert element_occupation(dense, threshold=1e-6) == pytest.approx(0.25)

    def test_submatrix_block_occupation(self):
        pattern = sp.csr_matrix(
            np.array(
                [
                    [1, 1, 0, 0],
                    [1, 1, 1, 0],
                    [0, 1, 1, 1],
                    [0, 0, 1, 1],
                ],
                dtype=bool,
            )
        )
        # submatrix over blocks {0,1,2}: all but the two corner blocks present
        occupation = submatrix_block_occupation(pattern, [0, 1, 2])
        assert occupation == pytest.approx(7 / 9)

    def test_submatrix_element_occupation_uniform_blocks(self):
        pattern = sp.csr_matrix(np.eye(3, dtype=bool))
        occupation = submatrix_element_occupation(pattern, [0, 1, 2], [2, 2, 2])
        # only diagonal blocks occupied: 3*4 elements of 36
        assert occupation == pytest.approx(1 / 3)

    def test_submatrix_element_occupation_mixed_blocks(self):
        pattern = sp.csr_matrix(np.ones((2, 2), dtype=bool))
        occupation = submatrix_element_occupation(pattern, [0, 1], [1, 3])
        assert occupation == pytest.approx(1.0)

    def test_empty_submatrix(self):
        pattern = sp.csr_matrix((3, 3), dtype=bool)
        assert submatrix_block_occupation(pattern, []) == 0.0
        assert submatrix_element_occupation(pattern, [], [1, 1, 1]) == 0.0


class TestMetrics:
    def test_energy_error_units(self):
        assert energy_error_per_atom(-10.0, -10.001, 100) == pytest.approx(0.01)
        assert energy_error_per_atom(-10.0, -10.001, 100, unit="eV") == pytest.approx(
            1e-5
        )

    def test_energy_error_invalid(self):
        with pytest.raises(ValueError):
            energy_error_per_atom(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            energy_error_per_atom(1.0, 1.0, 10, unit="hartree")

    def test_strong_scaling_efficiency(self):
        times = [10.0, 5.5, 3.0]
        cores = [80, 160, 320]
        efficiency = parallel_efficiency(times, cores, mode="strong")
        assert efficiency[0] == pytest.approx(1.0)
        assert efficiency[1] == pytest.approx(10.0 * 80 / (5.5 * 160))
        assert np.all(efficiency <= 1.01)

    def test_weak_scaling_efficiency(self):
        times = [10.0, 12.0, 15.0]
        cores = [40, 80, 160]
        efficiency = parallel_efficiency(times, cores, mode="weak")
        assert efficiency[0] == 1.0
        assert efficiency[-1] == pytest.approx(10.0 / 15.0)

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            parallel_efficiency([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            parallel_efficiency([1.0, -1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            parallel_efficiency([1.0, 1.0], [1.0, 2.0], mode="sideways")

    def test_linear_fit_recovers_line(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = 2.5 * x + 1.0
        slope, intercept, r_squared = linear_fit(x, y)
        assert slope == pytest.approx(2.5)
        assert intercept == pytest.approx(1.0)
        assert r_squared == pytest.approx(1.0)

    def test_linear_fit_noisy(self, rng):
        x = np.linspace(0, 10, 50)
        y = 3.0 * x + rng.normal(scale=0.1, size=50)
        slope, _, r_squared = linear_fit(x, y)
        assert slope == pytest.approx(3.0, abs=0.1)
        assert r_squared > 0.99

    def test_linear_fit_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0])

    def test_crossover_point_found(self):
        x = np.array([1e-8, 1e-6, 1e-4, 1e-2])
        slow = np.array([4.0, 3.0, 2.0, 1.0])
        fast = np.array([8.0, 4.0, 1.0, 0.1])
        crossing = crossover_point(x, fast, slow)
        assert 1e-6 < crossing < 1e-4

    def test_crossover_point_absent(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.isnan(crossover_point(x, [1, 1, 1], [2, 2, 2]))

    def test_crossover_validation(self):
        with pytest.raises(ValueError):
            crossover_point([1.0, 2.0], [1.0], [1.0, 2.0])
