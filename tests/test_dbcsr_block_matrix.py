"""Tests for the block-compressed sparse matrix storage."""

import numpy as np
import pytest

from repro.dbcsr import BlockSparseMatrix
from repro.dbcsr.convert import block_matrix_from_dense, block_matrix_to_dense


@pytest.fixture()
def small_matrix(rng):
    """A 3x3-block matrix with mixed block sizes and a few stored blocks."""
    matrix = BlockSparseMatrix([2, 3, 1])
    matrix.put_block(0, 0, rng.random((2, 2)))
    matrix.put_block(1, 1, rng.random((3, 3)))
    matrix.put_block(0, 1, rng.random((2, 3)))
    matrix.put_block(2, 2, rng.random((1, 1)))
    return matrix


class TestConstruction:
    def test_shape(self):
        matrix = BlockSparseMatrix([2, 3], [4, 1])
        assert matrix.shape == (5, 5)
        assert matrix.n_block_rows == 2
        assert matrix.n_block_cols == 2

    def test_square_by_default(self):
        matrix = BlockSparseMatrix([2, 3])
        assert np.array_equal(matrix.row_block_sizes, matrix.col_block_sizes)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockSparseMatrix([2, 0])

    def test_initial_blocks(self, rng):
        block = rng.random((2, 2))
        matrix = BlockSparseMatrix([2, 2], blocks={(0, 0): block})
        assert np.allclose(matrix.get_block(0, 0), block)

    def test_identity(self):
        identity = BlockSparseMatrix.identity([2, 3])
        assert np.allclose(block_matrix_to_dense(identity), np.eye(5))
        assert identity.nnz_blocks == 2


class TestBlockAccess:
    def test_put_and_get(self, rng):
        matrix = BlockSparseMatrix([2, 3])
        block = rng.random((2, 3))
        matrix.put_block(0, 1, block)
        assert np.allclose(matrix.get_block(0, 1), block)
        assert matrix.has_block(0, 1)
        assert not matrix.has_block(1, 0)

    def test_put_copies_data(self, rng):
        matrix = BlockSparseMatrix([2, 2])
        block = rng.random((2, 2))
        matrix.put_block(0, 0, block)
        block[0, 0] = 999.0
        assert matrix.get_block(0, 0)[0, 0] != 999.0

    def test_wrong_shape_rejected(self):
        matrix = BlockSparseMatrix([2, 3])
        with pytest.raises(ValueError):
            matrix.put_block(0, 0, np.zeros((3, 3)))

    def test_out_of_range_rejected(self):
        matrix = BlockSparseMatrix([2, 3])
        with pytest.raises(IndexError):
            matrix.put_block(5, 0, np.zeros((2, 2)))

    def test_accumulate(self):
        matrix = BlockSparseMatrix([2])
        matrix.put_block(0, 0, np.ones((2, 2)))
        matrix.put_block(0, 0, np.ones((2, 2)), accumulate=True)
        assert np.allclose(matrix.get_block(0, 0), 2.0)

    def test_remove_block(self, small_matrix):
        small_matrix.remove_block(0, 0)
        assert not small_matrix.has_block(0, 0)
        small_matrix.remove_block(0, 0)  # idempotent

    def test_block_keys_deterministic_order(self, small_matrix):
        keys = small_matrix.block_keys()
        # sorted by (column, row)
        assert keys == sorted(keys, key=lambda k: (k[1], k[0]))

    def test_nonzero_block_rows(self, small_matrix):
        assert small_matrix.nonzero_block_rows(1) == [0, 1]
        assert small_matrix.nonzero_block_rows(0) == [0]


class TestOccupation:
    def test_counts(self, small_matrix):
        assert small_matrix.nnz_blocks == 4
        assert small_matrix.block_occupation() == pytest.approx(4 / 9)

    def test_element_occupation(self, small_matrix):
        expected = (4 + 9 + 6 + 1) / 36
        assert small_matrix.element_occupation() == pytest.approx(expected)


class TestArithmetic:
    def test_add_and_subtract(self, small_matrix):
        doubled = small_matrix + small_matrix
        assert np.allclose(
            block_matrix_to_dense(doubled), 2 * block_matrix_to_dense(small_matrix)
        )
        zero = small_matrix - small_matrix
        assert np.allclose(block_matrix_to_dense(zero), 0.0)

    def test_add_requires_same_structure(self, small_matrix):
        other = BlockSparseMatrix([3, 2, 1])
        with pytest.raises(ValueError):
            _ = small_matrix + other

    def test_scale(self, small_matrix):
        scaled = small_matrix.scale(-2.0)
        assert np.allclose(
            block_matrix_to_dense(scaled), -2.0 * block_matrix_to_dense(small_matrix)
        )

    def test_transpose(self, small_matrix):
        dense = block_matrix_to_dense(small_matrix)
        assert np.allclose(block_matrix_to_dense(small_matrix.transpose()), dense.T)

    def test_matmul_matches_dense(self, rng):
        sizes = [2, 3, 4]
        a_dense = rng.random((9, 9))
        b_dense = rng.random((9, 9))
        a_dense[3:6, 0:2] = 0.0
        b_dense[0:2, 5:9] = 0.0
        a = block_matrix_from_dense(a_dense, sizes)
        b = block_matrix_from_dense(b_dense, sizes)
        product = a @ b
        assert np.allclose(block_matrix_to_dense(product), a_dense @ b_dense)

    def test_matmul_flop_counter(self, rng):
        sizes = [2, 2]
        a = block_matrix_from_dense(rng.random((4, 4)), sizes)
        counter = [0.0]
        a.matmul(a, flop_counter=counter)
        # 4 block rows x 2 inner x ... : full 2x2 block grid -> 8 block GEMMs
        assert counter[0] == pytest.approx(8 * 2 * 2 * 2 * 2)

    def test_matmul_dimension_mismatch(self):
        a = BlockSparseMatrix([2, 2])
        b = BlockSparseMatrix([3, 3])
        with pytest.raises(ValueError):
            a.matmul(b)

    def test_copy_is_deep(self, small_matrix):
        clone = small_matrix.copy()
        clone.get_block(0, 0)[0, 0] = 123.0
        assert small_matrix.get_block(0, 0)[0, 0] != 123.0


class TestReductions:
    def test_trace(self, small_matrix):
        dense = block_matrix_to_dense(small_matrix)
        assert small_matrix.trace() == pytest.approx(np.trace(dense))

    def test_trace_requires_square_blocks(self):
        matrix = BlockSparseMatrix([2, 3], [3, 2])
        with pytest.raises(ValueError):
            matrix.trace()

    def test_frobenius_norm(self, small_matrix):
        dense = block_matrix_to_dense(small_matrix)
        assert small_matrix.frobenius_norm() == pytest.approx(np.linalg.norm(dense))

    def test_max_abs(self, small_matrix):
        dense = block_matrix_to_dense(small_matrix)
        assert small_matrix.max_abs() == pytest.approx(np.max(np.abs(dense)))

    def test_empty_matrix_norms(self):
        matrix = BlockSparseMatrix([2, 2])
        assert matrix.frobenius_norm() == 0.0
        assert matrix.max_abs() == 0.0
        assert matrix.trace() == 0.0
