"""Tests for the liquid-water benchmark-system generator."""

import numpy as np
import pytest

from repro.chem.water import (
    BASE_CELL_LENGTH,
    MOLECULES_PER_CELL,
    base_water_cell,
    water_box,
    water_molecule,
)


class TestWaterMolecule:
    def test_geometry(self):
        oxygen, h1, h2 = water_molecule([0.0, 0.0, 0.0])
        assert oxygen.symbol == "O"
        assert h1.symbol == h2.symbol == "H"
        d1 = np.linalg.norm(h1.position - oxygen.position)
        d2 = np.linalg.norm(h2.position - oxygen.position)
        assert d1 == pytest.approx(0.9572, abs=1e-6)
        assert d2 == pytest.approx(0.9572, abs=1e-6)
        cos_angle = np.dot(
            h1.position - oxygen.position, h2.position - oxygen.position
        ) / (d1 * d2)
        assert np.degrees(np.arccos(cos_angle)) == pytest.approx(104.52, abs=1e-3)

    def test_rotation_preserves_geometry(self):
        angle = np.pi / 3
        rotation = np.array(
            [
                [np.cos(angle), -np.sin(angle), 0.0],
                [np.sin(angle), np.cos(angle), 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        oxygen, h1, _ = water_molecule([1.0, 2.0, 3.0], rotation)
        assert np.linalg.norm(h1.position - oxygen.position) == pytest.approx(
            0.9572, abs=1e-6
        )

    def test_invalid_rotation_shape(self):
        with pytest.raises(ValueError):
            water_molecule([0, 0, 0], np.eye(2))

    def test_molecule_index_propagates(self):
        atoms = water_molecule([0, 0, 0], molecule_index=7)
        assert all(a.molecule == 7 for a in atoms)


class TestBaseCell:
    def test_composition(self):
        system = base_water_cell()
        assert system.n_molecules == MOLECULES_PER_CELL
        assert system.n_atoms == 3 * MOLECULES_PER_CELL
        symbols = system.symbols
        assert symbols.count("O") == MOLECULES_PER_CELL
        assert symbols.count("H") == 2 * MOLECULES_PER_CELL

    def test_cell_size(self):
        system = base_water_cell()
        assert np.allclose(system.cell.lengths, BASE_CELL_LENGTH)

    def test_deterministic_for_fixed_seed(self):
        a = base_water_cell(seed=11)
        b = base_water_cell(seed=11)
        assert np.allclose(a.positions, b.positions)

    def test_different_seeds_differ(self):
        a = base_water_cell(seed=1)
        b = base_water_cell(seed=2)
        assert not np.allclose(a.positions, b.positions)

    def test_no_unphysically_short_intermolecular_contacts(self):
        system = base_water_cell()
        i, j, r = system.neighbor_pairs(1.5)
        mol = system.molecule_index
        intermolecular = mol[i] != mol[j]
        # all contacts below 1.5 Å must be intramolecular O-H bonds
        assert not np.any(intermolecular)

    def test_valence_electrons_per_molecule(self):
        system = base_water_cell()
        assert system.valence_electrons == 8 * MOLECULES_PER_CELL


class TestWaterBox:
    def test_isotropic_replication_counts(self):
        system = water_box(2)
        assert system.n_molecules == 32 * 8
        assert system.n_atoms == 96 * 8
        assert np.allclose(system.cell.lengths, 2 * BASE_CELL_LENGTH)

    def test_anisotropic_replication(self):
        system = water_box((3, 1, 1))
        assert system.n_molecules == 96
        assert system.cell.lengths[0] == pytest.approx(3 * BASE_CELL_LENGTH)
        assert system.cell.lengths[1] == pytest.approx(BASE_CELL_LENGTH)

    def test_nrep_one_returns_base_cell(self):
        assert water_box(1).n_molecules == MOLECULES_PER_CELL

    def test_invalid_nrep(self):
        with pytest.raises(ValueError):
            water_box(0)
        with pytest.raises(ValueError):
            water_box((1, 2))

    def test_building_block_ordering(self):
        """Atoms of each 32-molecule building block are consecutive."""
        system = water_box((2, 1, 1))
        first_block = system.molecule_index[: 3 * MOLECULES_PER_CELL]
        second_block = system.molecule_index[3 * MOLECULES_PER_CELL :]
        assert first_block.max() < MOLECULES_PER_CELL
        assert second_block.min() >= MOLECULES_PER_CELL

    def test_paper_system_sizes(self):
        """NREP^3 * 32 molecules * 3 atoms, as in Sec. V of the paper."""
        assert water_box(2).n_atoms == 768
        # NREP=6 would be 20,736 atoms; verify the formula without building it
        assert 32 * 6**3 * 3 == 20736
