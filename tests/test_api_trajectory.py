"""Tests for the trajectory session driver (`repro.api.trajectory`).

Covers the acceptance criteria of the trajectory tentpole:

* N ≥ 5 value-only geometry steps build exactly **one** plan and **one**
  executor, with every later step served from the plan cache;
* per-step results are bitwise identical to fresh single-shot
  ``context.density`` calls;
* a sparsity-pattern change between steps is detected via the plan cache's
  content hash and triggers exactly one replan;
* rank-sharded trajectories reuse the context-cached pipeline across steps
  and report the initialization-exchange fetch volumes.

This file is part of the strict CI pass (``-W error::DeprecationWarning``).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import (
    EngineConfig,
    SubmatrixContext,
    TrajectoryResult,
    TrajectoryStats,
)

EPS = 1e-5
N_ELECTRONS = 8.0 * 32


def value_only_steps(pair, n_steps, scale=1e-4):
    """Geometry steps that perturb values but keep the filtered pattern.

    Scaling K leaves S (and hence the Löwdin transform) untouched, so the
    orthogonalized matrix scales uniformly — no entry crosses the filter
    threshold for these factors on the deterministic water system.
    """
    return [(pair.K * (1.0 + scale * step), pair.S) for step in range(n_steps)]


#: Filter threshold at which the water pattern is genuinely sparse, so a
#: value change can move entries across the threshold (at the tight default
#: the 32-molecule pattern is fully dense and no value change can alter it).
EPS_SPARSE = 1e-2


def pattern_breaking_step(pair):
    """A step whose scaled K pushes filtered-out entries back over ``EPS_SPARSE``."""
    return pair.K * 3.0, pair.S


class TestValueOnlyTrajectory:
    def test_one_plan_one_executor_across_steps(self, water32_matrices):
        """Acceptance: N ≥ 5 value-only steps → 1 plan build, 1 pool."""
        steps = value_only_steps(water32_matrices, 6)
        ctx = SubmatrixContext(
            EngineConfig(
                engine="batched", eps_filter=EPS, backend="thread", max_workers=2
            )
        )
        traj = ctx.trajectory(steps, water32_matrices.blocks, n_electrons=N_ELECTRONS)
        stats = traj.stats
        assert isinstance(traj, TrajectoryResult)
        assert isinstance(stats, TrajectoryStats)
        assert stats.n_steps == 6
        assert stats.plans_built == 1
        assert stats.plan_cache_hits == 5
        assert stats.pattern_changes == 0
        assert stats.executors_created == 1
        assert ctx.stats()["executors_created"] == 1
        assert stats.reuse_rate == pytest.approx(5 / 6)
        assert stats.steps[0].pattern_changed  # nothing to reuse yet
        assert not any(record.pattern_changed for record in stats.steps[1:])
        assert all(
            record.pattern_fingerprint == stats.steps[0].pattern_fingerprint
            for record in stats.steps
        )
        assert stats.total_wall_time == pytest.approx(
            sum(record.wall_time for record in stats.steps)
        )
        ctx.close()

    def test_steps_bitwise_identical_to_fresh_calls(self, water32_matrices):
        """Acceptance: per-step results ≡ fresh single-shot density calls."""
        steps = value_only_steps(water32_matrices, 5)
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        traj = ctx.trajectory(steps, water32_matrices.blocks, n_electrons=N_ELECTRONS)
        for step, (K, S) in enumerate(steps):
            fresh = SubmatrixContext(
                EngineConfig(engine="batched", eps_filter=EPS)
            ).density(K, S, water32_matrices.blocks, n_electrons=N_ELECTRONS)
            assert np.array_equal(traj[step].density_ao, fresh.density_ao), step
            assert traj[step].mu == fresh.mu
            assert traj[step].band_energy == fresh.band_energy
        # the μ really moves along the trajectory (the steps are distinct)
        assert len(set(traj.mus.tolist())) > 1

    def test_result_conveniences(self, water32_matrices):
        steps = value_only_steps(water32_matrices, 5)
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        traj = ctx.trajectory(steps, water32_matrices.blocks, n_electrons=N_ELECTRONS)
        assert len(traj) == 5
        assert [r.mu for r in traj] == traj.mus.tolist()
        assert traj.band_energies.shape == (5,)
        assert traj[0] is traj.results[0]


class TestPatternChanges:
    def test_pattern_change_detected_and_replanned(self, water32_matrices, gap_mu):
        steps = value_only_steps(water32_matrices, 3)
        steps += [pattern_breaking_step(water32_matrices)] * 2
        ctx = SubmatrixContext(
            EngineConfig(engine="batched", eps_filter=EPS_SPARSE)
        )
        traj = ctx.trajectory(steps, water32_matrices.blocks, mu=gap_mu)
        stats = traj.stats
        assert stats.n_steps == 5
        # the rescaled matrix retains more blocks after filtering: one replan
        assert stats.steps[3].pattern_changed
        assert stats.steps[3].plans_built == 1
        assert stats.plans_built == 2
        assert stats.pattern_changes == 1
        assert not stats.steps[4].pattern_changed  # the new pattern is stable
        assert (
            stats.steps[3].pattern_fingerprint
            != stats.steps[0].pattern_fingerprint
        )

    def test_changed_values_are_not_stale(self, water32_matrices):
        """A cache hit must never replay a previous step's values."""
        steps = value_only_steps(water32_matrices, 2, scale=5e-4)
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        traj = ctx.trajectory(
            steps, water32_matrices.blocks, n_electrons=N_ELECTRONS
        )
        assert traj.stats.plans_built == 1
        assert traj.stats.plan_cache_hits == 1
        # the scaled spectrum moves both μ and the band energy; a stale
        # plan replaying step 0's packed values would reproduce them
        assert traj[1].mu != traj[0].mu
        assert traj[1].band_energy != traj[0].band_energy


class TestStepSpecifications:
    def test_callback_steps_with_n_steps(self, water32_matrices):
        pair = water32_matrices

        def step(index):
            return pair.K * (1.0 + 1e-4 * index), pair.S

        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        traj = ctx.trajectory(
            step, pair.blocks, n_electrons=N_ELECTRONS, n_steps=5
        )
        assert traj.stats.n_steps == 5
        assert traj.stats.plans_built == 1

    def test_callback_ends_trajectory_with_none(self, water32_matrices):
        pair = water32_matrices

        def step(index):
            if index >= 3:
                return None
            return pair.K * (1.0 + 1e-4 * index), pair.S

        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        traj = ctx.trajectory(step, pair.blocks, n_electrons=N_ELECTRONS)
        assert traj.stats.n_steps == 3

    def test_n_steps_truncates_sequences(self, water32_matrices):
        steps = value_only_steps(water32_matrices, 6)
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        traj = ctx.trajectory(
            steps, water32_matrices.blocks, n_electrons=N_ELECTRONS, n_steps=2
        )
        assert traj.stats.n_steps == 2

    def test_per_step_mu_sequence(self, water32_matrices, gap_mu):
        steps = value_only_steps(water32_matrices, 3)
        mus = [gap_mu - 0.05, gap_mu, gap_mu + 0.05]
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        traj = ctx.trajectory(steps, water32_matrices.blocks, mu=mus)
        assert traj.mus.tolist() == [float(m) for m in mus]
        assert traj.stats.plans_built == 1

    def test_requires_exactly_one_ensemble(self, water32_matrices):
        pair = water32_matrices
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        with pytest.raises(ValueError):
            ctx.trajectory([(pair.K, pair.S)], pair.blocks)
        with pytest.raises(ValueError):
            ctx.trajectory(
                [(pair.K, pair.S)], pair.blocks, mu=0.0, n_electrons=1.0
            )


class TestShardedTrajectory:
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_sharded_steps_bitwise_and_pipeline_reuse(
        self, water32_matrices, ranks
    ):
        steps = value_only_steps(water32_matrices, 5)
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        traj = ctx.trajectory(
            steps, water32_matrices.blocks, n_electrons=N_ELECTRONS, ranks=ranks
        )
        stats = traj.stats
        assert stats.plans_built == 1
        assert stats.pipelines_built == 1  # shard layouts shared by all steps
        assert all(
            record.segment_fetch_bytes is not None for record in stats.steps
        )
        single = ctx.trajectory(
            steps, water32_matrices.blocks, n_electrons=N_ELECTRONS
        )
        for step in range(len(steps)):
            assert np.array_equal(
                traj[step].density_ao, single[step].density_ao
            ), step
            assert traj[step].mu == single[step].mu

    def test_sharded_iterative_trajectory(self, water32_matrices, gap_mu):
        """Grand-canonical Newton–Schulz steps run sharded with full reuse."""
        steps = value_only_steps(water32_matrices, 5)
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        sharded = ctx.trajectory(
            steps, water32_matrices.blocks, mu=gap_mu,
            solver="newton_schulz", ranks=2,
        )
        single = ctx.trajectory(
            steps, water32_matrices.blocks, mu=gap_mu, solver="newton_schulz"
        )
        assert sharded.stats.plans_built == 1
        assert single.stats.plans_built == 0  # pattern already planned above
        for step in range(len(steps)):
            assert np.array_equal(
                sharded[step].density_ao, single[step].density_ao
            ), step

    def test_explicit_distribution_reuses_one_pipeline(self, water32_matrices):
        """An explicit block distribution must not force a replan per step."""
        from repro.dbcsr.distribution import BlockDistribution, ProcessGrid2D
        from repro.parallel.topology import balanced_dims

        n_blocks = 32
        grid = ProcessGrid2D(2, balanced_dims(2))
        steps = value_only_steps(water32_matrices, 5)
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        traj = ctx.trajectory(
            steps,
            water32_matrices.blocks,
            n_electrons=N_ELECTRONS,
            ranks=2,
            distribution=BlockDistribution(n_blocks, n_blocks, grid),
        )
        assert traj.stats.pipelines_built == 1
        # equal-content distribution objects share the cached pipeline
        again = ctx.trajectory(
            steps,
            water32_matrices.blocks,
            n_electrons=N_ELECTRONS,
            ranks=2,
            distribution=BlockDistribution(n_blocks, n_blocks, grid),
        )
        assert again.stats.pipelines_built == 0
        default = ctx.trajectory(
            steps, water32_matrices.blocks, n_electrons=N_ELECTRONS, ranks=2
        )
        for step in range(len(steps)):
            assert np.array_equal(traj[step].density_ao, default[step].density_ao)

    def test_distributed_session_trajectory(self, water32_matrices):
        steps = value_only_steps(water32_matrices, 5)
        ctx = SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS))
        via_session = ctx.distributed(2).trajectory(
            steps, water32_matrices.blocks, n_electrons=N_ELECTRONS
        )
        direct = ctx.trajectory(
            steps, water32_matrices.blocks, n_electrons=N_ELECTRONS, ranks=2
        )
        for step in range(len(steps)):
            assert np.array_equal(
                via_session[step].density_ao, direct[step].density_ao
            )
        assert all(r.n_ranks == 2 for r in via_session)
