"""Tests for the end-to-end submatrix evaluation of matrix functions."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import SubmatrixMethod
from repro.dbcsr.convert import block_matrix_from_dense, block_matrix_to_dense
from repro.signfn import inverse_pth_root, sign_via_eigendecomposition

from conftest import make_decay_matrix


@pytest.fixture()
def decay_sparse():
    dense = make_decay_matrix(60, bandwidth=5.0)
    dense[np.abs(dense) < 1e-4] = 0.0
    return sp.csr_matrix(dense)


class TestElementLevel:
    def test_result_has_input_pattern(self, decay_sparse):
        method = SubmatrixMethod(sign_via_eigendecomposition)
        result = method.apply_elementwise(decay_sparse)
        input_pattern = decay_sparse.toarray() != 0
        output_pattern = result.result.toarray() != 0
        assert np.array_equal(output_pattern, output_pattern & input_pattern)

    def test_accuracy_on_decaying_matrix(self, decay_sparse):
        """For matrices with decay the approximation is accurate on-pattern."""
        method = SubmatrixMethod(sign_via_eigendecomposition)
        result = method.apply_elementwise(decay_sparse)
        exact = sign_via_eigendecomposition(decay_sparse.toarray())
        pattern = decay_sparse.toarray() != 0
        error = np.max(np.abs((result.result.toarray() - exact)[pattern]))
        assert error < 0.05

    def test_dense_input_is_exact(self, rng):
        """If every column is dense, each submatrix is the full matrix."""
        dense = make_decay_matrix(20, bandwidth=1e6)
        matrix = sp.csr_matrix(dense)
        method = SubmatrixMethod(sign_via_eigendecomposition)
        result = method.apply_elementwise(matrix)
        exact = sign_via_eigendecomposition(dense)
        assert np.allclose(result.result.toarray(), exact, atol=1e-10)
        assert result.submatrix_dimensions == [20] * 20

    def test_column_groups(self, decay_sparse):
        method = SubmatrixMethod(sign_via_eigendecomposition)
        groups = [list(range(i, min(i + 10, 60))) for i in range(0, 60, 10)]
        result = method.apply_elementwise(decay_sparse, column_groups=groups)
        assert result.n_submatrices == 6

    def test_invalid_groups(self, decay_sparse):
        method = SubmatrixMethod(sign_via_eigendecomposition)
        with pytest.raises(ValueError):
            method.apply_elementwise(decay_sparse, column_groups=[[0, 1], [1, 2]])
        with pytest.raises(ValueError):
            method.apply_elementwise(decay_sparse, column_groups=[[0]])
        with pytest.raises(IndexError):
            method.apply_elementwise(decay_sparse, column_groups=[[0, 600]])

    def test_non_square_rejected(self):
        method = SubmatrixMethod(sign_via_eigendecomposition)
        with pytest.raises(ValueError):
            method.apply_elementwise(sp.csr_matrix(np.ones((3, 4))))

    def test_function_shape_checked(self, decay_sparse):
        method = SubmatrixMethod(lambda a: a[:2, :2])
        with pytest.raises(ValueError):
            method.apply_elementwise(decay_sparse)

    def test_flop_estimate_is_cubic_sum(self, decay_sparse):
        method = SubmatrixMethod(sign_via_eigendecomposition)
        result = method.apply_elementwise(decay_sparse)
        expected = sum(float(d) ** 3 for d in result.submatrix_dimensions)
        assert result.flop_estimate == pytest.approx(expected)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            SubmatrixMethod("not-a-function")

    def test_thread_backend_matches_serial(self, decay_sparse):
        serial = SubmatrixMethod(sign_via_eigendecomposition, backend="serial")
        threaded = SubmatrixMethod(
            sign_via_eigendecomposition, backend="thread", max_workers=2
        )
        a = serial.apply_elementwise(decay_sparse).result.toarray()
        b = threaded.apply_elementwise(decay_sparse).result.toarray()
        assert np.allclose(a, b)


class TestBlockLevel:
    @pytest.fixture()
    def block_decay(self):
        dense = make_decay_matrix(48, bandwidth=6.0)
        dense[np.abs(dense) < 1e-4] = 0.0
        return block_matrix_from_dense(dense, [4] * 12), dense

    def test_block_result_pattern(self, block_decay):
        blocked, _ = block_decay
        method = SubmatrixMethod(sign_via_eigendecomposition)
        result = method.apply_blockwise(blocked)
        for bi, bj in result.result.block_keys():
            assert blocked.has_block(bi, bj)

    def test_block_accuracy(self, block_decay):
        blocked, dense = block_decay
        method = SubmatrixMethod(sign_via_eigendecomposition)
        result = method.apply_blockwise(blocked)
        exact = sign_via_eigendecomposition(dense)
        approx = block_matrix_to_dense(result.result)
        pattern = block_matrix_to_dense(blocked) != 0
        assert np.max(np.abs((approx - exact)[pattern])) < 0.05

    def test_block_groups_reduce_submatrix_count(self, block_decay):
        blocked, _ = block_decay
        method = SubmatrixMethod(sign_via_eigendecomposition)
        single = method.apply_blockwise(blocked)
        grouped = method.apply_blockwise(
            blocked, column_groups=[[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]
        )
        assert single.n_submatrices == 12
        assert grouped.n_submatrices == 3
        assert grouped.max_dimension >= single.max_dimension

    def test_other_matrix_function(self, block_decay):
        """The machinery is generic: inverse square roots work as well."""
        blocked, dense = block_decay
        spd = dense @ dense + 5.0 * np.eye(48)
        spd[np.abs(spd) < 1e-6] = 0.0
        blocked_spd = block_matrix_from_dense(spd, [4] * 12)
        method = SubmatrixMethod(lambda a: inverse_pth_root(a, 2))
        result = method.apply_blockwise(blocked_spd)
        exact = inverse_pth_root(spd, 2)
        pattern = block_matrix_to_dense(blocked_spd) != 0
        approx = block_matrix_to_dense(result.result)
        assert np.max(np.abs((approx - exact)[pattern])) < 0.05

    def test_wall_time_recorded(self, block_decay):
        blocked, _ = block_decay
        method = SubmatrixMethod(sign_via_eigendecomposition)
        result = method.apply_blockwise(blocked)
        assert result.wall_time > 0.0
