"""Tests for the vectorized submatrix engine (plans, caching, batching).

The central claim of :mod:`repro.core.plan` is equivalence: the plan-based
gather/scatter paths must produce *bitwise-identical* results to the naive
reference kernels, across random sparsity patterns, random column groupings
and both granularities.  The batched evaluator is additionally checked with
and without bucket padding.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import EngineConfig
from repro.core import (
    DEFAULT_PLAN_CACHE,
    BlockSubmatrixPlan,
    ElementSubmatrixPlan,
    PlanCache,
    SubmatrixMethod,
    SubmatrixDFTSolver,
    make_buckets,
)
from repro.core.batch import evaluate_batched
from repro.core.plan import block_plan, element_plan
from repro.core.submatrix import extract_block_submatrix, extract_submatrix
from repro.dbcsr import BlockSparseMatrix, CooBlockList
from repro.dbcsr.convert import block_matrix_from_dense, block_matrix_to_dense
from repro.parallel.executor import split_chunks
from repro.signfn import (
    sign_newton_schulz,
    sign_newton_schulz_batched,
    sign_via_eigendecomposition,
    sign_via_eigendecomposition_batched,
    occupation_function_via_eigendecomposition,
    occupation_function_via_eigendecomposition_batched,
)

from conftest import make_decay_matrix


def random_sparse_symmetric(n, density, seed):
    """Random sparse symmetric matrix with a non-trivial pattern."""
    generator = np.random.default_rng(seed)
    dense = generator.normal(size=(n, n))
    dense = (dense + dense.T) / 2.0
    mask = generator.random((n, n)) < density
    mask = mask | mask.T
    dense = np.where(mask, dense, 0.0)
    dense[np.diag_indices(n)] = 3.0 + generator.random(n)
    return sp.csr_matrix(dense)


def random_block_symmetric(n_blocks, block_size, bandwidth, seed):
    """Random banded symmetric block matrix."""
    generator = np.random.default_rng(seed)
    n = n_blocks * block_size
    dense = np.zeros((n, n))
    for i in range(n_blocks):
        for j in range(n_blocks):
            if abs(i - j) <= bandwidth and (i <= j or generator.random() < 0.8):
                block = generator.normal(size=(block_size, block_size))
                dense[
                    i * block_size : (i + 1) * block_size,
                    j * block_size : (j + 1) * block_size,
                ] = block
    dense = (dense + dense.T) / 2.0
    return block_matrix_from_dense(dense, [block_size] * n_blocks)


def random_partition(n, seed):
    """Random partition of range(n) into contiguous-free random groups."""
    generator = np.random.default_rng(seed)
    order = generator.permutation(n)
    groups = []
    position = 0
    while position < n:
        size = int(generator.integers(1, 4))
        groups.append(sorted(int(c) for c in order[position : position + size]))
        position += size
    return groups


class TestElementPlanEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("density", [0.05, 0.2])
    def test_plan_matches_naive_bitwise(self, seed, density):
        matrix = random_sparse_symmetric(50, density, seed)
        method = SubmatrixMethod(lambda a: a @ a)
        for groups in (None, random_partition(50, seed + 100)):
            naive = method.apply_elementwise(matrix, groups, engine="naive")
            planned = method.apply_elementwise(matrix, groups, engine="plan")
            assert naive.submatrix_dimensions == planned.submatrix_dimensions
            assert (naive.result != planned.result).nnz == 0
            assert np.array_equal(
                naive.result.toarray(), planned.result.toarray()
            )

    def test_extraction_matches_reference(self):
        matrix = random_sparse_symmetric(40, 0.1, 7)
        csc = matrix.tocsc()
        groups = random_partition(40, 8)
        plan = ElementSubmatrixPlan(csc, groups)
        packed = plan.pack(csc)
        for index, group in enumerate(groups):
            reference = extract_submatrix(csc, group)
            dense = plan.extract(packed, index)
            assert np.array_equal(reference.data, dense)
            assert np.array_equal(reference.indices, plan.groups[index].indices)
            assert np.array_equal(
                reference.local_columns, plan.groups[index].local_columns
            )

    def test_pack_rejects_different_pattern(self):
        matrix = random_sparse_symmetric(30, 0.1, 1)
        other = random_sparse_symmetric(30, 0.1, 2)
        plan = ElementSubmatrixPlan(matrix.tocsc(), [[c] for c in range(30)])
        with pytest.raises(ValueError):
            plan.pack(other)

    def test_pack_accepts_same_pattern_new_values(self):
        matrix = random_sparse_symmetric(30, 0.1, 1)
        scaled = matrix * 2.0
        groups = [[c] for c in range(30)]
        plan = ElementSubmatrixPlan(matrix.tocsc(), groups)
        method = SubmatrixMethod(lambda a: a @ a)
        planned = method.apply_elementwise(scaled, groups, engine="plan", plan=plan)
        naive = method.apply_elementwise(scaled, groups, engine="naive")
        assert np.array_equal(naive.result.toarray(), planned.result.toarray())


class TestBlockPlanEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("bandwidth", [1, 3])
    def test_plan_matches_naive_bitwise(self, seed, bandwidth):
        matrix = random_block_symmetric(12, 3, bandwidth, seed)
        method = SubmatrixMethod(lambda a: a @ a + a)
        for groups in (None, random_partition(12, seed + 50)):
            naive = method.apply_blockwise(matrix, groups, engine="naive")
            planned = method.apply_blockwise(matrix, groups, engine="plan")
            assert naive.submatrix_dimensions == planned.submatrix_dimensions
            dense_naive = block_matrix_to_dense(naive.result)
            dense_plan = block_matrix_to_dense(planned.result)
            assert np.array_equal(dense_naive, dense_plan)

    def test_heterogeneous_block_sizes(self):
        generator = np.random.default_rng(5)
        sizes = [2, 4, 3, 1, 5, 2]
        n = sum(sizes)
        dense = generator.normal(size=(n, n))
        dense = (dense + dense.T) / 2.0
        matrix = block_matrix_from_dense(dense, sizes)
        method = SubmatrixMethod(lambda a: a @ a)
        groups = [[0, 2], [1], [3, 4], [5]]
        naive = method.apply_blockwise(matrix, groups, engine="naive")
        planned = method.apply_blockwise(matrix, groups, engine="plan")
        assert np.array_equal(
            block_matrix_to_dense(naive.result), block_matrix_to_dense(planned.result)
        )

    def test_extraction_matches_reference(self):
        matrix = random_block_symmetric(10, 3, 2, 9)
        coo = CooBlockList.from_block_matrix(matrix)
        groups = random_partition(10, 11)
        plan = BlockSubmatrixPlan(coo, matrix.row_block_sizes, groups)
        packed = plan.pack(matrix)
        for index, group in enumerate(groups):
            reference = extract_block_submatrix(matrix, group, coo)
            dense = plan.extract(packed, index)
            assert np.array_equal(reference.data, dense)
            assert np.array_equal(reference.indices, plan.groups[index].indices)
            assert np.array_equal(
                reference.block_sizes, plan.groups[index].block_sizes
            )

    def test_pattern_superset_packs_missing_blocks_as_zero(self):
        """A pattern that is a superset of the stored blocks matches naive."""
        matrix = random_block_symmetric(8, 2, 1, 3)
        coo = CooBlockList.from_block_matrix(matrix)
        smaller = matrix.copy()
        bi, bj = matrix.block_keys()[0]
        smaller.remove_block(bi, bj)
        method = SubmatrixMethod(lambda a: a @ a)
        naive = method.apply_blockwise(smaller, coo=coo, engine="naive")
        planned = method.apply_blockwise(smaller, coo=coo, engine="plan")
        assert np.array_equal(
            block_matrix_to_dense(naive.result), block_matrix_to_dense(planned.result)
        )

    def test_finalize_blocks_are_views(self):
        """The zero-copy scatter hands out views into one output buffer."""
        matrix = random_block_symmetric(6, 2, 1, 4)
        coo = CooBlockList.from_block_matrix(matrix)
        plan = BlockSubmatrixPlan(
            coo, matrix.row_block_sizes, [[c] for c in range(6)]
        )
        out = plan.new_output()
        result = plan.finalize(out)
        key = result.block_keys()[0]
        block = result.get_block(*key)
        assert block.base is out



def expected_stats(hits, misses, plans, patches=0, groups_rebuilt=0, evictions=0):
    """Full PlanCache.stats dict sans bytes (builds tracks misses)."""
    return {
        "hits": hits,
        "misses": misses,
        "builds": misses,
        "patches": patches,
        "groups_rebuilt": groups_rebuilt,
        "evictions": evictions,
        "plans": plans,
    }

class TestPlanCache:
    def test_cache_hit_on_unchanged_pattern(self):
        cache = PlanCache()
        matrix = random_sparse_symmetric(30, 0.1, 1)
        groups = [[c] for c in range(30)]
        first = cache.element_plan(matrix, groups)
        assert cache.stats == expected_stats(hits=0, misses=1, plans=1)
        second = cache.element_plan(matrix * 3.0, groups)
        assert second is first
        assert cache.stats == expected_stats(hits=1, misses=1, plans=1)

    def test_cache_miss_on_new_pattern_or_grouping(self):
        cache = PlanCache()
        matrix = random_sparse_symmetric(30, 0.1, 1)
        other = random_sparse_symmetric(30, 0.1, 2)
        groups = [[c] for c in range(30)]
        cache.element_plan(matrix, groups)
        cache.element_plan(other, groups)
        assert cache.misses == 2
        cache.element_plan(matrix, random_partition(30, 3))
        assert cache.misses == 3

    def test_block_cache_keyed_by_pattern_content(self):
        cache = PlanCache()
        matrix = random_block_symmetric(8, 2, 1, 3)
        coo_a = CooBlockList.from_block_matrix(matrix)
        coo_b = CooBlockList.from_block_matrix(matrix.copy())
        groups = [[c] for c in range(8)]
        plan_a = cache.block_plan(coo_a, matrix.row_block_sizes, groups)
        plan_b = cache.block_plan(coo_b, matrix.row_block_sizes, groups)
        assert plan_b is plan_a
        assert cache.stats["hits"] == 1

    def test_eviction_respects_max_plans(self):
        cache = PlanCache(max_plans=2)
        groups = [[c] for c in range(20)]
        for seed in range(4):
            cache.element_plan(random_sparse_symmetric(20, 0.1, seed), groups)
        assert len(cache) == 2

    def test_method_uses_private_cache_even_when_empty(self):
        """Regression: an empty PlanCache is falsy (__len__) but must be used."""
        cache = PlanCache()
        matrix = random_sparse_symmetric(20, 0.1, 12)
        method = SubmatrixMethod(lambda a: a @ a, plan_cache=cache)
        method.apply_elementwise(matrix, engine="plan")
        method.apply_elementwise(matrix, engine="plan")
        assert cache.stats == expected_stats(hits=1, misses=1, plans=1)

    def test_value_only_mutation_hits_cache_without_stale_result(self):
        """Trajectory contract: the content hash keys the *pattern*, so an
        in-place value mutation reuses the plan — and because plans store
        only index arrays (``pack`` re-reads the values every call), the
        cached plan must never replay the previous values."""
        cache = PlanCache()
        matrix = random_block_symmetric(6, 2, 2, 5)
        coo = CooBlockList.from_block_matrix(matrix)
        method = SubmatrixMethod(lambda a: a @ a, plan_cache=cache)
        first = method.apply_blockwise(matrix, coo=coo, engine="plan")
        blocks = matrix.raw_blocks()
        key = sorted(blocks)[0]
        blocks[key][...] *= 2.0  # in-place value change, same pattern
        assert CooBlockList.from_block_matrix(matrix).fingerprint() == (
            coo.fingerprint()
        )
        second = method.apply_blockwise(matrix, coo=coo, engine="plan")
        assert cache.stats == expected_stats(hits=1, misses=1, plans=1)
        reference = SubmatrixMethod(lambda a: a @ a).apply_blockwise(
            matrix, coo=coo, engine="naive"
        )
        assert np.array_equal(
            block_matrix_to_dense(second.result),
            block_matrix_to_dense(reference.result),
        )
        assert not np.array_equal(
            block_matrix_to_dense(second.result),
            block_matrix_to_dense(first.result),
        )

    def test_block_pattern_change_misses_cache(self):
        """Adding (or removing) a block changes the content hash: replan."""
        cache = PlanCache()
        matrix = random_block_symmetric(6, 2, 2, 5)
        coo = CooBlockList.from_block_matrix(matrix)
        groups = [[c] for c in range(6)]
        cache.block_plan(coo, matrix.row_block_sizes, groups)
        grown = block_matrix_from_dense(
            block_matrix_to_dense(matrix), matrix.row_block_sizes
        )
        grown.put_block(0, 5, np.ones((2, 2)))
        grown.put_block(5, 0, np.ones((2, 2)))
        coo_grown = CooBlockList.from_block_matrix(grown)
        assert coo_grown.fingerprint() != coo.fingerprint()
        cache.block_plan(coo_grown, grown.row_block_sizes, groups)
        assert cache.stats == expected_stats(hits=0, misses=2, plans=2)
        shrunk_coo = CooBlockList.from_block_matrix(matrix)
        cache.block_plan(shrunk_coo, matrix.row_block_sizes, groups)
        assert cache.stats["hits"] == 1  # back to the original pattern

    def test_method_uses_default_cache(self):
        matrix = random_sparse_symmetric(25, 0.1, 6)
        method = SubmatrixMethod(lambda a: a @ a)
        before = DEFAULT_PLAN_CACHE.stats["hits"]
        method.apply_elementwise(matrix, engine="plan")
        method.apply_elementwise(matrix, engine="plan")
        assert DEFAULT_PLAN_CACHE.stats["hits"] > before


class TestBuckets:
    def test_exact_bucketing_groups_equal_dims(self):
        buckets = make_buckets([4, 7, 4, 7, 9])
        assert [(b.dimension, b.members) for b in buckets] == [
            (4, [0, 2]),
            (7, [1, 3]),
            (9, [4]),
        ]

    def test_padded_bucketing_rounds_up(self):
        buckets = make_buckets([3, 5, 8, 13], pad_to=8)
        assert [(b.dimension, b.members) for b in buckets] == [
            (8, [0, 1, 2]),
            (16, [3]),
        ]

    def test_split_chunks(self):
        assert split_chunks([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        assert split_chunks([], 3) == []
        with pytest.raises(ValueError):
            split_chunks([1], 0)


class TestBatchedEvaluation:
    def test_batched_engine_matches_naive(self):
        matrix = random_block_symmetric(12, 3, 2, 1)
        method = SubmatrixMethod(lambda a: a @ a)
        naive = method.apply_blockwise(matrix, engine="naive")
        batched = method.apply_blockwise(matrix, engine="batched")
        assert np.array_equal(
            block_matrix_to_dense(naive.result), block_matrix_to_dense(batched.result)
        )

    def test_padded_batched_sign_matches_unpadded(self):
        """Identity padding is exact for genuine matrix functions."""
        dense = make_decay_matrix(36, bandwidth=3.0)
        dense[np.abs(dense) < 1e-2] = 0.0
        matrix = block_matrix_from_dense(dense, [3] * 12)
        method = SubmatrixMethod(
            sign_via_eigendecomposition,
            batch_function=sign_via_eigendecomposition_batched,
            bucket_pad=8,
        )
        naive = method.apply_blockwise(matrix, engine="naive")
        batched = method.apply_blockwise(matrix, engine="batched")
        assert np.allclose(
            block_matrix_to_dense(naive.result),
            block_matrix_to_dense(batched.result),
            atol=1e-11,
        )

    def test_small_stack_cap_still_covers_all_groups(self):
        matrix = random_block_symmetric(10, 2, 1, 2)
        coo = CooBlockList.from_block_matrix(matrix)
        groups = [[c] for c in range(10)]
        plan = block_plan(coo, matrix.row_block_sizes, groups, cache=PlanCache())
        packed = plan.pack(matrix)
        results = evaluate_batched(
            plan, packed, function=lambda a: a @ a, max_batch_elements=1
        )
        assert len(results) == plan.n_groups
        for index in range(plan.n_groups):
            reference = plan.extract(packed, index)
            assert np.array_equal(results[index], reference @ reference)


class TestBatchedSignKernels:
    def test_batched_eigen_sign_matches_single(self, rng):
        stack = np.stack(
            [make_decay_matrix(12, seed=seed) for seed in range(5)]
        )
        batched = sign_via_eigendecomposition_batched(stack, mu=0.1)
        for index in range(stack.shape[0]):
            single = sign_via_eigendecomposition(stack[index], mu=0.1)
            assert np.allclose(batched[index], single, atol=1e-12)

    def test_batched_occupation_matches_single(self):
        stack = np.stack(
            [make_decay_matrix(10, seed=seed) for seed in range(4)]
        )
        batched = occupation_function_via_eigendecomposition_batched(
            stack, mu=0.05, temperature=300.0
        )
        for index in range(stack.shape[0]):
            single = occupation_function_via_eigendecomposition(
                stack[index], mu=0.05, temperature=300.0
            )
            assert np.allclose(batched[index], single, atol=1e-12)

    def test_batched_newton_schulz_matches_single(self):
        stack = np.stack(
            [make_decay_matrix(14, seed=seed) for seed in range(6)]
        )
        batched = sign_newton_schulz_batched(stack)
        assert batched.converged.all()
        for index in range(stack.shape[0]):
            single = sign_newton_schulz(stack[index])
            assert single.converged
            assert batched.iterations[index] == single.iterations
            assert np.allclose(batched.sign[index], single.sign, atol=1e-12)

    def test_batched_newton_schulz_rejects_non_stack(self):
        with pytest.raises(ValueError):
            sign_newton_schulz_batched(np.eye(3))


class TestSignDFTPlanEquivalence:
    def test_grand_canonical_plan_matches_naive(self, water32_matrices, gap_mu):
        pair = water32_matrices
        fast = SubmatrixDFTSolver(
            solver="eigen", config=EngineConfig(engine="batched", eps_filter=1e-5)
        )
        slow = SubmatrixDFTSolver(
            solver="eigen", config=EngineConfig(engine="naive", eps_filter=1e-5)
        )
        result_fast = fast.compute_density(
            pair.K, pair.S, pair.blocks, mu=gap_mu
        )
        result_slow = slow.compute_density(
            pair.K, pair.S, pair.blocks, mu=gap_mu
        )
        assert result_fast.n_electrons == pytest.approx(result_slow.n_electrons)
        assert result_fast.band_energy == pytest.approx(result_slow.band_energy)
        assert np.allclose(
            result_fast.density_ao, result_slow.density_ao, atol=1e-10
        )
        assert sorted(result_fast.submatrix_dimensions) == sorted(
            result_slow.submatrix_dimensions
        )

    def test_canonical_bisection_plan_matches_naive(self, water32_matrices):
        pair = water32_matrices
        n_electrons = 8.0 * 32  # 8 valence electrons per water molecule
        fast = SubmatrixDFTSolver(config=EngineConfig(engine="batched", eps_filter=1e-5))
        slow = SubmatrixDFTSolver(config=EngineConfig(engine="naive", eps_filter=1e-5))
        result_fast = fast.compute_density(
            pair.K, pair.S, pair.blocks, n_electrons=n_electrons
        )
        result_slow = slow.compute_density(
            pair.K, pair.S, pair.blocks, n_electrons=n_electrons
        )
        assert result_fast.mu == pytest.approx(result_slow.mu, abs=1e-6)
        assert result_fast.n_electrons == pytest.approx(n_electrons, abs=1e-6)

    def test_iterative_solver_plan_matches_naive(self, water32_matrices, gap_mu):
        pair = water32_matrices
        fast = SubmatrixDFTSolver(
            solver="newton_schulz",
            config=EngineConfig(engine="batched", eps_filter=1e-5),
        )
        slow = SubmatrixDFTSolver(
            solver="newton_schulz",
            config=EngineConfig(engine="naive", eps_filter=1e-5),
        )
        result_fast = fast.compute_density(pair.K, pair.S, pair.blocks, mu=gap_mu)
        result_slow = slow.compute_density(pair.K, pair.S, pair.blocks, mu=gap_mu)
        assert np.allclose(
            result_fast.density_ao, result_slow.density_ao, atol=1e-8
        )
