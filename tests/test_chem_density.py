"""Tests for orthogonalization, occupations and the dense reference solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.chem import (
    band_structure_energy,
    density_from_sign,
    electron_count,
    loewdin_inverse_sqrt,
    orthogonalized_ks,
    reference_density_matrix,
)
from repro.chem.density import (
    KB_EV,
    fermi_occupation,
    find_mu_for_electron_count,
)


class TestLoewdin:
    def test_inverse_sqrt_identity(self):
        assert np.allclose(loewdin_inverse_sqrt(np.eye(5)), np.eye(5))

    def test_inverse_sqrt_property(self, water32_matrices):
        s_inv_sqrt = loewdin_inverse_sqrt(water32_matrices.S)
        S = water32_matrices.S.toarray()
        assert np.allclose(s_inv_sqrt @ S @ s_inv_sqrt, np.eye(S.shape[0]), atol=1e-10)

    def test_symmetric_result(self, water32_matrices):
        s_inv_sqrt = loewdin_inverse_sqrt(water32_matrices.S)
        assert np.allclose(s_inv_sqrt, s_inv_sqrt.T)

    def test_rejects_non_positive_definite(self):
        with pytest.raises(ValueError):
            loewdin_inverse_sqrt(np.diag([1.0, -0.5, 2.0]))

    def test_rejects_asymmetric(self):
        matrix = np.eye(3)
        matrix[0, 1] = 0.5
        with pytest.raises(ValueError):
            loewdin_inverse_sqrt(matrix)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            loewdin_inverse_sqrt(np.ones((2, 3)))


class TestOrthogonalizedKS:
    def test_symmetry(self, water32_matrices):
        k_ortho, _ = orthogonalized_ks(water32_matrices.K, water32_matrices.S)
        dense = k_ortho.toarray()
        assert np.allclose(dense, dense.T)

    def test_filter_reduces_nnz(self, water32_matrices):
        # the 32-molecule box is small, so even the weakest couplings are of
        # order 1e-4; a 1e-2 filter is guaranteed to drop elements
        unfiltered, _ = orthogonalized_ks(water32_matrices.K, water32_matrices.S, 0.0)
        filtered, _ = orthogonalized_ks(water32_matrices.K, water32_matrices.S, 1e-2)
        assert filtered.nnz < unfiltered.nnz

    def test_filter_drops_only_small_elements(self, water32_matrices):
        eps = 1e-4
        filtered, _ = orthogonalized_ks(water32_matrices.K, water32_matrices.S, eps)
        if filtered.nnz:
            assert np.min(np.abs(filtered.data)) >= eps

    def test_eigenvalues_match_generalized_problem(self, water32_matrices):
        """K̃ has the same spectrum as the generalized problem K c = λ S c."""
        from scipy.linalg import eigh

        k_ortho, _ = orthogonalized_ks(water32_matrices.K, water32_matrices.S)
        direct = np.linalg.eigvalsh(k_ortho.toarray())
        generalized = eigh(
            water32_matrices.K.toarray(),
            water32_matrices.S.toarray(),
            eigvals_only=True,
        )
        assert np.allclose(direct, generalized, atol=1e-8)


class TestFermiOccupation:
    def test_zero_temperature_step(self):
        energies = np.array([-1.0, -0.1, 0.1, 1.0])
        occ = fermi_occupation(energies, mu=0.0, temperature=0.0)
        assert np.allclose(occ, [1.0, 1.0, 0.0, 0.0])

    def test_half_occupation_at_mu(self):
        occ = fermi_occupation(np.array([0.5]), mu=0.5, temperature=0.0)
        assert occ[0] == pytest.approx(0.5)

    def test_finite_temperature_smooth(self):
        energies = np.array([-0.1, 0.0, 0.1])
        occ = fermi_occupation(energies, mu=0.0, temperature=300.0)
        assert occ[1] == pytest.approx(0.5)
        assert 0.5 < occ[0] < 1.0
        assert 0.0 < occ[2] < 0.5

    def test_finite_temperature_limit_matches_step(self):
        energies = np.array([-1.0, 1.0])
        occ = fermi_occupation(energies, mu=0.0, temperature=1e-3)
        assert np.allclose(occ, [1.0, 0.0], atol=1e-6)

    def test_kb_value(self):
        assert KB_EV == pytest.approx(8.6173e-5, rel=1e-3)

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            fermi_occupation(np.array([0.0]), 0.0, -1.0)

    def test_no_overflow_far_from_mu(self):
        occ = fermi_occupation(np.array([1e6, -1e6]), mu=0.0, temperature=10.0)
        assert np.isfinite(occ).all()


class TestDensityFromSign:
    def test_projector_from_exact_sign(self, rng):
        n = 20
        q, _ = np.linalg.qr(rng.normal(size=(n, n)))
        eigenvalues = np.concatenate([-np.ones(8), np.ones(12)])
        sign = (q * eigenvalues) @ q.T
        density = density_from_sign(sign)
        # projector: D² = D, trace = number of negative eigenvalues
        assert np.allclose(density @ density, density, atol=1e-12)
        assert np.trace(density) == pytest.approx(8.0)

    def test_sparse_input(self):
        sign = sp.identity(4, format="csr")
        density = density_from_sign(sign)
        assert np.allclose(density, 0.0)

    def test_back_transformation(self, rng):
        n = 10
        sign = np.diag(np.concatenate([-np.ones(4), np.ones(6)]))
        s_inv_sqrt = np.diag(1.0 / np.sqrt(np.linspace(0.5, 2.0, n)))
        density = density_from_sign(sign, s_inv_sqrt)
        expected = s_inv_sqrt @ (0.5 * (np.eye(n) - sign)) @ s_inv_sqrt
        assert np.allclose(density, expected)


class TestReferenceDensityMatrix:
    def test_grand_canonical_counts(self, water32_matrices, gap_mu):
        result = reference_density_matrix(
            water32_matrices.K, water32_matrices.S, mu=gap_mu
        )
        assert result.n_electrons == pytest.approx(8 * 32)

    def test_canonical_matches_grand_canonical(self, water32_matrices, gap_mu):
        grand = reference_density_matrix(
            water32_matrices.K, water32_matrices.S, mu=gap_mu
        )
        canonical = reference_density_matrix(
            water32_matrices.K, water32_matrices.S, n_electrons=8 * 32
        )
        assert canonical.band_energy == pytest.approx(grand.band_energy, abs=1e-8)

    def test_density_idempotent_in_ortho_basis(self, water32_reference):
        density = water32_reference.density_ortho
        assert np.allclose(density @ density, density, atol=1e-10)

    def test_energy_equals_sum_of_occupied_levels(self, water32_reference):
        occupied = water32_reference.orbital_energies[
            water32_reference.occupations > 0.5
        ]
        assert water32_reference.band_energy == pytest.approx(
            2.0 * occupied.sum(), rel=1e-10
        )

    def test_requires_mu_or_electrons(self, water32_matrices):
        with pytest.raises(ValueError):
            reference_density_matrix(water32_matrices.K, water32_matrices.S)

    def test_finite_temperature_increases_entropy(self, water32_matrices, gap_mu):
        cold = reference_density_matrix(
            water32_matrices.K, water32_matrices.S, mu=gap_mu, temperature=0.0
        )
        # the model gap is ~15 eV, so a very high electronic temperature is
        # needed before fractional occupations become visible
        hot = reference_density_matrix(
            water32_matrices.K, water32_matrices.S, mu=gap_mu, temperature=40000.0
        )
        # fractional occupations appear at high temperature
        assert np.all((cold.occupations == 0.0) | (cold.occupations == 1.0))
        assert np.any((hot.occupations > 1e-6) & (hot.occupations < 1 - 1e-6))


class TestHelpers:
    def test_electron_count_dense_and_sparse(self):
        density = np.diag([1.0, 1.0, 0.5, 0.0])
        assert electron_count(density) == pytest.approx(5.0)
        assert electron_count(sp.csr_matrix(density)) == pytest.approx(5.0)

    def test_band_energy_sparse_matches_dense(self, rng):
        d = rng.random((6, 6))
        k = rng.random((6, 6))
        dense = band_structure_energy(d, k)
        sparse = band_structure_energy(sp.csr_matrix(d), sp.csr_matrix(k))
        assert dense == pytest.approx(sparse)

    def test_find_mu_bisection(self):
        energies = np.linspace(-5.0, 5.0, 11)
        mu = find_mu_for_electron_count(energies, n_electrons=10.0)
        # five orbitals below mu -> 10 electrons
        assert energies[4] < mu < energies[5]

    def test_find_mu_rejects_impossible_count(self):
        with pytest.raises(ValueError):
            find_mu_for_electron_count(np.array([0.0, 1.0]), n_electrons=10.0)
