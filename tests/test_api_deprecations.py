"""Deprecation shims of the legacy solver surface.

The legacy kwargs (``use_plan=``, bare ``backend=`` / ``max_workers=`` on
:class:`SubmatrixDFTSolver`) keep working but emit a
:class:`DeprecationWarning`; these tests assert that the warning fires and
that the shimmed path produces results bitwise identical to the new
``config=EngineConfig(...)`` path.

Note: every *call* of the deprecated surface here is wrapped in
``pytest.warns`` so this file stays clean under the strict CI pass
(``python -W error::DeprecationWarning``).
"""

import numpy as np
import pytest

from repro.api import EngineConfig
from repro.core import SubmatrixDFTSolver

EPS = 1e-5


def _density(solver, pair, gap_mu):
    return solver.compute_density(pair.K, pair.S, pair.blocks, mu=gap_mu)


class TestSolverDeprecations:
    def test_use_plan_warns_and_maps_to_engine(self):
        with pytest.warns(DeprecationWarning, match="use_plan"):
            legacy = SubmatrixDFTSolver(use_plan=False)
        assert legacy.config.engine == "naive"
        assert not legacy.use_plan
        with pytest.warns(DeprecationWarning, match="use_plan"):
            legacy = SubmatrixDFTSolver(use_plan=True)
        assert legacy.config.engine == "batched"
        assert legacy.use_plan

    def test_backend_and_max_workers_warn(self):
        with pytest.warns(DeprecationWarning, match="backend"):
            solver = SubmatrixDFTSolver(backend="thread")
        assert solver.backend == "thread"
        with pytest.warns(DeprecationWarning, match="max_workers"):
            solver = SubmatrixDFTSolver(max_workers=2)
        assert solver.max_workers == 2

    def test_config_path_does_not_warn(self, recwarn):
        SubmatrixDFTSolver(
            eps_filter=EPS,
            config=EngineConfig(engine="batched", backend="thread", max_workers=2),
        )
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_use_plan_true_matches_config_bitwise(self, water32_matrices, gap_mu):
        pair = water32_matrices
        with pytest.warns(DeprecationWarning):
            legacy = SubmatrixDFTSolver(eps_filter=EPS, use_plan=True)
        modern = SubmatrixDFTSolver(
            config=EngineConfig(engine="batched", eps_filter=EPS)
        )
        legacy_result = _density(legacy, pair, gap_mu)
        modern_result = _density(modern, pair, gap_mu)
        assert np.array_equal(legacy_result.density_ao, modern_result.density_ao)
        assert np.array_equal(
            legacy_result.density_ortho.toarray(),
            modern_result.density_ortho.toarray(),
        )
        assert legacy_result.mu == modern_result.mu
        assert legacy_result.band_energy == modern_result.band_energy

    def test_use_plan_false_matches_config_bitwise(self, water32_matrices, gap_mu):
        pair = water32_matrices
        with pytest.warns(DeprecationWarning):
            legacy = SubmatrixDFTSolver(eps_filter=EPS, use_plan=False)
        modern = SubmatrixDFTSolver(
            config=EngineConfig(engine="naive", eps_filter=EPS)
        )
        legacy_result = _density(legacy, pair, gap_mu)
        modern_result = _density(modern, pair, gap_mu)
        assert np.array_equal(legacy_result.density_ao, modern_result.density_ao)

    def test_deprecated_backend_matches_config_bitwise(
        self, water32_matrices, gap_mu
    ):
        pair = water32_matrices
        with pytest.warns(DeprecationWarning):
            legacy = SubmatrixDFTSolver(
                eps_filter=EPS, backend="thread", max_workers=2
            )
        modern = SubmatrixDFTSolver(
            config=EngineConfig(
                engine="batched", eps_filter=EPS, backend="thread", max_workers=2
            )
        )
        legacy_result = _density(legacy, pair, gap_mu)
        modern_result = _density(modern, pair, gap_mu)
        assert np.array_equal(legacy_result.density_ao, modern_result.density_ao)

    def test_canonical_ensemble_matches_through_shim(self, water32_matrices):
        pair = water32_matrices
        n_electrons = 8.0 * 32
        with pytest.warns(DeprecationWarning):
            legacy = SubmatrixDFTSolver(eps_filter=EPS, use_plan=True)
        modern = SubmatrixDFTSolver(
            config=EngineConfig(engine="batched", eps_filter=EPS)
        )
        legacy_result = legacy.compute_density(
            pair.K, pair.S, pair.blocks, n_electrons=n_electrons
        )
        modern_result = modern.compute_density(
            pair.K, pair.S, pair.blocks, n_electrons=n_electrons
        )
        assert legacy_result.mu == modern_result.mu
        assert legacy_result.mu_iterations == modern_result.mu_iterations
        assert np.array_equal(legacy_result.density_ao, modern_result.density_ao)
