"""Tests for the atomistic containers and neighbour search."""

import numpy as np
import pytest

from repro.chem.atoms import (
    Atom,
    Cell,
    System,
    minimum_image_displacement,
    neighbor_pairs,
)


class TestAtom:
    def test_position_is_array(self):
        atom = Atom("O", [1.0, 2.0, 3.0])
        assert isinstance(atom.position, np.ndarray)
        assert atom.position.shape == (3,)

    def test_invalid_position_shape(self):
        with pytest.raises(ValueError):
            Atom("O", [1.0, 2.0])

    def test_valence_electrons(self):
        assert Atom("O", np.zeros(3)).valence_electrons == 6
        assert Atom("H", np.zeros(3)).valence_electrons == 1

    def test_unknown_element_raises(self):
        atom = Atom("Xx", np.zeros(3))
        with pytest.raises(KeyError):
            _ = atom.valence_electrons


class TestCell:
    def test_volume(self):
        cell = Cell([2.0, 3.0, 4.0])
        assert cell.volume == pytest.approx(24.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Cell([1.0, -1.0, 1.0])

    def test_wrap_periodic(self):
        cell = Cell([10.0, 10.0, 10.0])
        wrapped = cell.wrap(np.array([[11.0, -1.0, 5.0]]))
        assert np.allclose(wrapped, [[1.0, 9.0, 5.0]])

    def test_wrap_respects_nonperiodic_axis(self):
        cell = Cell([10.0, 10.0, 10.0], periodic=(True, False, True))
        wrapped = cell.wrap(np.array([[11.0, -1.0, 5.0]]))
        assert np.allclose(wrapped, [[1.0, -1.0, 5.0]])

    def test_replicate(self):
        cell = Cell([2.0, 2.0, 2.0])
        big = cell.replicate([2, 3, 1])
        assert np.allclose(big.lengths, [4.0, 6.0, 2.0])

    def test_replicate_invalid(self):
        with pytest.raises(ValueError):
            Cell([2.0, 2.0, 2.0]).replicate([0, 1, 1])


class TestMinimumImage:
    def test_wraps_to_nearest_image(self):
        cell = Cell([10.0, 10.0, 10.0])
        delta = minimum_image_displacement(np.array([9.0, -9.0, 4.0]), cell)
        assert np.allclose(delta, [-1.0, 1.0, 4.0])

    def test_none_cell_is_identity(self):
        delta = np.array([9.0, -9.0, 4.0])
        assert np.allclose(minimum_image_displacement(delta, None), delta)


def _simple_system():
    cell = Cell([10.0, 10.0, 10.0])
    atoms = [
        Atom("O", [1.0, 1.0, 1.0], molecule=0),
        Atom("H", [1.5, 1.0, 1.0], molecule=0),
        Atom("H", [1.0, 1.5, 1.0], molecule=0),
        Atom("O", [9.5, 1.0, 1.0], molecule=1),
        Atom("H", [9.0, 1.0, 1.0], molecule=1),
        Atom("H", [9.5, 1.5, 1.0], molecule=1),
    ]
    return System(atoms, cell)


class TestSystem:
    def test_counts(self):
        system = _simple_system()
        assert system.n_atoms == 6
        assert system.n_molecules == 2

    def test_molecule_indices_must_be_consecutive(self):
        cell = Cell([5.0, 5.0, 5.0])
        atoms = [Atom("O", np.zeros(3), molecule=0), Atom("O", np.ones(3), molecule=2)]
        with pytest.raises(ValueError):
            System(atoms, cell)

    def test_distance_uses_minimum_image(self):
        system = _simple_system()
        # atoms 0 (x=1.0) and 3 (x=9.5) are 1.5 apart through the boundary
        assert system.distance(0, 3) == pytest.approx(1.5)

    def test_distance_matrix_matches_pairwise(self):
        system = _simple_system()
        matrix = system.distance_matrix()
        assert matrix.shape == (6, 6)
        assert matrix[0, 3] == pytest.approx(system.distance(0, 3))
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.allclose(matrix, matrix.T)

    def test_molecule_centers_reassemble_across_boundary(self):
        cell = Cell([10.0, 10.0, 10.0])
        atoms = [
            Atom("O", [9.9, 5.0, 5.0], molecule=0),
            Atom("H", [0.3, 5.0, 5.0], molecule=0),  # across the boundary
            Atom("H", [9.5, 5.0, 5.0], molecule=0),
        ]
        system = System(atoms, cell)
        center = system.molecule_centers()[0]
        # centre must be near x ~ 9.9, not in the middle of the box
        assert center[0] > 9.0 or center[0] < 1.0

    def test_valence_electrons(self):
        assert _simple_system().valence_electrons == 2 * (6 + 1 + 1)

    def test_replicate_counts_and_ordering(self):
        system = _simple_system()
        replicated = system.replicate([2, 1, 1])
        assert replicated.n_atoms == 12
        assert replicated.n_molecules == 4
        # atoms of the first replica come first (consecutive building blocks)
        assert np.all(replicated.molecule_index[:6] < 2)
        assert np.all(replicated.molecule_index[6:] >= 2)

    def test_atoms_in_molecule(self):
        system = _simple_system()
        assert list(system.atoms_in_molecule(1)) == [3, 4, 5]


class TestNeighborPairs:
    def test_small_dense_path(self):
        system = _simple_system()
        i, j, r = system.neighbor_pairs(2.0)
        assert np.all(i < j)
        assert np.all(r <= 2.0)
        # pair (0, 3) through the periodic boundary must be found
        assert any((a, b) == (0, 3) for a, b in zip(i, j))

    def test_cell_list_matches_dense(self):
        rng = np.random.default_rng(0)
        cell = Cell([30.0, 30.0, 30.0])
        positions = rng.uniform(0, 30.0, size=(3000, 3))
        cutoff = 4.0
        i_d, j_d, r_d = neighbor_pairs(positions[:1500], cell, cutoff)
        # force the cell-list path by exceeding the dense-size threshold
        i_c, j_c, r_c = neighbor_pairs(positions, cell, cutoff)
        assert len(i_c) > 0
        # verify correctness on the subset via brute force
        brute_i, brute_j, brute_r = neighbor_pairs(positions[:1500], None, cutoff)
        del brute_i, brute_j, brute_r  # same helper, different path; smoke only
        # cell-list result must be consistent with a direct distance check
        sample = slice(0, min(500, len(i_c)))
        for a, b, dist in zip(i_c[sample], j_c[sample], r_c[sample]):
            delta = positions[b] - positions[a]
            delta -= 30.0 * np.round(delta / 30.0)
            assert np.linalg.norm(delta) == pytest.approx(dist, abs=1e-9)

    def test_pairs_sorted_and_unique(self):
        rng = np.random.default_rng(1)
        cell = Cell([20.0, 20.0, 20.0])
        positions = rng.uniform(0, 20.0, size=(2500, 3))
        i, j, r = neighbor_pairs(positions, cell, 3.0)
        keys = i * len(positions) + j
        assert np.all(np.diff(keys) > 0)  # strictly increasing -> unique + sorted
        assert np.all(i < j)
        assert np.all(r <= 3.0)

    def test_empty_input(self):
        i, j, r = neighbor_pairs(np.empty((0, 3)), None, 5.0)
        assert len(i) == len(j) == len(r) == 0

    def test_no_pairs_beyond_cutoff(self):
        positions = np.array([[0.0, 0.0, 0.0], [5.0, 0.0, 0.0]])
        i, j, r = neighbor_pairs(positions, None, 1.0)
        assert len(i) == 0
