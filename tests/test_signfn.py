"""Tests for the matrix sign function algorithms and inverse p-th roots."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.signfn import (
    inverse_pth_root,
    inverse_pth_root_newton,
    involutority_error,
    pade_polynomial_coefficients,
    sign_newton_schulz,
    sign_newton_schulz_sparse,
    sign_pade,
    sign_via_eigendecomposition,
    spectral_scale_estimate,
)
from repro.signfn.eigen import (
    extended_signum,
    occupation_function_via_eigendecomposition,
    symmetric_eigendecomposition,
)


def make_sign_test_matrix(rng, n=50, gap=0.5):
    """Symmetric matrix with eigenvalues bounded away from zero."""
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    negative = rng.uniform(-5.0, -gap, size=n // 2)
    positive = rng.uniform(gap, 5.0, size=n - n // 2)
    eigenvalues = np.concatenate([negative, positive])
    matrix = (q * eigenvalues) @ q.T
    exact = (q * np.sign(eigenvalues)) @ q.T
    return matrix, exact


class TestUtils:
    def test_spectral_scale_bounds_radius(self, rng):
        matrix, _ = make_sign_test_matrix(rng)
        bound = spectral_scale_estimate(matrix)
        radius = np.max(np.abs(np.linalg.eigvalsh(matrix)))
        assert bound >= radius

    def test_spectral_scale_sparse_matches_dense(self, rng):
        matrix, _ = make_sign_test_matrix(rng, n=30)
        assert spectral_scale_estimate(sp.csr_matrix(matrix)) == pytest.approx(
            spectral_scale_estimate(matrix)
        )

    def test_spectral_scale_zero_matrix(self):
        assert spectral_scale_estimate(np.zeros((4, 4))) == 1.0

    def test_involutority_error_of_exact_sign(self, rng):
        _, exact = make_sign_test_matrix(rng)
        assert involutority_error(exact) < 1e-10

    def test_involutority_error_sparse(self):
        assert involutority_error(sp.identity(5, format="csr")) < 1e-14
        assert involutority_error(2 * sp.identity(5, format="csr")) == pytest.approx(
            3 * np.sqrt(5)
        )


class TestNewtonSchulz:
    def test_converges_to_exact_sign(self, rng):
        matrix, exact = make_sign_test_matrix(rng)
        result = sign_newton_schulz(matrix)
        assert result.converged
        assert np.max(np.abs(result.sign - exact)) < 1e-8

    def test_quadratic_convergence(self, rng):
        matrix, _ = make_sign_test_matrix(rng)
        result = sign_newton_schulz(matrix, convergence_threshold=1e-14)
        residuals = np.array(result.residual_history)
        # the residual should drop by much more than a constant factor at the end
        assert residuals[-1] < 1e-10
        assert result.iterations < 40

    def test_sign_is_involutory(self, rng):
        matrix, _ = make_sign_test_matrix(rng)
        result = sign_newton_schulz(matrix)
        assert involutority_error(result.sign) < 1e-8

    def test_identity_is_fixed_point(self):
        result = sign_newton_schulz(np.eye(8))
        assert np.allclose(result.sign, np.eye(8))
        assert result.iterations <= 2

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            sign_newton_schulz(np.ones((2, 3)))

    def test_max_iterations_respected(self, rng):
        matrix, _ = make_sign_test_matrix(rng)
        result = sign_newton_schulz(matrix, max_iterations=2)
        assert result.iterations == 2
        assert not result.converged

    def test_track_involutority(self, rng):
        matrix, _ = make_sign_test_matrix(rng, n=20)
        result = sign_newton_schulz(matrix, track_involutority=True)
        assert len(result.involutority_history) == result.iterations
        assert result.involutority_history[-1] < result.involutority_history[0]

    def test_flops_counted(self, rng):
        matrix, _ = make_sign_test_matrix(rng, n=20)
        result = sign_newton_schulz(matrix)
        assert result.flops == pytest.approx(result.iterations * 4 * 20**3)


class TestNewtonSchulzSparse:
    def test_matches_dense_for_tight_filter(self, rng):
        matrix, exact = make_sign_test_matrix(rng, n=40)
        result = sign_newton_schulz_sparse(sp.csr_matrix(matrix), eps_filter=1e-12)
        assert result.converged
        assert np.max(np.abs(result.sign.toarray() - exact)) < 1e-6

    def test_filtering_keeps_sparsity(self, water32_matrices, gap_mu):
        from repro.chem import orthogonalized_ks

        k_ortho, _ = orthogonalized_ks(
            water32_matrices.K, water32_matrices.S, eps_filter=1e-6
        )
        n = k_ortho.shape[0]
        shifted = k_ortho - gap_mu * sp.identity(n, format="csr")
        result = sign_newton_schulz_sparse(shifted.tocsr(), eps_filter=1e-6)
        assert result.converged
        assert result.sign.nnz < n * n
        assert len(result.nnz_history) == result.iterations

    def test_requires_sparse_input(self, rng):
        matrix, _ = make_sign_test_matrix(rng, n=10)
        with pytest.raises(TypeError):
            sign_newton_schulz_sparse(matrix)

    def test_looser_filter_fewer_nonzeros(self, rng):
        matrix, _ = make_sign_test_matrix(rng, n=40)
        tight = sign_newton_schulz_sparse(sp.csr_matrix(matrix), eps_filter=1e-12)
        loose = sign_newton_schulz_sparse(sp.csr_matrix(matrix), eps_filter=1e-3)
        assert loose.sign.nnz <= tight.sign.nnz

    def test_flops_positive(self, rng):
        matrix, _ = make_sign_test_matrix(rng, n=20)
        result = sign_newton_schulz_sparse(sp.csr_matrix(matrix), eps_filter=1e-10)
        assert result.flops > 0

    def test_dense_kernel_variant_matches_sparse(self, rng):
        """The BLAS-kernel variant is numerically equivalent to the sparse one."""
        from repro.signfn import sign_newton_schulz_filtered_dense

        matrix, _ = make_sign_test_matrix(rng, n=40)
        sparse_result = sign_newton_schulz_sparse(
            sp.csr_matrix(matrix), eps_filter=1e-6
        )
        dense_result = sign_newton_schulz_filtered_dense(matrix, eps_filter=1e-6)
        assert dense_result.iterations == sparse_result.iterations
        assert np.max(
            np.abs(dense_result.sign.toarray() - sparse_result.sign.toarray())
        ) < 1e-10
        assert dense_result.flops == pytest.approx(sparse_result.flops)

    def test_dense_kernel_variant_rejects_non_square(self):
        from repro.signfn import sign_newton_schulz_filtered_dense

        with pytest.raises(ValueError):
            sign_newton_schulz_filtered_dense(np.ones((3, 4)))


class TestPade:
    def test_coefficients_second_order_is_newton_schulz(self):
        assert np.allclose(pade_polynomial_coefficients(2), [1.5, -0.5])

    def test_coefficients_third_order_matches_eq19(self):
        """Eq. 19: X (15 - 10 X^2 + 3 X^4) / 8."""
        assert np.allclose(
            pade_polynomial_coefficients(3), [15.0 / 8.0, -10.0 / 8.0, 3.0 / 8.0]
        )

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            pade_polynomial_coefficients(1)

    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_converges_for_all_orders(self, rng, order):
        matrix, exact = make_sign_test_matrix(rng, n=40)
        result = sign_pade(matrix, order=order)
        assert result.converged
        assert np.max(np.abs(result.sign - exact)) < 1e-7

    def test_higher_order_needs_fewer_iterations(self, rng):
        matrix, _ = make_sign_test_matrix(rng, n=40)
        second = sign_pade(matrix, order=2, convergence_threshold=1e-12)
        third = sign_pade(matrix, order=3, convergence_threshold=1e-12)
        assert third.iterations <= second.iterations

    def test_callback_invoked(self, rng):
        matrix, _ = make_sign_test_matrix(rng, n=20)
        seen = []
        sign_pade(matrix, callback=lambda k, x: seen.append(k))
        assert seen == list(range(1, len(seen) + 1))

    def test_involutority_history_decreases(self, rng):
        matrix, _ = make_sign_test_matrix(rng, n=30)
        result = sign_pade(matrix, order=3)
        history = result.involutority_history
        assert history[-1] < history[0]

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            sign_pade(np.ones((2, 3)))


class TestEigenSign:
    def test_matches_iterative(self, rng):
        matrix, exact = make_sign_test_matrix(rng)
        assert np.allclose(sign_via_eigendecomposition(matrix), exact, atol=1e-10)

    def test_shift_by_mu(self, rng):
        n = 30
        q, _ = np.linalg.qr(rng.normal(size=(n, n)))
        eigenvalues = np.linspace(-2.0, 2.0, n)
        matrix = (q * eigenvalues) @ q.T
        mu = 0.7
        shifted_sign = sign_via_eigendecomposition(matrix, mu=mu)
        expected = (q * np.sign(eigenvalues - mu)) @ q.T
        assert np.allclose(shifted_sign, expected, atol=1e-10)

    def test_extended_signum_zero(self):
        values = np.array([-1.0, 0.0, 1.0])
        assert np.array_equal(extended_signum(values), [-1.0, 0.0, 1.0])

    def test_extended_signum_tolerance(self):
        values = np.array([-1e-12, 1e-12, 0.5])
        result = extended_signum(values, zero_tolerance=1e-10)
        assert np.array_equal(result, [0.0, 0.0, 1.0])

    def test_eigenvalue_exactly_at_mu_maps_to_zero(self, rng):
        """Paper Eq. 12: eigenvalues on the 'imaginary axis' give sign 0."""
        matrix = np.diag([1.0, 2.0, 3.0])
        sign = sign_via_eigendecomposition(matrix, mu=2.0, zero_tolerance=1e-12)
        assert np.allclose(np.diag(sign), [-1.0, 0.0, 1.0])

    def test_asymmetric_rejected(self, rng):
        matrix = rng.normal(size=(5, 5))
        with pytest.raises(ValueError):
            symmetric_eigendecomposition(matrix)

    def test_occupation_function_projector(self, rng):
        matrix, _ = make_sign_test_matrix(rng, n=20)
        occupation = occupation_function_via_eigendecomposition(matrix, mu=0.0)
        # projector onto the negative-eigenvalue subspace
        assert np.allclose(occupation @ occupation, occupation, atol=1e-10)
        assert np.trace(occupation) == pytest.approx(10.0)

    def test_occupation_function_finite_temperature(self):
        matrix = np.diag([-1.0, 0.0, 1.0])
        occupation = occupation_function_via_eigendecomposition(
            matrix, mu=0.0, temperature=3000.0
        )
        diag = np.diag(occupation)
        assert diag[1] == pytest.approx(0.5)
        assert 0.5 < diag[0] < 1.0


class TestInverseRoots:
    def make_spd(self, rng, n=30):
        a = rng.normal(size=(n, n))
        return a @ a.T + n * np.eye(n)

    def test_inverse_square_root(self, rng):
        matrix = self.make_spd(rng)
        root = inverse_pth_root(matrix, 2)
        assert np.allclose(root @ matrix @ root, np.eye(matrix.shape[0]), atol=1e-9)

    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_inverse_pth_root_property(self, rng, p):
        matrix = self.make_spd(rng, n=20)
        root = inverse_pth_root(matrix, p)
        product = np.linalg.matrix_power(root, p) @ matrix
        assert np.allclose(product, np.eye(20), atol=1e-8)

    def test_rejects_indefinite(self):
        with pytest.raises(ValueError):
            inverse_pth_root(np.diag([1.0, -1.0]), 2)

    def test_rejects_bad_p(self, rng):
        with pytest.raises(ValueError):
            inverse_pth_root(self.make_spd(rng, 5), 0)

    @pytest.mark.parametrize("p", [2, 3])
    def test_newton_iteration_matches_eigendecomposition(self, rng, p):
        matrix = self.make_spd(rng, n=25)
        direct = inverse_pth_root(matrix, p)
        iterative = inverse_pth_root_newton(matrix, p)
        assert iterative.converged
        assert np.max(np.abs(iterative.root - direct)) < 1e-8

    def test_newton_residual_history_decreases(self, rng):
        matrix = self.make_spd(rng, n=15)
        result = inverse_pth_root_newton(matrix, 2)
        assert result.residual_history[-1] < result.residual_history[0]

    def test_sign_from_inverse_root_identity(self, rng):
        """sign(A) = A (A^2)^{-1/2} (Eq. 8)."""
        matrix, exact = make_sign_test_matrix(rng, n=25)
        via_root = matrix @ inverse_pth_root(matrix @ matrix, 2)
        assert np.allclose(via_root, exact, atol=1e-8)
