"""Integration tests crossing subsystem boundaries.

These tests exercise the full pipeline the paper describes — water system →
model matrices → orthogonalization/filtering → submatrix sign evaluation →
density matrix / energy — and compare the linear-scaling methods against each
other and against the cubic-scaling dense reference.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.chem import (
    HamiltonianModel,
    build_block_pattern,
    build_matrices,
    orthogonalized_ks,
    reference_density_matrix,
    water_box,
)
from repro.chem.basis import DZVP, SZV
from repro.chem.density import band_structure_energy, density_from_sign
from repro.core import (
    SubmatrixMethod,
    newton_schulz_cost,
    submatrix_method_cost,
    single_column_groups,
)
from repro.core.sign_dft import SubmatrixDFTSolver
from repro.core.submatrix import submatrix_dimension
from repro.dbcsr import CooBlockList
from repro.parallel import MachineModel
from repro.signfn import sign_newton_schulz_sparse, sign_via_eigendecomposition


class TestSubmatrixVsNewtonSchulz:
    """The two linear-scaling routes must agree with each other (Figs. 6/7)."""

    def test_energies_agree(self, water32_matrices, gap_mu, water32):
        eps = 1e-6
        k_ortho, s_inv_sqrt = orthogonalized_ks(
            water32_matrices.K, water32_matrices.S, eps
        )
        n = k_ortho.shape[0]
        shifted = (k_ortho - gap_mu * sp.identity(n, format="csr")).tocsr()

        # Newton-Schulz on the sparse matrix (CP2K default route)
        ns_sign = sign_newton_schulz_sparse(shifted, eps_filter=eps).sign
        ns_density = density_from_sign(ns_sign, s_inv_sqrt)
        ns_energy = band_structure_energy(ns_density, water32_matrices.K.toarray())

        # submatrix method route
        solver = SubmatrixDFTSolver(eps_filter=eps)
        sm = solver.compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        per_atom_mev = abs(ns_energy - sm.band_energy) / water32.n_atoms * 1000
        assert per_atom_mev < 1.0

    def test_both_agree_with_dense_reference(
        self, water32_matrices, water32_reference, gap_mu, water32
    ):
        eps = 1e-7
        solver = SubmatrixDFTSolver(eps_filter=eps)
        sm = solver.compute_density(
            water32_matrices.K, water32_matrices.S, water32_matrices.blocks, mu=gap_mu
        )
        error = abs(sm.band_energy - water32_reference.band_energy)
        assert error / water32.n_atoms * 1000 < 0.5


class TestElementVsBlockGranularity:
    def test_block_level_close_to_element_level(self, water32_matrices, gap_mu):
        eps = 1e-6
        k_ortho, _ = orthogonalized_ks(water32_matrices.K, water32_matrices.S, eps)
        n = k_ortho.shape[0]
        shifted = (k_ortho - gap_mu * sp.identity(n, format="csr")).tocsr()
        method = SubmatrixMethod(sign_via_eigendecomposition)
        element_result = method.apply_elementwise(shifted)

        from repro.dbcsr.convert import block_matrix_from_csr, block_matrix_to_csr

        blocked = block_matrix_from_csr(
            shifted, water32_matrices.blocks.block_sizes
        )
        block_result = method.apply_blockwise(blocked)
        a = element_result.result.toarray()
        b = block_matrix_to_csr(block_result.result).toarray()
        # block-level submatrices are supersets of element-level ones, so both
        # must be close to each other on the shared pattern
        shared = (a != 0) & (b != 0)
        assert np.max(np.abs((a - b)[shared])) < 0.05


class TestLargerBasisSet:
    def test_dzvp_submatrices_are_larger(self, water64):
        """Fig. 4: larger basis sets lead to larger submatrices."""
        szv_pattern, szv_blocks = build_block_pattern(
            water64, HamiltonianModel(basis=SZV), eps_filter=1e-5
        )
        dzvp_pattern, dzvp_blocks = build_block_pattern(
            water64, HamiltonianModel(basis=DZVP), eps_filter=1e-5
        )
        szv_dim = submatrix_dimension(szv_pattern, szv_blocks.block_sizes, 10)
        dzvp_dim = submatrix_dimension(dzvp_pattern, dzvp_blocks.block_sizes, 10)
        assert dzvp_dim > szv_dim

    def test_dzvp_density_matrix_works(self, water32, gap_mu):
        pair = build_matrices(water32, model=HamiltonianModel(basis=DZVP))
        reference = reference_density_matrix(pair.K, pair.S, mu=gap_mu)
        solver = SubmatrixDFTSolver(eps_filter=1e-6)
        result = solver.compute_density(pair.K, pair.S, pair.blocks, mu=gap_mu)
        error = abs(result.band_energy - reference.band_energy)
        assert error / water32.n_atoms * 1000 < 1.0
        assert result.n_electrons == pytest.approx(reference.n_electrons, abs=0.1)


class TestPatternPipeline:
    """Pattern-level pipeline used for the large-system cost analyses."""

    def test_pattern_cost_pipeline_runs(self, water64):
        pattern, blocks = build_block_pattern(water64, eps_filter=1e-5)
        machine = MachineModel()
        submatrix = submatrix_method_cost(
            pattern, blocks.block_sizes, n_ranks=8, machine=machine
        )
        newton = newton_schulz_cost(
            pattern, blocks.block_sizes, n_ranks=8, machine=machine
        )
        assert submatrix.simulated.total > 0
        assert newton.simulated.total > 0

    def test_submatrix_dimension_saturates_with_slab_length(self):
        """Fig. 4: beyond the interaction range the submatrix dimension is
        independent of the system size (linear-scaling regime)."""
        dims = []
        for nx in (2, 3, 4):
            system = water_box((nx, 1, 1))
            pattern, blocks = build_block_pattern(system, eps_filter=1e-5)
            coo = CooBlockList.from_pattern(pattern)
            # probe a column in the middle of the slab
            middle = system.n_molecules // 2
            dims.append(
                submatrix_dimension(coo, blocks.block_sizes, middle)
            )
        assert dims[2] <= dims[1] * 1.2
        # while the total matrix dimension keeps growing
        assert 4 * 32 * 6 > 2 * 32 * 6

    def test_filter_threshold_controls_pattern_density(self, water64):
        loose, _ = build_block_pattern(water64, eps_filter=1e-3)
        tight, _ = build_block_pattern(water64, eps_filter=1e-8)
        assert tight.nnz > loose.nnz

    def test_cost_model_crossover_in_eps(self, water64):
        """Fig. 6 shape: for loose filters the submatrix method is cheaper,
        for very tight filters Newton-Schulz eventually wins."""
        machine = MachineModel()
        ratios = []
        for eps in (1e-2, 1e-8):
            pattern, blocks = build_block_pattern(water64, eps_filter=eps)
            sm = submatrix_method_cost(pattern, blocks.block_sizes, 8, machine)
            ns = newton_schulz_cost(pattern, blocks.block_sizes, 8, machine)
            ratios.append(sm.simulated.total / ns.simulated.total)
        assert ratios[0] < ratios[1]


class TestEndToEndCanonicalMD:
    def test_repeated_canonical_solves_are_stable(self, water32_matrices):
        """Simulate the usage pattern of an MD loop: repeated canonical
        density builds with slightly different electron counts."""
        solver = SubmatrixDFTSolver(eps_filter=1e-5)
        previous_mu = None
        for n_electrons in (256, 254, 256):
            result = solver.compute_density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                n_electrons=n_electrons,
            )
            assert result.n_electrons == pytest.approx(n_electrons, abs=0.5)
            if previous_mu is not None and n_electrons == 256:
                assert result.mu == pytest.approx(previous_mu, abs=1e-6)
            if n_electrons == 256:
                previous_mu = result.mu
