"""Tests for the basis-set models."""

import pytest

from repro.chem.basis import DZVP, SZV, BasisSet, get_basis


class TestRegisteredBasisSets:
    def test_szv_block_sizes(self):
        """SZV: 1 function on H, 4 on O -> 6 per water molecule."""
        assert SZV.functions_for("H") == 1
        assert SZV.functions_for("O") == 4
        assert SZV.water_block_size == 6

    def test_dzvp_block_sizes(self):
        """DZVP: 5 functions on H, 13 on O -> 23 per water molecule."""
        assert DZVP.functions_for("H") == 5
        assert DZVP.functions_for("O") == 13
        assert DZVP.water_block_size == 23

    def test_dzvp_is_more_long_ranged(self):
        """Larger basis sets are more long-ranged (paper Sec. V-C)."""
        assert DZVP.decay_length > SZV.decay_length

    def test_functions_for_molecule(self):
        assert SZV.functions_for_molecule(["O", "H", "H"]) == 6
        assert DZVP.functions_for_molecule(["O", "H", "H"]) == 23

    def test_unknown_element(self):
        with pytest.raises(KeyError):
            SZV.functions_for("Zz")


class TestLookup:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("SZV", SZV),
            ("szv", SZV),
            ("SZV-MOLOPT-SR-GTH", SZV),
            ("DZVP", DZVP),
            ("dzvp-molopt-sr-gth", DZVP),
        ],
    )
    def test_get_basis(self, name, expected):
        assert get_basis(name) is expected

    def test_unknown_basis(self):
        with pytest.raises(KeyError):
            get_basis("TZV2P")


class TestCustomBasis:
    def test_custom_basis_set(self):
        basis = BasisSet(
            name="custom",
            functions_per_element={"H": 2, "O": 5},
            decay_length=1.1,
            overlap_decay_length=0.8,
        )
        assert basis.water_block_size == 9
        assert basis.functions_for_molecule(["H", "H"]) == 4
