"""Tests for the simulated-parallelism substrate."""

import numpy as np
import pytest

from repro.parallel import (
    CartesianGrid2D,
    MachineModel,
    SimComm,
    TrafficLog,
    balanced_dims,
    map_parallel,
)
from repro.parallel.comm import payload_nbytes
from repro.parallel.stats import RankCounters


class TestTrafficLog:
    def test_record_flops(self):
        log = TrafficLog(2)
        log.record_flops(0, 100.0)
        log.record_flops(1, 50.0, sparse=True)
        assert log.total_flops() == 150.0
        assert log.ranks[0].flops == 100.0
        assert log.ranks[1].sparse_flops == 50.0

    def test_record_message_updates_both_ends(self):
        log = TrafficLog(3)
        log.record_message(0, 2, 1000.0)
        assert log.ranks[0].bytes_sent == 1000.0
        assert log.ranks[2].bytes_received == 1000.0
        assert log.ranks[0].messages_sent == 1
        assert log.ranks[2].messages_received == 1

    def test_self_message_is_free(self):
        log = TrafficLog(2)
        log.record_message(1, 1, 1000.0)
        assert log.total_bytes_sent() == 0.0

    def test_broadcast_volume(self):
        log = TrafficLog(4)
        log.record_broadcast(0, 100.0)
        assert log.ranks[0].bytes_sent == 300.0
        assert all(log.ranks[r].bytes_received == 100.0 for r in range(1, 4))

    def test_allgather_volume(self):
        log = TrafficLog(4)
        log.record_allgather(10.0)
        # ring allgather: every rank sends (P-1) * nbytes
        assert all(r.bytes_sent == 30.0 for r in log.ranks)

    def test_allgather_single_rank_noop(self):
        log = TrafficLog(1)
        log.record_allgather(10.0)
        assert log.total_bytes_sent() == 0.0

    def test_flop_imbalance(self):
        log = TrafficLog(2)
        log.record_flops(0, 300.0)
        log.record_flops(1, 100.0)
        assert log.flop_imbalance() == pytest.approx(1.5)

    def test_flop_imbalance_empty(self):
        assert TrafficLog(3).flop_imbalance() == 1.0

    def test_merge(self):
        a = TrafficLog(2)
        b = TrafficLog(2)
        a.record_flops(0, 10.0)
        b.record_flops(0, 5.0)
        a.merge(b)
        assert a.ranks[0].flops == 15.0

    def test_merge_rank_mismatch(self):
        with pytest.raises(ValueError):
            TrafficLog(2).merge(TrafficLog(3))

    def test_invalid_rank(self):
        log = TrafficLog(2)
        with pytest.raises(IndexError):
            log.record_flops(5, 1.0)
        with pytest.raises(ValueError):
            log.record_flops(0, -1.0)

    def test_rank_counters_merge(self):
        a = RankCounters(flops=1.0, bytes_sent=2.0, messages_sent=1)
        b = RankCounters(flops=3.0, bytes_received=4.0)
        a.merge(b)
        assert a.flops == 4.0
        assert a.total_bytes == 6.0


class TestSimComm:
    def test_send_recv(self):
        comm = SimComm(2)
        comm.send(0, 1, np.arange(10))
        source, payload = comm.recv(1)
        assert source == 0
        assert np.array_equal(payload, np.arange(10))

    def test_recv_without_message_raises(self):
        comm = SimComm(2)
        with pytest.raises(LookupError):
            comm.recv(0)

    def test_recv_filtered_by_source(self):
        comm = SimComm(3)
        comm.send(0, 2, "from-zero")
        comm.send(1, 2, "from-one")
        source, payload = comm.recv(2, source=1)
        assert source == 1 and payload == "from-one"
        assert comm.pending_messages(2) == 1

    def test_traffic_recorded(self):
        comm = SimComm(2)
        data = np.zeros(100, dtype=np.float64)
        comm.send(0, 1, data)
        assert comm.log.ranks[0].bytes_sent == 800.0

    def test_bcast(self):
        comm = SimComm(3)
        copies = comm.bcast(0, {"a": 1})
        assert len(copies) == 3
        assert comm.log.total_bytes_sent() > 0

    def test_allgather_requires_all_contributions(self):
        comm = SimComm(3)
        with pytest.raises(ValueError):
            comm.allgather([1, 2])

    def test_allreduce_sum(self):
        comm = SimComm(4)
        assert comm.allreduce_sum([1.0, 2.0, 3.0, 4.0]) == 10.0

    def test_alltoallv_shape_check(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.alltoallv(np.zeros((3, 3)))

    def test_payload_nbytes(self):
        assert payload_nbytes(np.zeros(10)) == 80
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40
        assert payload_nbytes({"a": 1.0}) >= 8
        assert payload_nbytes(None) == 0


class TestTopology:
    def test_balanced_dims(self):
        assert balanced_dims(4) == (2, 2)
        assert balanced_dims(12) == (4, 3)
        assert balanced_dims(7) == (7, 1)
        assert balanced_dims(1) == (1, 1)

    def test_coords_round_trip(self):
        grid = CartesianGrid2D(6, (2, 3))
        for rank in range(6):
            row, col = grid.coords(rank)
            assert grid.rank_at(row, col) == rank

    def test_rank_at_wraps(self):
        grid = CartesianGrid2D(4, (2, 2))
        assert grid.rank_at(2, 0) == grid.rank_at(0, 0)
        assert grid.rank_at(-1, 0) == grid.rank_at(1, 0)

    def test_shift(self):
        grid = CartesianGrid2D(4, (2, 2))
        source, destination = grid.shift(0, dimension=1, displacement=1)
        assert destination == 1
        assert source == 1  # periodic with 2 columns

    def test_shift_invalid_dimension(self):
        with pytest.raises(ValueError):
            CartesianGrid2D(4, (2, 2)).shift(0, 2, 1)

    def test_row_and_col_ranks(self):
        grid = CartesianGrid2D(6, (2, 3))
        assert grid.row_ranks(0) == [0, 1, 2]
        assert grid.col_ranks(1) == [1, 4]

    def test_dims_mismatch(self):
        with pytest.raises(ValueError):
            CartesianGrid2D(5, (2, 2))


class TestMachineModel:
    def test_compute_time_scales_with_cores(self):
        machine = MachineModel()
        single = machine.compute_time(1e9, cores=1)
        multi = machine.compute_time(1e9, cores=10)
        assert multi == pytest.approx(single / 10)

    def test_sparse_slower_than_dense(self):
        machine = MachineModel()
        assert machine.compute_time(1e9, sparse=True) > machine.compute_time(1e9)

    def test_message_time(self):
        machine = MachineModel(network_bandwidth=1e9, network_latency=1e-6)
        assert machine.message_time(1e9, messages=1) == pytest.approx(1.0 + 1e-6)

    def test_simulate_uses_critical_path(self):
        machine = MachineModel()
        log = TrafficLog(2)
        log.record_flops(0, 1e9)
        log.record_flops(1, 2e9)
        simulated = machine.simulate(log)
        assert simulated.compute == pytest.approx(machine.compute_time(2e9))

    def test_simulate_includes_communication(self):
        machine = MachineModel()
        log = TrafficLog(2)
        log.record_message(0, 1, 1e9)
        simulated = machine.simulate(log)
        assert simulated.communication > 0
        assert simulated.total == simulated.compute + simulated.communication

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MachineModel(dense_flop_rate=-1.0)
        with pytest.raises(ValueError):
            MachineModel(cores_per_node=0)

    def test_nodes_for_ranks(self):
        machine = MachineModel(cores_per_node=40)
        assert machine.nodes_for_ranks(40) == 1
        assert machine.nodes_for_ranks(41) == 2
        assert machine.nodes_for_ranks(16, ranks_per_node=8) == 2


class TestExecutor:
    def test_serial_matches_parallel(self):
        items = list(range(20))
        serial = map_parallel(lambda x: x * x, items, backend="serial")
        threaded = map_parallel(lambda x: x * x, items, backend="thread", max_workers=2)
        assert serial == threaded == [x * x for x in items]

    def test_order_preserved(self):
        items = [3, 1, 2]
        result = map_parallel(lambda x: x + 10, items, backend="thread", max_workers=2)
        assert result == [13, 11, 12]

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            map_parallel(lambda x: x, [1], backend="gpu")

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            map_parallel(lambda x: x, [1], max_workers=0)

    def test_empty_input(self):
        assert map_parallel(lambda x: x, []) == []

    def test_prebuilt_executor_reused_and_left_running(self):
        from concurrent.futures import ThreadPoolExecutor

        from repro.parallel.executor import make_executor

        with ThreadPoolExecutor(max_workers=2) as pool:
            first = map_parallel(lambda x: x * 2, [1, 2, 3], executor=pool)
            # the pool must survive the call so repeated evaluations (e.g.
            # μ-bisection iterations) reuse it instead of rebuilding one
            second = map_parallel(lambda x: x + 1, [1, 2, 3], executor=pool)
            assert first == [2, 4, 6]
            assert second == [2, 3, 4]
        helper = make_executor("thread", 2)
        try:
            assert map_parallel(lambda x: -x, [4, 5], executor=helper) == [-4, -5]
        finally:
            helper.shutdown()

    def test_make_executor_serial_configurations_return_none(self):
        from repro.parallel.executor import make_executor

        assert make_executor("serial") is None
        assert make_executor("thread", 1) is None
        with pytest.raises(ValueError):
            make_executor("gpu")


class TestRecordMessageMatrix:
    def test_matrix_recorded_as_messages(self):
        from repro.parallel.stats import TrafficLog

        log = TrafficLog(3)
        matrix = np.array([[0.0, 10.0, 0.0], [0.0, 0.0, 5.0], [0.0, 0.0, 0.0]])
        log.record_message_matrix(matrix)
        assert log.ranks[0].bytes_sent == 10.0
        assert log.ranks[1].bytes_received == 10.0
        assert log.ranks[1].bytes_sent == 5.0
        assert log.ranks[2].bytes_received == 5.0
        assert log.ranks[0].messages_sent == 1

    def test_shape_and_sign_validated(self):
        from repro.parallel.stats import TrafficLog

        log = TrafficLog(2)
        with pytest.raises(ValueError):
            log.record_message_matrix(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            log.record_message_matrix(np.full((2, 2), -1.0))
