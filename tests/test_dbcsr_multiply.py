"""Tests for the Cannon-style distributed block multiplication."""

import numpy as np
import pytest

from repro.dbcsr import BlockSparseMatrix, cannon_multiply, multiply_flop_count
from repro.dbcsr.convert import block_matrix_from_dense, block_matrix_to_dense
from repro.dbcsr.distribution import ProcessGrid2D
from repro.parallel.stats import TrafficLog


def random_block_matrix(rng, sizes, density=0.4):
    """Random block-sparse matrix with the given block sizes."""
    n = len(sizes)
    matrix = BlockSparseMatrix(sizes)
    for i in range(n):
        for j in range(n):
            if i == j or rng.random() < density:
                matrix.put_block(i, j, rng.normal(size=(sizes[i], sizes[j])))
    return matrix


class TestCannonCorrectness:
    @pytest.mark.parametrize("grid_size", [1, 2, 3, 4])
    def test_matches_serial_product(self, rng, grid_size):
        sizes = [2, 3, 1, 4, 2, 3, 2]
        a = random_block_matrix(rng, sizes)
        b = random_block_matrix(rng, sizes)
        reference = block_matrix_to_dense(a) @ block_matrix_to_dense(b)
        grid = ProcessGrid2D(grid_size**2, (grid_size, grid_size))
        product, _ = cannon_multiply(a, b, grid)
        assert np.allclose(block_matrix_to_dense(product), reference)

    def test_rectangular_block_structure(self, rng):
        a_dense = rng.normal(size=(5, 7))
        b_dense = rng.normal(size=(7, 6))
        a = block_matrix_from_dense(a_dense, [2, 3], [3, 4])
        b = block_matrix_from_dense(b_dense, [3, 4], [2, 4])
        product, _ = cannon_multiply(a, b, ProcessGrid2D(4, (2, 2)))
        assert np.allclose(block_matrix_to_dense(product), a_dense @ b_dense)

    def test_dimension_mismatch_rejected(self, rng):
        a = random_block_matrix(rng, [2, 2])
        b = random_block_matrix(rng, [3, 3])
        with pytest.raises(ValueError):
            cannon_multiply(a, b)

    def test_non_square_grid_rejected(self, rng):
        a = random_block_matrix(rng, [2, 2])
        with pytest.raises(ValueError):
            cannon_multiply(a, a, ProcessGrid2D(2, (2, 1)))

    def test_default_grid(self, rng):
        a = random_block_matrix(rng, [2, 2, 2])
        product, log = cannon_multiply(a, a)
        assert log.n_ranks == 4
        assert np.allclose(
            block_matrix_to_dense(product),
            block_matrix_to_dense(a) @ block_matrix_to_dense(a),
        )


class TestAccounting:
    def test_flop_count_matches_logged_flops(self, rng):
        sizes = [2, 3, 4, 2]
        a = random_block_matrix(rng, sizes)
        b = random_block_matrix(rng, sizes)
        expected = multiply_flop_count(a, b)
        _, log = cannon_multiply(a, b, ProcessGrid2D(4, (2, 2)))
        assert log.total_flops() == pytest.approx(expected)

    def test_flop_count_matches_serial_counter(self, rng):
        sizes = [3, 2, 5]
        a = random_block_matrix(rng, sizes)
        b = random_block_matrix(rng, sizes)
        counter = [0.0]
        a.matmul(b, flop_counter=counter)
        assert multiply_flop_count(a, b) == pytest.approx(counter[0])

    def test_single_rank_has_no_traffic(self, rng):
        a = random_block_matrix(rng, [2, 2, 2])
        _, log = cannon_multiply(a, a, ProcessGrid2D(1, (1, 1)))
        assert log.total_bytes_sent() == 0.0
        assert log.total_flops() > 0.0

    def test_larger_grid_means_more_messages(self, rng):
        sizes = [2] * 8
        a = random_block_matrix(rng, sizes, density=0.8)
        _, log2 = cannon_multiply(a, a, ProcessGrid2D(4, (2, 2)))
        _, log4 = cannon_multiply(a, a, ProcessGrid2D(16, (4, 4)))
        messages2 = sum(r.messages_sent for r in log2.ranks)
        messages4 = sum(r.messages_sent for r in log4.ranks)
        assert messages4 > messages2

    def test_external_log_is_used(self, rng):
        a = random_block_matrix(rng, [2, 2])
        log = TrafficLog(4)
        _, returned = cannon_multiply(a, a, ProcessGrid2D(4, (2, 2)), log=log)
        assert returned is log

    def test_flops_are_recorded_as_sparse(self, rng):
        """DBCSR small-block products count as low-efficiency (sparse) FLOPs."""
        a = random_block_matrix(rng, [2, 2])
        _, log = cannon_multiply(a, a, ProcessGrid2D(1, (1, 1)))
        assert log.ranks[0].sparse_flops > 0
        assert log.ranks[0].flops == 0

    def test_flop_count_dimension_mismatch(self, rng):
        a = random_block_matrix(rng, [2, 2])
        b = random_block_matrix(rng, [3, 3])
        with pytest.raises(ValueError):
            multiply_flop_count(a, b)
