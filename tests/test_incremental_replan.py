"""Tests for the incremental replan subsystem (PR 5).

Covers the acceptance criteria of the incremental-replan tentpole:

* property test: ``BlockSubmatrixPlan.patch`` followed by
  pack/extract/scatter/finalize is **bitwise identical** to a freshly built
  full plan, for random block insertions, deletions and mixed drifts;
* the sharded path: ``ShardedPlan.patch`` / ``DistributedSubmatrixPipeline
  .patch`` produce bitwise-identical execution results for ranks {1, 2, 4};
* the plan cache's delta key: a patched plan is cached under the
  (old hash, block delta) key and never collides with the content-keyed
  full plan of the same pattern;
* trajectory integration: ``replan="patch"`` trajectories are bitwise
  identical to ``replan="full"`` trajectories for ranks {1, 2, 4}, and
  ``warm_start_mu=True`` converges the electron count within tolerance
  while (documentedly) breaking bitwise μ identity;
* the satellite fixes: ``pack`` canonicalization, ``PlanCache.clear()`` /
  LRU eviction order, and zero-step trajectories.

This file is part of the strict CI pass (``-W error::DeprecationWarning``).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import EngineConfig, SubmatrixContext
from repro.core.plan import (
    PATCH_DELTA_FRACTION,
    BlockSubmatrixPlan,
    ElementSubmatrixPlan,
    PlanCache,
    block_pattern_delta,
)
from repro.core.runner import DistributedSubmatrixPipeline
from repro.core.shard import ShardedPlan
from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.convert import block_matrix_to_csr
from repro.dbcsr.coo import CooBlockList


# --------------------------------------------------------------------------- #
# random pattern helpers
# --------------------------------------------------------------------------- #
def random_pattern(n_blocks, density, rng):
    """Random symmetric block pattern with a full diagonal."""
    mask = rng.random((n_blocks, n_blocks)) < density
    mask |= mask.T
    np.fill_diagonal(mask, True)
    rows, cols = np.nonzero(mask)
    return CooBlockList(rows, cols, n_blocks, n_blocks)


def drift_pattern(coo, rng, n_changes, insert=True, delete=True):
    """Drift a pattern by a few symmetric block insertions/deletions."""
    keys = set(zip(coo.rows.tolist(), coo.cols.tolist()))
    n = coo.n_block_rows
    for _ in range(n_changes):
        i, j = (int(x) for x in rng.integers(0, n, 2))
        if i == j:
            continue
        if (i, j) in keys:
            if delete and len(keys) > n + 2:
                keys.discard((i, j))
                keys.discard((j, i))
        elif insert:
            keys.add((i, j))
            keys.add((j, i))
    rows = [r for r, _ in keys]
    cols = [c for _, c in keys]
    return CooBlockList(rows, cols, n, n)


def matrix_for_pattern(coo, sizes, rng):
    """Symmetric block matrix with random values on the pattern."""
    matrix = BlockSparseMatrix(sizes, sizes)
    blocks = {}
    for bi, bj in zip(coo.rows, coo.cols):
        bi, bj = int(bi), int(bj)
        if (bi, bj) in blocks:
            continue
        if (bj, bi) in blocks:
            block = blocks[(bj, bi)].T.copy()
        else:
            block = rng.standard_normal((int(sizes[bi]), int(sizes[bj])))
            if bi == bj:
                block = 0.5 * (block + block.T)
        matrix.put_block(bi, bj, block)
        blocks[(bi, bj)] = block
    return matrix


def poly(a):
    """A deterministic dense matrix function for bitwise comparisons."""
    symmetric = 0.5 * (a + a.T)
    return symmetric @ symmetric + np.eye(a.shape[0])


# --------------------------------------------------------------------------- #
# tentpole: plan patching is bitwise identical to a full replan
# --------------------------------------------------------------------------- #
class TestPlanPatch:
    @pytest.mark.parametrize("seed", range(8))
    def test_patch_bitwise_identical_to_full_plan(self, seed):
        """Property: patched index arrays equal a fresh full plan's, and so

        does every pack → extract → scatter → finalize product (random
        insertions, deletions and mixed drifts).
        """
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 18))
        sizes = rng.integers(2, 6, n)
        old_coo = random_pattern(n, 0.2, rng)
        mode = seed % 3
        new_coo = drift_pattern(
            old_coo,
            rng,
            int(rng.integers(1, 4)),
            insert=mode != 1,
            delete=mode != 0,
        )
        groups = [[i] for i in range(n)]
        old_plan = BlockSubmatrixPlan(old_coo, sizes, groups)
        full = BlockSubmatrixPlan(new_coo, sizes, groups)
        patched = old_plan.patch(new_coo)

        assert patched.n_values == full.n_values
        assert patched.dimensions == full.dimensions
        for got, want in zip(patched.groups, full.groups):
            assert np.array_equal(got.gather_src, want.gather_src)
            assert np.array_equal(got.gather_dst, want.gather_dst)
            assert np.array_equal(got.scatter_src, want.scatter_src)
            assert np.array_equal(got.scatter_dst, want.scatter_dst)
            assert np.array_equal(got.indices, want.indices)

        matrix = matrix_for_pattern(new_coo, sizes, rng)
        packed_patched = patched.pack(matrix)
        packed_full = full.pack(matrix)
        assert np.array_equal(packed_patched, packed_full)
        out_patched = patched.new_output()
        out_full = full.new_output()
        for g in range(patched.n_groups):
            a = patched.extract(packed_patched, g)
            b = full.extract(packed_full, g)
            assert np.array_equal(a, b)
            patched.scatter(out_patched, g, poly(a))
            full.scatter(out_full, g, poly(b))
        assert np.array_equal(out_patched, out_full)
        got = block_matrix_to_csr(patched.finalize(out_patched))
        want = block_matrix_to_csr(full.finalize(out_full))
        assert np.array_equal(got.toarray(), want.toarray())

    def test_patch_report_accounting(self):
        rng = np.random.default_rng(7)
        n = 12
        sizes = rng.integers(2, 5, n)
        old_coo = random_pattern(n, 0.2, rng)
        new_coo = drift_pattern(old_coo, rng, 2)
        plan = BlockSubmatrixPlan(old_coo, sizes, [[i] for i in range(n)])
        patched = plan.patch(new_coo)
        report = patched.patch_report
        assert report.source is plan
        assert report.groups_rebuilt + report.groups_reused == n
        delta = plan.delta_to(new_coo)
        assert report.blocks_added == delta.added.size
        assert report.blocks_removed == delta.removed.size
        # only the groups named dirty were rebuilt
        assert report.groups_rebuilt == len(report.dirty_groups)

    def test_identical_pattern_patch_rebuilds_nothing(self):
        rng = np.random.default_rng(1)
        n = 10
        sizes = rng.integers(2, 5, n)
        coo = random_pattern(n, 0.25, rng)
        plan = BlockSubmatrixPlan(coo, sizes, [[i] for i in range(n)])
        same = CooBlockList(coo.rows, coo.cols, n, n)
        patched = plan.patch(same)
        assert patched.patch_report.groups_rebuilt == 0
        assert patched.patch_report.blocks_added == 0
        assert patched.patch_report.blocks_removed == 0

    def test_patch_source_is_weakly_referenced(self):
        """A drifting trajectory must not chain every historical plan alive."""
        import gc

        rng = np.random.default_rng(6)
        n = 10
        sizes = rng.integers(2, 5, n)
        coo = random_pattern(n, 0.25, rng)
        plan = BlockSubmatrixPlan(coo, sizes, [[i] for i in range(n)])
        patched = plan.patch(drift_pattern(coo, rng, 1))
        assert patched.patch_report.source is plan
        del plan
        gc.collect()
        assert patched.patch_report.source is None
        # a collected source only disables shard-layout reuse, with a clear
        # error from the direct entry point
        sharded = ShardedPlan(patched, np.arange(n) % 2, 2)
        with pytest.raises(ValueError, match="patched from"):
            sharded.patch(patched)

    def test_patch_rejects_changed_block_grid(self):
        rng = np.random.default_rng(2)
        coo = random_pattern(8, 0.3, rng)
        plan = BlockSubmatrixPlan(coo, rng.integers(2, 5, 8), [[i] for i in range(8)])
        other = random_pattern(9, 0.3, rng)
        with pytest.raises(ValueError, match="unchanged block grid"):
            plan.patch(other)

    def test_element_plans_do_not_patch(self):
        matrix = sp.random(12, 12, density=0.3, random_state=0, format="csc")
        matrix = matrix + matrix.T + sp.identity(12)
        plan = ElementSubmatrixPlan(matrix, [[c] for c in range(12)])
        with pytest.raises(NotImplementedError, match="block-level"):
            plan.patch(matrix)

    def test_block_pattern_delta(self):
        old = CooBlockList([0, 1, 2], [0, 1, 2], 3, 3)
        new = CooBlockList([0, 2, 0, 2], [0, 0, 2, 2], 3, 3)
        delta = block_pattern_delta(old.rows, old.cols, new)
        assert delta.n_old == 3 and delta.n_new == 4
        # (1,1) removed; (2,0) and (0,2) added
        assert delta.removed.tolist() == [old.block_id(1, 1)]
        assert sorted(delta.added.tolist()) == sorted(
            [new.block_id(2, 0), new.block_id(0, 2)]
        )
        survivors = delta.new_id_of_old[delta.new_id_of_old >= 0]
        assert survivors.tolist() == [new.block_id(0, 0), new.block_id(2, 2)]
        assert 0.0 < delta.fraction_changed <= 1.0


# --------------------------------------------------------------------------- #
# tentpole: sharded patching, ranks {1, 2, 4}
# --------------------------------------------------------------------------- #
class TestShardedPatch:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_pipeline_patch_bitwise_identical(self, ranks):
        rng = np.random.default_rng(100 + ranks)
        n = 16
        sizes = rng.integers(2, 5, n)
        old_coo = random_pattern(n, 0.2, rng)
        new_coo = drift_pattern(old_coo, rng, 3)
        cache = PlanCache()
        pipeline = DistributedSubmatrixPipeline(
            old_coo, sizes, ranks, plan_cache=cache
        )
        # warm the pipeline (builds plan, shards and stack layouts)
        warm = matrix_for_pattern(old_coo, sizes, rng)
        pipeline.run(warm, function=poly)

        patched = pipeline.patch(new_coo)
        fresh = DistributedSubmatrixPipeline(new_coo, sizes, ranks)
        matrix = matrix_for_pattern(new_coo, sizes, rng)
        got = block_matrix_to_csr(patched.run(matrix, function=poly).result)
        want = block_matrix_to_csr(fresh.run(matrix, function=poly).result)
        assert np.array_equal(got.toarray(), want.toarray())
        assert cache.stats["patches"] == 1

    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_sharded_plan_patch_matches_fresh_shards(self, ranks):
        """Patched shards gather/scatter exactly like freshly built ones."""
        rng = np.random.default_rng(200 + ranks)
        n = 14
        sizes = rng.integers(2, 5, n)
        old_coo = random_pattern(n, 0.2, rng)
        new_coo = drift_pattern(old_coo, rng, 2)
        groups = [[i] for i in range(n)]
        old_plan = BlockSubmatrixPlan(old_coo, sizes, groups)
        rank_of_group = np.arange(n) % ranks
        old_sharded = ShardedPlan(old_plan, rank_of_group, ranks)
        # touch the memoized stack layouts so patching has caches to carry
        for shard in old_sharded.shards:
            shard.stack_tasks()

        new_plan = old_plan.patch(new_coo)
        patched = old_sharded.patch(new_plan)
        fresh = ShardedPlan(new_plan, rank_of_group, ranks)
        matrix = matrix_for_pattern(new_coo, sizes, rng)
        packed = new_plan.pack(matrix)
        out_patched = new_plan.new_output()
        out_fresh = new_plan.new_output()
        for version, out in ((patched, out_patched), (fresh, out_fresh)):
            for shard in version.shards:
                if shard.n_groups == 0:
                    continue
                local = shard.pack_local(packed)
                for bucket in shard.stack_tasks():
                    stack = shard.view.extract_stack(
                        local, bucket.members, bucket.dimension
                    )
                    evaluated = np.stack([poly(s) for s in stack])
                    shard.view.scatter_stack(
                        out, bucket.members, evaluated, bucket.dimension
                    )
        assert np.array_equal(out_patched, out_fresh)
        for got, want in zip(patched.shards, fresh.shards):
            assert np.array_equal(got.required_segments, want.required_segments)
            assert np.array_equal(got.local_to_global, want.local_to_global)
            assert np.array_equal(got.segment_starts, want.segment_starts)

    def test_sharded_patch_requires_matching_source(self):
        rng = np.random.default_rng(3)
        n = 10
        sizes = rng.integers(2, 5, n)
        coo = random_pattern(n, 0.25, rng)
        groups = [[i] for i in range(n)]
        plan_a = BlockSubmatrixPlan(coo, sizes, groups)
        plan_b = BlockSubmatrixPlan(coo, sizes, groups)
        sharded = ShardedPlan(plan_a, np.arange(n) % 2, 2)
        with pytest.raises(ValueError, match="patched from"):
            sharded.patch(plan_b.patch(coo))


# --------------------------------------------------------------------------- #
# tentpole: the plan cache's delta key
# --------------------------------------------------------------------------- #
class TestDeltaKeyedCache:
    def test_patched_plan_does_not_collide_with_full_plan(self):
        rng = np.random.default_rng(11)
        n = 12
        sizes = rng.integers(2, 5, n)
        old_coo = random_pattern(n, 0.25, rng)
        new_coo = drift_pattern(old_coo, rng, 2)
        groups = [[i] for i in range(n)]
        cache = PlanCache()
        old_plan = cache.block_plan(old_coo, sizes, groups)
        patched = cache.patched_block_plan(old_plan, new_coo)
        full = cache.block_plan(new_coo, sizes, groups)
        # three distinct entries: old content key, delta key, new content key
        assert len(cache) == 3
        assert patched is not full
        assert cache.stats["misses"] == 3
        assert cache.stats["builds"] == 3
        assert cache.stats["patches"] == 1
        # the delta key hits for an identical transition
        again = cache.patched_block_plan(old_plan, new_coo)
        assert again is patched
        assert cache.stats["hits"] == 1
        assert cache.stats["patches"] == 1
        # and the full plan's content key still serves the full plan
        assert cache.block_plan(new_coo, sizes, groups) is full

    def test_patched_and_full_plans_agree(self):
        rng = np.random.default_rng(12)
        n = 12
        sizes = rng.integers(2, 5, n)
        old_coo = random_pattern(n, 0.25, rng)
        new_coo = drift_pattern(old_coo, rng, 2)
        groups = [[i] for i in range(n)]
        cache = PlanCache()
        old_plan = cache.block_plan(old_coo, sizes, groups)
        patched = cache.patched_block_plan(old_plan, new_coo)
        full = cache.block_plan(new_coo, sizes, groups)
        matrix = matrix_for_pattern(new_coo, sizes, rng)
        assert np.array_equal(patched.pack(matrix), full.pack(matrix))


# --------------------------------------------------------------------------- #
# session integration: drifting-pattern trajectories
# --------------------------------------------------------------------------- #
def synthetic_block_system(n_blocks, block_size, rng):
    """A synthetic (K, S=I) system whose filtered pattern we control exactly.

    With S = I the orthogonalized Kohn–Sham matrix is K itself (filtered),
    so the trajectory's block pattern is the pattern of K — which lets the
    drift tests insert/delete specific blocks per step.
    """
    import dataclasses as _dc

    from repro.chem.hamiltonian import BlockStructure

    sizes = np.full(n_blocks, block_size, dtype=int)
    starts = np.concatenate(([0], np.cumsum(sizes)))
    blocks = BlockStructure(
        block_sizes=sizes,
        block_starts=starts,
        atom_offsets=starts[:-1],
        n_basis=int(starts[-1]),
    )
    return blocks


def drifting_chem_steps(blocks, rng, n_steps, base_coupling=0.4):
    """(K, S=I) steps whose block pattern drifts by ~2 blocks per step."""
    n = blocks.n_basis
    n_blocks = blocks.n_blocks
    starts = blocks.block_starts
    diag = np.sort(rng.uniform(-4.0, 4.0, n))
    base = sp.diags(diag).tocsr()
    # a static banded coupling plus one drifting off-band block per step
    for offset in (1, 2):
        for b in range(n_blocks - offset):
            i, j = int(starts[b]), int(starts[b + offset])
            base = base + _bump(n, i, j, base_coupling / offset)
    steps = []
    for step in range(n_steps):
        b = step % (n_blocks - 3)
        i, j = int(starts[b]), int(starts[b + 3])
        steps.append((base + _bump(n, i, j, base_coupling), sp.identity(n, format="csr")))
    return steps


def _bump(n, i, j, value):
    bump = sp.lil_matrix((n, n))
    bump[i, j] = bump[j, i] = value
    return bump.tocsr()


class TestTrajectoryReplanModes:
    @pytest.fixture(scope="class")
    def drift_setup(self):
        rng = np.random.default_rng(21)
        blocks = synthetic_block_system(10, 3, rng)
        steps = drifting_chem_steps(blocks, rng, 6)
        return blocks, steps

    @pytest.mark.parametrize("ranks", [None, 1, 2, 4])
    def test_patch_trajectory_bitwise_identical_to_full(self, drift_setup, ranks):
        blocks, steps = drift_setup
        n_electrons = float(blocks.n_basis)  # half filling
        config = EngineConfig(engine="batched", eps_filter=1e-3)
        kwargs = dict(n_electrons=n_electrons, mu_tolerance=1e-6)
        if ranks is not None:
            kwargs["ranks"] = ranks
        with SubmatrixContext(config) as ctx_patch, SubmatrixContext(
            config
        ) as ctx_full:
            patched = ctx_patch.trajectory(steps, blocks, replan="patch", **kwargs)
            full = ctx_full.trajectory(steps, blocks, replan="full", **kwargs)
        assert patched.stats.pattern_changes > 0
        assert patched.stats.plans_patched > 0
        assert patched.stats.groups_rebuilt > 0
        assert full.stats.plans_patched == 0
        for step in range(len(steps)):
            assert np.array_equal(
                patched[step].density_ao, full[step].density_ao
            ), step
            assert patched[step].mu == full[step].mu
            assert patched[step].band_energy == full[step].band_energy
        if ranks is not None:
            assert patched.stats.pipelines_patched > 0
            assert patched.stats.pipelines_built == 1

    def test_auto_mode_patches_small_deltas(self, drift_setup):
        blocks, steps = drift_setup
        config = EngineConfig(engine="batched", eps_filter=1e-3)
        with SubmatrixContext(config) as ctx:
            auto = ctx.trajectory(
                steps,
                blocks,
                n_electrons=float(blocks.n_basis),
                mu_tolerance=1e-6,
                replan="auto",
            )
        # the per-step drift is far below PATCH_DELTA_FRACTION, so auto
        # behaves like patch on every pattern change
        assert auto.stats.plans_patched == auto.stats.pattern_changes > 0

    def test_auto_mode_rebuilds_large_deltas(self):
        rng = np.random.default_rng(33)
        n = 12
        sizes = rng.integers(2, 5, n)
        sparse_coo = random_pattern(n, 0.05, rng)
        dense_coo = random_pattern(n, 0.8, rng)
        delta = BlockSubmatrixPlan(
            sparse_coo, sizes, [[i] for i in range(n)]
        ).delta_to(dense_coo)
        assert delta.fraction_changed > PATCH_DELTA_FRACTION
        ctx = SubmatrixContext(EngineConfig(engine="batched"))
        groups = [[i] for i in range(n)]
        first = ctx.block_plan_for(sparse_coo, sizes, groups, replan="auto")
        second = ctx.block_plan_for(dense_coo, sizes, groups, replan="auto")
        assert second.patch_report is None  # fully rebuilt
        assert ctx.plan_cache.stats["patches"] == 0
        # while a small delta is patched
        drifted = drift_pattern(dense_coo, rng, 1)
        third = ctx.block_plan_for(drifted, sizes, groups, replan="auto")
        assert third.patch_report is not None
        assert ctx.plan_cache.stats["patches"] == 1
        ctx.close()

    def test_value_only_steps_reuse_patched_plan(self, drift_setup):
        """After a patch, later value-only steps must not rebuild fully."""
        blocks, steps = drift_setup
        config = EngineConfig(engine="batched", eps_filter=1e-3)
        # repeat the last geometry so its (patched) plan is reused
        steps = list(steps) + [steps[-1], steps[-1]]
        with SubmatrixContext(config) as ctx:
            traj = ctx.trajectory(
                steps,
                blocks,
                n_electrons=float(blocks.n_basis),
                mu_tolerance=1e-6,
                replan="patch",
            )
        assert not traj.stats.steps[-1].pattern_changed
        assert traj.stats.steps[-1].plans_built == 0
        assert traj.stats.steps[-1].plan_cache_hits >= 1


class TestWarmStartMu:
    def test_warm_start_converges_with_fewer_iterations(self, water32_matrices):
        pair = water32_matrices
        n_electrons = 8.0 * 32
        steps = [(pair.K * (1.0 + 1e-4 * s), pair.S) for s in range(5)]
        # finite temperature: the electron count is strictly monotone in μ,
        # so iteration counts measure genuine bisection work
        config = EngineConfig(
            engine="batched", eps_filter=1e-5, temperature=30000.0
        )
        tolerance = 1e-6
        with SubmatrixContext(config) as ctx:
            cold = ctx.trajectory(
                steps, pair.blocks, n_electrons=n_electrons, mu_tolerance=tolerance
            )
        with SubmatrixContext(config) as ctx:
            warm = ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=n_electrons,
                mu_tolerance=tolerance,
                warm_start_mu=True,
            )
        assert not cold.stats.steps[0].warm_started
        assert all(record.warm_started for record in warm.stats.steps[1:])
        # step 0 has no predecessor: identical to the cold start
        assert warm[0].mu == cold[0].mu
        # later steps converge the ensemble within tolerance, faster
        for record in warm.results[1:]:
            assert abs(record.n_electrons - n_electrons) <= tolerance
        cold_iterations = sum(r.mu_iterations for r in cold.stats.steps[1:])
        warm_iterations = sum(r.mu_iterations for r in warm.stats.steps[1:])
        assert warm_iterations < cold_iterations
        # μ agrees physically (not bitwise — that is the documented trade)
        assert np.allclose(warm.mus, cold.mus, atol=1e-4)

    def test_warm_start_defaults_off_and_preserves_bitwise_identity(
        self, water32_matrices
    ):
        pair = water32_matrices
        steps = [(pair.K * (1.0 + 1e-4 * s), pair.S) for s in range(3)]
        config = EngineConfig(engine="batched", eps_filter=1e-5)
        with SubmatrixContext(config) as ctx:
            traj = ctx.trajectory(steps, pair.blocks, n_electrons=8.0 * 32)
        fresh = SubmatrixContext(config).density(
            steps[2][0], steps[2][1], pair.blocks, n_electrons=8.0 * 32
        )
        assert traj[2].mu == fresh.mu
        assert np.array_equal(traj[2].density_ao, fresh.density_ao)


# --------------------------------------------------------------------------- #
# satellite: pack canonicalization
# --------------------------------------------------------------------------- #
class TestPackCanonicalization:
    def make_plan(self):
        matrix = sp.random(10, 10, density=0.3, random_state=4, format="coo")
        matrix = (matrix + matrix.T + sp.identity(10)).tocsr()
        return matrix, ElementSubmatrixPlan(matrix, [[c] for c in range(10)])

    def test_unsorted_indices_pack(self):
        matrix, plan = self.make_plan()
        coo = matrix.tocoo()
        order = np.argsort(-coo.row, kind="stable")  # scramble row order
        shuffled = sp.csc_matrix(
            (coo.data[order], (coo.row[order], coo.col[order])), shape=matrix.shape
        )
        assert np.array_equal(plan.pack(shuffled), plan.pack(matrix))

    def test_duplicate_entries_pack(self):
        matrix, plan = self.make_plan()
        coo = matrix.tocoo()
        # split every value into two duplicate entries summing to it
        rows = np.concatenate([coo.row, coo.row])
        cols = np.concatenate([coo.col, coo.col])
        data = np.concatenate([0.25 * coo.data, 0.75 * coo.data])
        duplicated = sp.coo_matrix((data, (rows, cols)), shape=matrix.shape)
        assert np.allclose(plan.pack(duplicated), plan.pack(matrix))

    def test_pack_does_not_mutate_caller_matrix(self):
        """Canonicalization must copy an aliased CSC, not rewrite it."""
        matrix, plan = self.make_plan()
        csc = matrix.tocsc()
        # duplicate every stored entry at raw CSC level (constructors that
        # go through COO would sum them for us)
        indptr = csc.indptr * 2
        indices = np.repeat(csc.indices, 2)
        data = np.repeat(0.5 * csc.data, 2)
        duplicated = sp.csc_matrix(
            (data, indices, indptr), shape=csc.shape
        )
        nnz_before = duplicated.nnz
        assert nnz_before == 2 * csc.nnz
        data_before = duplicated.data.copy()
        packed = plan.pack(duplicated)
        assert np.allclose(packed, plan.pack(matrix))
        assert duplicated.nnz == nnz_before
        assert np.array_equal(duplicated.data, data_before)

    def test_explicit_zeros_matching_pattern_pack(self):
        matrix = sp.csr_matrix(
            (
                np.array([1.0, 0.0, 2.0]),
                (np.array([0, 1, 2]), np.array([0, 1, 2])),
            ),
            shape=(3, 3),
        )
        plan = ElementSubmatrixPlan(matrix, [[0], [1], [2]])
        packed = plan.pack(matrix.copy())
        assert packed.tolist() == [1.0, 0.0, 2.0]

    def test_nnz_mismatch_message(self):
        matrix, plan = self.make_plan()
        extra = matrix.tolil()
        free = np.argwhere(matrix.toarray() == 0.0)
        i, j = free[0]
        extra[int(i), int(j)] = 5.0
        with pytest.raises(ValueError, match="nnz mismatch"):
            plan.pack(extra.tocsr())

    def test_indices_mismatch_message(self):
        base = sp.identity(4, format="csr") * 2.0
        plan = ElementSubmatrixPlan(base, [[c] for c in range(4)])
        moved = sp.csr_matrix(
            (
                np.array([1.0, 1.0, 1.0, 1.0]),
                (np.array([1, 1, 2, 3]), np.array([0, 1, 2, 3])),
            ),
            shape=(4, 4),
        )
        with pytest.raises(ValueError, match="indptr mismatch|indices mismatch"):
            plan.pack(moved)

    def test_shape_mismatch_message(self):
        matrix, plan = self.make_plan()
        with pytest.raises(ValueError, match="shape"):
            plan.pack(sp.identity(11, format="csr"))


# --------------------------------------------------------------------------- #
# satellite: PlanCache.clear() and LRU eviction order
# --------------------------------------------------------------------------- #
class TestPlanCacheHousekeeping:
    def patterns(self, count, rng):
        return [random_pattern(8, 0.2 + 0.05 * k, rng) for k in range(count)]

    def test_clear_resets_counters_and_order(self):
        rng = np.random.default_rng(8)
        sizes = np.full(8, 3)
        groups = [[i] for i in range(8)]
        cache = PlanCache()
        a, b = self.patterns(2, rng)
        cache.block_plan(a, sizes, groups)
        cache.block_plan(a, sizes, groups)
        plan_a = cache.block_plan(a, sizes, groups)
        cache.patched_block_plan(plan_a, b)
        before = cache.stats
        assert before["hits"] == 2
        assert before["misses"] == before["builds"] == 2
        assert before["patches"] == 1
        assert before["groups_rebuilt"] > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == {
            "hits": 0,
            "misses": 0,
            "builds": 0,
            "patches": 0,
            "groups_rebuilt": 0,
            "evictions": 0,
            "plans": 0,
        }

    def test_eviction_is_least_recently_used_not_built(self):
        rng = np.random.default_rng(9)
        sizes = np.full(8, 3)
        groups = [[i] for i in range(8)]
        cache = PlanCache(max_plans=2)
        a, b, c = self.patterns(3, rng)
        plan_a = cache.block_plan(a, sizes, groups)
        cache.block_plan(b, sizes, groups)
        # touch A: it is now more recently *used* than the younger B
        assert cache.block_plan(a, sizes, groups) is plan_a
        cache.block_plan(c, sizes, groups)  # overflow: must evict B, not A
        assert cache.block_plan(a, sizes, groups) is plan_a  # still cached
        stats = cache.stats
        assert stats["plans"] == 2
        # B was evicted: looking it up again is a miss (a rebuild)
        builds_before = stats["builds"]
        cache.block_plan(b, sizes, groups)
        assert cache.stats["builds"] == builds_before + 1


# --------------------------------------------------------------------------- #
# satellite: zero-step trajectories
# --------------------------------------------------------------------------- #
class TestZeroStepTrajectories:
    def make_context(self):
        return SubmatrixContext(EngineConfig(engine="batched", eps_filter=1e-5))

    def test_empty_sequence(self, water32_matrices):
        with self.make_context() as ctx:
            traj = ctx.trajectory([], water32_matrices.blocks, n_electrons=1.0)
        assert len(traj) == 0
        assert traj.mus.dtype == np.float64
        assert traj.band_energies.dtype == np.float64
        assert traj.mus.shape == (0,)
        stats = traj.stats
        assert stats.n_steps == 0
        assert stats.reuse_rate == 0.0
        assert stats.patch_rate == 0.0
        assert stats.total_wall_time == 0.0

    def test_callback_none_at_step_zero(self, water32_matrices):
        with self.make_context() as ctx:
            traj = ctx.trajectory(
                lambda index: None, water32_matrices.blocks, n_electrons=1.0
            )
        assert traj.stats.n_steps == 0
        assert traj.mus.dtype == np.float64

    def test_steps_none_raises(self, water32_matrices):
        with self.make_context() as ctx:
            with pytest.raises(ValueError, match="not None"):
                ctx.trajectory(None, water32_matrices.blocks, n_electrons=1.0)

    def test_invalid_replan_mode_raises(self, water32_matrices):
        with self.make_context() as ctx:
            with pytest.raises(ValueError, match="replan"):
                ctx.trajectory(
                    [], water32_matrices.blocks, n_electrons=1.0, replan="never"
                )
