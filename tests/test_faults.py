"""Fault injection and resilience tests.

Covers the acceptance criteria of the fault-tolerance tentpole:

* deterministic fault injection: same plan + seed + call sequence → the
  same injected faults, independent of thread interleaving;
* clear :class:`~repro.parallel.comm.CommError` diagnostics (rank id and
  mailbox state) from :class:`~repro.parallel.comm.SimComm`;
* :func:`~repro.parallel.executor.map_parallel` wraps worker exceptions
  with the failing task index and chunk context while staying catchable
  as the original exception type;
* **property**: densities computed under injected rank crashes and forced
  kernel non-convergence are bitwise identical to fault-free runs, for
  rank counts {1, 2, 4} and several injection seeds;
* graceful degradation to the single-process batched engine stays bitwise
  identical, and kernel fallbacks are recorded rather than raised;
* **regression**: a trajectory killed mid-run and resumed from its
  checkpoint produces bitwise-identical results to an uninterrupted run.

This file is part of the strict CI pass (``-W error::DeprecationWarning``).
"""

import numpy as np
import pytest

from repro.api import (
    CheckpointError,
    EngineConfig,
    ResiliencePolicy,
    SubmatrixContext,
    TrajectoryCheckpoint,
)
from repro.core.runner import PipelineExecutionError
from repro.parallel.comm import CommRankError, CommRecvError, SimComm
from repro.parallel.executor import TaskExecutionError, map_parallel
from repro.parallel.faults import (
    DEFAULT_KERNEL_CAP,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    WorkerCrashError,
)

EPS = 1e-5
N_ELECTRONS = 8.0 * 32
MU = -0.2


# --------------------------------------------------------------------------- #
# fault injector determinism
# --------------------------------------------------------------------------- #
class TestFaultInjector:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="")
        with pytest.raises(ValueError):
            FaultSpec(site="rank", times=0)
        with pytest.raises(ValueError):
            FaultSpec(site="rank", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(site="rank", period=0)

    def test_transient_fault_fires_once(self):
        injector = FaultInjector(FaultPlan.rank_crashes([1], seed=3))
        assert injector.fire("rank", 0) is None
        assert injector.fire("rank", 1) is not None
        assert injector.fire("rank", 1) is None  # retry passes
        assert injector.n_injected == 1
        assert injector.occurrences("rank", 1) == 2

    def test_period_alternates_fail_and_recover(self):
        injector = FaultInjector(
            [FaultSpec(site="rank", key=0, times=None, period=2)]
        )
        outcomes = [injector.fire("rank", 0) is not None for _ in range(6)]
        assert outcomes == [True, False, True, False, True, False]

    def test_after_skips_initial_occurrences(self):
        injector = FaultInjector([FaultSpec(site="worker", key=2, after=2)])
        assert injector.fire("worker", 2) is None
        assert injector.fire("worker", 2) is None
        assert injector.fire("worker", 2) is not None

    def test_decisions_independent_of_cross_key_order(self):
        """Same per-key sequences → same events, whatever the interleaving."""
        plan = FaultPlan(
            specs=(FaultSpec(site="rank", probability=0.5, times=None),),
            seed=11,
        )
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        keys = [0, 1, 2, 3] * 5
        for key in keys:  # interleaved
            first.fire("rank", key)
        for key in sorted(keys):  # grouped by key
            second.fire("rank", key)
        def by_key(injector):
            return sorted(
                (e.site, e.key, e.occurrence) for e in injector.events
            )
        assert by_key(first) == by_key(second)
        assert first.n_injected > 0  # p=0.5 over 20 queries fires some

    def test_probability_zero_and_one(self):
        never = FaultInjector([FaultSpec(site="rank", probability=0.0, times=None)])
        always = FaultInjector([FaultSpec(site="rank", probability=1.0, times=None)])
        assert all(never.fire("rank", k) is None for k in range(10))
        assert all(always.fire("rank", k) is not None for k in range(10))

    def test_kernel_cap_and_reset(self):
        injector = FaultInjector(
            FaultPlan.kernel_stalls("newton_schulz", seed=0, times=1, cap=2)
        )
        assert injector.kernel_cap("newton_schulz") == 2
        assert injector.kernel_cap("newton_schulz") is None  # exhausted
        assert injector.kernel_cap("pade") is None  # different key
        injector.reset()
        assert injector.kernel_cap("newton_schulz") == 2
        bare = FaultInjector(FaultPlan.kernel_stalls("pade", seed=0, times=1))
        assert bare.kernel_cap("pade") == DEFAULT_KERNEL_CAP

    def test_maybe_crash_raises_typed_errors(self):
        injector = FaultInjector(
            [FaultSpec(site="worker", key=3), FaultSpec(site="rank", key=1)]
        )
        with pytest.raises(WorkerCrashError) as info:
            injector.maybe_crash("worker", 3)
        assert info.value.key == 3 and info.value.site == "worker"
        with pytest.raises(Exception) as info:
            injector.maybe_crash("rank", 1)
        assert info.value.occurrence == 0


# --------------------------------------------------------------------------- #
# SimComm diagnostics and fault sites
# --------------------------------------------------------------------------- #
class TestSimCommFaults:
    def test_unknown_rank_error_carries_rank_and_state(self):
        comm = SimComm(2)
        comm.send(0, 1, np.zeros(4), tag="data")
        with pytest.raises(CommRankError) as info:
            comm.send(0, 7, b"x")
        assert info.value.rank == 7
        assert info.value.mailbox_state == {(1, "data"): 1}
        assert "rank 7" in str(info.value)
        assert isinstance(info.value, IndexError)  # legacy compatibility

    def test_recv_empty_mailbox_error_carries_state(self):
        comm = SimComm(3)
        comm.send(0, 2, 1.0, tag="other")
        with pytest.raises(CommRecvError) as info:
            comm.recv(1, tag="missing")
        assert info.value.rank == 1
        assert info.value.mailbox_state == {(2, "other"): 1}
        assert "tag 'missing'" in str(info.value)
        assert "pending mailboxes" in str(info.value)
        assert isinstance(info.value, LookupError)  # legacy compatibility

    def test_recv_source_filter_miss_mentions_source(self):
        comm = SimComm(3)
        comm.send(0, 1, "payload")
        with pytest.raises(CommRecvError, match="from 2"):
            comm.recv(1, source=2)

    def test_crash_rank_blocks_operations_until_restore(self):
        comm = SimComm(2)
        comm.crash_rank(1)
        assert comm.crashed_ranks == frozenset({1})
        with pytest.raises(CommRankError, match="crashed"):
            comm.send(0, 1, 1.0)
        with pytest.raises(CommRankError, match="crashed"):
            comm.recv(1)
        comm.restore_rank(1)
        comm.send(0, 1, 1.0)
        assert comm.recv(1) == (0, 1.0)

    def test_injected_comm_crash_marks_rank(self):
        injector = FaultInjector([FaultSpec(site="comm_crash", key=1)])
        comm = SimComm(2, fault_injector=injector)
        with pytest.raises(CommRankError, match="crashed"):
            comm.send(0, 1, 1.0)
        comm.restore_rank(1)
        comm.send(0, 1, 2.0)  # transient spec exhausted; rank healthy again
        assert comm.recv(1) == (0, 2.0)

    def test_injected_message_loss_accounts_but_never_delivers(self):
        injector = FaultInjector([FaultSpec(site="message", key=(0, 1))])
        comm = SimComm(2, fault_injector=injector)
        comm.send(0, 1, np.zeros(8))
        assert comm.pending_messages(1) == 0  # dropped
        assert comm.log.ranks[0].bytes_sent == 64.0  # still accounted
        comm.send(0, 1, np.zeros(8))  # spec exhausted: delivered
        assert comm.pending_messages(1) == 1


# --------------------------------------------------------------------------- #
# map_parallel task-context wrapping
# --------------------------------------------------------------------------- #
def _explode_on_three(value):
    if value == 3:
        raise ValueError(f"bad value {value}")
    return value * 2


class TestMapParallelWrapping:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_wrapped_error_carries_task_context(self, backend):
        with pytest.raises(TaskExecutionError) as info:
            map_parallel(_explode_on_three, range(6), max_workers=2, backend=backend)
        error = info.value
        assert error.task_index == 3
        assert error.n_tasks == 6
        assert error.chunk_index == 3
        assert isinstance(error.original, ValueError)
        assert error.__cause__ is error.original
        assert "task 3 of 6" in str(error)

    def test_wrapped_error_still_matches_original_type(self):
        with pytest.raises(ValueError, match="bad value 3"):
            map_parallel(_explode_on_three, range(6), backend="serial")

    def test_process_backend_chunk_context(self):
        with pytest.raises(TaskExecutionError) as info:
            map_parallel(
                _explode_on_three,
                range(8),
                max_workers=2,
                backend="process",
                chunksize=3,
            )
        assert info.value.task_index == 3
        assert info.value.chunk_index == 1  # task 3 rides in chunk 1 of size 3

    def test_lowest_failing_index_wins(self):
        def explode_even(value):
            if value % 2 == 0:
                raise KeyError(value)
            return value

        with pytest.raises(TaskExecutionError) as info:
            map_parallel(explode_even, range(6), backend="serial")
        assert info.value.task_index == 0
        assert isinstance(info.value, KeyError)

    def test_worker_fault_injection_site(self):
        injector = FaultInjector([FaultSpec(site="worker", key=2)])
        with pytest.raises(WorkerCrashError):
            map_parallel(
                lambda x: x, range(4), backend="serial", fault_injector=injector
            )
        # the transient spec is exhausted: the same mapping now succeeds
        assert map_parallel(
            lambda x: x, range(4), backend="serial", fault_injector=injector
        ) == [0, 1, 2, 3]


# --------------------------------------------------------------------------- #
# resilience policy plumbing
# --------------------------------------------------------------------------- #
class TestResiliencePolicy:
    def test_defaults_active_disabled_inactive(self):
        assert ResiliencePolicy().active
        disabled = ResiliencePolicy.disabled()
        assert not disabled.active
        assert disabled.max_rank_retries == 0
        assert disabled.kernel_fallback is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_rank_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(kernel_retry_growth=0.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(stage_timeout=0.0)
        with pytest.raises(ValueError):
            EngineConfig(resilience="nope")

    def test_replace_and_config_embedding(self):
        policy = ResiliencePolicy().replace(max_rank_retries=3)
        assert policy.max_rank_retries == 3
        config = EngineConfig(resilience=policy)
        assert config.resilience.max_rank_retries == 3


# --------------------------------------------------------------------------- #
# bitwise recovery properties (the tentpole acceptance)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def baseline_canonical(water32_matrices):
    """Fault-free canonical density (bitwise-stable for any rank count)."""
    pair = water32_matrices
    with SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS)) as ctx:
        return ctx.density(
            pair.K, pair.S, pair.blocks, n_electrons=N_ELECTRONS, ranks=2
        )


@pytest.fixture(scope="module")
def baseline_newton_schulz(water32_matrices):
    """Fault-free grand-canonical Newton–Schulz density."""
    pair = water32_matrices
    with SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS)) as ctx:
        return ctx.density(
            pair.K, pair.S, pair.blocks, mu=MU, solver="newton_schulz", ranks=2
        )


def _density_with_policy(pair, policy, ranks, **kwargs):
    config = EngineConfig(engine="batched", eps_filter=EPS, resilience=policy)
    with SubmatrixContext(config) as ctx:
        return ctx.density(pair.K, pair.S, pair.blocks, ranks=ranks, **kwargs)


class TestBitwiseRecovery:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rank_crash_recovery_is_bitwise(
        self, water32_matrices, baseline_canonical, ranks, seed
    ):
        """Property: crashed rank → retried shard, bitwise-identical density."""
        crashed = [seed % ranks]
        injector = FaultInjector(FaultPlan.rank_crashes(crashed, seed=seed))
        policy = ResiliencePolicy(fault_injector=injector)
        result = _density_with_policy(
            water32_matrices, policy, ranks, n_electrons=N_ELECTRONS
        )
        assert np.array_equal(
            result.density_ao, baseline_canonical.density_ao
        )
        assert result.mu == baseline_canonical.mu
        assert result.retries == 1
        assert not result.degraded
        if ranks > 1:
            assert result.reassigned_stacks > 0

    @pytest.mark.parametrize("ranks", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_kernel_stall_recovery_is_bitwise(
        self, water32_matrices, baseline_newton_schulz, ranks, seed
    ):
        """Property: forced non-convergence → retried solve, bitwise result."""
        injector = FaultInjector(
            FaultPlan.kernel_stalls("newton_schulz", seed=seed)
        )
        policy = ResiliencePolicy(fault_injector=injector)
        result = _density_with_policy(
            water32_matrices, policy, ranks, mu=MU, solver="newton_schulz"
        )
        assert np.array_equal(
            result.density_ao, baseline_newton_schulz.density_ao
        )
        assert result.retries > 0
        assert result.kernel_fallbacks == 0

    def test_repeated_rank_failure_degrades_bitwise(
        self, water32_matrices, baseline_canonical
    ):
        """Every rank failing every attempt → single-process batched engine."""
        injector = FaultInjector(
            FaultPlan.rank_crashes([0, 1, 2, 3], seed=5, times=None)
        )
        policy = ResiliencePolicy(fault_injector=injector)
        result = _density_with_policy(
            water32_matrices, policy, 4, n_electrons=N_ELECTRONS
        )
        assert result.degraded
        assert np.array_equal(
            result.density_ao, baseline_canonical.density_ao
        )

    def test_exhausted_retries_raise_without_degradation(self, water32_matrices):
        injector = FaultInjector(
            FaultPlan.rank_crashes([0, 1], seed=5, times=None)
        )
        policy = ResiliencePolicy(
            fault_injector=injector, degrade_to_batched=False
        )
        with pytest.raises(PipelineExecutionError) as info:
            _density_with_policy(
                water32_matrices, policy, 2, n_electrons=N_ELECTRONS
            )
        assert set(info.value.failures) == {0, 1}
        assert info.value.attempts == 2  # first attempt + one retry round

    def test_kernel_fallback_is_recorded_not_raised(self, water32_matrices):
        """With no retry budget the stalled solves degrade to eigen, recorded."""
        injector = FaultInjector(
            FaultPlan.kernel_stalls("newton_schulz", seed=2)
        )
        policy = ResiliencePolicy(kernel_retries=0, fault_injector=injector)
        result = _density_with_policy(
            water32_matrices, policy, 2, mu=MU, solver="newton_schulz"
        )
        assert result.kernel_fallbacks > 0
        assert result.retries == 0
        # the eigen fallback computes the exact sign; the converged NS
        # iterates agree with it to the iteration tolerance, not bitwise
        with SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS)) as ctx:
            reference = ctx.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=MU,
                solver="newton_schulz",
                ranks=2,
            )
        assert np.allclose(
            result.density_ao, reference.density_ao, atol=1e-8
        )

    def test_inactive_policy_keeps_legacy_exception_types(self, water32_matrices):
        """ResiliencePolicy.disabled() must not wrap or guard anything."""
        result = _density_with_policy(
            water32_matrices,
            ResiliencePolicy.disabled(),
            2,
            n_electrons=N_ELECTRONS,
        )
        assert result.retries == 0
        assert not result.degraded


# --------------------------------------------------------------------------- #
# checkpoint / resume regression
# --------------------------------------------------------------------------- #
def _value_steps(pair, n_steps, scale=1e-4):
    return [(pair.K * (1.0 + scale * step), pair.S) for step in range(n_steps)]


class _Killed(Exception):
    pass


class TestCheckpointResume:
    def test_resume_is_bitwise_identical_to_uninterrupted(
        self, water32_matrices, tmp_path
    ):
        """Regression: kill at step 3, resume → identical densities and μ."""
        pair = water32_matrices
        steps = _value_steps(pair, 5)
        config = EngineConfig(engine="batched", eps_filter=EPS)
        with SubmatrixContext(config) as ctx:
            uninterrupted = ctx.trajectory(
                steps, pair.blocks, n_electrons=N_ELECTRONS, warm_start_mu=True
            )

        checkpoint = tmp_path / "ckpt"

        def dying_steps(index):
            if index == 3:
                raise _Killed()
            return steps[index] if index < len(steps) else None

        with SubmatrixContext(config) as ctx:
            with pytest.raises(_Killed):
                ctx.trajectory(
                    dying_steps,
                    pair.blocks,
                    n_electrons=N_ELECTRONS,
                    warm_start_mu=True,
                    checkpoint=checkpoint,
                )
        assert TrajectoryCheckpoint(checkpoint).n_saved_steps == 3

        with SubmatrixContext(config) as ctx:
            resumed = ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                warm_start_mu=True,
                checkpoint=checkpoint,
            )
        assert resumed.stats.steps_resumed == 3
        assert [r.resumed for r in resumed.stats.steps] == [
            True, True, True, False, False,
        ]
        assert len(resumed.results) == len(uninterrupted.results)
        for before, after in zip(uninterrupted.results, resumed.results):
            assert np.array_equal(before.density_ao, after.density_ao)
            assert before.mu == after.mu
            assert before.band_energy == after.band_energy

    def test_completed_checkpoint_replays_every_step(
        self, water32_matrices, tmp_path
    ):
        pair = water32_matrices
        steps = _value_steps(pair, 3)
        config = EngineConfig(engine="batched", eps_filter=EPS)
        with SubmatrixContext(config) as ctx:
            first = ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                checkpoint=tmp_path / "done",
            )
        with SubmatrixContext(config) as ctx:
            replay = ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                checkpoint=tmp_path / "done",
            )
        assert replay.stats.steps_resumed == 3
        assert replay.stats.plans_built == 0  # nothing recomputed
        for before, after in zip(first.results, replay.results):
            assert np.array_equal(before.density_ao, after.density_ao)
            assert before.pattern_fingerprint == after.pattern_fingerprint
            assert np.array_equal(
                before.density_ortho.toarray(), after.density_ortho.toarray()
            )

    def test_signature_mismatch_raises(self, water32_matrices, tmp_path):
        pair = water32_matrices
        steps = _value_steps(pair, 2)
        config = EngineConfig(engine="batched", eps_filter=EPS)
        with SubmatrixContext(config) as ctx:
            ctx.trajectory(
                steps,
                pair.blocks,
                n_electrons=N_ELECTRONS,
                checkpoint=tmp_path / "sig",
            )
        with SubmatrixContext(config) as ctx:
            with pytest.raises(CheckpointError, match="different parameters"):
                ctx.trajectory(
                    steps,
                    pair.blocks,
                    mu=MU,  # different ensemble than the saved trajectory
                    checkpoint=tmp_path / "sig",
                )

    def test_missing_step_load_raises(self, tmp_path):
        checkpoint = TrajectoryCheckpoint(tmp_path / "empty")
        assert checkpoint.n_saved_steps == 0
        assert not checkpoint.has_step(0)
        with pytest.raises(CheckpointError, match="no saved step"):
            checkpoint.load_step(0)

    def test_trajectory_records_injected_recovery(self, water32_matrices):
        """Rank crashes inside a trajectory surface in the aggregate stats."""
        pair = water32_matrices
        steps = _value_steps(pair, 3)
        injector = FaultInjector(
            FaultPlan.rank_crashes([0], seed=9, times=None, period=2)
        )
        config = EngineConfig(
            engine="batched",
            eps_filter=EPS,
            resilience=ResiliencePolicy(fault_injector=injector),
        )
        with SubmatrixContext(config) as ctx:
            trajectory = ctx.trajectory(
                steps, pair.blocks, n_electrons=N_ELECTRONS, ranks=2
            )
        with SubmatrixContext(EngineConfig(engine="batched", eps_filter=EPS)) as ctx:
            reference = ctx.trajectory(
                steps, pair.blocks, n_electrons=N_ELECTRONS, ranks=2
            )
        assert trajectory.stats.retries > 0
        assert trajectory.stats.steps_resumed == 0
        for faulty, clean in zip(trajectory.results, reference.results):
            assert np.array_equal(faulty.density_ao, clean.density_ao)
