"""Tests for the array-backend seam and the mixed-precision execution policy.

Covers the PR's contracts:

* the :class:`~repro.backend.base.ArrayBackend` registry (``numpy`` default,
  ``emulated`` reduced-precision modes, user registration, instance caching);
* the kernel seams: every batched sign kernel routed through the default
  NumPy backend is **bitwise identical** to its pre-seam spelling;
* ``PrecisionPolicy(mode="fp64")`` (the default) is bitwise identical to the
  pre-refactor engine on the batched engine, sharded ranks {1, 2, 4, 8},
  the arrival-driven overlap engine, trajectories with checkpointing, and
  served requests;
* reduced modes (``fp32``/``fp16``/``auto``) produce densities within the
  documented error model, with the per-result accounting
  (``stacks_reduced`` / ``refinement_passes`` / ``precision_error_bound``)
  populated end to end (result → trajectory → service metrics);
* the seed-era :mod:`repro.accel` behaviours the policy is built on: the
  FP16/FP16' involutority noise-floor plateau vs FP32/FP64 convergence
  (Figs 12–13) and the Table I throughput ordering of the performance model.

This file is part of the strict CI pass (``-W error::DeprecationWarning``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DensityService,
    EngineConfig,
    PrecisionPolicy,
    SubmatrixContext,
)
from repro.accel import (
    PRECISION_MODES,
    RTX_2080_TI,
    mixed_precision_sign_iteration,
    model_sign_algorithm_performance,
)
from repro.api import PRECISION_POLICY_MODES, TrajectoryCheckpoint
from repro.api.results import SubmatrixDFTResult
from repro.backend import (
    NUMPY_BACKEND,
    EmulatedPrecisionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.backend.mixed import (
    PrecisionReport,
    estimate_stack_condition,
    select_stack_mode,
    solve_reduced_sign,
)
from repro.serve import ServiceMetrics
from repro.serve.batcher import DensityRequest
from repro.signfn.eigen import sign_via_eigendecomposition_batched
from repro.signfn.newton_schulz import (
    refine_sign_newton_schulz_batched,
    sign_newton_schulz_batched,
)
from repro.signfn.pade import sign_pade
from repro.signfn.registry import get_kernel

N_ELECTRONS = 8.0 * 32


def spectrum_stack(k=3, n=12, lam_min=0.3, lam_max=2.0, seed=0):
    """A (k, n, n) stack of symmetric matrices with |λ| in [lam_min, lam_max]."""
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((k, n, n)))
    lam = rng.uniform(lam_min, lam_max, (k, n)) * rng.choice([-1.0, 1.0], (k, n))
    return q * lam[:, None, :] @ np.swapaxes(q, -1, -2)


def assert_identical(result, reference):
    assert np.array_equal(result.density_ao, reference.density_ao)
    assert np.array_equal(
        result.density_ortho.toarray(), reference.density_ortho.toarray()
    )
    assert result.mu == reference.mu
    assert result.band_energy == reference.band_energy
    assert result.n_electrons == reference.n_electrons


# --------------------------------------------------------------------------- #
# backend registry
# --------------------------------------------------------------------------- #
class TestArrayBackendRegistry:
    def test_default_backend_is_numpy(self):
        xp = get_backend()
        assert xp.name == "numpy"
        assert xp is NUMPY_BACKEND or isinstance(xp, type(NUMPY_BACKEND))

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            get_backend("cupy")

    def test_numpy_rejects_reduced_precision(self):
        with pytest.raises(ValueError):
            get_backend("numpy", precision="FP16")

    def test_available_backends(self):
        names = available_backends()
        assert "numpy" in names and "emulated" in names

    def test_emulated_modes(self):
        for name in ("FP16", "FP16'", "FP32"):
            xp = get_backend("emulated", precision=name)
            assert isinstance(xp, EmulatedPrecisionBackend)
            assert xp.precision is PRECISION_MODES[name]
            assert xp.dtype == PRECISION_MODES[name].storage_dtype

    def test_emulated_default_is_fp32(self):
        assert get_backend("emulated").precision is PRECISION_MODES["FP32"]

    def test_emulated_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            get_backend("emulated", precision="FP8")

    def test_instances_cached(self):
        assert get_backend("emulated", precision="FP32") is get_backend(
            "emulated", precision="FP32"
        )

    def test_register_custom_backend(self):
        calls = []

        def factory(precision):
            calls.append(precision)
            return NUMPY_BACKEND

        register_backend("custom-test", factory)
        try:
            assert get_backend("custom-test") is NUMPY_BACKEND
            assert calls == [None]
        finally:
            from repro.backend.base import _INSTANCES, _REGISTRY

            _REGISTRY.pop("custom-test", None)
            _INSTANCES.pop(("custom-test", None), None)

    def test_emulated_eigh_promotes_half(self):
        xp = get_backend("emulated", precision="FP16")
        stack = xp.asarray(spectrum_stack(2, 8))
        eigenvalues, eigenvectors = xp.eigh(stack)
        # LAPACK has no half-precision drivers: the solve runs in float32
        # and the factors come back in storage dtype
        assert eigenvalues.dtype == np.float16
        assert eigenvectors.dtype == np.float16

    def test_to_numpy_returns_float64(self):
        xp = get_backend("emulated", precision="FP16")
        a = xp.asarray(np.ones((2, 2)))
        assert xp.to_numpy(a).dtype == np.float64


# --------------------------------------------------------------------------- #
# kernel seams: default path bitwise identical
# --------------------------------------------------------------------------- #
class TestKernelSeamBitwise:
    def test_newton_schulz_batched(self):
        stack = spectrum_stack(4, 10, seed=1)
        default = sign_newton_schulz_batched(stack)
        seamed = sign_newton_schulz_batched(stack, xp=NUMPY_BACKEND)
        assert np.array_equal(default.sign, seamed.sign)
        assert np.array_equal(default.iterations, seamed.iterations)
        assert np.array_equal(default.converged, seamed.converged)

    def test_pade(self):
        matrix = spectrum_stack(1, 14, seed=2)[0]
        default = sign_pade(matrix)
        seamed = sign_pade(matrix, xp=NUMPY_BACKEND)
        assert np.array_equal(default.sign, seamed.sign)
        assert default.iterations == seamed.iterations

    def test_eigen_batched(self):
        stack = spectrum_stack(3, 9, seed=3)
        default = sign_via_eigendecomposition_batched(stack)
        seamed = sign_via_eigendecomposition_batched(stack, xp=NUMPY_BACKEND)
        assert np.array_equal(default, seamed)

    def test_reduced_solve_on_emulated_backend(self):
        stack = spectrum_stack(3, 12, seed=4)
        xp = get_backend("emulated", precision="FP32")
        result = sign_newton_schulz_batched(
            stack, convergence_threshold=1e-6, xp=xp
        )
        exact = sign_via_eigendecomposition_batched(stack)
        assert result.sign.dtype == np.float32
        assert np.abs(np.asarray(result.sign, dtype=float) - exact).max() < 1e-4

    def test_refinement_recovers_fp64_accuracy(self):
        stack = spectrum_stack(3, 12, seed=5)
        exact = sign_via_eigendecomposition_batched(stack)
        noisy = exact + 1e-4 * spectrum_stack(3, 12, seed=6) / 2.0
        refined = refine_sign_newton_schulz_batched(noisy)
        assert bool(np.all(refined.converged))
        involutority = refined.sign @ refined.sign - np.eye(12)
        assert np.abs(involutority).max() < 1e-9


# --------------------------------------------------------------------------- #
# policy object
# --------------------------------------------------------------------------- #
class TestPrecisionPolicy:
    def test_default_is_inactive_fp64(self):
        policy = PrecisionPolicy()
        assert policy.mode == "fp64"
        assert not policy.active
        assert policy == PrecisionPolicy.disabled()

    def test_modes_validated(self):
        for mode in PRECISION_POLICY_MODES:
            PrecisionPolicy(mode=mode)
        with pytest.raises(ValueError):
            PrecisionPolicy(mode="fp8")

    def test_field_validation(self):
        with pytest.raises(ValueError):
            PrecisionPolicy(error_tolerance=0.0)
        with pytest.raises(ValueError):
            PrecisionPolicy(refinement_threshold=-1e-10)
        with pytest.raises(ValueError):
            PrecisionPolicy(max_refinement_iterations=0)
        with pytest.raises(ValueError):
            PrecisionPolicy(min_dimension=0)
        with pytest.raises(ValueError):
            PrecisionPolicy(gap_floor=0.0)

    def test_replace(self):
        policy = PrecisionPolicy().replace(mode="fp32")
        assert policy.active and policy.mode == "fp32"

    def test_engine_config_validates_nested_policy(self):
        config = EngineConfig(precision=PrecisionPolicy(mode="auto"))
        assert config.precision.mode == "auto"
        with pytest.raises(ValueError):
            EngineConfig(precision="fp32")  # type: ignore[arg-type]


# --------------------------------------------------------------------------- #
# mode selection and the reduced solve
# --------------------------------------------------------------------------- #
class TestMixedHelpers:
    def test_condition_estimate_positive(self):
        stack = spectrum_stack(3, 10, seed=7)
        kappa = estimate_stack_condition(stack, gap_floor=1e-2)
        assert kappa >= 1.0

    def test_condition_estimate_uses_gap_floor(self):
        stack = spectrum_stack(2, 10, seed=8)
        loose = estimate_stack_condition(stack, gap_floor=1e-1)
        tight = estimate_stack_condition(stack, gap_floor=1e-3)
        assert tight >= loose

    def test_min_dimension_gates(self):
        policy = PrecisionPolicy(mode="fp32", min_dimension=64)
        assert select_stack_mode(policy, spectrum_stack(2, 10)) is None

    def test_fixed_modes_map_to_paper_modes(self):
        stack = spectrum_stack(2, 10, seed=9)
        mode, bound = select_stack_mode(PrecisionPolicy(mode="fp32"), stack)
        assert mode is PRECISION_MODES["FP32"] and bound > 0.0
        mode, _ = select_stack_mode(PrecisionPolicy(mode="fp16"), stack)
        assert mode is PRECISION_MODES["FP16'"]

    def test_auto_respects_error_budget(self):
        stack = spectrum_stack(2, 10, seed=10)
        kappa = estimate_stack_condition(stack, gap_floor=1e-2)
        # generous budget: the fastest fitting candidate wins
        generous = PrecisionPolicy(
            mode="auto", error_tolerance=10.0 * PRECISION_MODES["FP16'"].epsilon * kappa
        )
        mode, bound = select_stack_mode(generous, stack)
        assert mode is PRECISION_MODES["FP16'"]
        assert bound <= generous.error_tolerance
        # impossible budget: every candidate is rejected
        impossible = PrecisionPolicy(mode="auto", error_tolerance=1e-15)
        assert select_stack_mode(impossible, stack) is None

    def test_auto_ranks_by_modeled_throughput(self):
        fp16p = model_sign_algorithm_performance(RTX_2080_TI, "FP16'")
        fp32 = model_sign_algorithm_performance(RTX_2080_TI, "FP32")
        assert fp16p.overall_tflops > fp32.overall_tflops

    def test_non_participating_kernel_returns_none(self):
        stack = spectrum_stack(2, 10, seed=11)
        policy = PrecisionPolicy(mode="fp32")
        assert solve_reduced_sign(get_kernel("eigen"), stack, policy) is None

    def test_reduced_solve_matches_exact_sign(self):
        stack = spectrum_stack(3, 12, seed=12)
        policy = PrecisionPolicy(mode="fp32")
        report = PrecisionReport()
        signs = solve_reduced_sign(
            get_kernel("newton_schulz"), stack, policy, report
        )
        assert signs is not None
        exact = sign_via_eigendecomposition_batched(stack)
        assert np.abs(signs - exact).max() < 1e-5
        assert report.stacks_reduced == 1
        assert report.refinement_passes == 1
        assert report.error_bound > 0.0
        assert report.modes == {"FP32": 1}

    def test_kernel_registry_metadata(self):
        assert get_kernel("newton_schulz").supports_reduced_precision
        assert get_kernel("pade").supports_reduced_precision
        assert not get_kernel("eigen").supports_reduced_precision
        assert not get_kernel("occupation").supports_reduced_precision


# --------------------------------------------------------------------------- #
# fp64 policy: bitwise identity on every execution path
# --------------------------------------------------------------------------- #
FP64_CONFIG = EngineConfig(
    engine="batched", precision=PrecisionPolicy(mode="fp64")
)
BASE_CONFIG = EngineConfig(engine="batched")


class TestFp64BitwiseIdentity:
    @pytest.mark.parametrize("solver", ["newton_schulz", "pade"])
    def test_batched_engine(self, water32_matrices, gap_mu, solver):
        with SubmatrixContext(BASE_CONFIG) as base, SubmatrixContext(
            FP64_CONFIG
        ) as fp64:
            reference = base.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver=solver,
            )
            result = fp64.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver=solver,
            )
        assert_identical(result, reference)
        assert result.stacks_reduced == 0
        assert result.refinement_passes == 0
        assert result.precision_error_bound is None

    @pytest.mark.parametrize("ranks", [1, 2, 4, 8])
    def test_sharded_ranks(self, water32_matrices, gap_mu, ranks):
        with SubmatrixContext(BASE_CONFIG) as base, SubmatrixContext(
            FP64_CONFIG
        ) as fp64:
            reference = base.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
                ranks=ranks,
            )
            result = fp64.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
                ranks=ranks,
            )
        assert_identical(result, reference)

    def test_overlapped_exchange(self, water32_matrices, gap_mu):
        with SubmatrixContext(
            BASE_CONFIG.replace(overlap=True)
        ) as base, SubmatrixContext(FP64_CONFIG.replace(overlap=True)) as fp64:
            reference = base.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
                ranks=4,
            )
            result = fp64.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
                ranks=4,
            )
        assert_identical(result, reference)

    def test_trajectory_with_checkpoint(self, water32_matrices, gap_mu, tmp_path):
        steps = [
            (water32_matrices.K * (1.0 + 1e-4 * index), water32_matrices.S)
            for index in range(3)
        ]
        kwargs = dict(mu=gap_mu, solver="newton_schulz", replan="auto")
        with SubmatrixContext(BASE_CONFIG) as base:
            reference = base.trajectory(steps, water32_matrices.blocks, **kwargs)
        with SubmatrixContext(FP64_CONFIG) as fp64:
            traj = fp64.trajectory(
                steps,
                water32_matrices.blocks,
                checkpoint=tmp_path / "ckpt",
                **kwargs,
            )
        for result, expected in zip(traj.results, reference.results):
            assert_identical(result, expected)
        assert traj.stats.stacks_reduced == 0
        assert traj.stats.refinement_passes == 0
        assert traj.stats.precision_error_bound is None
        # resumed steps load the saved (zero) counters
        with SubmatrixContext(FP64_CONFIG) as fp64:
            resumed = fp64.trajectory(
                steps,
                water32_matrices.blocks,
                checkpoint=tmp_path / "ckpt",
                **kwargs,
            )
        assert resumed.stats.steps_resumed == len(steps)
        for result, expected in zip(resumed.results, reference.results):
            assert_identical(result, expected)

    def test_served_requests(self, water32_matrices, gap_mu):
        with SubmatrixContext(BASE_CONFIG) as base:
            reference = base.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
            )
        with DensityService(config=FP64_CONFIG) as service:
            served = service.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
            )
            snapshot = service.stats()
        assert_identical(served, reference)
        assert snapshot["metrics"]["total"]["stacks_reduced"] == 0
        assert snapshot["metrics"]["total"]["refinement_passes"] == 0


# --------------------------------------------------------------------------- #
# reduced execution end to end
# --------------------------------------------------------------------------- #
class TestReducedExecution:
    @pytest.fixture(scope="class")
    def fp64_reference(self, water32_matrices, gap_mu):
        with SubmatrixContext(BASE_CONFIG) as context:
            return context.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
            )

    def _density(self, water32_matrices, gap_mu, policy, **kwargs):
        with SubmatrixContext(
            BASE_CONFIG.replace(precision=policy)
        ) as context:
            return context.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver=kwargs.pop("solver", "newton_schulz"),
                **kwargs,
            )

    def test_fp32_density_accuracy_and_accounting(
        self, water32_matrices, gap_mu, fp64_reference
    ):
        result = self._density(
            water32_matrices, gap_mu, PrecisionPolicy(mode="fp32")
        )
        assert result.stacks_reduced > 0
        assert result.refinement_passes == result.stacks_reduced
        assert result.precision_error_bound is not None
        assert result.precision_error_bound > 0.0
        error = np.abs(result.density_ao - fp64_reference.density_ao).max()
        assert error < 1e-5

    def test_fp16_density_runs_with_looser_error(
        self, water32_matrices, gap_mu, fp64_reference
    ):
        result = self._density(
            water32_matrices, gap_mu, PrecisionPolicy(mode="fp16")
        )
        assert result.stacks_reduced > 0
        error = np.abs(result.density_ao - fp64_reference.density_ao).max()
        assert error < 1e-2

    def test_fp32_sharded_matches_single_process_reduced(
        self, water32_matrices, gap_mu
    ):
        policy = PrecisionPolicy(mode="fp32")
        single = self._density(water32_matrices, gap_mu, policy)
        sharded = self._density(water32_matrices, gap_mu, policy, ranks=4)
        # the reduced solves prescale and freeze per matrix, so the sharded
        # reduced path is bitwise identical to the single-process one too
        assert np.array_equal(single.density_ao, sharded.density_ao)
        assert sharded.stacks_reduced > 0

    def test_pade_reduced_path(self, water32_matrices, gap_mu, fp64_reference):
        result = self._density(
            water32_matrices, gap_mu, PrecisionPolicy(mode="fp32"), solver="pade"
        )
        assert result.stacks_reduced > 0
        error = np.abs(result.density_ao - fp64_reference.density_ao).max()
        assert error < 1e-5

    def test_auto_with_tight_budget_equals_fp64(
        self, water32_matrices, gap_mu, fp64_reference
    ):
        result = self._density(
            water32_matrices,
            gap_mu,
            PrecisionPolicy(mode="auto", error_tolerance=1e-14),
        )
        assert result.stacks_reduced == 0
        assert np.array_equal(result.density_ao, fp64_reference.density_ao)

    def test_auto_with_loose_budget_engages_and_stays_within_it(
        self, water32_matrices, gap_mu, fp64_reference
    ):
        policy = PrecisionPolicy(mode="auto", error_tolerance=1e-2)
        result = self._density(water32_matrices, gap_mu, policy)
        assert result.stacks_reduced > 0
        assert result.precision_error_bound <= policy.error_tolerance
        error = np.abs(result.density_ao - fp64_reference.density_ao).max()
        assert error <= policy.error_tolerance

    def test_trajectory_accounting_and_checkpoint_roundtrip(
        self, water32_matrices, gap_mu, tmp_path
    ):
        steps = [
            (water32_matrices.K * (1.0 + 1e-4 * index), water32_matrices.S)
            for index in range(2)
        ]
        config = BASE_CONFIG.replace(precision=PrecisionPolicy(mode="fp32"))
        with SubmatrixContext(config) as context:
            traj = context.trajectory(
                steps,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
                checkpoint=tmp_path / "ckpt",
            )
        assert traj.stats.stacks_reduced > 0
        assert traj.stats.refinement_passes > 0
        assert traj.stats.precision_error_bound is not None
        per_step = traj.stats.steps[0]
        assert per_step.stacks_reduced > 0
        # a resumed run reloads the persisted counters verbatim
        with SubmatrixContext(config) as context:
            resumed = context.trajectory(
                steps,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
                checkpoint=tmp_path / "ckpt",
            )
        assert resumed.stats.steps_resumed == len(steps)
        assert resumed.stats.stacks_reduced == traj.stats.stacks_reduced
        assert resumed.stats.precision_error_bound == pytest.approx(
            traj.stats.precision_error_bound
        )


# --------------------------------------------------------------------------- #
# serving layer
# --------------------------------------------------------------------------- #
class TestServingPrecision:
    def test_batch_key_separates_precision_modes(self, water32_matrices):
        fp64 = SubmatrixContext(BASE_CONFIG)
        fp32 = SubmatrixContext(
            BASE_CONFIG.replace(precision=PrecisionPolicy(mode="fp32"))
        )
        try:

            def request(context):
                return DensityRequest(
                    tenant="t",
                    context=context,
                    K=water32_matrices.K,
                    S=water32_matrices.S,
                    blocks=water32_matrices.blocks,
                    mu=0.0,
                )

            assert request(fp64).batch_key != request(fp32).batch_key
            assert request(fp64).batch_key == request(fp64).batch_key
            assert "fp64" in request(fp64).batch_key
            assert "fp32" in request(fp32).batch_key
        finally:
            fp64.close()
            fp32.close()

    def test_metrics_accumulate_precision_counters(self):
        metrics = ServiceMetrics()
        metrics.record_completed(
            "alice", 0.1, stacks_reduced=3, refinement_passes=2
        )
        metrics.record_completed("alice", 0.2)
        snapshot = metrics.snapshot()
        assert snapshot["tenants"]["alice"]["stacks_reduced"] == 3
        assert snapshot["tenants"]["alice"]["refinement_passes"] == 2
        assert snapshot["total"]["stacks_reduced"] == 3
        assert snapshot["total"]["refinement_passes"] == 2

    def test_served_reduced_request_accounts_and_matches_direct(
        self, water32_matrices, gap_mu
    ):
        config = BASE_CONFIG.replace(precision=PrecisionPolicy(mode="fp32"))
        with SubmatrixContext(config) as context:
            direct = context.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                mu=gap_mu,
                solver="newton_schulz",
            )
        with DensityService(config=config) as service:
            served = service.density(
                water32_matrices.K,
                water32_matrices.S,
                water32_matrices.blocks,
                tenant="alice",
                mu=gap_mu,
                solver="newton_schulz",
            )
            snapshot = service.stats()
        # the reduced pipeline is deterministic, so served equals direct
        assert np.array_equal(served.density_ao, direct.density_ao)
        assert served.stacks_reduced == direct.stacks_reduced > 0
        tenant = snapshot["metrics"]["tenants"]["alice"]
        assert tenant["stacks_reduced"] == served.stacks_reduced
        assert tenant["refinement_passes"] == served.refinement_passes


# --------------------------------------------------------------------------- #
# seed-era repro.accel: Figs 12-13 and Table I (satellite)
# --------------------------------------------------------------------------- #
class TestAccelPaperFigures:
    @pytest.fixture(scope="class")
    def submatrix(self):
        return spectrum_stack(1, 24, lam_min=0.4, lam_max=1.6, seed=13)[0]

    def test_involutority_noise_floor_plateau(self, submatrix):
        """Figs 12-13: FP16/FP16' plateau at a noise floor, FP32/FP64
        converge toward machine precision."""
        histories = {
            name: mixed_precision_sign_iteration(
                submatrix, precision=name, n_iterations=14
            ).involutority
            for name in ("FP16", "FP16'", "FP32", "FP64")
        }
        # only FP64 converges toward machine precision
        assert histories["FP64"][-1] < 1e-10
        # the reduced modes stall on noise floors set by their precision:
        # half-storage modes orders of magnitude above the single mode
        assert 1e-4 < histories["FP16"][-1] < 1e-1
        assert 1e-4 < histories["FP16'"][-1] < 1e-1
        assert 1e-8 < histories["FP32"][-1] < 1e-5
        # ... and each tail is flat (a noise floor, not slow convergence)
        for name in ("FP16", "FP16'", "FP32"):
            tail = np.asarray(histories[name][-4:])
            assert tail.max() < 10.0 * tail.min()
        # the floor ordering matches the storage/accumulate precision
        assert histories["FP16"][-1] >= histories["FP16'"][-1]
        assert histories["FP16'"][-1] > histories["FP32"][-1]
        assert histories["FP32"][-1] > histories["FP64"][-1]

    def test_table_i_throughput_ordering(self):
        """Table I: reduced modes saturate below their practical GEMM rate,
        FP64 stays GEMM-bound, and overall throughput orders FP16 > FP16' >
        FP32 > FP64."""
        perf = {
            name: model_sign_algorithm_performance(RTX_2080_TI, name)
            for name in ("FP16", "FP16'", "FP32", "FP64")
        }
        for name in ("FP16", "FP16'"):
            assert perf[name].overall_tflops < 0.85 * perf[name].gemm_tflops
        assert perf["FP64"].overall_tflops > 0.95 * perf["FP64"].gemm_tflops
        ordering = [perf[n].overall_tflops for n in ("FP16", "FP16'", "FP32", "FP64")]
        assert ordering == sorted(ordering, reverse=True)


# --------------------------------------------------------------------------- #
# result dataclass defaults
# --------------------------------------------------------------------------- #
def test_result_precision_defaults():
    result = SubmatrixDFTResult(
        density_ao=np.zeros((2, 2)),
        density_ortho=None,
        mu=0.0,
        n_electrons=0.0,
        band_energy=0.0,
        submatrix_dimensions=[2],
        mu_iterations=0,
        eps_filter=1e-5,
        wall_time=0.0,
    )
    assert result.stacks_reduced == 0
    assert result.refinement_passes == 0
    assert result.precision_error_bound is None
