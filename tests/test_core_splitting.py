"""Tests for sub-submatrix splitting (Sec. IV-C1)."""

import numpy as np
import pytest

from repro.core.splitting import split_submatrix_solve, splitting_flop_estimate
from repro.signfn import sign_via_eigendecomposition

from conftest import make_decay_matrix


@pytest.fixture()
def sparse_submatrix():
    """A dense-stored but element-sparse submatrix with decay."""
    matrix = make_decay_matrix(60, bandwidth=4.0, seed=11)
    matrix[np.abs(matrix) < 1e-3] = 0.0
    return matrix


class TestSplitSolve:
    def test_columns_close_to_full_solve(self, sparse_submatrix):
        needed = [5, 6, 7]
        result = split_submatrix_solve(
            sparse_submatrix, needed, sign_via_eigendecomposition
        )
        full = sign_via_eigendecomposition(sparse_submatrix)
        for output_index, column in enumerate(needed):
            support = sparse_submatrix[:, column] != 0
            difference = np.abs(
                result.columns[support, output_index] - full[support, column]
            )
            assert difference.max() < 0.05

    def test_zero_outside_column_support(self, sparse_submatrix):
        result = split_submatrix_solve(
            sparse_submatrix, [10], sign_via_eigendecomposition
        )
        support = sparse_submatrix[:, 10] != 0
        assert np.all(result.columns[~support, 0] == 0.0)

    def test_sub_dimensions_smaller_than_full(self, sparse_submatrix):
        result = split_submatrix_solve(
            sparse_submatrix, [20, 30], sign_via_eigendecomposition
        )
        assert all(d < sparse_submatrix.shape[0] for d in result.sub_dimensions)
        assert result.flop_estimate == pytest.approx(
            sum(float(d) ** 3 for d in result.sub_dimensions)
        )

    def test_dense_submatrix_gives_full_dimension(self):
        dense = make_decay_matrix(20, bandwidth=1e6)
        result = split_submatrix_solve(dense, [0], sign_via_eigendecomposition)
        assert result.sub_dimensions == [20]

    def test_invalid_inputs(self, sparse_submatrix):
        with pytest.raises(ValueError):
            split_submatrix_solve(sparse_submatrix, [], sign_via_eigendecomposition)
        with pytest.raises(IndexError):
            split_submatrix_solve(sparse_submatrix, [600], sign_via_eigendecomposition)
        with pytest.raises(ValueError):
            split_submatrix_solve(np.ones((2, 3)), [0], sign_via_eigendecomposition)

    def test_function_shape_checked(self, sparse_submatrix):
        with pytest.raises(ValueError):
            split_submatrix_solve(sparse_submatrix, [0], lambda a: a[:1, :1])


class TestSplittingEstimate:
    def test_sparse_submatrix_benefits_from_splitting(self):
        # a strongly banded submatrix where only two columns are needed:
        # the per-column sub-submatrices are tiny compared to the full solve
        matrix = make_decay_matrix(80, bandwidth=2.0, seed=3)
        matrix[np.abs(matrix) < 1e-2] = 0.0
        estimate = splitting_flop_estimate(matrix, [40, 41])
        assert estimate < 1.0

    def test_dense_submatrix_does_not_benefit(self):
        dense = make_decay_matrix(20, bandwidth=1e6)
        estimate = splitting_flop_estimate(dense, range(20))
        assert estimate >= 1.0

    def test_threshold_reduces_estimate(self, sparse_submatrix):
        loose = splitting_flop_estimate(sparse_submatrix, range(5), element_threshold=0.1)
        tight = splitting_flop_estimate(sparse_submatrix, range(5), element_threshold=0.0)
        assert loose <= tight
