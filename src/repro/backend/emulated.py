"""Reduced-precision array backend emulated on CPU.

Implements the :class:`~repro.backend.base.ArrayBackend` protocol on top of
:mod:`repro.accel.precision`: arrays live in the mode's *storage* dtype and
every GEMM goes through :func:`repro.accel.precision.gemm` (storage-cast →
accumulate-dtype product → rounded back to storage), reproducing the
rounding behaviour of the paper's tensor-core modes (Sec. VI-A) without the
hardware.  This is the backend the
:class:`~repro.api.config.PrecisionPolicy` uses for its reduced sign solves.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.accel.precision import PRECISION_MODES, PrecisionMode, convert, gemm
from repro.backend.base import ArrayBackend, register_backend

__all__ = ["EmulatedPrecisionBackend"]


class EmulatedPrecisionBackend(ArrayBackend):
    """Emulated reduced/mixed-precision execution (``"emulated"``).

    Parameters
    ----------
    mode:
        The :class:`~repro.accel.precision.PrecisionMode` to emulate.  The
        default is ``FP32``; ``FP16'`` (half storage, single accumulation)
        is the tensor-core mixed mode the paper favours for the sign
        iteration.
    """

    name = "emulated"

    def __init__(self, mode: PrecisionMode = PRECISION_MODES["FP32"]):
        self.precision = mode

    @property
    def dtype(self) -> np.dtype:
        return self.precision.storage_dtype

    def asarray(self, a) -> np.ndarray:
        return convert(a, self.precision)

    def array(self, a) -> np.ndarray:
        return np.array(a, dtype=self.precision.storage_dtype)

    def empty(self, shape, dtype=None) -> np.ndarray:
        return np.empty(
            shape, dtype=self.precision.storage_dtype if dtype is None else dtype
        )

    def eye(self, n: int) -> np.ndarray:
        return np.eye(n, dtype=self.precision.storage_dtype)

    def matmul(self, a, b) -> np.ndarray:
        return gemm(a, b, self.precision)

    def eigh(self, a) -> Tuple[np.ndarray, np.ndarray]:
        # LAPACK has no half-precision drivers: float16 inputs are promoted
        # to float32 for the decomposition and the factors rounded back to
        # storage, mirroring how a device would stage an eigensolve
        compute = np.asarray(a)
        if compute.dtype == np.float16:
            compute = compute.astype(np.float32)
        eigenvalues, eigenvectors = np.linalg.eigh(compute)
        return (
            convert(eigenvalues, self.precision),
            convert(eigenvectors, self.precision),
        )

    def to_numpy(self, a) -> np.ndarray:
        return np.asarray(a, dtype=float)


def _emulated_factory(precision: Optional[str]) -> EmulatedPrecisionBackend:
    name = "FP32" if precision is None else precision
    mode = PRECISION_MODES.get(name)
    if mode is None:
        raise ValueError(
            f"unknown precision mode {precision!r}; available: "
            f"{', '.join(PRECISION_MODES)}"
        )
    return EmulatedPrecisionBackend(mode)


register_backend("emulated", _emulated_factory)
