"""The array-backend seam of the execution stack.

Every dense-kernel hot spot of the reproduction — the batched sign
iterations (:mod:`repro.signfn.newton_schulz`, :mod:`repro.signfn.pade`),
the batched eigendecompositions (:mod:`repro.signfn.eigen`), the bucketed
evaluator (:mod:`repro.core.batch`) and the arrival-driven exchange
(:mod:`repro.core.overlap`) — routes its array allocation, GEMM and ``eigh``
calls through an :class:`ArrayBackend` instead of module-level ``numpy``.

Two backends ship today:

* ``"numpy"`` (:class:`NumpyBackend`) — the default.  Every method delegates
  to the *identical* NumPy call the kernels used before the seam existed
  (``np.matmul`` is what the ``@`` operator dispatches to), so the default
  path is bitwise identical to the pre-seam code.
* ``"emulated"`` (:class:`~repro.backend.emulated.EmulatedPrecisionBackend`)
  — reduced/mixed precision emulated on CPU via
  :func:`repro.accel.precision.convert` / :func:`repro.accel.precision.gemm`
  (the paper's FP16/FP16'/FP32 tensor-core modes, Sec. VI-A).

Backends produce and consume NumPy-API-compatible arrays (anything that
supports ufunc dispatch works, which is what lets a cupy/torch backend drop
in later through :func:`register_backend` without touching the kernels).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "NUMPY_BACKEND",
    "get_backend",
    "register_backend",
    "available_backends",
]


class ArrayBackend:
    """Protocol of an array backend (the ``xp`` seam).

    Subclasses provide the handful of operations the batched kernels need.
    All of them accept and return NumPy-API-compatible arrays; ``to_numpy``
    is the explicit exit point back to float64 host arrays.

    Attributes
    ----------
    name:
        Registry name of the backend family (``"numpy"``, ``"emulated"``).
    precision:
        The :class:`repro.accel.precision.PrecisionMode` the backend
        computes in, or ``None`` for native float64.
    """

    name: str = "abstract"
    precision = None

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of arrays produced by this backend."""
        raise NotImplementedError

    def asarray(self, a) -> np.ndarray:
        """View/convert ``a`` as a backend array (no copy when possible)."""
        raise NotImplementedError

    def array(self, a) -> np.ndarray:
        """Copy ``a`` into a fresh, writable backend array."""
        raise NotImplementedError

    def empty(self, shape, dtype=None) -> np.ndarray:
        """Uninitialized backend array (``dtype=None`` → storage dtype)."""
        raise NotImplementedError

    def eye(self, n: int) -> np.ndarray:
        """Identity matrix in the backend's storage dtype."""
        raise NotImplementedError

    def matmul(self, a, b) -> np.ndarray:
        """The GEMM seam (batched over leading dimensions)."""
        raise NotImplementedError

    def eigh(self, a) -> Tuple[np.ndarray, np.ndarray]:
        """Symmetric eigendecomposition (batched over leading dimensions)."""
        raise NotImplementedError

    def to_numpy(self, a) -> np.ndarray:
        """Return ``a`` as a host float64 array (no copy when already one)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = f", precision={self.precision.name!r}" if self.precision else ""
        return f"<ArrayBackend {self.name!r}{mode}>"


class NumpyBackend(ArrayBackend):
    """Native float64 NumPy — the default backend.

    Every method is the literal NumPy call the kernels made before the
    backend seam existed (``matmul`` *is* the function behind the ``@``
    operator), which is what keeps the default execution path bitwise
    identical to the pre-seam code.
    """

    name = "numpy"
    precision = None

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float64)

    def asarray(self, a) -> np.ndarray:
        return np.asarray(a, dtype=float)

    def array(self, a) -> np.ndarray:
        return np.array(a, dtype=float)

    def empty(self, shape, dtype=None) -> np.ndarray:
        return np.empty(shape, dtype=float if dtype is None else dtype)

    def eye(self, n: int) -> np.ndarray:
        return np.eye(n)

    def matmul(self, a, b) -> np.ndarray:
        return np.matmul(a, b)

    def eigh(self, a) -> Tuple[np.ndarray, np.ndarray]:
        return np.linalg.eigh(a)

    def to_numpy(self, a) -> np.ndarray:
        return np.asarray(a, dtype=float)


#: The process-wide default backend (stateless, safe to share).
NUMPY_BACKEND = NumpyBackend()

# backend family name -> factory(precision: Optional[str]) -> ArrayBackend
_REGISTRY: Dict[str, Callable[[Optional[str]], ArrayBackend]] = {}
# (family, precision) -> backend instance; backends are stateless, so one
# instance per configuration is shared across threads and sessions
_INSTANCES: Dict[Tuple[str, Optional[str]], ArrayBackend] = {}


def register_backend(
    name: str, factory: Callable[[Optional[str]], ArrayBackend]
) -> None:
    """Register an array-backend family.

    ``factory(precision)`` must return an :class:`ArrayBackend`;
    ``precision`` is the optional precision-mode name forwarded from
    :func:`get_backend` (``None`` when the caller did not ask for one).
    This is the drop-in point for cupy/torch backends.
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Names of the registered backend families."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str = "numpy", precision: Optional[str] = None) -> ArrayBackend:
    """Resolve (and cache) a backend instance.

    Parameters
    ----------
    name:
        Backend family (``"numpy"``, ``"emulated"``, or anything added via
        :func:`register_backend`).
    precision:
        Optional precision-mode name (``"FP16"``, ``"FP16'"``, ``"FP32"``,
        ``"FP64"``) for precision-parameterised backends.  The ``"numpy"``
        backend accepts only ``None``/``"FP64"``.
    """
    key = (name, precision)
    backend = _INSTANCES.get(key)
    if backend is not None:
        return backend
    factory = _REGISTRY.get(name)
    if factory is None:
        raise KeyError(
            f"unknown array backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    backend = factory(precision)
    _INSTANCES[key] = backend
    return backend


def _numpy_factory(precision: Optional[str]) -> ArrayBackend:
    if precision not in (None, "FP64"):
        raise ValueError(
            f"the numpy backend computes in native float64; got "
            f"precision={precision!r} (use the 'emulated' backend for "
            f"reduced precision)"
        )
    return NUMPY_BACKEND


register_backend("numpy", _numpy_factory)
