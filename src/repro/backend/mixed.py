"""Mixed-precision stack execution for the density driver.

This module implements the execution side of
:class:`~repro.api.config.PrecisionPolicy`: given a μ-shifted bucketed
``(k, d, d)`` stack, decide the precision mode (fixed, or per-stack for
``"auto"``), run the registered kernel's reduced-precision batched sign
solve through the ``"emulated"`` array backend, and recover the target
accuracy with a warm-started FP64 Newton–Schulz refinement pass.

**Why refinement works (and what it recovers).**  The Newton–Schulz map
``X ← ½·X(3I − X²)`` contracts toward the involutory manifold, so an FP64
continuation started from the reduced-precision iterate removes the
reduced mode's *involutority* noise floor (Fig. 13) in a few quadratically
convergent iterations — the refined density is a clean projector to FP64
working accuracy.  What refinement cannot undo is the invariant-subspace
perturbation the reduced rounding introduced, which is bounded by
``ε_mode · κ`` with κ the sign-problem conditioning of the stack.  That
bound is exactly what the ``"auto"`` policy checks against the configured
``error_tolerance`` before choosing a mode, and what lands on results as
``precision_error_bound``.

**Mode selection** (``"auto"``): candidate modes are ranked by the
:mod:`repro.accel.perf_model` end-to-end throughput model for the stack's
submatrix dimension, and the fastest mode whose ``ε_mode · κ`` fits the
error budget wins; when none fits, the stack runs in FP64.  κ comes from a
cheap per-submatrix estimate — the spectral-radius upper bound over a
Gershgorin lower bound on ``|λ|min`` of the shifted matrix, with a
configurable assumed gap floor when the Gershgorin bound is uninformative
(μ sits inside a cluster of discs for most Kohn–Sham matrices).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.accel.perf_model import (
    RTX_2080_TI,
    DeviceSpec,
    model_sign_algorithm_performance,
)
from repro.accel.precision import PRECISION_MODES, PrecisionMode
from repro.backend.base import get_backend

__all__ = [
    "PrecisionReport",
    "estimate_stack_condition",
    "select_stack_mode",
    "solve_reduced_sign",
    "REDUCED_CONVERGENCE_FACTOR",
]

#: Convergence threshold of a reduced-precision sign solve, as a multiple of
#: the mode's unit roundoff: the iteration stops at its attainable noise
#: floor instead of burning iterations chasing an FP64 threshold it can
#: never reach (the refinement pass takes over from there).
REDUCED_CONVERGENCE_FACTOR = 8.0

#: Fixed-policy mode names → paper precision modes.  ``"fp16"`` maps to the
#: tensor-core mixed mode FP16' (half storage, single accumulation), which
#: the paper favours over pure FP16 for the sign iteration; pure FP16 stays
#: reachable through ``get_backend("emulated", precision="FP16")``.
_POLICY_MODE_OF = {"fp32": "FP32", "fp16": "FP16'"}

#: Reduced modes the ``"auto"`` policy considers (FP64 is the fallback).
_AUTO_CANDIDATES = ("FP16'", "FP32")


@dataclasses.dataclass
class PrecisionReport:
    """What the mixed-precision machinery did during one density run.

    Attributes
    ----------
    stacks_reduced:
        Bucketed stacks whose sign solve ran in a reduced precision mode
        (stacks the policy left in FP64 are not counted).
    refinement_passes:
        FP64 Newton–Schulz refinement passes run (one per reduced stack
        whose refinement converged).
    error_bound:
        Max over the reduced stacks of the a-priori density error bound
        ``ε_mode · κ_estimate`` (0.0 when nothing ran reduced).
    modes:
        Reduced-stack counts per precision-mode name.
    """

    stacks_reduced: int = 0
    refinement_passes: int = 0
    error_bound: float = 0.0
    modes: Dict[str, int] = dataclasses.field(default_factory=dict)


def estimate_stack_condition(shifted: np.ndarray, gap_floor: float) -> float:
    """Cheap sign-problem conditioning estimate of a μ-shifted stack.

    Per matrix, ``|λ|max`` is bounded above by the 1-/∞-norm geometric mean
    (the same bound that prescales the sign iterations) and ``|λ|min`` below
    by the Gershgorin disc bound ``min_i(|a_ii| − Σ_{j≠i}|a_ij|)``.  When
    that bound is not positive — the generic case for a μ inside the
    spectrum's Gershgorin discs — the assumed ``gap_floor`` stands in for
    the distance of μ to the nearest eigenvalue.  Returns the worst (max)
    κ over the stack, which is the right granularity because the policy
    picks one mode per bucketed stack.
    """
    a = np.asarray(shifted, dtype=float)
    abs_a = np.abs(a)
    one_norm = abs_a.sum(axis=1).max(axis=1)
    inf_norm = abs_a.sum(axis=2).max(axis=1)
    upper = np.sqrt(one_norm * inf_norm)
    diagonal = np.abs(np.diagonal(a, axis1=1, axis2=2))
    radius = abs_a.sum(axis=2) - diagonal
    gershgorin = (diagonal - radius).min(axis=1)
    floor = float(gap_floor)
    lam_min = np.where(gershgorin > 0.0, np.maximum(gershgorin, floor), floor)
    kappa = np.where(upper > 0.0, upper / lam_min, 1.0)
    return float(kappa.max()) if kappa.size else 1.0


def select_stack_mode(
    policy,
    shifted: np.ndarray,
    device: DeviceSpec = RTX_2080_TI,
) -> Optional[Tuple[PrecisionMode, float]]:
    """Choose the reduced precision mode (and error bound) for one stack.

    Returns ``(mode, bound)`` with ``bound = ε_mode · κ_estimate``, or
    ``None`` when the stack should run in FP64 (policy inactive, submatrix
    below ``min_dimension``, or — for ``"auto"`` — no candidate mode fits
    the error budget).
    """
    n = int(shifted.shape[-1])
    if n < policy.min_dimension:
        return None
    kappa = estimate_stack_condition(shifted, policy.gap_floor)
    fixed = _POLICY_MODE_OF.get(policy.mode)
    if fixed is not None:
        mode = PRECISION_MODES[fixed]
        return mode, mode.epsilon * kappa
    if policy.mode != "auto":
        return None
    candidates = [name for name in _AUTO_CANDIDATES if device.supports(name)]
    candidates.sort(
        key=lambda name: model_sign_algorithm_performance(
            device, name, matrix_dimension=max(n, 1)
        ).overall_tflops,
        reverse=True,
    )
    for name in candidates:
        mode = PRECISION_MODES[name]
        bound = mode.epsilon * kappa
        if bound <= policy.error_tolerance:
            return mode, bound
    return None


def solve_reduced_sign(
    kernel,
    shifted: np.ndarray,
    policy,
    report: Optional[PrecisionReport] = None,
) -> Optional[np.ndarray]:
    """Reduced-precision sign solve of one μ-shifted stack, FP64-refined.

    Runs the kernel's reduced batched sign solve through the emulated
    backend in the policy-selected mode, then refines the FP64-cast
    estimate with a warm-started Newton–Schulz continuation.  Returns the
    refined float64 sign stack, or ``None`` when the stack should (or had
    to) run the ordinary FP64 path instead: unsupported kernel, policy/
    dimension gate, a non-finite reduced estimate (e.g. FP16 overflow), or
    a refinement pass that failed to converge.  Accounting lands on
    ``report`` only for successful reduced solves.
    """
    from repro.signfn.newton_schulz import refine_sign_newton_schulz_batched

    if not getattr(kernel, "supports_reduced_precision", False):
        return None
    if getattr(kernel, "make_reduced_batched", None) is None:
        return None
    selected = select_stack_mode(policy, shifted)
    if selected is None:
        return None
    mode, bound = selected
    xp = get_backend("emulated", precision=mode.name)
    threshold = max(
        REDUCED_CONVERGENCE_FACTOR * mode.epsilon, policy.refinement_threshold
    )
    reduced_solve = kernel.make_reduced_batched(xp, threshold)
    with np.errstate(over="ignore", invalid="ignore"):
        estimate = np.asarray(reduced_solve(shifted), dtype=float)
    if estimate.shape != shifted.shape or not np.all(np.isfinite(estimate)):
        return None
    refined = refine_sign_newton_schulz_batched(
        estimate,
        convergence_threshold=policy.refinement_threshold,
        max_iterations=policy.max_refinement_iterations,
    )
    if not bool(np.all(refined.converged)):
        return None
    if report is not None:
        report.stacks_reduced += 1
        report.refinement_passes += 1
        report.error_bound = max(report.error_bound, float(bound))
        report.modes[mode.name] = report.modes.get(mode.name, 0) + 1
    return refined.sign
