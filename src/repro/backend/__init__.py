"""Array-backend seam + mixed-precision execution (Sec. VI of the paper).

The ``repro.backend`` package isolates *where arrays live and how GEMMs and
eigensolves execute* from the rest of the engine:

* :mod:`repro.backend.base` — the :class:`ArrayBackend` protocol, the
  default :class:`NumpyBackend` (bitwise identical to the pre-seam code)
  and the :func:`get_backend`/:func:`register_backend` registry that lets a
  cupy/torch backend drop in later;
* :mod:`repro.backend.emulated` — the ``"emulated"`` reduced-precision
  backend built on :mod:`repro.accel.precision` (the paper's
  FP16/FP16'/FP32 tensor-core modes, emulated with NumPy dtype rounding);
* :mod:`repro.backend.mixed` — the execution side of
  :class:`~repro.api.config.PrecisionPolicy`: per-stack mode selection from
  the :mod:`repro.accel.perf_model` throughput model and a cheap submatrix
  condition estimate, reduced batched sign solves, and the warm-started
  FP64 Newton–Schulz refinement pass.
"""

from repro.backend.base import (
    NUMPY_BACKEND,
    ArrayBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.backend.emulated import EmulatedPrecisionBackend
from repro.backend.mixed import (
    REDUCED_CONVERGENCE_FACTOR,
    PrecisionReport,
    estimate_stack_condition,
    select_stack_mode,
    solve_reduced_sign,
)

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "EmulatedPrecisionBackend",
    "NUMPY_BACKEND",
    "get_backend",
    "register_backend",
    "available_backends",
    "PrecisionReport",
    "estimate_stack_condition",
    "select_stack_mode",
    "solve_reduced_sign",
    "REDUCED_CONVERGENCE_FACTOR",
]
