"""Analysis utilities: sparsity statistics and evaluation metrics."""

from repro.analysis.sparsity import (
    block_occupation,
    element_occupation,
    submatrix_block_occupation,
    submatrix_element_occupation,
)
from repro.analysis.metrics import (
    energy_error_per_atom,
    parallel_efficiency,
    linear_fit,
    crossover_point,
)

__all__ = [
    "block_occupation",
    "element_occupation",
    "submatrix_block_occupation",
    "submatrix_element_occupation",
    "energy_error_per_atom",
    "parallel_efficiency",
    "linear_fit",
    "crossover_point",
]
