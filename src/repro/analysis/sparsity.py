"""Sparsity statistics of matrices and submatrices.

Fig. 11 of the paper compares three occupations for increasing system sizes:
the block-wise occupation of the orthogonalized Kohn–Sham matrix, the
block-wise occupation of the submatrices, and the element-wise occupation of
the submatrices.  The functions here compute those statistics from either
dense/CSR matrices or block-sparsity patterns.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np
import scipy.sparse as sp

__all__ = [
    "block_occupation",
    "element_occupation",
    "submatrix_block_occupation",
    "submatrix_element_occupation",
]


def block_occupation(pattern: sp.spmatrix) -> float:
    """Fraction of non-zero blocks in a block-sparsity pattern."""
    total = pattern.shape[0] * pattern.shape[1]
    if total == 0:
        return 0.0
    return pattern.nnz / total


def element_occupation(
    matrix: Union[np.ndarray, sp.spmatrix], threshold: float = 0.0
) -> float:
    """Fraction of elements with magnitude above ``threshold``."""
    if sp.issparse(matrix):
        data = matrix.tocoo().data
        count = int(np.count_nonzero(np.abs(data) > threshold))
        total = matrix.shape[0] * matrix.shape[1]
    else:
        dense = np.asarray(matrix)
        count = int(np.count_nonzero(np.abs(dense) > threshold))
        total = dense.size
    return count / total if total else 0.0


def submatrix_block_occupation(
    pattern: sp.spmatrix, block_rows: Sequence[int]
) -> float:
    """Block-wise occupation of the principal submatrix over ``block_rows``.

    ``pattern`` is the block-sparsity pattern of the full matrix and
    ``block_rows`` the block indices retained in the submatrix (the non-zero
    block rows of the generating column(s)).
    """
    block_rows = np.asarray(list(block_rows), dtype=int)
    if block_rows.size == 0:
        return 0.0
    sub = pattern.tocsr()[block_rows][:, block_rows]
    return block_occupation(sub)


def submatrix_element_occupation(
    pattern: sp.spmatrix,
    block_rows: Sequence[int],
    block_sizes: Sequence[int],
) -> float:
    """Element-wise occupation of the principal submatrix over ``block_rows``.

    Elements inside non-zero blocks are counted as occupied (DBCSR stores
    whole blocks densely), so this measures the fraction of the dense
    submatrix covered by non-zero blocks — the quantity that motivates the
    paper's remark that element-wise sparse algebra could be profitable for
    larger basis sets (Sec. V-C).
    """
    block_rows = np.asarray(list(block_rows), dtype=int)
    block_sizes = np.asarray(list(block_sizes), dtype=int)
    if block_rows.size == 0:
        return 0.0
    sizes = block_sizes[block_rows]
    dimension = int(sizes.sum())
    if dimension == 0:
        return 0.0
    sub = pattern.tocsr()[block_rows][:, block_rows].tocoo()
    occupied_elements = int(np.sum(sizes[sub.row] * sizes[sub.col]))
    return occupied_elements / (dimension * dimension)
