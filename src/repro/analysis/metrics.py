"""Evaluation metrics: errors per atom, scaling efficiencies, fits.

These helpers convert raw results into the quantities plotted in the paper's
figures (meV per atom, strong/weak-scaling efficiency, linear-scaling fits,
runtime crossover points).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "energy_error_per_atom",
    "parallel_efficiency",
    "linear_fit",
    "crossover_point",
]


def energy_error_per_atom(
    energy: float, reference_energy: float, n_atoms: int, unit: str = "meV"
) -> float:
    """Absolute energy error per atom.

    Parameters
    ----------
    energy, reference_energy:
        Energies in eV.
    n_atoms:
        Number of atoms of the system.
    unit:
        ``"meV"`` (default, as in the paper's Figs. 1 and 7) or ``"eV"``.
    """
    if n_atoms < 1:
        raise ValueError("n_atoms must be positive")
    error = abs(energy - reference_energy) / n_atoms
    if unit == "meV":
        return 1000.0 * error
    if unit == "eV":
        return error
    raise ValueError("unit must be 'meV' or 'eV'")


def parallel_efficiency(
    times: Sequence[float],
    resources: Sequence[float],
    mode: str = "strong",
) -> np.ndarray:
    """Strong- or weak-scaling efficiency relative to the first data point.

    Parameters
    ----------
    times:
        Wall-clock (or simulated) times.
    resources:
        Core/node counts corresponding to the times.
    mode:
        ``"strong"``: efficiency = t0·r0 / (t·r) (perfect scaling keeps the
        core-time product constant at fixed problem size);
        ``"weak"``: efficiency = t0 / t (perfect scaling keeps the time
        constant while problem size and resources grow together).
    """
    times = np.asarray(times, dtype=float)
    resources = np.asarray(resources, dtype=float)
    if times.shape != resources.shape:
        raise ValueError("times and resources must have the same length")
    if np.any(times <= 0) or np.any(resources <= 0):
        raise ValueError("times and resources must be positive")
    if mode == "strong":
        return (times[0] * resources[0]) / (times * resources)
    if mode == "weak":
        return times[0] / times
    raise ValueError("mode must be 'strong' or 'weak'")


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares line y = a·x + b and the coefficient of determination R².

    Used to verify the linear-scaling behaviour of Fig. 8: runtime vs. number
    of atoms should fit a straight line with R² close to 1.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two matching data points")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(slope), float(intercept), r_squared


def crossover_point(
    x: Sequence[float], y_a: Sequence[float], y_b: Sequence[float]
) -> float:
    """x value where curve a crosses below curve b (log-linear interpolation).

    Used for the runtime-vs-eps_filter comparison (Fig. 6): the paper reports
    that the submatrix method becomes faster than Newton–Schulz for
    eps_filter > 1e-5.  Returns ``nan`` when the curves do not cross.
    """
    x = np.asarray(x, dtype=float)
    a = np.asarray(y_a, dtype=float)
    b = np.asarray(y_b, dtype=float)
    if not (x.size == a.size == b.size):
        raise ValueError("all inputs must have the same length")
    difference = a - b
    for i in range(1, len(x)):
        if difference[i - 1] == 0.0:
            return float(x[i - 1])
        if difference[i - 1] * difference[i] < 0:
            # linear interpolation in log-x if x is positive and spans decades
            if np.all(x > 0):
                lx0, lx1 = np.log10(x[i - 1]), np.log10(x[i])
                t = difference[i - 1] / (difference[i - 1] - difference[i])
                return float(10 ** (lx0 + t * (lx1 - lx0)))
            t = difference[i - 1] / (difference[i - 1] - difference[i])
            return float(x[i - 1] + t * (x[i] - x[i - 1]))
    return float("nan")
