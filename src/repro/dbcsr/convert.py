"""Conversions between block-sparse, SciPy sparse and dense representations.

The chemistry substrate produces ``scipy.sparse`` matrices with a known block
(molecule) structure; the DBCSR substrate and the submatrix method operate on
:class:`~repro.dbcsr.block_matrix.BlockSparseMatrix`.  These helpers move
data between the representations while preserving the block structure and
dropping blocks that are entirely below a threshold.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
import scipy.sparse as sp

from repro.dbcsr.block_matrix import BlockSparseMatrix

__all__ = [
    "block_matrix_from_dense",
    "block_matrix_from_csr",
    "block_matrix_to_dense",
    "block_matrix_to_csr",
]


def block_matrix_from_dense(
    matrix: np.ndarray,
    row_block_sizes: Iterable[int],
    col_block_sizes: Optional[Iterable[int]] = None,
    threshold: float = 0.0,
) -> BlockSparseMatrix:
    """Cut a dense matrix into blocks, keeping blocks above ``threshold``.

    A block is kept when its largest absolute element is strictly greater
    than ``threshold`` (with ``threshold=0.0`` all blocks containing any
    non-zero are kept).
    """
    matrix = np.asarray(matrix, dtype=float)
    result = BlockSparseMatrix(row_block_sizes, col_block_sizes)
    rows, cols = result.shape
    if matrix.shape != (rows, cols):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match block structure "
            f"({rows}, {cols})"
        )
    for bi in range(result.n_block_rows):
        r0, r1 = result.row_starts[bi], result.row_starts[bi + 1]
        for bj in range(result.n_block_cols):
            c0, c1 = result.col_starts[bj], result.col_starts[bj + 1]
            block = matrix[r0:r1, c0:c1]
            peak = np.max(np.abs(block)) if block.size else 0.0
            if peak > threshold or (threshold == 0.0 and peak > 0.0):
                result.put_block(bi, bj, block)
    return result


def block_matrix_from_csr(
    matrix: sp.spmatrix,
    row_block_sizes: Iterable[int],
    col_block_sizes: Optional[Iterable[int]] = None,
    threshold: float = 0.0,
) -> BlockSparseMatrix:
    """Convert a SciPy sparse matrix to block-sparse storage.

    Only blocks that contain at least one stored element above ``threshold``
    are created; within a created block the full dense content of that block
    region is stored (including elements below the threshold), matching
    DBCSR's block-level granularity.
    """
    result = BlockSparseMatrix(row_block_sizes, col_block_sizes)
    rows, cols = result.shape
    if matrix.shape != (rows, cols):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match block structure "
            f"({rows}, {cols})"
        )
    coo = matrix.tocoo()
    if threshold > 0.0:
        keep = np.abs(coo.data) > threshold
        coo = sp.coo_matrix(
            (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=coo.shape
        )
    if coo.nnz == 0:
        return result
    block_row = np.searchsorted(result.row_starts, coo.row, side="right") - 1
    block_col = np.searchsorted(result.col_starts, coo.col, side="right") - 1
    occupied = set(zip(block_row.tolist(), block_col.tolist()))
    csr = matrix.tocsr()
    for bi, bj in sorted(occupied):
        r0, r1 = result.row_starts[bi], result.row_starts[bi + 1]
        c0, c1 = result.col_starts[bj], result.col_starts[bj + 1]
        block = csr[r0:r1, c0:c1].toarray()
        result.put_block(bi, bj, block)
    return result


def block_matrix_to_dense(matrix: BlockSparseMatrix) -> np.ndarray:
    """Densify a block-sparse matrix."""
    rows, cols = matrix.shape
    dense = np.zeros((rows, cols))
    for bi, bj, block in matrix.iter_blocks():
        r0 = matrix.row_starts[bi]
        c0 = matrix.col_starts[bj]
        dense[r0 : r0 + block.shape[0], c0 : c0 + block.shape[1]] = block
    return dense


def block_matrix_to_csr(matrix: BlockSparseMatrix) -> sp.csr_matrix:
    """Convert block-sparse storage to a SciPy CSR matrix."""
    rows_idx = []
    cols_idx = []
    values = []
    for bi, bj, block in matrix.iter_blocks():
        r0 = matrix.row_starts[bi]
        c0 = matrix.col_starts[bj]
        nr, nc = block.shape
        local_r, local_c = np.meshgrid(np.arange(nr), np.arange(nc), indexing="ij")
        rows_idx.append((r0 + local_r).ravel())
        cols_idx.append((c0 + local_c).ravel())
        values.append(block.ravel())
    if not values:
        return sp.csr_matrix(matrix.shape)
    return sp.coo_matrix(
        (
            np.concatenate(values),
            (np.concatenate(rows_idx), np.concatenate(cols_idx)),
        ),
        shape=matrix.shape,
    ).tocsr()
