"""Deterministic global COO view of the block sparsity pattern.

The submatrix implementation in CP2K starts by creating "a list of non-zero
blocks in a coordinate format (COO), which stores row and column of each
non-zero block.  This list is deterministically sorted by columns and rows
such that it is identical on all ranks.  This way, the position of a non-zero
block in this COO representation also serves as a unique ID for the block
throughout our implementation" (Sec. IV-A1 of the paper).

:class:`CooBlockList` reproduces that data structure, including the traffic
cost of building it from distributed data (an allgather of the locally known
block coordinates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.distribution import BlockDistribution
from repro.parallel.comm import SimComm

__all__ = ["CooBlockList"]


class CooBlockList:
    """Sorted list of non-zero block coordinates with unique block IDs."""

    def __init__(self, rows: Sequence[int], cols: Sequence[int], n_block_rows: int, n_block_cols: int):
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same length")
        if rows.size and (rows.min() < 0 or rows.max() >= n_block_rows):
            raise ValueError("block row index out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= n_block_cols):
            raise ValueError("block column index out of range")
        order = np.lexsort((rows, cols))  # sort by column, then row
        self.rows = rows[order]
        self.cols = cols[order]
        self.n_block_rows = int(n_block_rows)
        self.n_block_cols = int(n_block_cols)
        self._id_of: Dict[Tuple[int, int], int] = {
            (int(r), int(c)): i for i, (r, c) in enumerate(zip(self.rows, self.cols))
        }

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_block_matrix(cls, matrix: BlockSparseMatrix) -> "CooBlockList":
        """Build the COO list from a (logically distributed) block matrix."""
        keys = matrix.block_keys()
        rows = [bi for bi, _ in keys]
        cols = [bj for _, bj in keys]
        return cls(rows, cols, matrix.n_block_rows, matrix.n_block_cols)

    @classmethod
    def from_pattern(cls, pattern: sp.spmatrix) -> "CooBlockList":
        """Build the COO list from a boolean block-sparsity pattern."""
        coo = pattern.tocoo()
        return cls(coo.row, coo.col, pattern.shape[0], pattern.shape[1])

    @classmethod
    def gather_distributed(
        cls,
        matrix: BlockSparseMatrix,
        distribution: BlockDistribution,
        comm: Optional[SimComm] = None,
    ) -> "CooBlockList":
        """Build the global COO list from distributed per-rank knowledge.

        Each rank initially only knows which of its *own* blocks are non-zero
        (Sec. IV-A1); an allgather of the per-rank coordinate lists creates
        the identical global view on every rank.  The allgather traffic is
        recorded on ``comm`` when provided.
        """
        per_rank: List[np.ndarray] = []
        for rank in range(distribution.n_ranks):
            local = distribution.local_blocks(matrix, rank)
            per_rank.append(np.asarray(local, dtype=int).reshape(-1, 2))
        if comm is not None:
            comm.allgather([arr for arr in per_rank])
        if per_rank:
            stacked = np.vstack([arr for arr in per_rank if arr.size])
        else:  # pragma: no cover - defensive
            stacked = np.empty((0, 2), dtype=int)
        return cls(
            stacked[:, 0],
            stacked[:, 1],
            matrix.n_block_rows,
            matrix.n_block_cols,
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def block_id(self, bi: int, bj: int) -> int:
        """Unique ID (position in the sorted list) of block (bi, bj)."""
        try:
            return self._id_of[(int(bi), int(bj))]
        except KeyError as exc:
            raise KeyError(f"block ({bi}, {bj}) is not in the COO list") from exc

    def block_at(self, block_id: int) -> Tuple[int, int]:
        """Block coordinates of a given ID."""
        if not 0 <= block_id < len(self):
            raise IndexError(f"block id {block_id} out of range")
        return int(self.rows[block_id]), int(self.cols[block_id])

    def contains(self, bi: int, bj: int) -> bool:
        """Whether block (bi, bj) is non-zero."""
        return (int(bi), int(bj)) in self._id_of

    def blocks_in_column(self, bj: int) -> List[int]:
        """Sorted block rows of the non-zero blocks in block column ``bj``."""
        start, stop = np.searchsorted(self.cols, [bj, bj + 1])
        return sorted(int(r) for r in self.rows[start:stop])

    def blocks_in_columns(self, columns: Sequence[int]) -> List[int]:
        """Sorted union of non-zero block rows over several block columns."""
        columns = np.asarray(list(columns), dtype=int)
        starts = np.searchsorted(self.cols, columns)
        stops = np.searchsorted(self.cols, columns + 1)
        if len(columns) == 0:
            return []
        pieces = [self.rows[s:e] for s, e in zip(starts, stops)]
        return np.unique(np.concatenate(pieces)).tolist()

    def column_ranges(self, columns: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Start/stop positions of the given block columns in the sorted list.

        Because the list is sorted by column, the entries of column ``c``
        occupy the contiguous ID range ``[start, stop)``; this is the lookup
        the extraction plans build on.
        """
        columns = np.atleast_1d(np.asarray(columns, dtype=int))
        starts = np.searchsorted(self.cols, columns)
        stops = np.searchsorted(self.cols, columns + 1)
        return starts, stops

    def entries_in_columns(
        self, columns: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All COO entries of the given block columns, as flat arrays.

        Returns ``(block_ids, rows, cols)`` where ``block_ids`` are the unique
        IDs (positions in the sorted list), concatenated column by column in
        the order the columns were given.
        """
        starts, stops = self.column_ranges(columns)
        if starts.size == 0:
            empty = np.empty(0, dtype=int)
            return empty, empty.copy(), empty.copy()
        ids = np.concatenate(
            [np.arange(s, e) for s, e in zip(starts, stops)]
        ).astype(int)
        return ids, self.rows[ids], self.cols[ids]

    def fingerprint(self) -> str:
        """Deterministic content hash of the sparsity pattern.

        Used as (part of) the cache key for extraction plans: two block
        matrices with bitwise-identical patterns share their plans.
        """
        import hashlib

        digest = hashlib.sha1()
        digest.update(np.int64([self.n_block_rows, self.n_block_cols]).tobytes())
        digest.update(np.ascontiguousarray(self.rows, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(self.cols, dtype=np.int64).tobytes())
        return digest.hexdigest()

    def column_counts(self) -> np.ndarray:
        """Number of non-zero blocks per block column."""
        counts = np.zeros(self.n_block_cols, dtype=int)
        np.add.at(counts, self.cols, 1)
        return counts

    def to_pattern(self) -> sp.csr_matrix:
        """Boolean CSR pattern matrix of the non-zero blocks."""
        data = np.ones(len(self), dtype=bool)
        return sp.coo_matrix(
            (data, (self.rows, self.cols)),
            shape=(self.n_block_rows, self.n_block_cols),
        ).tocsr()
