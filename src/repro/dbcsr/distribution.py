"""Block distribution over a 2D process grid.

DBCSR arranges MPI ranks in a 2D cartesian topology and maps block rows and
block columns to grid rows and columns (Sec. II-C of the paper).  A block
(bi, bj) is owned by the rank at grid position
(row_distribution[bi], col_distribution[bj]); the default distribution is
round-robin, like DBCSR's.

In the submatrix implementation (Sec. IV-A) every rank knows this mapping and
uses it to determine from which rank it must request the blocks of the
submatrices it is responsible for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.parallel.topology import CartesianGrid2D

__all__ = ["ProcessGrid2D", "BlockDistribution"]


class ProcessGrid2D(CartesianGrid2D):
    """A 2D process grid; alias of the generic cartesian grid.

    Kept as a distinct name so call sites read like DBCSR code.
    """


class BlockDistribution:
    """Mapping of matrix blocks to ranks of a 2D process grid.

    Parameters
    ----------
    n_block_rows, n_block_cols:
        Block dimensions of the distributed matrix.
    grid:
        Process grid.
    row_distribution, col_distribution:
        Optional explicit mapping of block rows/columns to grid rows/columns;
        round-robin by default.
    """

    def __init__(
        self,
        n_block_rows: int,
        n_block_cols: int,
        grid: ProcessGrid2D,
        row_distribution: Optional[np.ndarray] = None,
        col_distribution: Optional[np.ndarray] = None,
    ):
        if n_block_rows < 1 or n_block_cols < 1:
            raise ValueError("block dimensions must be positive")
        self.n_block_rows = int(n_block_rows)
        self.n_block_cols = int(n_block_cols)
        self.grid = grid
        if row_distribution is None:
            row_distribution = np.arange(self.n_block_rows) % grid.rows
        if col_distribution is None:
            col_distribution = np.arange(self.n_block_cols) % grid.cols
        self.row_distribution = np.asarray(row_distribution, dtype=int)
        self.col_distribution = np.asarray(col_distribution, dtype=int)
        if self.row_distribution.shape != (self.n_block_rows,):
            raise ValueError("row_distribution has wrong length")
        if self.col_distribution.shape != (self.n_block_cols,):
            raise ValueError("col_distribution has wrong length")
        if np.any(self.row_distribution < 0) or np.any(
            self.row_distribution >= grid.rows
        ):
            raise ValueError("row_distribution entries out of grid range")
        if np.any(self.col_distribution < 0) or np.any(
            self.col_distribution >= grid.cols
        ):
            raise ValueError("col_distribution entries out of grid range")

    @property
    def n_ranks(self) -> int:
        """Number of ranks in the process grid."""
        return self.grid.n_ranks

    def owner_of(self, bi: int, bj: int) -> int:
        """Rank owning block (bi, bj)."""
        if not 0 <= bi < self.n_block_rows:
            raise IndexError(f"block row {bi} out of range")
        if not 0 <= bj < self.n_block_cols:
            raise IndexError(f"block column {bj} out of range")
        return self.grid.rank_at(
            int(self.row_distribution[bi]), int(self.col_distribution[bj])
        )

    def owners_of_blocks(self, rows, cols) -> np.ndarray:
        """Owning rank of every (rows[i], cols[i]) block, vectorized.

        This is the bulk form of :meth:`owner_of` used by the transfer
        planner: one call resolves the ownership of a whole COO block list
        (row-major grid ordering, identical to :meth:`owner_of`).
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same shape")
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_block_rows):
            raise IndexError("block row out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= self.n_block_cols):
            raise IndexError("block column out of range")
        return (
            self.row_distribution[rows] * self.grid.cols
            + self.col_distribution[cols]
        )

    def owners_array(self) -> np.ndarray:
        """(n_block_rows, n_block_cols) array of owning ranks."""
        grid_rows = self.row_distribution[:, None]
        grid_cols = self.col_distribution[None, :]
        return grid_rows * self.grid.cols + grid_cols

    def local_blocks(self, matrix: BlockSparseMatrix, rank: int) -> List[Tuple[int, int]]:
        """Stored blocks of ``matrix`` owned by ``rank`` (deterministic order)."""
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range")
        return [
            (bi, bj)
            for bi, bj in matrix.block_keys()
            if self.owner_of(bi, bj) == rank
        ]

    def local_block_bytes(self, matrix: BlockSparseMatrix, rank: int) -> float:
        """Total bytes of the stored blocks owned by ``rank`` (float64)."""
        total = 0
        for bi, bj in self.local_blocks(matrix, rank):
            nr, nc = matrix.block_shape(bi, bj)
            total += nr * nc * 8
        return float(total)

    def rank_block_counts(self, matrix: BlockSparseMatrix) -> Dict[int, int]:
        """Number of stored blocks per rank."""
        counts = {rank: 0 for rank in range(self.n_ranks)}
        for bi, bj in matrix.block_keys():
            counts[self.owner_of(bi, bj)] += 1
        return counts
