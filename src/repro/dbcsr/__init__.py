"""Block-compressed sparse matrix substrate (libDBCSR stand-in).

CP2K stores its large sparse matrices in the DBCSR format: the matrix is
divided into a 2D grid of small blocks (5–30 rows/columns each, one block row
per atom or molecule), the map of non-zero blocks is kept in CSR form, the
non-zero blocks themselves are dense, and the blocks are distributed over a
2D cartesian grid of MPI ranks (Sec. II-C of the paper).

This subpackage recreates that data structure and the operations the paper
relies on:

* :class:`repro.dbcsr.block_matrix.BlockSparseMatrix` — the storage format
  with block-level arithmetic;
* :mod:`repro.dbcsr.filtering` — ``eps_filter`` truncation by block norms;
* :mod:`repro.dbcsr.distribution` — the 2D process grid and block→rank map;
* :mod:`repro.dbcsr.multiply` — a Cannon-style distributed multiplication
  with per-rank FLOP and traffic accounting;
* :mod:`repro.dbcsr.coo` — the deterministic global COO block list that the
  submatrix implementation builds during its initialization (Sec. IV-A1);
* :mod:`repro.dbcsr.convert` — conversions to/from SciPy sparse and dense
  arrays.
"""

from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.distribution import BlockDistribution, ProcessGrid2D
from repro.dbcsr.filtering import filter_blocks, filter_csr_elements, block_norms
from repro.dbcsr.convert import (
    block_matrix_from_csr,
    block_matrix_from_dense,
    block_matrix_to_csr,
    block_matrix_to_dense,
)
from repro.dbcsr.coo import CooBlockList
from repro.dbcsr.multiply import cannon_multiply, multiply_flop_count

__all__ = [
    "BlockSparseMatrix",
    "BlockDistribution",
    "ProcessGrid2D",
    "filter_blocks",
    "filter_csr_elements",
    "block_norms",
    "block_matrix_from_csr",
    "block_matrix_from_dense",
    "block_matrix_to_csr",
    "block_matrix_to_dense",
    "CooBlockList",
    "cannon_multiply",
    "multiply_flop_count",
]
