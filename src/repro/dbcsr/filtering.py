"""Filtering (truncation) of sparse matrices.

CP2K's linear-scaling DFT truncates matrix elements below the configurable
threshold ``eps_filter``; this is what creates and maintains sparsity during
the iterative purification, at the cost of small, controllable errors in the
energy (paper Figs. 1, 6, 7).  DBCSR applies the filter at block granularity
using block norms; element-wise filtering is used when working with plain
SciPy matrices.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import scipy.sparse as sp

from repro.dbcsr.block_matrix import BlockSparseMatrix

__all__ = ["block_norms", "filter_blocks", "filter_csr_elements"]


def block_norms(matrix: BlockSparseMatrix, norm: str = "frobenius") -> Dict[Tuple[int, int], float]:
    """Per-block norms of a block-sparse matrix.

    Parameters
    ----------
    norm:
        ``"frobenius"`` or ``"max"`` (largest absolute element).
    """
    if norm not in ("frobenius", "max"):
        raise ValueError("norm must be 'frobenius' or 'max'")
    result: Dict[Tuple[int, int], float] = {}
    for bi, bj, block in matrix.iter_blocks():
        if norm == "frobenius":
            result[(bi, bj)] = float(np.linalg.norm(block))
        else:
            result[(bi, bj)] = float(np.max(np.abs(block)))
    return result


def filter_blocks(
    matrix: BlockSparseMatrix, eps: float, norm: str = "max"
) -> BlockSparseMatrix:
    """Remove blocks whose norm is below ``eps``.

    Returns a new matrix; the input is unchanged.  With ``norm="max"`` a
    block survives if it contains at least one element of magnitude >= eps,
    which is the behaviour assumed throughout the paper (a block is non-zero
    "if it contains at least one non-zero matrix element", Fig. 2 caption).
    """
    if eps < 0:
        raise ValueError("eps must be non-negative")
    norms = block_norms(matrix, norm)
    result = BlockSparseMatrix(matrix.row_block_sizes, matrix.col_block_sizes)
    for bi, bj, block in matrix.iter_blocks():
        if norms[(bi, bj)] >= eps:
            result.put_block(bi, bj, block)
    return result


def filter_csr_elements(matrix: sp.spmatrix, eps: float) -> sp.csr_matrix:
    """Drop elements with absolute value below ``eps`` from a SciPy matrix."""
    if eps < 0:
        raise ValueError("eps must be non-negative")
    csr = matrix.tocsr().copy()
    if eps == 0.0:
        csr.eliminate_zeros()
        return csr
    csr.data[np.abs(csr.data) < eps] = 0.0
    csr.eliminate_zeros()
    return csr
