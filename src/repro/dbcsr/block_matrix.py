"""Block-compressed sparse matrix storage.

A :class:`BlockSparseMatrix` is defined by a list of block-row sizes, a list
of block-column sizes and a dictionary of dense blocks indexed by
(block-row, block-column).  Missing blocks are implicitly zero.  This mirrors
the DBCSR storage format used by CP2K: the sparsity is exploited at the level
of blocks, not individual elements (Sec. IV of the paper), which is exactly
the granularity the submatrix method operates at.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["BlockSparseMatrix"]

BlockKey = Tuple[int, int]


class BlockSparseMatrix:
    """A sparse matrix stored as a 2D grid of dense blocks.

    Parameters
    ----------
    row_block_sizes:
        Sizes of the block rows (number of matrix rows per block row).
    col_block_sizes:
        Sizes of the block columns.  If omitted the matrix is square with the
        same block structure for rows and columns.
    blocks:
        Optional initial blocks, a mapping from (block row, block column) to
        dense arrays of the corresponding shape.
    """

    def __init__(
        self,
        row_block_sizes: Iterable[int],
        col_block_sizes: Optional[Iterable[int]] = None,
        blocks: Optional[Dict[BlockKey, np.ndarray]] = None,
    ):
        self.row_block_sizes = np.asarray(list(row_block_sizes), dtype=int)
        if col_block_sizes is None:
            self.col_block_sizes = self.row_block_sizes.copy()
        else:
            self.col_block_sizes = np.asarray(list(col_block_sizes), dtype=int)
        if np.any(self.row_block_sizes <= 0) or np.any(self.col_block_sizes <= 0):
            raise ValueError("block sizes must be positive")
        self.row_starts = np.concatenate(([0], np.cumsum(self.row_block_sizes)))
        self.col_starts = np.concatenate(([0], np.cumsum(self.col_block_sizes)))
        self._blocks: Dict[BlockKey, np.ndarray] = {}
        if blocks:
            for (bi, bj), data in blocks.items():
                self.put_block(bi, bj, data)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def n_block_rows(self) -> int:
        """Number of block rows."""
        return len(self.row_block_sizes)

    @property
    def n_block_cols(self) -> int:
        """Number of block columns."""
        return len(self.col_block_sizes)

    @property
    def shape(self) -> Tuple[int, int]:
        """Element-level shape of the matrix."""
        return int(self.row_starts[-1]), int(self.col_starts[-1])

    @property
    def nnz_blocks(self) -> int:
        """Number of stored (non-zero) blocks."""
        return len(self._blocks)

    @property
    def nnz_elements(self) -> int:
        """Number of elements covered by stored blocks."""
        return int(
            sum(
                self.row_block_sizes[bi] * self.col_block_sizes[bj]
                for bi, bj in self._blocks
            )
        )

    def block_shape(self, bi: int, bj: int) -> Tuple[int, int]:
        """Shape of block (bi, bj)."""
        self._check_block(bi, bj)
        return int(self.row_block_sizes[bi]), int(self.col_block_sizes[bj])

    def block_occupation(self) -> float:
        """Fraction of blocks that are non-zero (block-wise sparsity)."""
        total = self.n_block_rows * self.n_block_cols
        return self.nnz_blocks / total if total else 0.0

    def element_occupation(self) -> float:
        """Fraction of matrix elements covered by non-zero blocks."""
        rows, cols = self.shape
        total = rows * cols
        return self.nnz_elements / total if total else 0.0

    def same_block_structure(self, other: "BlockSparseMatrix") -> bool:
        """Whether ``other`` has identical row and column block sizes."""
        return np.array_equal(
            self.row_block_sizes, other.row_block_sizes
        ) and np.array_equal(self.col_block_sizes, other.col_block_sizes)

    # ------------------------------------------------------------------ #
    # block access
    # ------------------------------------------------------------------ #
    def put_block(
        self,
        bi: int,
        bj: int,
        data: np.ndarray,
        accumulate: bool = False,
        copy: bool = True,
    ) -> None:
        """Store a dense block at (bi, bj).

        Parameters
        ----------
        accumulate:
            If true, add to an existing block instead of replacing it.
        copy:
            If false, store ``data`` without copying (zero-copy).  The caller
            must guarantee the array is float64 and not mutated afterwards;
            the vectorized scatter path uses this to hand out views into one
            preallocated result buffer.
        """
        self._check_block(bi, bj)
        data = np.asarray(data, dtype=float)
        expected = self.block_shape(bi, bj)
        if data.shape != expected:
            raise ValueError(
                f"block ({bi}, {bj}) must have shape {expected}, got {data.shape}"
            )
        if accumulate and (bi, bj) in self._blocks:
            self._blocks[(bi, bj)] = self._blocks[(bi, bj)] + data
        else:
            self._blocks[(bi, bj)] = data.copy() if copy else data

    def get_block(self, bi: int, bj: int) -> Optional[np.ndarray]:
        """The dense block at (bi, bj), or ``None`` if it is zero."""
        self._check_block(bi, bj)
        return self._blocks.get((bi, bj))

    def has_block(self, bi: int, bj: int) -> bool:
        """Whether block (bi, bj) is stored."""
        self._check_block(bi, bj)
        return (bi, bj) in self._blocks

    def remove_block(self, bi: int, bj: int) -> None:
        """Delete block (bi, bj) if present."""
        self._check_block(bi, bj)
        self._blocks.pop((bi, bj), None)

    def raw_blocks(self) -> Dict[BlockKey, np.ndarray]:
        """The underlying block dictionary, without copying.

        Performance accessor for bulk operations (packing all block values
        into one flat buffer); treat the returned mapping as read-only.
        """
        return self._blocks

    def block_keys(self) -> List[BlockKey]:
        """Stored block coordinates, sorted by (column, row).

        The column-major order matches the deterministic COO ordering used by
        the submatrix implementation in CP2K (Sec. IV-A1), where the position
        of a block in the sorted list serves as its global ID.
        """
        return sorted(self._blocks.keys(), key=lambda key: (key[1], key[0]))

    def iter_blocks(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Iterate over stored blocks as (bi, bj, data) in deterministic order."""
        for bi, bj in self.block_keys():
            yield bi, bj, self._blocks[(bi, bj)]

    def nonzero_block_rows(self, bj: int) -> List[int]:
        """Block rows with a non-zero block in block column ``bj``."""
        if not 0 <= bj < self.n_block_cols:
            raise IndexError(f"block column {bj} out of range")
        return sorted(bi for (bi, col) in self._blocks if col == bj)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def copy(self) -> "BlockSparseMatrix":
        """Deep copy."""
        return BlockSparseMatrix(
            self.row_block_sizes,
            self.col_block_sizes,
            {key: block.copy() for key, block in self._blocks.items()},
        )

    def transpose(self) -> "BlockSparseMatrix":
        """Transpose (blocks are transposed and re-indexed)."""
        result = BlockSparseMatrix(self.col_block_sizes, self.row_block_sizes)
        for (bi, bj), block in self._blocks.items():
            result.put_block(bj, bi, block.T)
        return result

    def scale(self, alpha: float) -> "BlockSparseMatrix":
        """Return ``alpha * self``."""
        result = BlockSparseMatrix(self.row_block_sizes, self.col_block_sizes)
        for (bi, bj), block in self._blocks.items():
            result.put_block(bi, bj, alpha * block)
        return result

    def add(self, other: "BlockSparseMatrix", alpha: float = 1.0) -> "BlockSparseMatrix":
        """Return ``self + alpha * other``."""
        if not self.same_block_structure(other):
            raise ValueError("block structures do not match")
        result = self.copy()
        for (bi, bj), block in other._blocks.items():
            result.put_block(bi, bj, alpha * block, accumulate=True)
        return result

    def __add__(self, other: "BlockSparseMatrix") -> "BlockSparseMatrix":
        return self.add(other, 1.0)

    def __sub__(self, other: "BlockSparseMatrix") -> "BlockSparseMatrix":
        return self.add(other, -1.0)

    def matmul(
        self, other: "BlockSparseMatrix", flop_counter: Optional[list] = None
    ) -> "BlockSparseMatrix":
        """Serial block sparse matrix–matrix multiplication.

        Parameters
        ----------
        other:
            Right factor; its row block sizes must equal this matrix's column
            block sizes.
        flop_counter:
            Optional single-element list that is incremented by the number of
            floating-point operations (2·m·k·n per block triple), matching
            the accounting performed by the distributed multiplication.
        """
        if not np.array_equal(self.col_block_sizes, other.row_block_sizes):
            raise ValueError("inner block dimensions do not match")
        result = BlockSparseMatrix(self.row_block_sizes, other.col_block_sizes)
        # index other's blocks by block row for fast lookup
        by_row: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        for (bk, bj), block in other._blocks.items():
            by_row.setdefault(bk, []).append((bj, block))
        flops = 0.0
        for (bi, bk), a_block in self._blocks.items():
            partners = by_row.get(bk)
            if not partners:
                continue
            for bj, b_block in partners:
                product = a_block @ b_block
                flops += 2.0 * a_block.shape[0] * a_block.shape[1] * b_block.shape[1]
                result.put_block(bi, bj, product, accumulate=True)
        if flop_counter is not None:
            flop_counter[0] += flops
        return result

    def __matmul__(self, other: "BlockSparseMatrix") -> "BlockSparseMatrix":
        return self.matmul(other)

    # ------------------------------------------------------------------ #
    # reductions and norms
    # ------------------------------------------------------------------ #
    def trace(self) -> float:
        """Trace of the matrix (requires a square block structure)."""
        if not np.array_equal(self.row_block_sizes, self.col_block_sizes):
            raise ValueError("trace requires identical row/column block sizes")
        total = 0.0
        for bi in range(self.n_block_rows):
            block = self._blocks.get((bi, bi))
            if block is not None:
                total += float(np.trace(block))
        return total

    def frobenius_norm(self) -> float:
        """Frobenius norm over all stored blocks."""
        if not self._blocks:
            return 0.0
        return float(
            np.sqrt(sum(float(np.sum(block * block)) for block in self._blocks.values()))
        )

    def max_abs(self) -> float:
        """Largest absolute element."""
        if not self._blocks:
            return 0.0
        return float(max(np.max(np.abs(block)) for block in self._blocks.values()))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, block_sizes: Iterable[int]) -> "BlockSparseMatrix":
        """Block-diagonal identity matrix with the given block sizes."""
        matrix = cls(block_sizes)
        for bi, size in enumerate(matrix.row_block_sizes):
            matrix.put_block(bi, bi, np.eye(int(size)))
        return matrix

    def _check_block(self, bi: int, bj: int) -> None:
        if not 0 <= bi < self.n_block_rows:
            raise IndexError(f"block row {bi} out of range")
        if not 0 <= bj < self.n_block_cols:
            raise IndexError(f"block column {bj} out of range")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockSparseMatrix(shape={self.shape}, blocks="
            f"{self.n_block_rows}x{self.n_block_cols}, nnz_blocks={self.nnz_blocks})"
        )
