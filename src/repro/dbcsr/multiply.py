"""Distributed block sparse matrix multiplication (Cannon's algorithm).

libDBCSR implements its matrix–matrix multiplication with a modified Cannon
algorithm (Sec. II-C of the paper): the ranks form a square 2D grid, every
rank owns the matrix blocks whose block row/column map to its grid position,
and in each of the p steps of the algorithm every rank multiplies its current
A- and B-tiles and then shifts the A-tiles left and the B-tiles up along the
periodic grid.

:func:`cannon_multiply` executes this algorithm faithfully (tiles really move
between simulated ranks, and every transfer and every block multiplication is
accounted) inside a single process.  It is used both to validate the
distributed semantics against the serial reference multiplication and to
measure the communication volume of the Newton–Schulz baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.distribution import BlockDistribution, ProcessGrid2D
from repro.parallel.stats import TrafficLog

__all__ = ["cannon_multiply", "multiply_flop_count", "tile_bytes"]

Tile = Dict[Tuple[int, int], np.ndarray]


def multiply_flop_count(
    a: BlockSparseMatrix, b: BlockSparseMatrix
) -> float:
    """Floating-point operations of the block sparse product ``a @ b``.

    Counts 2·m·k·n for every block triple (i, k)·(k, j) where both blocks are
    stored, without forming the product.  This is the work metric used by the
    machine model for the Newton–Schulz baseline.
    """
    if not np.array_equal(a.col_block_sizes, b.row_block_sizes):
        raise ValueError("inner block dimensions do not match")
    b_by_row: Dict[int, List[int]] = {}
    for bk, bj in b.block_keys():
        b_by_row.setdefault(bk, []).append(bj)
    flops = 0.0
    row_sizes = a.row_block_sizes
    inner_sizes = a.col_block_sizes
    col_sizes = b.col_block_sizes
    for bi, bk in a.block_keys():
        partners = b_by_row.get(bk)
        if not partners:
            continue
        m = row_sizes[bi]
        k = inner_sizes[bk]
        for bj in partners:
            flops += 2.0 * m * k * col_sizes[bj]
    return flops


def tile_bytes(tile: Tile) -> float:
    """Total payload size of a tile (float64 blocks)."""
    return float(sum(block.size * 8 for block in tile.values()))


def _build_tiles(
    matrix: BlockSparseMatrix,
    row_to_grid: np.ndarray,
    col_to_grid: np.ndarray,
    grid: ProcessGrid2D,
) -> Dict[Tuple[int, int], Tile]:
    """Group the stored blocks of ``matrix`` into per-grid-position tiles."""
    tiles: Dict[Tuple[int, int], Tile] = {
        (r, c): {} for r in range(grid.rows) for c in range(grid.cols)
    }
    for bi, bj, block in matrix.iter_blocks():
        position = (int(row_to_grid[bi]), int(col_to_grid[bj]))
        tiles[position][(bi, bj)] = block
    return tiles


def _multiply_tiles(
    a_tile: Tile,
    b_tile: Tile,
    c_tile: Tile,
    log: TrafficLog,
    rank: int,
) -> None:
    """Accumulate a_tile @ b_tile into c_tile, recording FLOPs on ``rank``."""
    if not a_tile or not b_tile:
        return
    b_by_row: Dict[int, List[Tuple[int, np.ndarray]]] = {}
    for (bk, bj), block in b_tile.items():
        b_by_row.setdefault(bk, []).append((bj, block))
    flops = 0.0
    for (bi, bk), a_block in a_tile.items():
        partners = b_by_row.get(bk)
        if not partners:
            continue
        for bj, b_block in partners:
            product = a_block @ b_block
            flops += 2.0 * a_block.shape[0] * a_block.shape[1] * b_block.shape[1]
            if (bi, bj) in c_tile:
                c_tile[(bi, bj)] = c_tile[(bi, bj)] + product
            else:
                c_tile[(bi, bj)] = product
    # DBCSR block products are small-matrix kernels -> sparse/low-efficiency
    log.record_flops(rank, flops, sparse=True)


def cannon_multiply(
    a: BlockSparseMatrix,
    b: BlockSparseMatrix,
    grid: Optional[ProcessGrid2D] = None,
    log: Optional[TrafficLog] = None,
) -> Tuple[BlockSparseMatrix, TrafficLog]:
    """Multiply two block sparse matrices with Cannon's algorithm.

    Parameters
    ----------
    a, b:
        Factors; ``a.col_block_sizes`` must equal ``b.row_block_sizes``.
    grid:
        Square process grid.  Defaults to 2x2.
    log:
        Optional traffic log to record into (a new one is created otherwise).

    Returns
    -------
    (c, log):
        The product as a :class:`BlockSparseMatrix` and the traffic log with
        per-rank FLOP counts and shift traffic.
    """
    if not np.array_equal(a.col_block_sizes, b.row_block_sizes):
        raise ValueError("inner block dimensions do not match")
    if grid is None:
        grid = ProcessGrid2D(4, (2, 2))
    if grid.rows != grid.cols:
        raise ValueError("Cannon's algorithm requires a square process grid")
    p = grid.rows
    if log is None:
        log = TrafficLog(grid.n_ranks)

    # block-row/column -> grid coordinate (round-robin, DBCSR default)
    a_row_to_grid = np.arange(a.n_block_rows) % p
    inner_to_grid = np.arange(a.n_block_cols) % p
    b_col_to_grid = np.arange(b.n_block_cols) % p

    a_tiles = _build_tiles(a, a_row_to_grid, inner_to_grid, grid)
    b_tiles = _build_tiles(b, inner_to_grid, b_col_to_grid, grid)
    c_tiles: Dict[Tuple[int, int], Tile] = {
        (r, c): {} for r in range(p) for c in range(p)
    }

    # initial alignment: A(r, c) -> A(r, c - r), B(r, c) -> B(r - c, c)
    def _shift(tiles: Dict[Tuple[int, int], Tile], row_shift_of, col_shift_of):
        moved: Dict[Tuple[int, int], Tile] = {}
        for (r, c), tile in tiles.items():
            nr = (r + row_shift_of(r, c)) % p
            nc = (c + col_shift_of(r, c)) % p
            moved[(nr, nc)] = tile
            if (nr, nc) != (r, c):
                log.record_message(
                    grid.rank_at(r, c), grid.rank_at(nr, nc), tile_bytes(tile)
                )
        return moved

    a_tiles = _shift(a_tiles, lambda r, c: 0, lambda r, c: -r)
    b_tiles = _shift(b_tiles, lambda r, c: -c, lambda r, c: 0)

    for _step in range(p):
        for r in range(p):
            for c in range(p):
                rank = grid.rank_at(r, c)
                _multiply_tiles(a_tiles[(r, c)], b_tiles[(r, c)], c_tiles[(r, c)], log, rank)
        if p > 1:
            a_tiles = _shift(a_tiles, lambda r, c: 0, lambda r, c: -1)
            b_tiles = _shift(b_tiles, lambda r, c: -1, lambda r, c: 0)

    result = BlockSparseMatrix(a.row_block_sizes, b.col_block_sizes)
    for tile in c_tiles.values():
        for (bi, bj), block in tile.items():
            result.put_block(bi, bj, block, accumulate=True)
    return result, log
