"""A simulated communicator.

:class:`SimComm` provides the subset of MPI semantics that the distributed
algorithms in this reproduction use — point-to-point messages with mailboxes,
broadcasts, allgathers and reductions — while recording all traffic in a
:class:`repro.parallel.stats.TrafficLog`.  Rank "programs" are executed
sequentially inside one Python process (or via the executor for the
embarrassingly parallel parts), so messages are delivered through in-memory
mailboxes instead of a network.

The point of this class is *accounting fidelity*, not concurrency: the
byte/message counts it produces feed the machine model used for the scaling
experiments.
"""

from __future__ import annotations

import collections
import sys
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.parallel.stats import TrafficLog

__all__ = [
    "SimComm",
    "payload_nbytes",
    "CommError",
    "CommRankError",
    "CommRecvError",
]


class CommError(RuntimeError):
    """A communicator-level failure with the rank and mailbox context.

    Attributes
    ----------
    rank:
        The rank the failing operation addressed (``None`` when not
        applicable).
    mailbox_state:
        Snapshot ``{(destination, tag): pending count}`` of the non-empty
        mailboxes at the time of the failure.
    """

    def __init__(
        self,
        message: str,
        rank: Optional[int] = None,
        mailbox_state: Optional[Dict[Tuple[int, Hashable], int]] = None,
    ):
        self.rank = rank
        self.mailbox_state = dict(mailbox_state or {})
        super().__init__(message)


class CommRankError(CommError, IndexError):
    """An operation addressed an unknown or crashed rank.

    Also an :class:`IndexError` so legacy call sites that treated
    out-of-range ranks as index errors keep working.
    """


class CommRecvError(CommError, LookupError):
    """A receive found no matching pending message.

    Also a :class:`LookupError` — the historical type for the simulated
    deadlock — so existing ``except``/``pytest.raises`` sites keep working.
    """


def payload_nbytes(payload: Any) -> int:
    """Estimate the wire size of a message payload in bytes.

    NumPy arrays report their buffer size; lists/tuples/dicts are summed
    recursively; other objects fall back to ``sys.getsizeof``.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple, set)):
        return int(sum(payload_nbytes(item) for item in payload))
    if isinstance(payload, dict):
        return int(
            sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
        )
    if isinstance(payload, (int, float, complex, bool)):
        return 8
    if payload is None:
        return 0
    return int(sys.getsizeof(payload))


class SimComm:
    """Simulated communicator with traffic accounting.

    Parameters
    ----------
    n_ranks:
        Number of simulated ranks.
    log:
        Optional existing :class:`TrafficLog` to record into; a new one is
        created if omitted.
    fault_injector:
        Optional :class:`~repro.parallel.faults.FaultInjector`.  Its
        ``"comm_crash"`` site (key: rank index, consulted on every send and
        recv endpoint) marks ranks crashed — subsequent operations touching
        them raise :class:`CommRankError` — and its ``"message"`` site
        (key: ``(source, destination)``) drops individual messages after
        the traffic accounting, so the receiver sees an empty mailbox.
    """

    def __init__(
        self,
        n_ranks: int,
        log: Optional[TrafficLog] = None,
        fault_injector=None,
    ):
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = int(n_ranks)
        self.log = log if log is not None else TrafficLog(self.n_ranks)
        if self.log.n_ranks != self.n_ranks:
            raise ValueError("traffic log rank count does not match communicator")
        self.fault_injector = fault_injector
        self._crashed: Set[int] = set()
        # mailboxes[(destination, tag)] -> FIFO of (source, payload)
        self._mailboxes: Dict[Tuple[int, Hashable], collections.deque] = (
            collections.defaultdict(collections.deque)
        )

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.n_ranks

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #
    def send(
        self, source: int, destination: int, payload: Any, tag: Hashable = 0
    ) -> None:
        """Send ``payload`` from ``source`` to ``destination``.

        The payload is stored in the destination's mailbox and its size is
        recorded.  Self-sends are allowed and free.

        Raises
        ------
        CommRankError
            If either endpoint is out of range or has crashed (via
            :meth:`crash_rank` or an injected ``"comm_crash"`` fault).
        """
        self._check(source)
        self._check(destination)
        self._consult_crash(source)
        self._consult_crash(destination)
        self._check_alive(source)
        self._check_alive(destination)
        self.log.record_message(source, destination, payload_nbytes(payload))
        if self.fault_injector is not None and self.fault_injector.fire(
            "message", (source, destination)
        ):
            # injected message loss: the bytes left the source (already
            # accounted) but never arrive — the receiver's mailbox stays
            # empty and a matching recv raises CommRecvError
            return
        self._mailboxes[(destination, tag)].append((source, payload))

    def recv(self, destination: int, tag: Hashable = 0, source: Optional[int] = None):
        """Receive the next pending message for ``destination`` (FIFO order).

        Parameters
        ----------
        destination:
            Receiving rank.
        tag:
            Message tag to match.
        source:
            Optional source filter; the first message from that source is
            returned.

        Returns
        -------
        (source, payload)

        Raises
        ------
        CommRecvError
            If no matching message is pending — the simulated equivalent of
            a deadlock (or, under fault injection, a lost message).  Also a
            :class:`LookupError`, the historical type.
        CommRankError
            If ``destination`` is out of range or has crashed.
        """
        self._check(destination)
        self._consult_crash(destination)
        self._check_alive(destination)
        queue = self._mailboxes.get((destination, tag))
        if not queue:
            raise CommRecvError(
                f"no pending message for rank {destination} with tag {tag!r} "
                f"({self._mailbox_summary()})",
                rank=destination,
                mailbox_state=self.mailbox_state(),
            )
        if source is None:
            return queue.popleft()
        for index, (src, payload) in enumerate(queue):
            if src == source:
                del queue[index]
                return src, payload
        raise CommRecvError(
            f"no pending message for rank {destination} from {source} "
            f"(tag {tag!r}; {self._mailbox_summary()})",
            rank=destination,
            mailbox_state=self.mailbox_state(),
        )

    def pending_messages(self, destination: int, tag: Hashable = 0) -> int:
        """Number of messages waiting in a mailbox."""
        self._check(destination)
        return len(self._mailboxes.get((destination, tag), ()))

    # ------------------------------------------------------------------ #
    # collectives (accounting + convenience return values)
    # ------------------------------------------------------------------ #
    def bcast(self, root: int, payload: Any) -> List[Any]:
        """Broadcast ``payload`` from ``root``; returns the per-rank copies."""
        self._check(root)
        self.log.record_broadcast(root, payload_nbytes(payload))
        return [payload for _ in range(self.n_ranks)]

    def allgather(self, contributions: List[Any]) -> List[Any]:
        """Allgather: every rank contributes one item, all ranks get the list."""
        if len(contributions) != self.n_ranks:
            raise ValueError(
                f"allgather needs exactly {self.n_ranks} contributions, "
                f"got {len(contributions)}"
            )
        per_rank = max(payload_nbytes(c) for c in contributions)
        self.log.record_allgather(per_rank)
        return list(contributions)

    def allreduce_sum(self, contributions: List[float]) -> float:
        """Allreduce (sum) over scalar contributions.

        Traffic is modelled as a recursive-doubling reduction: each rank sends
        and receives log2(P) messages of the scalar size.
        """
        if len(contributions) != self.n_ranks:
            raise ValueError(
                f"allreduce needs exactly {self.n_ranks} contributions, "
                f"got {len(contributions)}"
            )
        nbytes = 8
        steps = max(1, int(np.ceil(np.log2(self.n_ranks)))) if self.n_ranks > 1 else 0
        for _ in range(steps):
            for rank in range(self.n_ranks):
                partner = rank ^ 1 if self.n_ranks > 1 else rank
                if partner < self.n_ranks and partner != rank:
                    self.log.record_message(rank, partner, nbytes)
        return float(sum(contributions))

    def alltoallv(self, send_matrix: np.ndarray) -> None:
        """Record an all-to-all-v exchange.

        Parameters
        ----------
        send_matrix:
            (P, P) array where entry (i, j) is the number of bytes rank i
            sends to rank j.
        """
        send_matrix = np.asarray(send_matrix, dtype=float)
        if send_matrix.shape != (self.n_ranks, self.n_ranks):
            raise ValueError(
                f"send matrix must have shape ({self.n_ranks}, {self.n_ranks})"
            )
        for i in range(self.n_ranks):
            for j in range(self.n_ranks):
                if i != j and send_matrix[i, j] > 0:
                    self.log.record_message(i, j, float(send_matrix[i, j]))

    # ------------------------------------------------------------------ #
    # rank liveness (crash injection)
    # ------------------------------------------------------------------ #
    def crash_rank(self, rank: int) -> None:
        """Mark ``rank`` crashed; subsequent operations touching it raise."""
        self._check(rank)
        self._crashed.add(int(rank))

    def restore_rank(self, rank: int) -> None:
        """Bring a crashed rank back (its mailboxes are left untouched)."""
        self._check(rank)
        self._crashed.discard(int(rank))

    @property
    def crashed_ranks(self) -> frozenset:
        """Ranks currently marked crashed."""
        return frozenset(self._crashed)

    def mailbox_state(self) -> Dict[Tuple[int, Hashable], int]:
        """Snapshot ``{(destination, tag): pending count}`` (non-empty only)."""
        return {
            address: len(queue)
            for address, queue in self._mailboxes.items()
            if queue
        }

    def _mailbox_summary(self) -> str:
        state = self.mailbox_state()
        if not state:
            return "all mailboxes empty"
        entries = ", ".join(
            f"rank {destination}/tag {tag!r}: {count}"
            for (destination, tag), count in sorted(
                state.items(), key=lambda item: (item[0][0], repr(item[0][1]))
            )
        )
        return f"pending mailboxes: {entries}"

    def _consult_crash(self, rank: int) -> None:
        if self.fault_injector is not None and self.fault_injector.fire(
            "comm_crash", rank
        ):
            self._crashed.add(int(rank))

    def _check_alive(self, rank: int) -> None:
        if rank in self._crashed:
            raise CommRankError(
                f"rank {rank} has crashed ({self._mailbox_summary()})",
                rank=rank,
                mailbox_state=self.mailbox_state(),
            )

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise CommRankError(
                f"rank {rank} out of range for {self.n_ranks} ranks "
                f"({self._mailbox_summary()})",
                rank=rank,
                mailbox_state=self.mailbox_state(),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimComm(n_ranks={self.n_ranks})"
