"""A simulated communicator.

:class:`SimComm` provides the subset of MPI semantics that the distributed
algorithms in this reproduction use — point-to-point messages with mailboxes,
broadcasts, allgathers and reductions — while recording all traffic in a
:class:`repro.parallel.stats.TrafficLog`.  Rank "programs" are executed
sequentially inside one Python process (or via the executor for the
embarrassingly parallel parts), so messages are delivered through in-memory
mailboxes instead of a network.

The point of this class is *accounting fidelity*, not concurrency: the
byte/message counts it produces feed the machine model used for the scaling
experiments.
"""

from __future__ import annotations

import collections
import sys
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.parallel.stats import TrafficLog

__all__ = ["SimComm", "payload_nbytes"]


def payload_nbytes(payload: Any) -> int:
    """Estimate the wire size of a message payload in bytes.

    NumPy arrays report their buffer size; lists/tuples/dicts are summed
    recursively; other objects fall back to ``sys.getsizeof``.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple, set)):
        return int(sum(payload_nbytes(item) for item in payload))
    if isinstance(payload, dict):
        return int(
            sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
        )
    if isinstance(payload, (int, float, complex, bool)):
        return 8
    if payload is None:
        return 0
    return int(sys.getsizeof(payload))


class SimComm:
    """Simulated communicator with traffic accounting.

    Parameters
    ----------
    n_ranks:
        Number of simulated ranks.
    log:
        Optional existing :class:`TrafficLog` to record into; a new one is
        created if omitted.
    """

    def __init__(self, n_ranks: int, log: Optional[TrafficLog] = None):
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = int(n_ranks)
        self.log = log if log is not None else TrafficLog(self.n_ranks)
        if self.log.n_ranks != self.n_ranks:
            raise ValueError("traffic log rank count does not match communicator")
        # mailboxes[(destination, tag)] -> FIFO of (source, payload)
        self._mailboxes: Dict[Tuple[int, Hashable], collections.deque] = (
            collections.defaultdict(collections.deque)
        )

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.n_ranks

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #
    def send(
        self, source: int, destination: int, payload: Any, tag: Hashable = 0
    ) -> None:
        """Send ``payload`` from ``source`` to ``destination``.

        The payload is stored in the destination's mailbox and its size is
        recorded.  Self-sends are allowed and free.
        """
        self._check(source)
        self._check(destination)
        self.log.record_message(source, destination, payload_nbytes(payload))
        self._mailboxes[(destination, tag)].append((source, payload))

    def recv(self, destination: int, tag: Hashable = 0, source: Optional[int] = None):
        """Receive the next pending message for ``destination`` (FIFO order).

        Parameters
        ----------
        destination:
            Receiving rank.
        tag:
            Message tag to match.
        source:
            Optional source filter; the first message from that source is
            returned.

        Returns
        -------
        (source, payload)

        Raises
        ------
        LookupError
            If no matching message is pending — the simulated equivalent of a
            deadlock, always a programming error in the calling algorithm.
        """
        self._check(destination)
        queue = self._mailboxes.get((destination, tag))
        if not queue:
            raise LookupError(
                f"no pending message for rank {destination} with tag {tag!r}"
            )
        if source is None:
            return queue.popleft()
        for index, (src, payload) in enumerate(queue):
            if src == source:
                del queue[index]
                return src, payload
        raise LookupError(
            f"no pending message for rank {destination} from {source} (tag {tag!r})"
        )

    def pending_messages(self, destination: int, tag: Hashable = 0) -> int:
        """Number of messages waiting in a mailbox."""
        self._check(destination)
        return len(self._mailboxes.get((destination, tag), ()))

    # ------------------------------------------------------------------ #
    # collectives (accounting + convenience return values)
    # ------------------------------------------------------------------ #
    def bcast(self, root: int, payload: Any) -> List[Any]:
        """Broadcast ``payload`` from ``root``; returns the per-rank copies."""
        self._check(root)
        self.log.record_broadcast(root, payload_nbytes(payload))
        return [payload for _ in range(self.n_ranks)]

    def allgather(self, contributions: List[Any]) -> List[Any]:
        """Allgather: every rank contributes one item, all ranks get the list."""
        if len(contributions) != self.n_ranks:
            raise ValueError(
                f"allgather needs exactly {self.n_ranks} contributions, "
                f"got {len(contributions)}"
            )
        per_rank = max(payload_nbytes(c) for c in contributions)
        self.log.record_allgather(per_rank)
        return list(contributions)

    def allreduce_sum(self, contributions: List[float]) -> float:
        """Allreduce (sum) over scalar contributions.

        Traffic is modelled as a recursive-doubling reduction: each rank sends
        and receives log2(P) messages of the scalar size.
        """
        if len(contributions) != self.n_ranks:
            raise ValueError(
                f"allreduce needs exactly {self.n_ranks} contributions, "
                f"got {len(contributions)}"
            )
        nbytes = 8
        steps = max(1, int(np.ceil(np.log2(self.n_ranks)))) if self.n_ranks > 1 else 0
        for _ in range(steps):
            for rank in range(self.n_ranks):
                partner = rank ^ 1 if self.n_ranks > 1 else rank
                if partner < self.n_ranks and partner != rank:
                    self.log.record_message(rank, partner, nbytes)
        return float(sum(contributions))

    def alltoallv(self, send_matrix: np.ndarray) -> None:
        """Record an all-to-all-v exchange.

        Parameters
        ----------
        send_matrix:
            (P, P) array where entry (i, j) is the number of bytes rank i
            sends to rank j.
        """
        send_matrix = np.asarray(send_matrix, dtype=float)
        if send_matrix.shape != (self.n_ranks, self.n_ranks):
            raise ValueError(
                f"send matrix must have shape ({self.n_ranks}, {self.n_ranks})"
            )
        for i in range(self.n_ranks):
            for j in range(self.n_ranks):
                if i != j and send_matrix[i, j] > 0:
                    self.log.record_message(i, j, float(send_matrix[i, j]))

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range for {self.n_ranks} ranks")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimComm(n_ranks={self.n_ranks})"
