"""A simulated communicator.

:class:`SimComm` provides the subset of MPI semantics that the distributed
algorithms in this reproduction use — point-to-point messages with mailboxes,
broadcasts, allgathers and reductions — while recording all traffic in a
:class:`repro.parallel.stats.TrafficLog`.  Rank "programs" are executed
sequentially inside one Python process (or via the executor for the
embarrassingly parallel parts), so messages are delivered through in-memory
mailboxes instead of a network.

The point of this class is *accounting fidelity*, not concurrency: the
byte/message counts it produces feed the machine model used for the scaling
experiments.

Non-blocking point-to-point (``isend``/``irecv`` returning
:class:`CommRequest` handles, completed through :meth:`SimComm.wait_any` /
:meth:`SimComm.wait_all`) extends the same accounting to *overlap*: every
message carries a modeled completion time — per-destination ingress
serialization of ``latency + nbytes/bandwidth`` under an optional machine
model — so an arrival-driven consumer can measure how much of the exchange
its compute hides.  Delivery is by modeled arrival order, not posting
order, which is exactly the out-of-order consumption the mailbox
accounting has to stay consistent under.
"""

from __future__ import annotations

import collections
import itertools
import sys
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.parallel.stats import TrafficLog

__all__ = [
    "SimComm",
    "CommRequest",
    "payload_nbytes",
    "CommError",
    "CommRankError",
    "CommRecvError",
]


class CommError(RuntimeError):
    """A communicator-level failure with the rank and mailbox context.

    Attributes
    ----------
    rank:
        The rank the failing operation addressed (``None`` when not
        applicable).
    mailbox_state:
        Snapshot ``{(destination, tag): pending count}`` of the non-empty
        mailboxes at the time of the failure.
    """

    def __init__(
        self,
        message: str,
        rank: Optional[int] = None,
        mailbox_state: Optional[Dict[Tuple[int, Hashable], int]] = None,
    ):
        self.rank = rank
        self.mailbox_state = dict(mailbox_state or {})
        super().__init__(message)


class CommRankError(CommError, IndexError):
    """An operation addressed an unknown or crashed rank.

    Also an :class:`IndexError` so legacy call sites that treated
    out-of-range ranks as index errors keep working.
    """


class CommRecvError(CommError, LookupError):
    """A receive found no matching pending message.

    Also a :class:`LookupError` — the historical type for the simulated
    deadlock — so existing ``except``/``pytest.raises`` sites keep working.
    """


def payload_nbytes(payload: Any) -> int:
    """Estimate the wire size of a message payload in bytes.

    NumPy arrays report their buffer size; lists/tuples/dicts are summed
    recursively; other objects fall back to ``sys.getsizeof``.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple, set)):
        return int(sum(payload_nbytes(item) for item in payload))
    if isinstance(payload, dict):
        return int(
            sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
        )
    if isinstance(payload, (int, float, complex, bool)):
        return 8
    if payload is None:
        return 0
    return int(sys.getsizeof(payload))


class _Message:
    """One in-flight or delivered point-to-point message.

    ``ready_time`` is the modeled virtual time at which the message has
    fully arrived at its destination (ingress-serialized); ``claimed``
    marks a message that has been handed to a completed receive and must
    no longer count as pending.
    """

    __slots__ = (
        "seq",
        "source",
        "destination",
        "tag",
        "payload",
        "nbytes",
        "ready_time",
        "claimed",
    )

    def __init__(self, seq, source, destination, tag, payload, nbytes, ready_time):
        self.seq = int(seq)
        self.source = int(source)
        self.destination = int(destination)
        self.tag = tag
        self.payload = payload
        self.nbytes = int(nbytes)
        self.ready_time = float(ready_time)
        self.claimed = False


class CommRequest:
    """Lightweight handle for a non-blocking send or receive.

    Attributes
    ----------
    kind:
        ``"send"`` or ``"recv"``.
    done:
        Whether the operation has completed (sends complete at post time;
        receives complete through :meth:`SimComm.wait_any` /
        :meth:`SimComm.wait_all`).
    source, payload:
        For a completed receive, the matched message's origin and content.
    ready_time:
        Modeled virtual arrival time of the matched/sent message in
        seconds (0.0 without a machine model).  This is what makes
        overlap *measurable*: an arrival-driven consumer can compare the
        per-message ready times against its compute timeline.
    """

    __slots__ = (
        "kind",
        "seq",
        "destination",
        "tag",
        "source_filter",
        "done",
        "source",
        "payload",
        "nbytes",
        "ready_time",
    )

    def __init__(self, kind, seq, destination, tag, source_filter=None):
        self.kind = kind
        self.seq = int(seq)
        self.destination = int(destination)
        self.tag = tag
        self.source_filter = source_filter
        self.done = False
        self.source: Optional[int] = None
        self.payload: Any = None
        self.nbytes = 0
        self.ready_time = 0.0

    def matches(self, message: _Message) -> bool:
        """Whether a pending receive can accept ``message``."""
        if self.kind != "recv" or self.done:
            return False
        if message.claimed:
            return False
        if message.destination != self.destination or message.tag != self.tag:
            return False
        return self.source_filter is None or message.source == self.source_filter

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else "pending"
        return (
            f"CommRequest({self.kind}, rank={self.destination}, "
            f"tag={self.tag!r}, {state})"
        )


class SimComm:
    """Simulated communicator with traffic accounting.

    Parameters
    ----------
    n_ranks:
        Number of simulated ranks.
    log:
        Optional existing :class:`TrafficLog` to record into; a new one is
        created if omitted.
    fault_injector:
        Optional :class:`~repro.parallel.faults.FaultInjector`.  Its
        ``"comm_crash"`` site (key: rank index, consulted on every send and
        recv endpoint) marks ranks crashed — subsequent operations touching
        them raise :class:`CommRankError` — and its ``"message"`` site
        (key: ``(source, destination)``) drops individual messages after
        the traffic accounting, so the receiver sees an empty mailbox.
    machine:
        Optional machine model (anything with
        ``message_time(nbytes, messages)``) used to assign every message a
        modeled completion time: messages inbound to one destination
        serialize on its ingress link, each taking
        ``latency + nbytes/bandwidth``.  Without a model all messages are
        ready at time 0 and the non-blocking API degenerates to
        posting-order delivery.
    """

    def __init__(
        self,
        n_ranks: int,
        log: Optional[TrafficLog] = None,
        fault_injector=None,
        machine=None,
    ):
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = int(n_ranks)
        self.log = log if log is not None else TrafficLog(self.n_ranks)
        if self.log.n_ranks != self.n_ranks:
            raise ValueError("traffic log rank count does not match communicator")
        self.fault_injector = fault_injector
        self.machine = machine
        self._crashed: Set[int] = set()
        # mailboxes[(destination, tag)] -> FIFO (by posting order) of
        # _Message records; consumption may happen out of this order, so
        # all pending-count accounting goes through the records' claimed
        # flags rather than raw queue lengths
        self._mailboxes: Dict[Tuple[int, Hashable], collections.deque] = (
            collections.defaultdict(collections.deque)
        )
        self._sequence = itertools.count()
        # per-destination modeled time at which the ingress link frees up
        self._ingress_free: Dict[int, float] = collections.defaultdict(float)
        self._clock = 0.0

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.n_ranks

    @property
    def clock(self) -> float:
        """Modeled virtual time, advanced by completed waits."""
        return self._clock

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #
    def send(
        self, source: int, destination: int, payload: Any, tag: Hashable = 0
    ) -> None:
        """Send ``payload`` from ``source`` to ``destination``.

        The payload is stored in the destination's mailbox and its size is
        recorded.  Self-sends are allowed and free.

        Raises
        ------
        CommRankError
            If either endpoint is out of range or has crashed (via
            :meth:`crash_rank` or an injected ``"comm_crash"`` fault).
        """
        self.isend(source, destination, payload, tag)

    def isend(
        self, source: int, destination: int, payload: Any, tag: Hashable = 0
    ) -> CommRequest:
        """Non-blocking send; returns an already-completed :class:`CommRequest`.

        The message is deposited with a modeled completion time: inbound
        messages serialize on the destination's ingress link, each taking
        ``machine.message_time(nbytes, 1)`` (0.0 without a machine model;
        self-sends are free and ready immediately, matching the traffic
        log's accounting).  Fault semantics are identical to :meth:`send`:
        both endpoints consult the ``"comm_crash"`` site, and a fired
        ``"message"`` fault drops the payload after accounting — the
        request still reports done (the sender cannot observe the loss),
        but no matching receive will ever complete.
        """
        self._check(source)
        self._check(destination)
        self._consult_crash(source)
        self._consult_crash(destination)
        self._check_alive(source)
        self._check_alive(destination)
        nbytes = payload_nbytes(payload)
        self.log.record_message(source, destination, nbytes)
        seq = next(self._sequence)
        if source == destination:
            ready = 0.0
        else:
            cost = (
                float(self.machine.message_time(nbytes, 1))
                if self.machine is not None
                else 0.0
            )
            # ingress serialization is per destination and independent of
            # the global clock, so modeled arrival times are deterministic
            # regardless of how rank programs interleave their waits
            ready = self._ingress_free[destination] + cost
            self._ingress_free[destination] = ready
        request = CommRequest("send", seq, destination, tag)
        request.done = True
        request.source = int(source)
        request.nbytes = nbytes
        request.ready_time = ready
        if self.fault_injector is not None and self.fault_injector.fire(
            "message", (source, destination)
        ):
            # injected message loss: the bytes left the source (already
            # accounted, ingress time already consumed) but never arrive —
            # the receiver's mailbox stays empty and a matching recv
            # raises CommRecvError
            return request
        self._mailboxes[(destination, tag)].append(
            _Message(seq, source, destination, tag, payload, nbytes, ready)
        )
        return request

    def recv(self, destination: int, tag: Hashable = 0, source: Optional[int] = None):
        """Receive the next pending message for ``destination`` (FIFO order).

        Parameters
        ----------
        destination:
            Receiving rank.
        tag:
            Message tag to match.
        source:
            Optional source filter; the first message from that source is
            returned.

        Returns
        -------
        (source, payload)

        Raises
        ------
        CommRecvError
            If no matching message is pending — the simulated equivalent of
            a deadlock (or, under fault injection, a lost message).  Also a
            :class:`LookupError`, the historical type.
        CommRankError
            If ``destination`` is out of range or has crashed.
        """
        self._check(destination)
        self._consult_crash(destination)
        self._check_alive(destination)
        message = self._take_message(destination, tag, source)
        if message is None:
            if source is None:
                detail = f"no pending message for rank {destination} with tag {tag!r}"
            else:
                detail = (
                    f"no pending message for rank {destination} from {source} "
                    f"(tag {tag!r})"
                )
            raise CommRecvError(
                f"{detail} ({self._mailbox_summary()})",
                rank=destination,
                mailbox_state=self.mailbox_state(),
            )
        self._clock = max(self._clock, message.ready_time)
        return message.source, message.payload

    def irecv(
        self, destination: int, tag: Hashable = 0, source: Optional[int] = None
    ) -> CommRequest:
        """Post a non-blocking receive; complete it with :meth:`wait_any`.

        The request matches the earliest-arriving unclaimed message for
        ``(destination, tag)`` (optionally filtered by ``source``) at wait
        time — the message need not be present yet when the receive is
        posted.
        """
        self._check(destination)
        self._consult_crash(destination)
        self._check_alive(destination)
        return CommRequest("recv", next(self._sequence), destination, tag, source)

    def wait_any(self, requests: Sequence[CommRequest]) -> CommRequest:
        """Complete exactly one pending request, by modeled arrival order.

        Among all incomplete receives in ``requests``, the one whose best
        matching message has the smallest modeled ``ready_time`` (ties by
        posting sequence) completes: the message is claimed, removed from
        its mailbox, and the virtual :attr:`clock` advances to its arrival.
        Pending sends count as trivially completable.  Because completion
        follows arrival order, messages are routinely consumed out of
        posting order — the claimed-flag accounting keeps
        :meth:`pending_messages` / :meth:`mailbox_state` exact throughout.

        Raises
        ------
        CommRecvError
            If every request is already done (nothing to wait for) or no
            incomplete receive has a matching message (the simulated
            deadlock — e.g. after injected message loss).
        CommRankError
            If a waiting destination has crashed (checked at wait time, so
            a rank crashing mid-overlap surfaces on its next wait).
        """
        pending = [r for r in requests if not r.done]
        if not pending:
            raise CommRecvError(
                f"wait_any called with no pending requests "
                f"({self._mailbox_summary()})",
                mailbox_state=self.mailbox_state(),
            )
        best: Optional[Tuple[float, int, CommRequest, _Message]] = None
        for request in sorted(pending, key=lambda r: r.seq):
            self._consult_crash(request.destination)
            self._check_alive(request.destination)
            queue = self._mailboxes.get((request.destination, request.tag))
            if not queue:
                continue
            for message in queue:
                if request.matches(message):
                    key = (message.ready_time, message.seq)
                    if best is None or key < best[:2]:
                        best = (message.ready_time, message.seq, request, message)
                    break
        if best is None:
            waiting = ", ".join(
                f"rank {r.destination}/tag {r.tag!r}"
                + ("" if r.source_filter is None else f" from {r.source_filter}")
                for r in pending
            )
            raise CommRecvError(
                f"no matching message for any pending request ({waiting}; "
                f"{self._mailbox_summary()})",
                rank=pending[0].destination,
                mailbox_state=self.mailbox_state(),
            )
        _, _, request, message = best
        message.claimed = True
        self._purge(message.destination, message.tag)
        request.done = True
        request.source = message.source
        request.payload = message.payload
        request.nbytes = message.nbytes
        request.ready_time = message.ready_time
        self._clock = max(self._clock, message.ready_time)
        return request

    def wait_all(self, requests: Sequence[CommRequest]) -> List[CommRequest]:
        """Complete every request in ``requests``; returns them in order."""
        while any(not r.done for r in requests):
            self.wait_any(requests)
        return list(requests)

    def pending_messages(self, destination: int, tag: Hashable = 0) -> int:
        """Number of unclaimed messages waiting in a mailbox.

        Messages already handed to a completed receive no longer count,
        even when (out-of-posting-order consumption) they have not yet
        been physically removed from the queue.
        """
        self._check(destination)
        queue = self._mailboxes.get((destination, tag), ())
        return sum(1 for message in queue if not message.claimed)

    def _take_message(
        self, destination: int, tag: Hashable, source: Optional[int]
    ) -> Optional[_Message]:
        """Claim and remove the first matching unclaimed message, or None."""
        queue = self._mailboxes.get((destination, tag))
        if not queue:
            return None
        for message in queue:
            if message.claimed:
                continue
            if source is None or message.source == source:
                message.claimed = True
                self._purge(destination, tag)
                return message
        return None

    def _purge(self, destination: int, tag: Hashable) -> None:
        """Drop claimed records from the queue head; delete empty mailboxes.

        Claimed messages deep in the queue are left in place (their
        ``claimed`` flag already excludes them from every count) and are
        swept once everything ahead of them is consumed, so out-of-order
        claims never disturb the FIFO positions of live messages.
        """
        address = (destination, tag)
        queue = self._mailboxes.get(address)
        if queue is None:
            return
        while queue and queue[0].claimed:
            queue.popleft()
        if not queue:
            self._mailboxes.pop(address, None)

    # ------------------------------------------------------------------ #
    # collectives (accounting + convenience return values)
    # ------------------------------------------------------------------ #
    def bcast(self, root: int, payload: Any) -> List[Any]:
        """Broadcast ``payload`` from ``root``; returns the per-rank copies."""
        self._check(root)
        self.log.record_broadcast(root, payload_nbytes(payload))
        return [payload for _ in range(self.n_ranks)]

    def allgather(self, contributions: List[Any]) -> List[Any]:
        """Allgather: every rank contributes one item, all ranks get the list."""
        if len(contributions) != self.n_ranks:
            raise ValueError(
                f"allgather needs exactly {self.n_ranks} contributions, "
                f"got {len(contributions)}"
            )
        per_rank = max(payload_nbytes(c) for c in contributions)
        self.log.record_allgather(per_rank)
        return list(contributions)

    def allreduce_sum(self, contributions: List[float]) -> float:
        """Allreduce (sum) over scalar contributions.

        Traffic is modelled as a recursive-doubling reduction: each rank sends
        and receives log2(P) messages of the scalar size.
        """
        if len(contributions) != self.n_ranks:
            raise ValueError(
                f"allreduce needs exactly {self.n_ranks} contributions, "
                f"got {len(contributions)}"
            )
        nbytes = 8
        steps = max(1, int(np.ceil(np.log2(self.n_ranks)))) if self.n_ranks > 1 else 0
        for _ in range(steps):
            for rank in range(self.n_ranks):
                partner = rank ^ 1 if self.n_ranks > 1 else rank
                if partner < self.n_ranks and partner != rank:
                    self.log.record_message(rank, partner, nbytes)
        return float(sum(contributions))

    def alltoallv(self, send_matrix: np.ndarray) -> None:
        """Record an all-to-all-v exchange.

        Parameters
        ----------
        send_matrix:
            (P, P) array where entry (i, j) is the number of bytes rank i
            sends to rank j.
        """
        send_matrix = np.asarray(send_matrix, dtype=float)
        if send_matrix.shape != (self.n_ranks, self.n_ranks):
            raise ValueError(
                f"send matrix must have shape ({self.n_ranks}, {self.n_ranks})"
            )
        for i in range(self.n_ranks):
            for j in range(self.n_ranks):
                if i != j and send_matrix[i, j] > 0:
                    self.log.record_message(i, j, float(send_matrix[i, j]))

    # ------------------------------------------------------------------ #
    # rank liveness (crash injection)
    # ------------------------------------------------------------------ #
    def crash_rank(self, rank: int) -> None:
        """Mark ``rank`` crashed; subsequent operations touching it raise."""
        self._check(rank)
        self._crashed.add(int(rank))

    def restore_rank(self, rank: int) -> None:
        """Bring a crashed rank back (its mailboxes are left untouched)."""
        self._check(rank)
        self._crashed.discard(int(rank))

    @property
    def crashed_ranks(self) -> frozenset:
        """Ranks currently marked crashed."""
        return frozenset(self._crashed)

    def mailbox_state(self) -> Dict[Tuple[int, Hashable], int]:
        """Snapshot ``{(destination, tag): pending count}`` (non-empty only).

        Counts only unclaimed messages, so the snapshot stays consistent
        with :meth:`pending_messages` when receives complete out of
        posting order (claimed records may still sit mid-queue awaiting
        their sweep).
        """
        state: Dict[Tuple[int, Hashable], int] = {}
        for address, queue in self._mailboxes.items():
            count = sum(1 for message in queue if not message.claimed)
            if count:
                state[address] = count
        return state

    def _mailbox_summary(self) -> str:
        state = self.mailbox_state()
        if not state:
            return "all mailboxes empty"
        entries = ", ".join(
            f"rank {destination}/tag {tag!r}: {count}"
            for (destination, tag), count in sorted(
                state.items(), key=lambda item: (item[0][0], repr(item[0][1]))
            )
        )
        return f"pending mailboxes: {entries}"

    def _consult_crash(self, rank: int) -> None:
        if self.fault_injector is not None and self.fault_injector.fire(
            "comm_crash", rank
        ):
            self._crashed.add(int(rank))

    def _check_alive(self, rank: int) -> None:
        if rank in self._crashed:
            raise CommRankError(
                f"rank {rank} has crashed ({self._mailbox_summary()})",
                rank=rank,
                mailbox_state=self.mailbox_state(),
            )

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise CommRankError(
                f"rank {rank} out of range for {self.n_ranks} ranks "
                f"({self._mailbox_summary()})",
                rank=rank,
                mailbox_state=self.mailbox_state(),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimComm(n_ranks={self.n_ranks})"
