"""Per-rank accounting of floating-point operations and communication.

Every distributed algorithm in this reproduction (the Cannon-style DBCSR
multiplication, the Newton–Schulz baseline and the submatrix method runner)
records how much work and traffic each simulated MPI rank performs.  The
resulting :class:`TrafficLog` is the input to the machine model that produces
the simulated wall-clock times used in the scaling experiments.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List

import numpy as np

__all__ = ["RankCounters", "TrafficLog"]


@dataclasses.dataclass
class RankCounters:
    """Counters for a single simulated rank."""

    flops: float = 0.0
    sparse_flops: float = 0.0
    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0

    @property
    def total_flops(self) -> float:
        """Dense plus sparse floating-point operations."""
        return self.flops + self.sparse_flops

    @property
    def total_bytes(self) -> float:
        """Bytes sent plus received."""
        return self.bytes_sent + self.bytes_received

    def merge(self, other: "RankCounters") -> None:
        """Accumulate another counter set into this one."""
        self.flops += other.flops
        self.sparse_flops += other.sparse_flops
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received


class TrafficLog:
    """Per-rank accounting for a simulated run.

    Parameters
    ----------
    n_ranks:
        Number of simulated MPI ranks.
    """

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError("n_ranks must be at least 1")
        self.n_ranks = int(n_ranks)
        self.ranks: List[RankCounters] = [RankCounters() for _ in range(self.n_ranks)]

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_flops(self, rank: int, flops: float, sparse: bool = False) -> None:
        """Record ``flops`` floating-point operations performed by ``rank``.

        ``sparse=True`` marks operations performed on small/sparse blocks,
        which the machine model executes at a lower efficiency than large
        dense operations (this is the core performance argument of the
        paper: the submatrix method converts sparse work into dense work).
        """
        self._check_rank(rank)
        if flops < 0:
            raise ValueError("flops must be non-negative")
        if sparse:
            self.ranks[rank].sparse_flops += flops
        else:
            self.ranks[rank].flops += flops

    def record_message(self, source: int, destination: int, nbytes: float) -> None:
        """Record a point-to-point message of ``nbytes`` bytes."""
        self._check_rank(source)
        self._check_rank(destination)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if source == destination:
            return  # local copies are free
        self.ranks[source].bytes_sent += nbytes
        self.ranks[source].messages_sent += 1
        self.ranks[destination].bytes_received += nbytes
        self.ranks[destination].messages_received += 1

    def record_message_matrix(self, matrix) -> None:
        """Record a full (source, destination) byte matrix of messages.

        ``matrix[s, d]`` is the point-to-point volume from rank ``s`` to rank
        ``d``; zero entries and the diagonal are skipped.  This is how the
        transfer plans (fetch and write-back matrices of
        :class:`repro.core.transfers.TransferPlan`) enter the log.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (self.n_ranks, self.n_ranks):
            raise ValueError(
                f"message matrix must have shape {(self.n_ranks, self.n_ranks)}"
            )
        if np.any(matrix < 0):
            raise ValueError("message volumes must be non-negative")
        off_diagonal = matrix.copy()
        np.fill_diagonal(off_diagonal, 0.0)
        for source, destination in zip(*np.nonzero(off_diagonal)):
            self.record_message(
                int(source), int(destination), float(matrix[source, destination])
            )

    def record_broadcast(self, root: int, nbytes: float) -> None:
        """Record a broadcast of ``nbytes`` from ``root`` to all other ranks.

        Modelled as a binomial tree: log2(P) send steps on the critical path,
        with the root's total outgoing volume equal to ``nbytes`` per child in
        the tree (P-1 messages in total across all ranks).
        """
        self._check_rank(root)
        for rank in range(self.n_ranks):
            if rank == root:
                continue
            self.record_message(root, rank, nbytes)

    def record_allgather(self, nbytes_per_rank: float) -> None:
        """Record an allgather where each rank contributes ``nbytes_per_rank``.

        Modelled as a ring allgather: each rank sends and receives
        (P-1) * nbytes_per_rank in P-1 messages.
        """
        if self.n_ranks == 1:
            return
        for rank in range(self.n_ranks):
            neighbor = (rank + 1) % self.n_ranks
            for _ in range(self.n_ranks - 1):
                self.record_message(rank, neighbor, nbytes_per_rank)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def total_flops(self) -> float:
        """Total floating-point operations across all ranks."""
        return sum(r.total_flops for r in self.ranks)

    def total_bytes_sent(self) -> float:
        """Total bytes sent across all ranks."""
        return sum(r.bytes_sent for r in self.ranks)

    def max_flops(self) -> float:
        """Largest per-rank FLOP count (critical path of compute)."""
        return max(r.total_flops for r in self.ranks)

    def flop_imbalance(self) -> float:
        """Ratio of max to mean per-rank FLOPs (1.0 = perfectly balanced)."""
        total = self.total_flops()
        if total == 0:
            return 1.0
        mean = total / self.n_ranks
        return self.max_flops() / mean

    def merge(self, other: "TrafficLog") -> None:
        """Accumulate another log (same rank count) into this one."""
        if other.n_ranks != self.n_ranks:
            raise ValueError("cannot merge logs with different rank counts")
        for mine, theirs in zip(self.ranks, other.ranks):
            mine.merge(theirs)

    def per_rank(self) -> Iterable[RankCounters]:
        """Iterate over per-rank counters."""
        return iter(self.ranks)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range for {self.n_ranks} ranks")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrafficLog(n_ranks={self.n_ranks}, total_flops={self.total_flops():.3e}, "
            f"total_bytes={self.total_bytes_sent():.3e})"
        )
