"""Parallel execution helpers.

The submatrix method is embarrassingly parallel: every submatrix can be
solved independently (Sec. III-A of the paper).  Inside CP2K this parallelism
is expressed with MPI ranks and OpenMP threads; here it is expressed through
a thread pool (NumPy/LAPACK release the GIL inside the dense kernels, so
threads give genuine speedups) or, optionally, a process pool.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "map_parallel",
    "default_worker_count",
    "split_chunks",
    "make_executor",
    "executor_backend",
    "submit_with_inline_fallback",
    "TaskExecutionError",
    "wrap_task_error",
]


class TaskExecutionError(RuntimeError):
    """A ``map_parallel`` task failed; carries the task context.

    Attributes
    ----------
    task_index / n_tasks:
        Zero-based index of the failing item and the total item count.
    chunk_index:
        Chunk the task was dispatched in (0 unless the process backend ran
        with ``chunksize > 1``).
    original:
        The exception the task raised.

    The concrete class raised is a dynamically created subclass of *both*
    this type and the original exception's type (``TaskValueError``,
    ``TaskKeyError``, …), so existing ``except ValueError`` /
    ``pytest.raises(ValueError)`` call sites keep catching wrapped worker
    errors while retry logic (and humans) can tell which task died.
    """

    task_index: int = -1
    n_tasks: int = 0
    chunk_index: int = 0
    original: Optional[BaseException] = None


_WRAPPED_ERROR_TYPES: Dict[type, type] = {TaskExecutionError: TaskExecutionError}


def _wrapped_error_type(base: type) -> type:
    """Dual-inheritance error type ``(TaskExecutionError, base)``, cached."""
    cached = _WRAPPED_ERROR_TYPES.get(base)
    if cached is not None:
        return cached
    if issubclass(base, TaskExecutionError):
        wrapped = base
    else:
        try:
            wrapped = type(
                "Task" + base.__name__,
                (TaskExecutionError, base),
                {"__module__": __name__, "__qualname__": "Task" + base.__name__},
            )
        except TypeError:  # exotic metaclass/layout — plain wrapper
            wrapped = TaskExecutionError
    _WRAPPED_ERROR_TYPES[base] = wrapped
    return wrapped


def wrap_task_error(
    error: BaseException, index: int, n_tasks: int, chunksize: int = 1
) -> TaskExecutionError:
    """Wrap a worker exception with the failing task's index and chunk.

    The wrapped error remains an instance of the original type (see
    :class:`TaskExecutionError`); construction falls back to the plain
    wrapper for exception types whose ``__init__`` rejects a single
    message argument.
    """
    chunk_index = index // max(1, chunksize)
    message = (
        f"task {index} of {n_tasks} (chunk {chunk_index}) failed with "
        f"{type(error).__name__}: {error}"
    )
    wrapped_type = _wrapped_error_type(type(error))
    try:
        wrapped = wrapped_type(message)
    except Exception:
        try:
            # the original type's __init__ demands its own arguments (e.g.
            # InjectedFault's (site, key, occurrence)); build the instance
            # without it so the dual-inheritance isinstance contract holds
            wrapped = wrapped_type.__new__(wrapped_type)
            BaseException.__init__(wrapped, message)
            wrapped.__dict__.update(getattr(error, "__dict__", {}))
        except Exception:
            wrapped = TaskExecutionError(message)
    wrapped.task_index = int(index)
    wrapped.n_tasks = int(n_tasks)
    wrapped.chunk_index = int(chunk_index)
    wrapped.original = error
    return wrapped


class _TaskFailure:
    """Child-side capture of one failed task (re-raised by the parent).

    Capturing instead of raising keeps the failing *index* attached across
    pool boundaries — a process pool could not unpickle a dynamically
    created wrapper class, and ``Executor.map`` loses the item index when
    an exception propagates through its iterator.
    """

    __slots__ = ("index", "error")

    def __init__(self, index: int, error: BaseException):
        self.index = index
        self.error = error


class _GuardedTask:
    """Picklable per-item runner: fault injection plus failure capture."""

    __slots__ = ("function", "fault_injector")

    def __init__(self, function: Callable, fault_injector=None):
        self.function = function
        self.fault_injector = fault_injector

    def __call__(self, indexed: Tuple[int, T]):
        index, item = indexed
        try:
            if self.fault_injector is not None:
                self.fault_injector.maybe_crash("worker", index)
            return self.function(item)
        except Exception as error:
            return _TaskFailure(index, error)


def default_worker_count() -> int:
    """Default number of workers: the machine's CPU count (at least 1)."""
    return max(1, os.cpu_count() or 1)


def make_executor(
    backend: str, max_workers: Optional[int] = None
) -> Optional[concurrent.futures.Executor]:
    """Build the executor that ``map_parallel`` would create for ``backend``.

    Returns ``None`` for configurations where ``map_parallel`` runs serially
    (``backend="serial"`` or a single worker), so callers can unconditionally
    pass the result through as ``executor=``.  The caller owns the pool and
    must ``shutdown()`` it (or use it as a context manager).
    """
    if backend not in ("serial", "thread", "process"):
        raise ValueError(f"unknown backend {backend!r}")
    if max_workers is None:
        max_workers = default_worker_count()
    if max_workers < 1:
        raise ValueError("max_workers must be at least 1")
    if backend == "serial" or max_workers == 1:
        return None
    if backend == "thread":
        return concurrent.futures.ThreadPoolExecutor(max_workers=max_workers)
    return concurrent.futures.ProcessPoolExecutor(max_workers=max_workers)


def executor_backend(
    executor: Optional[concurrent.futures.Executor],
) -> Optional[str]:
    """The backend name a pre-built executor corresponds to.

    Lets callers that restrict backends (e.g. the sharded pipeline, whose
    per-rank tasks share one output buffer and therefore cannot cross a
    process boundary) apply the same restriction to session-owned pools.
    Returns ``None`` for ``None``, ``"thread"``/``"process"`` for the
    standard pools and ``"unknown"`` for anything else.
    """
    if executor is None:
        return None
    if isinstance(executor, concurrent.futures.ProcessPoolExecutor):
        return "process"
    if isinstance(executor, concurrent.futures.ThreadPoolExecutor):
        return "thread"
    return "unknown"


#: Exception types that signal a *transport* failure of a pool round-trip —
#: the task's arguments or results could not cross the pool boundary, or the
#: pool itself died — as opposed to the function genuinely raising.
#: ``TypeError``/``AttributeError`` are what ``pickle`` raises for
#: unpicklable closures and locally defined classes.
_TRANSPORT_ERRORS = (
    concurrent.futures.BrokenExecutor,
    pickle.PicklingError,
    TypeError,
    AttributeError,
)


def submit_with_inline_fallback(
    executor: concurrent.futures.Executor, function: Callable[..., R], *args
) -> Callable[[], R]:
    """Submit a **pure** function to a pool, falling back to inline execution.

    Returns a zero-argument resolver; calling it blocks on the pool result
    and, when the round-trip fails for transport reasons (unpicklable
    arguments or result, a broken pool), transparently re-runs
    ``function(*args)`` in the calling thread instead.  ``function`` must be
    pure and deterministic: a genuine error it raises reproduces identically
    inline, so the fallback can never mask a real failure — it only trades
    parallelism for correctness when the process boundary is unusable.

    Used by the trajectory driver's ``prefetch_backend="process"`` path,
    which ships ``prepare_step`` to a worker process but must keep working
    for callers whose step matrices cannot be pickled.
    """
    try:
        future = executor.submit(function, *args)
    except Exception:
        return lambda: function(*args)

    def resolve() -> R:
        try:
            return future.result()
        except _TRANSPORT_ERRORS:
            return function(*args)

    return resolve


def split_chunks(items: Sequence[T], max_chunk: int) -> List[List[T]]:
    """Split a sequence into consecutive chunks of at most ``max_chunk`` items.

    Used by the bucketed batch evaluator to bound the memory of one 3-D
    submatrix stack (and to create enough tasks for the pool): a bucket with
    many members is processed as several stacks of at most ``max_chunk``
    matrices each.  Order is preserved; the last chunk may be shorter.
    """
    if max_chunk < 1:
        raise ValueError("max_chunk must be at least 1")
    items = list(items)
    return [items[i : i + max_chunk] for i in range(0, len(items), max_chunk)]


def map_parallel(
    function: Callable[[T], R],
    items: Sequence[T],
    max_workers: Optional[int] = None,
    backend: str = "thread",
    chunksize: int = 1,
    executor: Optional[concurrent.futures.Executor] = None,
    fault_injector=None,
) -> List[R]:
    """Apply ``function`` to every item, optionally in parallel.

    Parameters
    ----------
    function:
        Callable applied to each item.  Must be picklable for the
        ``"process"`` backend.
    items:
        Input sequence; results are returned in the same order.
    max_workers:
        Worker count; defaults to the CPU count.  A value of 1 or the
        ``"serial"`` backend short-circuits to a plain loop, which is also
        the fallback that keeps results deterministic in tests.
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``.
    chunksize:
        Chunk size for the process backend.
    executor:
        Optional pre-built :class:`concurrent.futures.Executor`.  When given
        it is used as-is and left running afterwards, so a caller that maps
        many batches (e.g. the distributed pipeline across μ-bisection
        iterations) pays the pool start-up cost once instead of per call.
        ``max_workers`` and ``backend`` are ignored in that case (except
        that single-item inputs still short-circuit to a plain loop).
    fault_injector:
        Optional :class:`~repro.parallel.faults.FaultInjector`; its
        ``"worker"`` site (key: task index) is consulted before each task
        runs.

    Returns
    -------
    list
        Results in input order.

    Raises
    ------
    TaskExecutionError
        When a task raises, its exception is re-raised wrapped with the
        failing task index and chunk context.  The wrapper subclasses the
        original exception type, so existing ``except``/``pytest.raises``
        sites keep matching; the original is chained as ``__cause__`` and
        kept on ``.original``.  With several failures the lowest task
        index wins (every task still runs — a failure no longer aborts the
        remaining tasks mid-pool, which is what makes rank-level retry
        meaningful).
    """
    items = list(items)
    if backend not in ("serial", "thread", "process"):
        raise ValueError(f"unknown backend {backend!r}")
    runner = _GuardedTask(function, fault_injector)
    indexed = list(enumerate(items))
    effective_chunksize = 1
    if executor is not None:
        if len(items) <= 1:
            raw = [runner(pair) for pair in indexed]
        else:
            raw = list(executor.map(runner, indexed))
    elif max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be at least 1")
    else:
        if max_workers is None:
            max_workers = default_worker_count()
        if backend == "serial" or max_workers == 1 or len(items) <= 1:
            raw = [runner(pair) for pair in indexed]
        elif backend == "thread":
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=max_workers
            ) as pool:
                raw = list(pool.map(runner, indexed))
        else:
            effective_chunksize = max(1, chunksize)
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers
            ) as pool:
                raw = list(pool.map(runner, indexed, chunksize=effective_chunksize))
    for result in raw:
        if isinstance(result, _TaskFailure):
            raise wrap_task_error(
                result.error, result.index, len(items), effective_chunksize
            ) from result.error
    return raw
