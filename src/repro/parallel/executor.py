"""Parallel execution helpers.

The submatrix method is embarrassingly parallel: every submatrix can be
solved independently (Sec. III-A of the paper).  Inside CP2K this parallelism
is expressed with MPI ranks and OpenMP threads; here it is expressed through
a thread pool (NumPy/LAPACK release the GIL inside the dense kernels, so
threads give genuine speedups) or, optionally, a process pool.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "map_parallel",
    "default_worker_count",
    "split_chunks",
    "make_executor",
    "executor_backend",
]


def default_worker_count() -> int:
    """Default number of workers: the machine's CPU count (at least 1)."""
    return max(1, os.cpu_count() or 1)


def make_executor(
    backend: str, max_workers: Optional[int] = None
) -> Optional[concurrent.futures.Executor]:
    """Build the executor that ``map_parallel`` would create for ``backend``.

    Returns ``None`` for configurations where ``map_parallel`` runs serially
    (``backend="serial"`` or a single worker), so callers can unconditionally
    pass the result through as ``executor=``.  The caller owns the pool and
    must ``shutdown()`` it (or use it as a context manager).
    """
    if backend not in ("serial", "thread", "process"):
        raise ValueError(f"unknown backend {backend!r}")
    if max_workers is None:
        max_workers = default_worker_count()
    if max_workers < 1:
        raise ValueError("max_workers must be at least 1")
    if backend == "serial" or max_workers == 1:
        return None
    if backend == "thread":
        return concurrent.futures.ThreadPoolExecutor(max_workers=max_workers)
    return concurrent.futures.ProcessPoolExecutor(max_workers=max_workers)


def executor_backend(
    executor: Optional[concurrent.futures.Executor],
) -> Optional[str]:
    """The backend name a pre-built executor corresponds to.

    Lets callers that restrict backends (e.g. the sharded pipeline, whose
    per-rank tasks share one output buffer and therefore cannot cross a
    process boundary) apply the same restriction to session-owned pools.
    Returns ``None`` for ``None``, ``"thread"``/``"process"`` for the
    standard pools and ``"unknown"`` for anything else.
    """
    if executor is None:
        return None
    if isinstance(executor, concurrent.futures.ProcessPoolExecutor):
        return "process"
    if isinstance(executor, concurrent.futures.ThreadPoolExecutor):
        return "thread"
    return "unknown"


def split_chunks(items: Sequence[T], max_chunk: int) -> List[List[T]]:
    """Split a sequence into consecutive chunks of at most ``max_chunk`` items.

    Used by the bucketed batch evaluator to bound the memory of one 3-D
    submatrix stack (and to create enough tasks for the pool): a bucket with
    many members is processed as several stacks of at most ``max_chunk``
    matrices each.  Order is preserved; the last chunk may be shorter.
    """
    if max_chunk < 1:
        raise ValueError("max_chunk must be at least 1")
    items = list(items)
    return [items[i : i + max_chunk] for i in range(0, len(items), max_chunk)]


def map_parallel(
    function: Callable[[T], R],
    items: Sequence[T],
    max_workers: Optional[int] = None,
    backend: str = "thread",
    chunksize: int = 1,
    executor: Optional[concurrent.futures.Executor] = None,
) -> List[R]:
    """Apply ``function`` to every item, optionally in parallel.

    Parameters
    ----------
    function:
        Callable applied to each item.  Must be picklable for the
        ``"process"`` backend.
    items:
        Input sequence; results are returned in the same order.
    max_workers:
        Worker count; defaults to the CPU count.  A value of 1 or the
        ``"serial"`` backend short-circuits to a plain loop, which is also
        the fallback that keeps results deterministic in tests.
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``.
    chunksize:
        Chunk size for the process backend.
    executor:
        Optional pre-built :class:`concurrent.futures.Executor`.  When given
        it is used as-is and left running afterwards, so a caller that maps
        many batches (e.g. the distributed pipeline across μ-bisection
        iterations) pays the pool start-up cost once instead of per call.
        ``max_workers`` and ``backend`` are ignored in that case (except
        that single-item inputs still short-circuit to a plain loop).

    Returns
    -------
    list
        Results in input order.
    """
    items = list(items)
    if backend not in ("serial", "thread", "process"):
        raise ValueError(f"unknown backend {backend!r}")
    if executor is not None:
        if len(items) <= 1:
            return [function(item) for item in items]
        return list(executor.map(function, items))
    if max_workers is None:
        max_workers = default_worker_count()
    if max_workers < 1:
        raise ValueError("max_workers must be at least 1")

    if backend == "serial" or max_workers == 1 or len(items) <= 1:
        return [function(item) for item in items]

    if backend == "thread":
        with concurrent.futures.ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(function, items))

    with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(function, items, chunksize=max(1, chunksize)))
