"""Simulated-parallelism substrate.

The paper evaluates its implementation with MPI on up to 1280 cores of a
Xeon/Omni-Path cluster.  This reproduction executes all algorithms within a
single Python process, but it preserves the *distribution semantics* — which
rank owns which data, who sends how many bytes to whom, how many floating
point operations each rank performs — through the classes in this subpackage:

* :class:`repro.parallel.stats.TrafficLog` — per-rank FLOP/byte/message
  counters,
* :class:`repro.parallel.comm.SimComm` — a simulated communicator with
  point-to-point mailboxes and collective traffic accounting,
* :class:`repro.parallel.topology.CartesianGrid2D` — 2D cartesian rank grids
  as used by libDBCSR's Cannon multiplication,
* :class:`repro.parallel.machine.MachineModel` — converts accounting data
  into simulated wall-clock times for the scaling experiments (Figs. 6,
  8–10),
* :mod:`repro.parallel.executor` — thread/process pools for genuinely
  parallel execution of the embarrassingly parallel submatrix solves,
* :mod:`repro.parallel.faults` — seeded deterministic fault injection
  (rank crashes, message loss, worker exceptions, forced kernel
  non-convergence) for exercising the resilience machinery.
"""

from repro.parallel.stats import RankCounters, TrafficLog
from repro.parallel.comm import (
    CommError,
    CommRankError,
    CommRecvError,
    CommRequest,
    SimComm,
)
from repro.parallel.topology import CartesianGrid2D, balanced_dims
from repro.parallel.machine import MachineModel, SimulatedTime, PAPER_MACHINE
from repro.parallel.executor import (
    TaskExecutionError,
    map_parallel,
    wrap_task_error,
)
from repro.parallel.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RankCrashError,
    WorkerCrashError,
)

__all__ = [
    "RankCounters",
    "TrafficLog",
    "SimComm",
    "CommRequest",
    "CommError",
    "CommRankError",
    "CommRecvError",
    "CartesianGrid2D",
    "balanced_dims",
    "MachineModel",
    "SimulatedTime",
    "PAPER_MACHINE",
    "map_parallel",
    "TaskExecutionError",
    "wrap_task_error",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RankCrashError",
    "WorkerCrashError",
]
