"""Cartesian rank topologies.

libDBCSR arranges the MPI ranks in a 2D cartesian grid and maps matrix block
rows and columns onto the grid (Sec. II-C of the paper).  The Cannon-style
multiplication shifts data along the rows and columns of this grid.
"""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = ["balanced_dims", "CartesianGrid2D"]


def balanced_dims(n_ranks: int) -> Tuple[int, int]:
    """Choose a near-square factorization (rows, cols) of ``n_ranks``.

    Mirrors the behaviour of ``MPI_Dims_create`` for two dimensions: the two
    factors are as close to each other as possible, with rows >= cols.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be positive")
    best = (n_ranks, 1)
    for cols in range(1, int(math.isqrt(n_ranks)) + 1):
        if n_ranks % cols == 0:
            best = (n_ranks // cols, cols)
    return best


class CartesianGrid2D:
    """A 2D cartesian arrangement of ranks with periodic shifts.

    Parameters
    ----------
    n_ranks:
        Total number of ranks.
    dims:
        Optional explicit (rows, cols); must multiply to ``n_ranks``.  If
        omitted a near-square factorization is chosen.
    """

    def __init__(self, n_ranks: int, dims: Tuple[int, int] = None):
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        if dims is None:
            dims = balanced_dims(n_ranks)
        rows, cols = int(dims[0]), int(dims[1])
        if rows * cols != n_ranks:
            raise ValueError(
                f"grid dims {rows}x{cols} do not match {n_ranks} ranks"
            )
        self.n_ranks = n_ranks
        self.rows = rows
        self.cols = cols

    def coords(self, rank: int) -> Tuple[int, int]:
        """(row, col) coordinates of ``rank`` (row-major ordering)."""
        self._check(rank)
        return divmod(rank, self.cols)

    def rank_at(self, row: int, col: int) -> int:
        """Rank at grid position (row, col), with periodic wrap-around."""
        return (row % self.rows) * self.cols + (col % self.cols)

    def shift(self, rank: int, dimension: int, displacement: int) -> Tuple[int, int]:
        """Source and destination ranks of a periodic shift.

        Parameters
        ----------
        rank:
            The calling rank.
        dimension:
            0 shifts along columns of the grid (changing the row index),
            1 shifts along rows (changing the column index) — matching
            ``MPI_Cart_shift`` semantics.
        displacement:
            Shift distance (positive or negative).

        Returns
        -------
        (source, destination):
            The rank this rank receives from and the rank it sends to.
        """
        row, col = self.coords(rank)
        if dimension == 0:
            destination = self.rank_at(row + displacement, col)
            source = self.rank_at(row - displacement, col)
        elif dimension == 1:
            destination = self.rank_at(row, col + displacement)
            source = self.rank_at(row, col - displacement)
        else:
            raise ValueError("dimension must be 0 or 1")
        return source, destination

    def row_ranks(self, row: int) -> List[int]:
        """All ranks in grid row ``row``."""
        return [self.rank_at(row, c) for c in range(self.cols)]

    def col_ranks(self, col: int) -> List[int]:
        """All ranks in grid column ``col``."""
        return [self.rank_at(r, col) for r in range(self.rows)]

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range for {self.n_ranks} ranks")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CartesianGrid2D({self.rows}x{self.cols})"
