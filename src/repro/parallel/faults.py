"""Seeded, deterministic fault injection for the execution substrates.

The resilience layer (rank retry/rebalance in
:class:`~repro.core.runner.DistributedSubmatrixPipeline`, kernel-level
degradation in :mod:`repro.signfn.registry`, checkpoint/resume in
:func:`repro.api.trajectory.run_trajectory`) is only trustworthy if its
recovery paths can be exercised *reproducibly*.  This module provides that
test substrate: a :class:`FaultPlan` declares which fault *sites* fail, how
often, and with what probability, and a :class:`FaultInjector` evaluates the
plan at runtime.

Determinism does not rely on a shared RNG call order (which a thread pool
would scramble): every decision is a pure function of
``(seed, site, key, occurrence)`` hashed through SHA-256, and occurrences
are counted per ``(site, key)``.  Two runs with the same plan, seed and
per-key call sequence therefore inject exactly the same faults, regardless
of thread interleaving across keys.

Known sites (the substrates consult them; unknown sites are simply never
matched):

``"rank"``
    One pipeline rank task (key: rank index).  A match raises
    :class:`RankCrashError` before the rank's shard work starts — the
    pipeline's retry/rebalance logic re-executes the shard on a survivor.
``"worker"``
    One :func:`~repro.parallel.executor.map_parallel` task (key: task
    index).  A match raises :class:`WorkerCrashError`.
``"kernel"``
    One iterative sign-kernel stack solve (key: kernel name).  A match does
    not raise; it caps the iteration budget (``spec.payload``, default 1)
    so the iteration genuinely fails to converge and the registry's
    retry/fallback path takes over.
``"comm_crash"``
    One :class:`~repro.parallel.comm.SimComm` endpoint (key: rank index).
    A match marks the rank crashed; any send/recv touching it raises
    :class:`~repro.parallel.comm.CommRankError`.
``"message"``
    One :class:`~repro.parallel.comm.SimComm` point-to-point message (key:
    ``(source, destination)``).  A match drops the payload after the
    traffic accounting — the receiver sees an empty mailbox.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultEvent",
    "InjectedFault",
    "RankCrashError",
    "WorkerCrashError",
]

#: Iteration budget a matched ``"kernel"`` spec imposes when its payload is
#: ``None`` — low enough that no practical sign iteration converges.
DEFAULT_KERNEL_CAP = 1


class InjectedFault(RuntimeError):
    """An artificial failure raised by a :class:`FaultInjector`.

    Attributes
    ----------
    site / key / occurrence:
        The fault site, the per-site key (e.g. rank index) and the 0-based
        occurrence count at which the fault fired.
    """

    def __init__(self, site: str, key: Hashable, occurrence: int):
        self.site = site
        self.key = key
        self.occurrence = occurrence
        super().__init__(
            f"injected fault at site {site!r}, key {key!r} "
            f"(occurrence {occurrence})"
        )


class RankCrashError(InjectedFault):
    """A simulated rank crash (site ``"rank"`` / ``"comm_crash"``)."""


class WorkerCrashError(InjectedFault):
    """A simulated worker failure (site ``"worker"``)."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One declarative fault rule.

    Attributes
    ----------
    site:
        Fault site this rule applies to (see the module docstring).
    key:
        Per-site key the rule matches (``None`` matches every key).
    times:
        Total number of times this rule may fire (``None`` = unlimited).
        The default 1 models a transient fault: the first matching
        occurrence fails, the retry succeeds.
    probability:
        Deterministic firing probability in [0, 1], evaluated by hashing
        ``(seed, site, key, occurrence)`` — *not* by a shared RNG, so
        thread scheduling cannot change the outcome.
    after:
        Skip the first ``after`` matching occurrences before the rule may
        fire (e.g. crash only the third call).
    period:
        Fire only on every ``period``-th matching occurrence (counted from
        ``after``).  ``period=2`` produces the fail/recover alternation
        used to crash every first attempt while letting every retry pass.
    payload:
        Site-specific datum; for ``"kernel"`` the imposed iteration cap.
    """

    site: str
    key: Optional[Hashable] = None
    times: Optional[int] = 1
    probability: float = 1.0
    after: int = 0
    period: int = 1
    payload: Optional[object] = None

    def __post_init__(self):
        if not self.site:
            raise ValueError("site must be a non-empty string")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be positive (or None for unlimited)")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.period < 1:
            raise ValueError("period must be positive")

    def matches(self, site: str, key: Hashable) -> bool:
        """Whether this rule applies to one (site, key) query."""
        return site == self.site and (self.key is None or self.key == key)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of :class:`FaultSpec` rules.

    The first matching, non-exhausted rule wins for every query, so order
    the specs from specific to general when keys overlap.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError("FaultPlan.specs must contain FaultSpec entries")

    @classmethod
    def rank_crashes(
        cls, ranks: Sequence[int], seed: int = 0, times: Optional[int] = 1,
        period: int = 1,
    ) -> "FaultPlan":
        """Plan that crashes the given pipeline ranks' first attempts."""
        return cls(
            specs=tuple(
                FaultSpec(site="rank", key=int(rank), times=times, period=period)
                for rank in ranks
            ),
            seed=seed,
        )

    @classmethod
    def kernel_stalls(
        cls, kernel: str, seed: int = 0, times: Optional[int] = None,
        cap: int = DEFAULT_KERNEL_CAP,
    ) -> "FaultPlan":
        """Plan that forces non-convergence of an iterative sign kernel."""
        return cls(
            specs=(FaultSpec(site="kernel", key=kernel, times=times, payload=cap),),
            seed=seed,
        )


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """Record of one injected fault (for assertions and post-mortems)."""

    site: str
    key: Hashable
    occurrence: int
    spec_index: int


def _key_token(key: Hashable) -> str:
    """Stable string form of a key for hashing (repr is stable for the
    int/str/tuple keys the substrates use)."""
    return repr(key)


class FaultInjector:
    """Runtime evaluator of a :class:`FaultPlan`.

    Thread-safe: occurrence counters are guarded by a lock, and firing
    decisions depend only on ``(seed, site, key, occurrence)``, never on
    cross-key ordering.  One injector instance must not be shared between
    *concurrent pipelines* whose queries interleave on the same keys;
    within one pipeline (the supported use) per-key call sequences are
    deterministic.
    """

    def __init__(self, plan: Union[FaultPlan, Sequence[FaultSpec]], seed: Optional[int] = None):
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(specs=tuple(plan), seed=0 if seed is None else int(seed))
        elif seed is not None:
            plan = dataclasses.replace(plan, seed=int(seed))
        self.plan = plan
        self._lock = threading.Lock()
        self._occurrences: Dict[Tuple[str, str], int] = {}
        self._fired: Dict[int, int] = {}
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------ #
    # core decision
    # ------------------------------------------------------------------ #
    def _uniform(self, site: str, key: Hashable, occurrence: int) -> float:
        token = f"{self.plan.seed}:{site}:{_key_token(key)}:{occurrence}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def fire(self, site: str, key: Hashable = None) -> Optional[FaultSpec]:
        """Evaluate one query; returns the matching spec if a fault fires.

        Increments the (site, key) occurrence counter exactly once per
        call, whether or not a fault fires.
        """
        with self._lock:
            counter_key = (site, _key_token(key))
            occurrence = self._occurrences.get(counter_key, 0)
            self._occurrences[counter_key] = occurrence + 1
            for spec_index, spec in enumerate(self.plan.specs):
                if not spec.matches(site, key):
                    continue
                if occurrence < spec.after:
                    continue
                if (occurrence - spec.after) % spec.period != 0:
                    continue
                fired = self._fired.get(spec_index, 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                if spec.probability < 1.0 and (
                    self._uniform(site, key, occurrence) >= spec.probability
                ):
                    continue
                self._fired[spec_index] = fired + 1
                self.events.append(
                    FaultEvent(
                        site=site, key=key, occurrence=occurrence,
                        spec_index=spec_index,
                    )
                )
                return spec
            return None

    # ------------------------------------------------------------------ #
    # site-specific conveniences
    # ------------------------------------------------------------------ #
    def maybe_crash(self, site: str, key: Hashable = None) -> None:
        """Raise the site's crash error if a fault fires (no-op otherwise)."""
        spec = self.fire(site, key)
        if spec is None:
            return
        occurrence = self.events[-1].occurrence
        if site == "worker":
            raise WorkerCrashError(site, key, occurrence)
        raise RankCrashError(site, key, occurrence)

    def kernel_cap(self, kernel_name: str) -> Optional[int]:
        """Iteration cap to impose on one kernel stack solve, or ``None``.

        Consulted once per *first attempt* of a stack solve; retries use
        the full (escalated) budget, so a transient ``"kernel"`` spec
        produces exactly one forced non-convergence per matched stack.
        """
        spec = self.fire("kernel", kernel_name)
        if spec is None:
            return None
        cap = DEFAULT_KERNEL_CAP if spec.payload is None else int(spec.payload)
        return max(1, cap)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def n_injected(self) -> int:
        """Total number of faults fired so far."""
        return len(self.events)

    def occurrences(self, site: str, key: Hashable = None) -> int:
        """How many times one (site, key) has been queried."""
        with self._lock:
            return self._occurrences.get((site, _key_token(key)), 0)

    def reset(self) -> None:
        """Clear occurrence counters, fired counts and the event log."""
        with self._lock:
            self._occurrences.clear()
            self._fired.clear()
            self.events.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(seed={self.plan.seed}, "
            f"specs={len(self.plan.specs)}, injected={self.n_injected})"
        )
