"""Machine model: converting work/traffic accounting into simulated time.

The paper's scaling experiments (Figs. 6, 8, 9, 10) were measured on compute
nodes with two Intel Xeon Gold 6148 CPUs (40 cores at 2.4 GHz) connected by a
100 Gbps Omni-Path network.  This reproduction cannot measure those times, so
it recomputes them from first principles:

    time(rank) = dense_flops / (cores * dense_rate)
               + sparse_flops / (cores * sparse_rate)
               + bytes / bandwidth + messages * latency
    time(run)  = max over ranks

The distinction between *dense* and *sparse* FLOP rates encodes the paper's
central performance argument: operations on small DBCSR blocks (5–30 rows)
achieve only a small fraction of peak, whereas the large dense submatrix
eigendecompositions/multiplications run near peak.  The default rates are
calibrated so that absolute times land in the same order of magnitude as the
paper's measurements; the *shapes* of the scaling curves depend only on the
work/traffic distributions, which are computed exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.parallel.stats import RankCounters, TrafficLog

__all__ = ["MachineModel", "SimulatedTime", "PAPER_MACHINE"]


@dataclasses.dataclass
class SimulatedTime:
    """Breakdown of a simulated run time (seconds)."""

    compute: float
    communication: float
    serial_overhead: float = 0.0

    @property
    def total(self) -> float:
        """Total simulated wall-clock time."""
        return self.compute + self.communication + self.serial_overhead


@dataclasses.dataclass(frozen=True)
class MachineModel:
    """A simple homogeneous-cluster performance model.

    Parameters
    ----------
    cores_per_node:
        Physical cores per compute node.
    dense_flop_rate:
        Sustained FLOP/s per core for large dense kernels (GEMM, syevd).
    sparse_flop_rate:
        Sustained FLOP/s per core for small-block sparse kernels (DBCSR
        multiplications of 5–30-row blocks).
    network_bandwidth:
        Point-to-point bandwidth in bytes/s.
    network_latency:
        Per-message latency in seconds.
    """

    name: str = "2x Xeon Gold 6148 + 100 Gbps Omni-Path"
    cores_per_node: int = 40
    dense_flop_rate: float = 35.0e9
    sparse_flop_rate: float = 4.0e9
    network_bandwidth: float = 10.0e9
    network_latency: float = 2.0e-6

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be positive")
        for attr in (
            "dense_flop_rate",
            "sparse_flop_rate",
            "network_bandwidth",
            "network_latency",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    # ------------------------------------------------------------------ #
    # elementary costs
    # ------------------------------------------------------------------ #
    def compute_time(
        self, flops: float, cores: int = 1, sparse: bool = False
    ) -> float:
        """Time (s) to execute ``flops`` on ``cores`` cores."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        rate = self.sparse_flop_rate if sparse else self.dense_flop_rate
        return flops / (max(1, cores) * rate)

    def message_time(self, nbytes: float, messages: int = 1) -> float:
        """Time (s) to transfer ``nbytes`` in ``messages`` messages."""
        if nbytes < 0 or messages < 0:
            raise ValueError("nbytes and messages must be non-negative")
        return messages * self.network_latency + nbytes / self.network_bandwidth

    def rank_time(self, counters: RankCounters, cores_per_rank: int = 1) -> float:
        """Simulated time of a single rank given its counters."""
        compute = self.compute_time(counters.flops, cores_per_rank, sparse=False)
        compute += self.compute_time(
            counters.sparse_flops, cores_per_rank, sparse=True
        )
        comm = self.message_time(
            counters.bytes_sent + counters.bytes_received,
            counters.messages_sent + counters.messages_received,
        )
        return compute + comm

    # ------------------------------------------------------------------ #
    # whole-run simulation
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        log: TrafficLog,
        cores_per_rank: int = 1,
        serial_overhead: float = 0.0,
    ) -> SimulatedTime:
        """Simulated wall-clock time of a run described by ``log``.

        The run time is the maximum over ranks of per-rank compute time plus
        the maximum over ranks of per-rank communication time (compute and
        communication are assumed not to overlap, which matches the
        bulk-synchronous structure of both the Newton–Schulz baseline and the
        submatrix method's initialization/compute/write-back phases).
        """
        max_compute = 0.0
        max_comm = 0.0
        for counters in log.per_rank():
            compute = self.compute_time(counters.flops, cores_per_rank, sparse=False)
            compute += self.compute_time(
                counters.sparse_flops, cores_per_rank, sparse=True
            )
            comm = self.message_time(
                counters.bytes_sent + counters.bytes_received,
                counters.messages_sent + counters.messages_received,
            )
            max_compute = max(max_compute, compute)
            max_comm = max(max_comm, comm)
        return SimulatedTime(
            compute=max_compute,
            communication=max_comm,
            serial_overhead=serial_overhead,
        )

    def nodes_for_ranks(self, n_ranks: int, ranks_per_node: Optional[int] = None) -> int:
        """Number of nodes needed for ``n_ranks`` ranks."""
        per_node = ranks_per_node if ranks_per_node is not None else self.cores_per_node
        return max(1, -(-n_ranks // per_node))


#: Machine model loosely calibrated to the paper's evaluation platform.
PAPER_MACHINE = MachineModel()
