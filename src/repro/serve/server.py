"""Density-as-a-service: a multi-tenant in-process density server.

:class:`DensityService` turns the session API into a shared service: many
tenants submit density (and trajectory) requests against a pool of
:class:`~repro.api.context.SubmatrixContext` sessions keyed by their
resolved :class:`~repro.api.config.EngineConfig`, all sharing **one**
:class:`~repro.core.plan.PlanCache` — a tenant whose sparsity pattern was
already planned for another tenant gets a cache hit, which is the dominant
cost of small repeated requests.

The request path:

1. **validation** — ensemble and solver arguments are checked before any
   resource is reserved, so malformed requests fail fast and free;
2. **admission** — the :class:`~repro.serve.admission.AdmissionController`
   enforces global and per-tenant in-flight ceilings
   (:class:`~repro.serve.admission.ServiceOverloadError` on refusal);
3. **routing** — requests eligible for cross-request batching (eigen-family
   solver, plan engine, single rank, default grouping) go to the
   :class:`~repro.serve.batcher.MicroBatcher`; everything else (iterative
   solvers, naive engine, rank-sharded or custom-grouped requests) runs
   directly on a dispatch thread pool;
4. **completion** — a single hook releases admission, records per-tenant
   metrics and re-enforces the plan-cache byte budget, then the request's
   future resolves.

Results are bitwise identical to calling ``context.density`` directly with
the same arguments: the direct path *is* that call, and the batched path
shares its arithmetic per-request (see :mod:`repro.serve.batcher`).

This is an in-process service (futures in, results out).  A wire transport
would sit in front of :meth:`DensityService.submit` without touching the
batching, admission or accounting machinery.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.api.config import EngineConfig
from repro.api.context import SubmatrixContext
from repro.api.observables import normalize_observables
from repro.core.plan import PlanCache
from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.batcher import DecompositionCache, DensityRequest, MicroBatcher
from repro.serve.metrics import ServiceMetrics
from repro.signfn.registry import get_kernel

__all__ = ["DensityService"]


class DensityService:
    """Multi-tenant density server over pooled submatrix sessions.

    Parameters
    ----------
    config:
        Default :class:`EngineConfig` of requests that do not bring their
        own; also supplies the shared plan cache's plan-count capacity.
    policy:
        The service's :class:`AdmissionPolicy` (in-flight ceilings and the
        plan-cache byte budget).
    max_contexts:
        LRU bound on the pool of per-configuration session contexts; idle
        contexts beyond the bound are closed and dropped (busy ones are
        skipped and retried on a later eviction pass).
    batching:
        Enable the cross-request micro-batcher; with ``False`` every
        request runs directly (one ``context.density`` call each).
    max_batch / batch_wait:
        Micro-batch group-size cap and maximum coalescing wait in seconds.
    decomposition_ttl / decomposition_cache_size:
        Enable the content-keyed short-TTL
        :class:`~repro.serve.batcher.DecompositionCache` on the batched
        path: bytewise-identical hot requests arriving within
        ``decomposition_ttl`` seconds of each other reuse the earlier
        request's eigendecomposition *across* micro-batch windows.  The
        default ``0.0`` disables the cache (no entries are ever held).
    dispatch_workers:
        Thread count of the direct-path dispatch pool (also used for
        trajectory requests).
    latency_window:
        Per-tenant sliding-window size of the latency percentiles.

    The service is a context manager; :meth:`close` drains the batcher and
    dispatch pool and closes every pooled context.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        policy: Optional[AdmissionPolicy] = None,
        max_contexts: int = 8,
        batching: bool = True,
        max_batch: int = 8,
        batch_wait: float = 0.002,
        decomposition_ttl: float = 0.0,
        decomposition_cache_size: int = 32,
        dispatch_workers: int = 8,
        latency_window: int = 4096,
    ):
        if max_contexts < 1:
            raise ValueError("max_contexts must be at least 1")
        if dispatch_workers < 1:
            raise ValueError("dispatch_workers must be at least 1")
        if decomposition_ttl < 0:
            raise ValueError("decomposition_ttl must be non-negative")
        self.config = (config if config is not None else EngineConfig()).validate()
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.plan_cache = PlanCache(
            max_plans=self.config.plan_cache_size,
            max_bytes=self.policy.max_plan_cache_bytes,
        )
        self.admission = AdmissionController(self.policy)
        self.metrics = ServiceMetrics(latency_window=latency_window)
        self.max_contexts = int(max_contexts)
        self._contexts: "OrderedDict[EngineConfig, SubmatrixContext]" = (
            OrderedDict()
        )
        self._lock = threading.RLock()
        self._closed = False
        self._decomposition_cache = (
            DecompositionCache(
                ttl=decomposition_ttl, max_entries=decomposition_cache_size
            )
            if batching and decomposition_ttl > 0
            else None
        )
        self._batcher = (
            MicroBatcher(
                max_batch=max_batch,
                max_wait=batch_wait,
                decomposition_cache=self._decomposition_cache,
            )
            if batching
            else None
        )
        self._dispatch = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="density-service"
        )

    # ------------------------------------------------------------------ #
    # context pool
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "this DensityService has been closed; create a new service "
                "to continue serving"
            )

    def _context_for(self, config: Optional[EngineConfig]) -> SubmatrixContext:
        """The pooled session for ``config`` (resolved), creating on demand.

        All pooled contexts share the service's plan cache, so plans built
        for one configuration serve every other configuration with the same
        sparsity pattern (plans are keyed by pattern content, not config).
        """
        resolved = (config if config is not None else self.config).resolved()
        with self._lock:
            self._check_open()
            context = self._contexts.get(resolved)
            if context is None:
                context = SubmatrixContext(resolved, plan_cache=self.plan_cache)
                self._contexts[resolved] = context
                self._evict_idle_contexts()
            self._contexts.move_to_end(resolved)
            return context

    def _evict_idle_contexts(self) -> None:
        """Close and drop idle LRU contexts beyond ``max_contexts`` (locked)."""
        if len(self._contexts) <= self.max_contexts:
            return
        for key in list(self._contexts):
            if len(self._contexts) <= self.max_contexts:
                break
            context = self._contexts[key]
            if context.in_flight:
                continue
            del self._contexts[key]
            context.close()

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        K,
        S,
        blocks,
        tenant: str = "default",
        config: Optional[EngineConfig] = None,
        mu: Optional[float] = None,
        n_electrons: Optional[float] = None,
        solver: str = "eigen",
        grouping=None,
        mu_tolerance: float = 1e-9,
        max_mu_iterations: int = 200,
        ranks: Optional[int] = None,
        distribution=None,
        replan: str = "full",
        mu_bracket: Optional[Tuple[float, float]] = None,
        observables=("density",),
        observable_params=None,
    ) -> Future:
        """Submit one observable-keyed request; returns a future of the result.

        Arguments mirror :meth:`SubmatrixContext.observables
        <repro.api.context.SubmatrixContext.observables>`; ``tenant``
        selects the accounting bucket and ``config`` the pooled session
        (the service default when omitted).  With the default
        ``observables=("density",)`` the future resolves to the familiar
        :class:`~repro.api.results.SubmatrixDFTResult`; any other
        observable set resolves to an
        :class:`~repro.api.results.ObservableBundle` sharing one
        decomposition pass.  Raises
        :class:`~repro.serve.admission.ServiceOverloadError` when admission
        control refuses the request.
        """
        self._check_open()
        # fail fast (and free) on malformed requests, before admission
        if (mu is None) == (n_electrons is None):
            raise ValueError("specify exactly one of mu and n_electrons")
        kernel = get_kernel(solver)
        if n_electrons is not None and not kernel.supports_mu_bisection:
            raise ValueError(
                "canonical-ensemble calculations require the "
                "eigendecomposition solver (Algorithm 1 reuses the cached "
                "eigendecompositions)"
            )
        observable_names = normalize_observables(observables)
        context = self._context_for(config)
        try:
            self.admission.admit(tenant)
        except Exception:
            self.metrics.record_rejected(tenant)
            raise
        self.metrics.record_admitted(tenant)
        request = DensityRequest(
            tenant=tenant,
            context=context,
            K=K,
            S=S,
            blocks=blocks,
            mu=mu,
            n_electrons=n_electrons,
            solver=solver,
            mu_tolerance=mu_tolerance,
            max_mu_iterations=max_mu_iterations,
            replan=replan,
            mu_bracket=mu_bracket,
            grouping=grouping,
            ranks=ranks,
            distribution=distribution,
            observables=observable_names,
            observable_params=observable_params,
            submitted_at=time.perf_counter(),
            on_done=self._on_done,
        )
        if self._batchable(request, context):
            self._batcher.submit(request)
        else:
            self._dispatch.submit(self._run_direct, request)
        return request.future

    def _batchable(self, request: DensityRequest, context) -> bool:
        """Whether a request may join a merged micro-batch.

        Cross-request merging covers the common small-request shape: the
        eigen-family (μ-bisection-capable) solvers through the plan engine
        on a single rank with default per-column grouping.  Everything else
        — iterative sign kernels, the naive reference engine, rank-sharded
        or custom-grouped requests — runs direct, one session call each.
        """
        if self._batcher is None:
            return False
        if request.grouping is not None or request.distribution is not None:
            return False
        if request.ranks is not None or context.config.n_ranks != 1:
            return False
        if context.config.engine == "naive":
            return False
        return get_kernel(request.solver).supports_mu_bisection

    def _run_direct(self, request: DensityRequest) -> None:
        """Direct path: one tracked session call per request."""
        before = self.plan_cache.stats
        shared_kwargs = dict(
            mu=request.mu,
            n_electrons=request.n_electrons,
            solver=request.solver,
            grouping=request.grouping,
            mu_tolerance=request.mu_tolerance,
            max_mu_iterations=request.max_mu_iterations,
            ranks=request.ranks,
            distribution=request.distribution,
            replan=request.replan,
            mu_bracket=request.mu_bracket,
        )
        try:
            if (
                tuple(request.observables) == ("density",)
                and not request.observable_params
            ):
                result = request.context.density(
                    request.K, request.S, request.blocks, **shared_kwargs
                )
            else:
                result = request.context.observables(
                    request.K,
                    request.S,
                    request.blocks,
                    observables=request.observables,
                    observable_params=request.observable_params,
                    **shared_kwargs,
                )
        except Exception as error:
            request.fail(error)
        else:
            after = self.plan_cache.stats
            # best-effort attribution: concurrent requests may interleave
            # on the shared counters (the global stats stay exact)
            request.cache_hits += max(0, after["hits"] - before["hits"])
            request.cache_misses += max(0, after["misses"] - before["misses"])
            request.finish(result)

    def _on_done(self, request: DensityRequest, result, error) -> None:
        """Completion hook: admission release, metrics, memory enforcement."""
        latency = time.perf_counter() - request.submitted_at
        self.admission.release(request.tenant)
        if error is None:
            if hasattr(result, "payload_nbytes"):
                bytes_out = int(result.payload_nbytes())
            else:
                bytes_out = int(result.density_ao.nbytes) + int(
                    result.density_ortho.data.nbytes
                )
            self.metrics.record_completed(
                request.tenant,
                latency,
                batched=request.batched,
                n_coalesced=request.n_coalesced,
                shared=request.shared,
                bytes_out=bytes_out,
                cache_hits=request.cache_hits,
                cache_misses=request.cache_misses,
                decomposition_hits=request.decomposition_hits,
                decomposition_misses=request.decomposition_misses,
                # a bundle without a density member has no precision
                # accounting to delegate to — fall back to zero
                stacks_reduced=getattr(result, "stacks_reduced", 0),
                refinement_passes=getattr(result, "refinement_passes", 0),
            )
        else:
            self.metrics.record_failed(request.tenant, latency)
        self.admission.enforce_memory(self.plan_cache)

    def density(self, K, S, blocks, **kwargs):
        """Synchronous :meth:`submit` — blocks and returns the result."""
        return self.submit(K, S, blocks, **kwargs).result()

    # ------------------------------------------------------------------ #
    # trajectories
    # ------------------------------------------------------------------ #
    def submit_trajectory(
        self,
        steps,
        blocks,
        tenant: str = "default",
        config: Optional[EngineConfig] = None,
        **kwargs,
    ) -> Future:
        """Submit a whole trajectory as one admission-controlled request.

        Runs :meth:`SubmatrixContext.trajectory
        <repro.api.context.SubmatrixContext.trajectory>` on a dispatch
        thread; the trajectory occupies one in-flight slot for its whole
        duration (a trajectory is one tenant workload, not N density
        requests).  Returns a future of the
        :class:`~repro.api.trajectory.TrajectoryResult`.
        """
        self._check_open()
        context = self._context_for(config)
        try:
            self.admission.admit(tenant)
        except Exception:
            self.metrics.record_rejected(tenant)
            raise
        self.metrics.record_admitted(tenant)
        submitted = time.perf_counter()
        return self._dispatch.submit(
            self._run_trajectory, context, tenant, submitted, steps, blocks, kwargs
        )

    def _run_trajectory(self, context, tenant, submitted, steps, blocks, kwargs):
        try:
            result = context.trajectory(steps, blocks, **kwargs)
        except BaseException:
            self.admission.release(tenant)
            self.metrics.record_failed(tenant, time.perf_counter() - submitted)
            raise
        self.admission.release(tenant)
        bytes_out = sum(
            int(step.payload_nbytes())
            if hasattr(step, "payload_nbytes")
            else int(step.density_ao.nbytes) + int(step.density_ortho.data.nbytes)
            for step in result.results
        )
        self.metrics.record_completed(
            tenant,
            time.perf_counter() - submitted,
            bytes_out=bytes_out,
            stacks_reduced=result.stats.stacks_reduced,
            refinement_passes=result.stats.refinement_passes,
        )
        self.admission.enforce_memory(self.plan_cache)
        return result

    def trajectory(self, steps, blocks, **kwargs):
        """Synchronous :meth:`submit_trajectory`."""
        return self.submit_trajectory(steps, blocks, **kwargs).result()

    # ------------------------------------------------------------------ #
    # introspection and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Point-in-time service statistics, safe to take while serving."""
        cache = dict(self.plan_cache.stats)
        lookups = cache["hits"] + cache["misses"]
        with self._lock:
            contexts = len(self._contexts)
        return {
            "metrics": self.metrics.snapshot(),
            "admission": self.admission.snapshot(),
            "plan_cache": cache,
            "plan_cache_hit_rate": cache["hits"] / lookups if lookups else 0.0,
            "plan_cache_bytes": self.plan_cache.total_bytes,
            "decomposition_cache": (
                self._decomposition_cache.snapshot()
                if self._decomposition_cache is not None
                else None
            ),
            "contexts": contexts,
        }

    def close(self) -> None:
        """Drain the batcher and dispatch pool, close every pooled context.

        Idempotent.  Queued requests submitted before ``close()`` complete
        normally; submissions racing the shutdown fail with a
        ``RuntimeError``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._batcher is not None:
            self._batcher.close()
        self._dispatch.shutdown(wait=True)
        with self._lock:
            contexts = list(self._contexts.values())
            self._contexts.clear()
        for context in contexts:
            context.close()

    def __enter__(self) -> "DensityService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
