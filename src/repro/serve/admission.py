"""Admission control of the density service.

A multi-tenant service needs back-pressure before work starts, not after:
once a density request is queued its matrices are pinned in memory and its
plan may be built, so the cheap place to shed load is the submit path.
:class:`AdmissionController` enforces two in-flight ceilings — a global one
protecting the process and a per-tenant one protecting tenants from each
other — and a resident-byte budget on the shared
:class:`~repro.core.plan.PlanCache` that is re-enforced after every
completed request (plans built *for* a request can push the cache over the
budget; eviction afterwards trims the least recently used plans back under
it, never the plan a running request just built).

Rejections raise :class:`ServiceOverloadError`, a ``RuntimeError`` carrying
the tenant and a human-readable reason, so callers can distinguish
"try again later" from a genuine request failure.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Optional

__all__ = ["AdmissionPolicy", "AdmissionController", "ServiceOverloadError"]


class ServiceOverloadError(RuntimeError):
    """The service refused a request at admission time.

    Attributes
    ----------
    tenant:
        The tenant whose request was refused.
    reason:
        Human-readable refusal reason (which ceiling was hit).
    """

    def __init__(self, tenant: str, reason: str):
        super().__init__(f"request from tenant {tenant!r} rejected: {reason}")
        self.tenant = tenant
        self.reason = reason


@dataclasses.dataclass(frozen=True)
class AdmissionPolicy:
    """Ceilings enforced by the :class:`AdmissionController`.

    Attributes
    ----------
    max_in_flight:
        Global cap on requests past admission and not yet completed.
    max_in_flight_per_tenant:
        The same cap per tenant, so one aggressive tenant cannot occupy
        the whole service.
    max_plan_cache_bytes:
        Resident-byte budget of the shared plan cache (``None`` disables
        byte-based eviction; the cache's plan-count LRU still applies).
    """

    max_in_flight: int = 64
    max_in_flight_per_tenant: int = 8
    max_plan_cache_bytes: Optional[int] = None

    def __post_init__(self):
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if self.max_in_flight_per_tenant < 1:
            raise ValueError("max_in_flight_per_tenant must be at least 1")
        if self.max_plan_cache_bytes is not None and self.max_plan_cache_bytes < 0:
            raise ValueError("max_plan_cache_bytes must be non-negative")


class AdmissionController:
    """Thread-safe in-flight accounting against an :class:`AdmissionPolicy`."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._lock = threading.Lock()
        self._total = 0
        self._per_tenant: Dict[str, int] = {}
        self._rejections = 0
        self._memory_evictions = 0

    def admit(self, tenant: str) -> None:
        """Reserve one in-flight slot or raise :class:`ServiceOverloadError`."""
        with self._lock:
            if self._total >= self.policy.max_in_flight:
                self._rejections += 1
                raise ServiceOverloadError(
                    tenant,
                    f"service at capacity ({self._total} of "
                    f"{self.policy.max_in_flight} requests in flight)",
                )
            tenant_count = self._per_tenant.get(tenant, 0)
            if tenant_count >= self.policy.max_in_flight_per_tenant:
                self._rejections += 1
                raise ServiceOverloadError(
                    tenant,
                    f"tenant at capacity ({tenant_count} of "
                    f"{self.policy.max_in_flight_per_tenant} requests in flight)",
                )
            self._total += 1
            self._per_tenant[tenant] = tenant_count + 1

    def release(self, tenant: str) -> None:
        """Return a slot reserved by :meth:`admit` (exactly once per admit)."""
        with self._lock:
            remaining = self._per_tenant.get(tenant, 0) - 1
            if remaining > 0:
                self._per_tenant[tenant] = remaining
            else:
                self._per_tenant.pop(tenant, None)
            self._total = max(0, self._total - 1)

    def enforce_memory(self, plan_cache) -> int:
        """Evict LRU plans until the cache is under the byte budget.

        Called after request completion (the natural point where a request's
        freshly built plans have become evictable).  Returns the number of
        plans evicted; 0 when no budget is configured or the cache already
        fits.
        """
        budget = self.policy.max_plan_cache_bytes
        if budget is None:
            return 0
        evicted = plan_cache.evict_to(budget)
        if evicted:
            with self._lock:
                self._memory_evictions += evicted
        return evicted

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time copy of the admission state."""
        with self._lock:
            return {
                "in_flight": self._total,
                "per_tenant": dict(self._per_tenant),
                "rejections": self._rejections,
                "memory_evictions": self._memory_evictions,
                "max_in_flight": self.policy.max_in_flight,
                "max_in_flight_per_tenant": self.policy.max_in_flight_per_tenant,
                "max_plan_cache_bytes": self.policy.max_plan_cache_bytes,
            }
