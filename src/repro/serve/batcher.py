"""Cross-request micro-batching of density calculations.

The submatrix engine's batched evaluator already amortizes LAPACK dispatch
by eigendecomposing whole ``(k, d, d)`` stacks of equal-dimension
submatrices at once — but only *within* one request.  A service receiving
many small, similar requests (same engine configuration, overlapping
submatrix dimension histograms) leaves that batching on the table: each
request's buckets are evaluated in their own pass, and small systems
produce stacks far below the memory cap.

:class:`MicroBatcher` closes that gap.  Requests wait in a queue for at
most ``max_wait`` seconds while compatible peers arrive (same session
context, same eigen-family solver: the :attr:`DensityRequest.batch_key`);
a group is then evaluated by :func:`evaluate_merged_group`:

1. requests carrying bytewise-identical inputs (same ``K``, ``S`` and
   block sizes — the common shape when tenants draw from a shared molecule
   library) are deduplicated: each distinct content is prepared, packed and
   eigendecomposed exactly once per group, and duplicates reattach at the
   μ-dependent stages;
2. every distinct content's pure preparation (orthogonalization, block
   conversion, COO pattern) runs in parallel through the session executor;
3. plan lookups run serially on the batcher thread against the shared
   :class:`~repro.core.plan.PlanCache` — this is where cross-tenant plan
   reuse lands, and serial per-request lookups keep the per-request
   hit/miss attribution exact;
4. the per-content stack tasks are merged *across requests* by dimension
   (respecting :data:`~repro.core.batch.MAX_BATCH_ELEMENTS`) and each
   merged stack is eigendecomposed once;
5. the μ-handling (per-request ensemble: fixed μ or canonical bisection),
   occupation scatter and result assembly stay strictly per-request.

Bitwise identity with direct :meth:`SubmatrixContext.density
<repro.api.context.SubmatrixContext.density>` calls holds because the
batched ``eigh`` is slice-deterministic — each slice's decomposition is
independent of the stack composition, the same property the rank-sharded
pipeline's identity guarantee already rests on — every μ-dependent step
runs per-request on exactly the per-request entries, and content
deduplication only ever reuses deterministic intermediates computed from
bytewise-equal inputs.  A failing merged
group falls back to independent per-request evaluation, so one poisoned
request cannot take its neighbours down with it.

Two extensions ride on the same identity argument.  An optional
:class:`DecompositionCache` (short TTL, content-keyed) carries a distinct
content's μ-independent work *across* micro-batch windows, so a hot
request arriving in the next window skips preparation, packing and the
eigendecomposition entirely.  And requests may ask for any registered
observable set: the μ-dependent stage then assembles an
:class:`~repro.api.results.ObservableBundle` from the one shared entry
table through the same :class:`~repro.api.observables.SharedEvaluation`
path a direct ``context.observables`` call uses.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import hashlib
import queue
import threading
import time
import weakref
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.api.density import (
    _bisect_mu,
    _make_entry,
    _scatter_occupations,
    assemble_result,
    prepare_step,
)
from repro.api.observables import SharedEvaluation, get_observable
from repro.api.results import ObservableBundle
from repro.core.batch import MAX_BATCH_ELEMENTS, Bucket, make_stack_tasks
from repro.core.combination import single_column_groups

__all__ = [
    "DecompositionCache",
    "DensityRequest",
    "MicroBatcher",
    "evaluate_merged_group",
]

_SHUTDOWN = object()


@dataclasses.dataclass
class DensityRequest:
    """One queued density request bound to a pooled session context.

    Created by :class:`~repro.serve.server.DensityService`; ``future``
    resolves to the request's
    :class:`~repro.api.results.SubmatrixDFTResult`.  ``on_done`` (the
    service's completion hook: metrics, admission release, memory
    enforcement) runs *before* the future is resolved, so a caller that
    blocks on the future observes the request already accounted for.
    """

    tenant: str
    context: object
    K: object
    S: object
    blocks: object
    mu: Optional[float] = None
    n_electrons: Optional[float] = None
    solver: str = "eigen"
    mu_tolerance: float = 1e-9
    max_mu_iterations: int = 200
    replan: str = "full"
    mu_bracket: Optional[Tuple[float, float]] = None
    grouping: object = None
    ranks: Optional[int] = None
    distribution: object = None
    observables: Tuple[str, ...] = ("density",)
    observable_params: object = None
    submitted_at: float = 0.0
    future: concurrent.futures.Future = dataclasses.field(
        default_factory=concurrent.futures.Future
    )
    on_done: Optional[Callable] = None
    # filled in during execution
    batched: bool = False
    n_coalesced: int = 1
    shared: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    decomposition_hits: int = 0
    decomposition_misses: int = 0

    @property
    def batch_key(self) -> tuple:
        """Requests merge only within one (context, solver, precision mode,
        observable set) equivalence class — the service never merges stacks
        whose :class:`~repro.api.config.PrecisionPolicy` modes differ, and
        groups stay homogeneous in the observables they assemble."""
        return (
            id(self.context),
            self.solver,
            self.context.config.precision.mode,
            tuple(self.observables),
        )

    @property
    def content_key(self) -> tuple:
        """Bytewise input identity: requests with equal keys share all
        μ-independent work (prepare, pack, eigendecomposition) in a group."""
        return (
            _matrix_fingerprint(self.K),
            _matrix_fingerprint(self.S),
            tuple(int(b) for b in self.blocks.block_sizes),
            self.replan,
        )

    def finish(self, result) -> None:
        if self.on_done is not None:
            try:
                self.on_done(self, result, None)
            except Exception:
                pass
        self.future.set_result(result)

    def fail(self, error: BaseException) -> None:
        if self.on_done is not None:
            try:
                self.on_done(self, None, error)
            except Exception:
                pass
        self.future.set_exception(error)


def _matrix_fingerprint(matrix) -> bytes:
    """Content hash of a dense or sparse matrix (shape, pattern and values).

    Used only to *deduplicate* work across requests within one micro-batch:
    a missed match (e.g. the same logical matrix in two storage formats)
    costs a redundant evaluation, never correctness.
    """
    digest = hashlib.blake2b(digest_size=16)
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        digest.update(repr(csr.shape).encode())
        digest.update(np.asarray(csr.indptr).tobytes())
        digest.update(np.asarray(csr.indices).tobytes())
        digest.update(np.ascontiguousarray(csr.data).tobytes())
    else:
        array = np.ascontiguousarray(matrix)
        digest.update(repr(array.shape).encode())
        digest.update(array.dtype.str.encode())
        digest.update(array.tobytes())
    return digest.digest()


class DecompositionCache:
    """Short-TTL content-keyed cache of μ-independent request work.

    A hot request content — bytewise-identical ``K``, ``S`` and block sizes
    arriving again within ``ttl`` seconds — reuses its preparation,
    extraction plan and cached per-submatrix eigendecompositions *across*
    micro-batch windows, extending the within-group content deduplication
    of :func:`evaluate_merged_group` in time.  Only the μ-dependent stages
    (ensemble handling, occupation scatter, observable assembly) are ever
    recomputed, so cache hits stay bitwise identical to fresh evaluations:
    the cached intermediates are deterministic functions of bytewise-equal
    inputs, exactly like the within-group reuse.

    Entries are bound to the session context that produced them (held by
    weak reference — plans belong to that context's plan cache) and expire
    after ``ttl`` seconds; the LRU bound ``max_entries`` caps the retained
    eigendecompositions.  All methods are thread-safe, but the cache is
    only consulted from the single micro-batcher thread in practice.
    """

    def __init__(self, ttl: float, max_entries: int = 32):
        if ttl <= 0.0:
            raise ValueError("ttl must be positive (omit the cache to disable)")
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.ttl = float(ttl)
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple, context) -> Optional[tuple]:
        """The cached ``(prep, plan, buckets, entries)`` for ``key``, if
        fresh and produced by ``context``; counts a hit or miss either way."""
        now = time.monotonic()
        with self._lock:
            record = self._entries.get(key)
            if record is not None:
                expires, context_ref, value = record
                if expires >= now and context_ref() is context:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return value
                del self._entries[key]
            self.misses += 1
            return None

    def put(self, key: tuple, context, value: tuple) -> None:
        with self._lock:
            self._entries[key] = (
                time.monotonic() + self.ttl,
                weakref.ref(context),
                value,
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


class _BlockSizes:
    """Picklable stand-in for a blocks object (only ``block_sizes`` is used)."""

    __slots__ = ("block_sizes",)

    def __init__(self, block_sizes: Sequence[int]):
        self.block_sizes = tuple(int(b) for b in block_sizes)


def _prepare_task(task):
    """Module-level prepare worker (picklable for process-backend sessions)."""
    K, S, block_sizes, eps_filter = task
    return prepare_step(K, S, _BlockSizes(block_sizes), eps_filter)


def _eigh_stack(stack: np.ndarray):
    """Module-level batched eigendecomposition worker."""
    return np.linalg.eigh(stack)


def _merge_stack_tasks(
    per_request_buckets: Sequence[List[Bucket]],
    max_batch_elements: int = MAX_BATCH_ELEMENTS,
) -> List[List[Tuple[int, Bucket]]]:
    """Merge per-request stack tasks across requests by dimension.

    Returns groups of ``(request_index, bucket)`` contributions; each group
    shares one dimension and its total member count obeys the element cap,
    so the concatenated stack is no larger than a single request's largest
    allowed stack.  Dimensions are processed in sorted order and requests in
    submission order within a dimension, making the merge deterministic.
    """
    by_dimension: Dict[int, List[Tuple[int, Bucket]]] = {}
    for request_index, buckets in enumerate(per_request_buckets):
        for bucket in buckets:
            by_dimension.setdefault(bucket.dimension, []).append(
                (request_index, bucket)
            )
    merged: List[List[Tuple[int, Bucket]]] = []
    for dimension in sorted(by_dimension):
        capacity = max(1, max_batch_elements // max(1, dimension * dimension))
        current: List[Tuple[int, Bucket]] = []
        count = 0
        for contribution in by_dimension[dimension]:
            members = len(contribution[1].members)
            if count and count + members > capacity:
                merged.append(current)
                current, count = [], 0
            current.append(contribution)
            count += members
        if current:
            merged.append(current)
    return merged


def evaluate_merged_group(
    context,
    requests: Sequence[DensityRequest],
    decomposition_cache: Optional[DecompositionCache] = None,
) -> list:
    """Evaluate a group of compatible requests with merged eigh stacks.

    All requests must share :attr:`DensityRequest.batch_key` (one context,
    one eigen-family solver, one observable set).  Returns the per-request
    results in order; each is bitwise identical to a direct
    ``context.density`` (or multi-observable ``context.observables``) call
    with the same arguments.  ``decomposition_cache`` optionally serves a
    distinct content's μ-independent work from a previous micro-batch
    window (see :class:`DecompositionCache`).
    """
    config = context.config
    start = time.perf_counter()

    # 0. deduplicate bytewise-identical inputs: each distinct content is
    #    prepared, packed and decomposed once; duplicates reattach at the
    #    μ-dependent stages.  The reused intermediates are deterministic
    #    functions of bytewise-equal inputs, so identity is preserved.
    owner: List[int] = []
    first_by_key: Dict[tuple, int] = {}
    for index, request in enumerate(requests):
        owner.append(first_by_key.setdefault(request.content_key, index))
        request.shared = owner[index] != index
    representatives = [i for i, o in enumerate(owner) if o == i]

    # 0b. distinct contents already decomposed in a previous window skip
    #     the μ-independent stages entirely (cached[(i)] holds the same
    #     (prep, plan, buckets, entries) tuple a fresh evaluation builds)
    cached: Dict[int, tuple] = {}
    if decomposition_cache is not None:
        for i in representatives:
            value = decomposition_cache.get(requests[i].content_key, context)
            if value is not None:
                cached[i] = value
                requests[i].decomposition_hits += 1
            else:
                requests[i].decomposition_misses += 1
    fresh = [i for i in representatives if i not in cached]

    # 1. pure preparation per distinct uncached content, in parallel
    rep_prepared = context._map(
        _prepare_task,
        [
            (
                requests[i].K,
                requests[i].S,
                tuple(int(b) for b in requests[i].blocks.block_sizes),
                config.eps_filter,
            )
            for i in fresh
        ],
    )
    prepared = dict(zip(fresh, rep_prepared))
    for i, (prep, _, _, _) in cached.items():
        prepared[i] = prep

    # 2. serial per-request plan lookups on the shared cache (exact hit
    #    attribution); packing happens once per distinct content.  Requests
    #    whose content came from the decomposition cache skip the lookup —
    #    their plan was resolved (and attributed) when the entry was built.
    planned: Dict[int, tuple] = {}
    for i, (_, plan, buckets, _) in cached.items():
        planned[i] = (plan, None, buckets)
    for index, request in enumerate(requests):
        if owner[index] in cached:
            continue
        prep = prepared[owner[index]]
        grouping = single_column_groups(prep.block_k.n_block_cols)
        before = context.plan_cache.stats
        plan = context.block_plan_for(
            prep.coo,
            prep.block_k.row_block_sizes,
            list(grouping.groups),
            replan=request.replan,
        )
        after = context.plan_cache.stats
        request.cache_hits += after["hits"] - before["hits"]
        request.cache_misses += after["misses"] - before["misses"]
        if owner[index] == index:
            packed = plan.pack(prep.block_k)
            buckets = make_stack_tasks(plan.dimensions)
            planned[index] = (plan, packed, buckets)

    # 3. merge stack tasks across distinct fresh contents and eigendecompose
    #    each merged stack once; eigh is slice-deterministic, so the
    #    per-slice results do not depend on which content's submatrices
    #    share the stack
    merged = _merge_stack_tasks([planned[i][2] for i in fresh])
    stacks = []
    for group in merged:
        parts = [
            planned[fresh[position]][0].extract_stack(
                planned[fresh[position]][1],
                bucket.members,
                bucket.dimension,
            )
            for position, bucket in group
        ]
        stacks.append(parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0))
    eigendecompositions = context._map(_eigh_stack, stacks)

    # 4. route each slice back to its content's entry table
    decomposed: Dict[int, List] = {
        i: [None] * planned[i][0].n_groups for i in fresh
    }
    for group, (eigenvalues, eigenvectors) in zip(merged, eigendecompositions):
        offset = 0
        for position, bucket in group:
            representative = fresh[position]
            plan = planned[representative][0]
            for slot, group_index in enumerate(bucket.members):
                decomposed[representative][group_index] = _make_entry(
                    plan.groups[group_index].make_submatrix(),
                    eigenvalues[offset + slot],
                    eigenvectors[offset + slot],
                )
            offset += len(bucket.members)
    for i, (_, _, _, entries) in cached.items():
        decomposed[i] = entries
    if decomposition_cache is not None:
        for i in fresh:
            decomposition_cache.put(
                requests[i].content_key,
                context,
                (prepared[i], planned[i][0], planned[i][2], decomposed[i]),
            )

    # 5. strictly per-request: ensemble handling, scatter, assembly (shared
    #    decomposed entries are only ever read here)
    results = []
    for index, request in enumerate(requests):
        prep = prepared[owner[index]]
        plan, _, buckets = planned[owner[index]]
        entries = decomposed[owner[index]]
        mu = request.mu
        mu_iterations = 0
        if request.n_electrons is not None:
            mu, mu_iterations = _bisect_mu(
                config,
                entries,
                float(request.n_electrons),
                request.mu_tolerance,
                request.max_mu_iterations,
                bracket=request.mu_bracket,
            )
        dimensions = [entry.submatrix.dimension for entry in entries]
        wall_time = time.perf_counter() - start
        if tuple(request.observables) == ("density",):
            occupation_block = _scatter_occupations(
                config, prep.block_k, entries, prep.coo, float(mu), plan
            )
            results.append(
                assemble_result(
                    config,
                    request.K,
                    prep.s_inv_sqrt,
                    occupation_block,
                    prep.coo,
                    float(mu),
                    mu_iterations,
                    dimensions,
                    wall_time=wall_time,
                    ranks=1,
                )
            )
            continue
        # multi-observable requests assemble every observable from the one
        # shared entry table — the same per-request arithmetic as a direct
        # context.observables call, so bitwise identity carries over
        evaluation = SharedEvaluation(
            config=config,
            K=request.K,
            s_inv_sqrt=prep.s_inv_sqrt,
            block_k=prep.block_k,
            coo=prep.coo,
            mu=float(mu),
            mu_iterations=mu_iterations,
            dimensions=dimensions,
            decomposed=entries,
            plan=plan,
            ranks=1,
            wall_time=wall_time,
            stack_decompositions=len(buckets),
        )
        params_by_name = request.observable_params or {}
        bundle_results = {
            name: get_observable(name).assemble(
                evaluation, params_by_name.get(name, {})
            )
            for name in request.observables
        }
        results.append(
            ObservableBundle(
                results=bundle_results,
                observables=tuple(request.observables),
                stack_decompositions=len(buckets),
            )
        )
    return results


class MicroBatcher:
    """Single consumer thread coalescing compatible requests into groups.

    The first queued request opens a group and waits at most ``max_wait``
    seconds for up to ``max_batch - 1`` compatible peers; incompatible
    requests observed while collecting are deferred (order-preserving) to
    the next group.  ``max_wait`` bounds the latency cost of batching: an
    isolated request is delayed by at most the wait window.
    """

    def __init__(
        self,
        max_batch: int = 8,
        max_wait: float = 0.002,
        decomposition_cache: Optional[DecompositionCache] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.decomposition_cache = decomposition_cache
        self._queue: "queue.Queue" = queue.Queue()
        self._deferred: List[DensityRequest] = []
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="density-batcher", daemon=True
        )
        self._thread.start()

    def submit(self, request: DensityRequest) -> None:
        if self._closed:
            raise RuntimeError("the micro-batcher has been closed")
        self._queue.put(request)

    def close(self) -> None:
        """Drain queued requests, then stop the batcher thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SHUTDOWN)
        self._thread.join()

    # ------------------------------------------------------------------ #
    def _next_request(self, block: bool) -> object:
        if self._deferred:
            return self._deferred.pop(0)
        try:
            return self._queue.get(block=block)
        except queue.Empty:
            return None

    def _run(self) -> None:
        while True:
            first = self._next_request(block=True)
            if first is None:
                continue
            if first is _SHUTDOWN:
                self._fail_remaining()
                return
            group = [first]
            deadline = time.monotonic() + self.max_wait
            stop = False
            while len(group) < self.max_batch:
                if self._deferred:
                    # deferred requests are by construction incompatible
                    # with the current group's key
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    stop = True
                    break
                if item.batch_key == first.batch_key:
                    group.append(item)
                else:
                    self._deferred.append(item)
            self._execute_group(group)
            if stop:
                self._fail_remaining()
                return

    def _fail_remaining(self) -> None:
        """Fail anything still queued after shutdown (submit/close races)."""
        leftovers = list(self._deferred)
        self._deferred.clear()
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                leftovers.append(item)
        for request in leftovers:
            request.fail(RuntimeError("the density service has been closed"))

    def _execute_group(self, group: List[DensityRequest]) -> None:
        context = group[0].context
        try:
            with contextlib.ExitStack() as stack:
                for request in group:
                    stack.enter_context(context._request())
                try:
                    self._execute_merged(context, group)
                except Exception as error:
                    if len(group) == 1:
                        group[0].fail(error)
                        return
                    # fall back to independent evaluation so one poisoned
                    # request cannot fail its neighbours; a single-request
                    # evaluation is the merged path with a group of one,
                    # so the survivors stay bitwise identical
                    for request in group:
                        request.batched = False
                        request.n_coalesced = 1
                        try:
                            (result,) = evaluate_merged_group(context, [request])
                        except Exception as single_error:
                            request.fail(single_error)
                        else:
                            request.finish(result)
        except RuntimeError as error:
            # the context was closed before the group started (_request)
            for request in group:
                if not request.future.done():
                    request.fail(error)

    def _execute_merged(self, context, group: List[DensityRequest]) -> None:
        for request in group:
            request.batched = len(group) > 1
            request.n_coalesced = len(group)
        results = evaluate_merged_group(
            context, group, decomposition_cache=self.decomposition_cache
        )
        for request, result in zip(group, results):
            request.finish(result)
