"""Density-as-a-service: the in-process multi-tenant serving layer.

Public surface:

* :class:`~repro.serve.server.DensityService` — the multi-tenant server
  (pooled sessions, shared plan cache, micro-batching, admission control);
* :class:`~repro.serve.admission.AdmissionPolicy` /
  :class:`~repro.serve.admission.AdmissionController` /
  :class:`~repro.serve.admission.ServiceOverloadError` — admission control;
* :class:`~repro.serve.batcher.MicroBatcher` /
  :class:`~repro.serve.batcher.DensityRequest` /
  :func:`~repro.serve.batcher.evaluate_merged_group` — cross-request
  micro-batching;
* :class:`~repro.serve.metrics.ServiceMetrics` — per-tenant counters.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    ServiceOverloadError,
)
from repro.serve.batcher import DensityRequest, MicroBatcher, evaluate_merged_group
from repro.serve.metrics import LATENCY_WINDOW, ServiceMetrics
from repro.serve.server import DensityService

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "DensityRequest",
    "DensityService",
    "LATENCY_WINDOW",
    "MicroBatcher",
    "ServiceMetrics",
    "ServiceOverloadError",
    "evaluate_merged_group",
]
