"""Per-tenant service metrics of the density service.

Extends the :class:`~repro.api.trajectory.TrajectoryStats` pattern — plain
counters with ratio helpers — to a *live* multi-tenant setting: counters are
updated concurrently by the dispatch pool and the micro-batcher thread, so
every mutation and the :meth:`ServiceMetrics.snapshot` read are guarded by
one lock.  Snapshots are plain dictionaries (safe to serialize or diff) and
can be taken at any time while the service keeps serving.

Latency percentiles are computed over a bounded sliding window per tenant
(the most recent :data:`LATENCY_WINDOW` requests), so a long-running service
reports *current* tail behaviour instead of an all-time average, and memory
stays bounded no matter how many requests pass through.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

__all__ = ["ServiceMetrics", "LATENCY_WINDOW"]

#: Per-tenant sliding-window size for the latency percentiles.
LATENCY_WINDOW = 4096


class _TenantState:
    """Mutable per-tenant counters (guarded by the owning metrics lock)."""

    __slots__ = (
        "admitted",
        "completed",
        "failed",
        "rejected",
        "batched",
        "coalesced",
        "shared",
        "bytes_out",
        "cache_hits",
        "cache_misses",
        "decomposition_hits",
        "decomposition_misses",
        "stacks_reduced",
        "refinement_passes",
        "latencies",
    )

    def __init__(self, window: int):
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.batched = 0
        self.coalesced = 0
        self.shared = 0
        self.bytes_out = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.decomposition_hits = 0
        self.decomposition_misses = 0
        self.stacks_reduced = 0
        self.refinement_passes = 0
        self.latencies: Deque[float] = deque(maxlen=window)

    def snapshot(self) -> Dict[str, object]:
        latencies = np.asarray(self.latencies, dtype=float)
        p50 = float(np.percentile(latencies, 50)) if latencies.size else 0.0
        p99 = float(np.percentile(latencies, 99)) if latencies.size else 0.0
        lookups = self.cache_hits + self.cache_misses
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "batched": self.batched,
            "coalesced": self.coalesced,
            "shared": self.shared,
            "bytes_out": self.bytes_out,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (self.cache_hits / lookups) if lookups else 0.0,
            "decomposition_hits": self.decomposition_hits,
            "decomposition_misses": self.decomposition_misses,
            "stacks_reduced": self.stacks_reduced,
            "refinement_passes": self.refinement_passes,
            "p50_latency": p50,
            "p99_latency": p99,
        }


class ServiceMetrics:
    """Thread-safe per-tenant request/latency/cache/byte counters.

    Counters
    --------
    ``admitted`` / ``completed`` / ``failed`` / ``rejected``:
        Requests past admission control, finished successfully, finished
        with an error, and refused by admission control.
    ``batched`` / ``coalesced``:
        Requests served through a merged micro-batch of size > 1, and the
        total group size they were merged into (``coalesced / batched`` is
        the mean effective batch size).
    ``shared``:
        Requests whose μ-independent work (preparation, packing and the
        eigendecomposition) was deduplicated against a bytewise-identical
        peer in the same micro-batch.
    ``bytes_out``:
        Result payload bytes (dense AO density plus sparse orthogonal
        density values) returned to the tenant.
    ``cache_hits`` / ``cache_misses``:
        Plan-cache traffic attributed to the tenant's requests.  Exact on
        the micro-batched path (plan lookups run serially on the batcher
        thread); best-effort on the concurrent direct path, where deltas of
        the shared cache counters may interleave — the *global* cache stats
        on :meth:`DensityService.stats <repro.serve.server.DensityService.stats>`
        are always exact.
    ``decomposition_hits`` / ``decomposition_misses``:
        Short-TTL decomposition-cache traffic of the tenant's micro-batched
        requests: distinct request contents whose μ-independent work
        (preparation, packing, eigendecomposition) was served from the
        :class:`~repro.serve.batcher.DecompositionCache` of a *previous*
        micro-batch window vs. computed fresh (both 0 when the cache is
        disabled, the default).
    ``stacks_reduced`` / ``refinement_passes``:
        Mixed-precision accounting of the tenant's completed requests —
        bucketed stacks whose sign solve ran reduced under the session's
        :class:`~repro.api.config.PrecisionPolicy`, and the FP64 refinement
        passes that recovered them (both 0 for FP64 sessions).
    ``p50_latency`` / ``p99_latency``:
        Submit-to-completion percentiles over the most recent
        ``latency_window`` requests.
    """

    def __init__(self, latency_window: int = LATENCY_WINDOW):
        if latency_window < 1:
            raise ValueError("latency_window must be at least 1")
        self._window = int(latency_window)
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}

    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState(self._window)
        return state

    def record_admitted(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).admitted += 1

    def record_rejected(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).rejected += 1

    def record_completed(
        self,
        tenant: str,
        latency: float,
        batched: bool = False,
        n_coalesced: int = 1,
        shared: bool = False,
        bytes_out: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        decomposition_hits: int = 0,
        decomposition_misses: int = 0,
        stacks_reduced: int = 0,
        refinement_passes: int = 0,
    ) -> None:
        with self._lock:
            state = self._tenant(tenant)
            state.completed += 1
            state.latencies.append(float(latency))
            if batched:
                state.batched += 1
                state.coalesced += int(n_coalesced)
            if shared:
                state.shared += 1
            state.bytes_out += int(bytes_out)
            state.cache_hits += int(cache_hits)
            state.cache_misses += int(cache_misses)
            state.decomposition_hits += int(decomposition_hits)
            state.decomposition_misses += int(decomposition_misses)
            state.stacks_reduced += int(stacks_reduced)
            state.refinement_passes += int(refinement_passes)

    def record_failed(self, tenant: str, latency: float) -> None:
        with self._lock:
            state = self._tenant(tenant)
            state.failed += 1
            state.latencies.append(float(latency))

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time copy of every counter, safe to take while serving."""
        with self._lock:
            tenants = {
                name: state.snapshot() for name, state in self._tenants.items()
            }
        total: Dict[str, float] = {
            key: 0
            for key in (
                "admitted",
                "completed",
                "failed",
                "rejected",
                "batched",
                "coalesced",
                "shared",
                "bytes_out",
                "cache_hits",
                "cache_misses",
                "decomposition_hits",
                "decomposition_misses",
                "stacks_reduced",
                "refinement_passes",
            )
        }
        for state in tenants.values():
            for key in total:
                total[key] += state[key]
        lookups = total["cache_hits"] + total["cache_misses"]
        total["cache_hit_rate"] = (
            total["cache_hits"] / lookups if lookups else 0.0
        )
        return {"tenants": tenants, "total": total}

    def percentiles(
        self, tenant: Optional[str] = None, quantiles=(50.0, 99.0)
    ) -> Dict[float, float]:
        """Latency percentiles for one tenant (or pooled across all)."""
        with self._lock:
            if tenant is not None:
                states = [self._tenants[tenant]] if tenant in self._tenants else []
            else:
                states = list(self._tenants.values())
            pooled = [value for state in states for value in state.latencies]
        if not pooled:
            return {float(q): 0.0 for q in quantiles}
        array = np.asarray(pooled, dtype=float)
        return {float(q): float(np.percentile(array, q)) for q in quantiles}
