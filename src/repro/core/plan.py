"""Cached extraction/scatter plans — the vectorized submatrix engine.

The naive kernels in :mod:`repro.core.submatrix` rebuild all index
bookkeeping (retained rows, dense offsets, block positions) from scratch on
every call and move data with Python loops.  That is wasteful in exactly the
situations the paper cares about: the μ-bisection of Sec. III-B and MD
trajectories evaluate f(A) many times while the sparsity pattern of A stays
fixed, and even a single evaluation visits every column group with the same
pattern-derived indexing.

A :class:`SubmatrixPlan` precomputes, once per (pattern, column grouping):

* the retained index set, dense offsets and local generating-column
  positions of every submatrix, and
* flat gather/scatter index arrays that map between a *packed* value vector
  (the CSC ``data`` array at element level, the concatenated block values in
  deterministic COO order at block level) and the dense submatrix buffers.

With the plan in hand, one evaluation of f(A) becomes

1. ``packed = plan.pack(A)``             — one pass over the stored values;
2. ``a_i = plan.extract(packed, i)``     — a single vectorized gather per
   submatrix into a preallocated dense buffer (no Python block loops, no
   ``np.ix_`` fancy indexing);
3. ``plan.scatter(out, i, f(a_i))``      — a single vectorized scatter of
   the generating columns into one preallocated output value vector;
4. ``result = plan.finalize(out)``       — zero-copy assembly of the sparse
   result (CSR arrays reuse the plan's pattern; block results are views
   into the output buffer).

Plans are cached in a :class:`PlanCache` keyed by a content hash of the
sparsity pattern and the column grouping, so repeated evaluations on an
unchanged pattern skip the planning phase entirely.

Both paths produce results bitwise identical to the naive reference
implementations (property-tested in ``tests/test_submatrix_plan.py``).
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.submatrix import Submatrix
from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.coo import CooBlockList

__all__ = [
    "GroupPlan",
    "SubmatrixPlan",
    "ElementSubmatrixPlan",
    "BlockSubmatrixPlan",
    "BlockPatternDelta",
    "PlanPatchReport",
    "PlanCache",
    "DEFAULT_PLAN_CACHE",
    "PATCH_DELTA_FRACTION",
    "element_plan",
    "block_plan",
    "block_pattern_delta",
    "make_segment_remap",
    "plan_nbytes",
]

#: Largest fraction of changed blocks (added + removed, relative to the new
#: pattern's block count) for which ``replan="auto"`` prefers patching an
#: existing plan over a full rebuild.  Beyond this the dirty-group set tends
#: to cover most of the plan and a fresh build is cheaper.
PATCH_DELTA_FRACTION = 0.25


@dataclasses.dataclass
class GroupPlan:
    """Precomputed indexing for one column group's submatrix.

    Attributes
    ----------
    generating_columns, indices, local_columns, block_sizes:
        Same bookkeeping as :class:`~repro.core.submatrix.Submatrix`.
    dimension:
        Dense dimension of the submatrix.
    gather_src / gather_dst:
        Flat positions such that ``dense.ravel()[gather_dst] =
        packed[gather_src]`` assembles the dense submatrix.
    scatter_src / scatter_dst:
        Flat positions such that ``out[scatter_dst] =
        f_dense.ravel()[scatter_src]`` writes the generating columns of the
        evaluated submatrix into the packed output vector.
    offsets:
        Dense offsets of the retained blocks (block level only).
    """

    generating_columns: np.ndarray
    indices: np.ndarray
    local_columns: np.ndarray
    dimension: int
    gather_src: np.ndarray
    gather_dst: np.ndarray
    scatter_src: np.ndarray
    scatter_dst: np.ndarray
    block_sizes: Optional[np.ndarray] = None
    offsets: Optional[np.ndarray] = None

    def make_submatrix(self, data: Optional[np.ndarray] = None) -> Submatrix:
        """Bookkeeping-only :class:`Submatrix` view of this group."""
        return Submatrix(
            generating_columns=self.generating_columns,
            indices=self.indices,
            local_columns=self.local_columns,
            data=data,
            block_sizes=self.block_sizes,
        )


@dataclasses.dataclass
class _StackPlan:
    """Concatenated gather/scatter arrays for one stack of submatrices.

    All member submatrices of a bucket share these four flat index arrays,
    so assembling (and scattering) a whole ``(k, D, D)`` stack is a single
    vectorized operation instead of ``k`` per-group calls.  ``pad`` holds the
    flat positions of the identity-padding diagonal entries of members whose
    dimension is below the stack dimension.
    """

    gather_src: np.ndarray
    gather_dst: np.ndarray
    scatter_src: np.ndarray
    scatter_dst: np.ndarray
    pad: np.ndarray


def _canonical_csc(matrix: sp.spmatrix) -> sp.csc_matrix:
    """Canonical CSC form (duplicates summed, indices sorted), caller-safe.

    ``tocsc()`` returns the input object itself for CSC inputs, and both
    canonicalization steps mutate buffers in place — so an aliased input is
    copied first to keep the caller's matrix untouched.
    """
    csc = matrix.tocsc()
    if csc.has_canonical_format and csc.has_sorted_indices:
        return csc  # both steps would be no-ops: skip the defensive copy
    if csc is matrix:
        csc = csc.copy()
    csc.sum_duplicates()
    csc.sort_indices()
    return csc


def make_segment_remap(
    old_offsets: np.ndarray, new_offsets: np.ndarray, new_id_of_old: np.ndarray
):
    """Packed-position remap between two segment layouts.

    Returns ``(shift, remap)`` where ``shift[s]`` is the packed-position
    displacement of surviving old segment ``s`` (undefined for removed
    segments) and ``remap(positions)`` translates old packed positions onto
    the new layout.  Shared by plan patching and shard patching so the two
    stay bitwise consistent by construction.
    """
    survives = new_id_of_old >= 0
    shift = np.zeros(new_id_of_old.size, dtype=np.int64)
    shift[survives] = (
        new_offsets[new_id_of_old[survives]] - old_offsets[:-1][survives]
    )

    def remap(positions: np.ndarray) -> np.ndarray:
        if positions.size == 0:
            return positions
        segment = np.searchsorted(old_offsets, positions, side="right") - 1
        return positions + shift[segment]

    return shift, remap


@dataclasses.dataclass
class BlockPatternDelta:
    """Difference between two block-COO sparsity patterns.

    Attributes
    ----------
    added:
        New-pattern COO IDs of blocks absent from the old pattern.
    removed:
        Old-pattern COO IDs of blocks absent from the new pattern.
    new_id_of_old:
        Length ``n_old`` map from old COO IDs to new COO IDs (``-1`` for
        removed blocks).  Survivors keep their relative order, so this map
        is monotone on the surviving subset.
    n_old / n_new:
        Block counts of the two patterns.
    """

    added: np.ndarray
    removed: np.ndarray
    new_id_of_old: np.ndarray
    n_old: int
    n_new: int

    @property
    def n_changed(self) -> int:
        """Number of inserted plus deleted blocks."""
        return int(self.added.size + self.removed.size)

    @property
    def fraction_changed(self) -> float:
        """Changed blocks relative to the new pattern's block count."""
        return self.n_changed / max(1, self.n_new)

    def fingerprint(self, new_rows: np.ndarray, new_cols: np.ndarray) -> str:
        """Content hash of the transition (for delta-keyed cache lookups).

        Together with the *old* pattern's fingerprint this identifies the new
        pattern: the removed blocks are named by their old IDs, the inserted
        blocks by their coordinates (IDs alone would not pin them down).
        """
        digest = hashlib.sha1()
        digest.update(np.int64([self.n_old, self.n_new]).tobytes())
        digest.update(np.ascontiguousarray(self.removed, dtype=np.int64).tobytes())
        digest.update(
            np.ascontiguousarray(new_rows[self.added], dtype=np.int64).tobytes()
        )
        digest.update(
            np.ascontiguousarray(new_cols[self.added], dtype=np.int64).tobytes()
        )
        return digest.hexdigest()


def block_pattern_delta(
    old_rows: np.ndarray,
    old_cols: np.ndarray,
    new_coo: CooBlockList,
) -> BlockPatternDelta:
    """Diff two block-COO patterns sorted in canonical (column, row) order.

    Both inputs must use :class:`~repro.dbcsr.coo.CooBlockList` ordering
    (lexsorted by column then row, unique entries), which makes the diff two
    ``searchsorted`` passes over the flattened ``col·n_rows + row`` keys.
    """
    n_rows = int(new_coo.n_block_rows)
    old_key = old_cols.astype(np.int64) * n_rows + old_rows.astype(np.int64)
    new_key = new_coo.cols.astype(np.int64) * n_rows + new_coo.rows.astype(np.int64)
    position = np.searchsorted(new_key, old_key)
    clipped = np.minimum(position, max(0, new_key.size - 1))
    survives = (
        (position < new_key.size) & (new_key[clipped] == old_key)
        if new_key.size
        else np.zeros(old_key.size, dtype=bool)
    )
    new_id_of_old = np.where(survives, position, -1).astype(np.int64)
    position = np.searchsorted(old_key, new_key)
    clipped = np.minimum(position, max(0, old_key.size - 1))
    existed = (
        (position < old_key.size) & (old_key[clipped] == new_key)
        if old_key.size
        else np.zeros(new_key.size, dtype=bool)
    )
    return BlockPatternDelta(
        added=np.flatnonzero(~existed).astype(np.int64),
        removed=np.flatnonzero(~survives).astype(np.int64),
        new_id_of_old=new_id_of_old,
        n_old=int(old_key.size),
        n_new=int(new_key.size),
    )


@dataclasses.dataclass
class PlanPatchReport:
    """Provenance record of an incrementally patched plan.

    Attached to the patched plan as ``plan.patch_report`` so downstream
    consumers (:meth:`repro.core.shard.ShardedPlan.patch`, the trajectory
    statistics) can see which groups were rebuilt and how the packed value
    space moved — without re-diffing the patterns.
    """

    #: Weak reference to the plan this plan was patched from
    #: (identity-checked by shard patching, which reuses that plan's
    #: rank-local layouts).  Weak so a drifting trajectory does not chain
    #: every historical plan alive through its successor; once the source
    #: is collected, shard patching falls back to a fresh shard build.
    source_ref: "weakref.ref"
    #: Global indices of the groups that were rebuilt from scratch.
    dirty_groups: np.ndarray
    #: Old-segment → new-segment ID map of the underlying pattern delta.
    new_id_of_old: np.ndarray
    groups_rebuilt: int
    groups_reused: int
    blocks_added: int
    blocks_removed: int

    @property
    def source(self) -> Optional["SubmatrixPlan"]:
        """The source plan, or ``None`` once it has been collected."""
        return self.source_ref()


class SubmatrixPlan:
    """Shared per-call interface of element- and block-level plans."""

    groups: List[GroupPlan]
    n_values: int

    #: Set on plans produced by :meth:`patch`; ``None`` for fully built plans.
    patch_report: Optional[PlanPatchReport] = None

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def dimensions(self) -> List[int]:
        """Dense dimension of every planned submatrix."""
        return [group.dimension for group in self.groups]

    def pack(self, matrix) -> np.ndarray:  # pragma: no cover - interface
        """Flatten the values of ``matrix`` into the plan's packed layout."""
        raise NotImplementedError

    def segment_offsets(self) -> np.ndarray:  # pragma: no cover - interface
        """Boundaries of the natural transfer segments of the packed layout.

        Returns an array of length ``n_segments + 1`` such that segment ``s``
        owns the packed value range ``[offsets[s], offsets[s+1])``.  A
        segment is the unit in which values are owned and shipped between
        ranks: one non-zero block at block level, one column's stored
        entries at element level.  :class:`repro.core.shard.ShardedPlan`
        builds its rank-local buffers and the block→segment transfer index
        on top of this structure.
        """
        raise NotImplementedError

    def extract(
        self, packed: np.ndarray, group_index: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Assemble the dense submatrix of one group with a single gather."""
        group = self.groups[group_index]
        dim = group.dimension
        if out is None:
            out = np.zeros((dim, dim))
        else:
            if out.shape != (dim, dim):
                raise ValueError(f"out must have shape {(dim, dim)}")
            out.fill(0.0)
        out.reshape(-1)[group.gather_dst] = packed[group.gather_src]
        return out

    def new_output(self) -> np.ndarray:
        """Preallocated packed output vector covering the full pattern."""
        return np.zeros(self.n_values)

    def scatter(
        self, out: np.ndarray, group_index: int, f_submatrix: np.ndarray
    ) -> None:
        """Write the generating columns of f(a_i) with a single scatter."""
        group = self.groups[group_index]
        out[group.scatter_dst] = f_submatrix.reshape(-1)[group.scatter_src]

    def finalize(self, out: np.ndarray):  # pragma: no cover - interface
        """Assemble the sparse result from the packed output vector."""
        raise NotImplementedError

    def patch(self, new_pattern) -> "SubmatrixPlan":
        """Incrementally replan this plan against a drifted sparsity pattern.

        Implemented at block level (:class:`BlockSubmatrixPlan`), where MD/SCF
        trajectories drift the pattern a few blocks at a time; element-level
        plans rebuild from scratch.
        """
        raise NotImplementedError(
            "incremental plan patching is implemented for block-level plans "
            "(BlockSubmatrixPlan); rebuild element-level plans from scratch"
        )

    # ------------------------------------------------------------------ #
    # stacked (bucket-level) gather/scatter
    # ------------------------------------------------------------------ #
    def _stack_plan(self, members: Sequence[int], stack_dim: int) -> _StackPlan:
        """Cached concatenated index arrays for a stack of groups.

        The per-group flat indices address a ``(d, d)`` buffer; for a stack
        slot of dimension ``stack_dim ≥ d`` they are re-based to row stride
        ``stack_dim`` and offset by the slot's position, then concatenated —
        once, on first use, and cached on the plan.
        """
        cache: Dict[tuple, _StackPlan] = self.__dict__.setdefault(
            "_stack_cache", {}
        )
        key = (tuple(members), int(stack_dim))
        cached = cache.get(key)
        if cached is not None:
            return cached
        area = stack_dim * stack_dim
        gather_src: List[np.ndarray] = []
        gather_dst: List[np.ndarray] = []
        scatter_src: List[np.ndarray] = []
        scatter_dst: List[np.ndarray] = []
        pad: List[np.ndarray] = []
        for slot, group_index in enumerate(members):
            group = self.groups[group_index]
            dim = group.dimension
            if dim > stack_dim:
                raise ValueError(
                    f"group dimension {dim} exceeds stack dimension {stack_dim}"
                )
            base = slot * area
            if dim == stack_dim:
                slot_gather_dst = group.gather_dst + base
                slot_scatter_src = group.scatter_src + base
            else:
                rows, cols = np.divmod(group.gather_dst, dim)
                slot_gather_dst = base + rows * stack_dim + cols
                rows, cols = np.divmod(group.scatter_src, dim)
                slot_scatter_src = base + rows * stack_dim + cols
                diagonal = np.arange(dim, stack_dim, dtype=np.int64)
                pad.append(base + diagonal * stack_dim + diagonal)
            gather_src.append(group.gather_src)
            gather_dst.append(slot_gather_dst)
            scatter_src.append(slot_scatter_src)
            scatter_dst.append(group.scatter_dst)
        cached = _StackPlan(
            gather_src=_concat_int(gather_src),
            gather_dst=_concat_int(gather_dst),
            scatter_src=_concat_int(scatter_src),
            scatter_dst=_concat_int(scatter_dst),
            pad=_concat_int(pad),
        )
        cache[key] = cached
        return cached

    def extract_stack(
        self,
        packed: np.ndarray,
        members: Sequence[int],
        stack_dim: Optional[int] = None,
        pad_value: float = 1.0,
    ) -> np.ndarray:
        """Assemble a ``(k, D, D)`` stack of submatrices with one gather.

        Members of dimension below ``stack_dim`` are embedded block-diagonally
        with ``pad_value`` on the padding diagonal (exact for matrix
        functions, see :mod:`repro.core.batch`).
        """
        members = list(members)
        if stack_dim is None:
            stack_dim = max(self.groups[index].dimension for index in members)
        stack = np.zeros((len(members), stack_dim, stack_dim))
        flat = stack.reshape(-1)
        stacked = self._stack_plan(members, stack_dim)
        flat[stacked.gather_dst] = packed[stacked.gather_src]
        if stacked.pad.size:
            flat[stacked.pad] = pad_value
        return stack

    def scatter_stack(
        self,
        out: np.ndarray,
        members: Sequence[int],
        evaluated: np.ndarray,
        stack_dim: Optional[int] = None,
    ) -> None:
        """Scatter a whole evaluated stack into the packed output (one write)."""
        members = list(members)
        if stack_dim is None:
            stack_dim = int(evaluated.shape[-1])
        stacked = self._stack_plan(members, stack_dim)
        out[stacked.scatter_dst] = evaluated.reshape(-1)[stacked.scatter_src]


# --------------------------------------------------------------------------- #
# element level
# --------------------------------------------------------------------------- #
class ElementSubmatrixPlan(SubmatrixPlan):
    """Extraction/scatter plan for element-level (SciPy CSC) submatrices.

    Parameters
    ----------
    matrix:
        Sparse symmetric matrix whose *pattern* defines the plan (any SciPy
        format; converted to canonical CSC).
    column_groups:
        Groups of generating columns, one submatrix per group.
    """

    def __init__(
        self, matrix: sp.spmatrix, column_groups: Sequence[Sequence[int]]
    ):
        csc = _canonical_csc(matrix)
        n_rows, n_cols = csc.shape
        if n_rows != n_cols:
            raise ValueError("the submatrix method requires a square matrix")
        self.shape = (int(n_rows), int(n_cols))
        self.indptr = csc.indptr.copy()
        self.indices = csc.indices.copy()
        self.n_values = int(csc.nnz)
        self.column_groups = [list(map(int, group)) for group in column_groups]
        # a pattern-shaped matrix whose values are 1-based positions in the
        # data array lets two-step slicing compute the gather map for us
        positions = sp.csc_matrix(
            (np.arange(1, self.n_values + 1, dtype=np.int64), self.indices, self.indptr),
            shape=self.shape,
        )
        self.groups = [
            self._plan_group(csc, positions, group) for group in self.column_groups
        ]

    def _plan_group(
        self, csc: sp.csc_matrix, positions: sp.csc_matrix, group: List[int]
    ) -> GroupPlan:
        columns = np.asarray(group, dtype=int)
        if columns.size == 0:
            raise ValueError("column groups must be non-empty")
        if columns.min() < 0 or columns.max() >= self.shape[1]:
            raise IndexError("generating column out of range")
        row_sets = [
            csc.indices[csc.indptr[c] : csc.indptr[c + 1]] for c in columns
        ]
        indices = np.unique(np.concatenate(row_sets + [columns]))
        local_columns = np.searchsorted(indices, columns)
        dim = int(indices.size)
        sub = positions[:, indices][indices, :].tocsc()
        sub.sort_indices()
        gather_src = np.asarray(sub.data, dtype=np.int64) - 1
        local_col_of_entry = np.repeat(np.arange(dim), np.diff(sub.indptr))
        gather_dst = sub.indices.astype(np.int64) * dim + local_col_of_entry
        scatter_src: List[np.ndarray] = []
        scatter_dst: List[np.ndarray] = []
        for column, local_column in zip(columns, local_columns):
            start, stop = self.indptr[column], self.indptr[column + 1]
            rows = self.indices[start:stop]
            local_rows = np.searchsorted(indices, rows)
            scatter_src.append(local_rows.astype(np.int64) * dim + int(local_column))
            scatter_dst.append(np.arange(start, stop, dtype=np.int64))
        return GroupPlan(
            generating_columns=columns,
            indices=indices,
            local_columns=local_columns,
            dimension=dim,
            gather_src=gather_src,
            gather_dst=gather_dst,
            scatter_src=_concat_int(scatter_src),
            scatter_dst=_concat_int(scatter_dst),
        )

    def pack(self, matrix: sp.spmatrix) -> np.ndarray:
        """Values of ``matrix`` in plan order (its CSC ``data`` array).

        ``matrix`` must have exactly the stored sparsity pattern the plan was
        built for *after canonicalization*: duplicate entries are summed and
        row indices sorted before comparing, so matrices assembled with
        unsorted or duplicate indices (but an identical canonical structure,
        explicit zeros included) pack without error.
        """
        csc = _canonical_csc(matrix)
        if csc.shape != self.shape:
            raise ValueError(
                f"matrix pattern does not match the plan: shape {csc.shape} "
                f"differs from the planned {self.shape}"
            )
        if csc.nnz != self.n_values:
            raise ValueError(
                f"matrix pattern does not match the plan: {int(csc.nnz)} "
                f"stored entries (after canonicalization) vs {self.n_values} "
                "planned (nnz mismatch)"
            )
        if not np.array_equal(csc.indptr, self.indptr):
            where = np.flatnonzero(np.asarray(csc.indptr) != self.indptr)
            column = max(0, int(where[0]) - 1)
            raise ValueError(
                "matrix pattern does not match the plan: per-column entry "
                f"counts differ (indptr mismatch first at column {column})"
            )
        if not np.array_equal(csc.indices, self.indices):
            entry = int(
                np.flatnonzero(np.asarray(csc.indices) != self.indices)[0]
            )
            raise ValueError(
                "matrix pattern does not match the plan: stored row indices "
                f"differ (indices mismatch first at entry {entry}: row "
                f"{int(csc.indices[entry])} vs planned {int(self.indices[entry])})"
            )
        return np.asarray(csc.data, dtype=float)

    def finalize(self, out: np.ndarray) -> sp.csr_matrix:
        """CSR result reusing the plan's pattern arrays (no re-sorting)."""
        return sp.csc_matrix(
            (out, self.indices, self.indptr), shape=self.shape
        ).tocsr()

    def segment_offsets(self) -> np.ndarray:
        """One segment per matrix column (its stored CSC entries)."""
        return np.asarray(self.indptr, dtype=np.int64)


# --------------------------------------------------------------------------- #
# block level
# --------------------------------------------------------------------------- #
class BlockSubmatrixPlan(SubmatrixPlan):
    """Extraction/scatter plan for DBCSR block-column submatrices.

    The packed value layout concatenates the (row-major raveled) values of
    every non-zero block in the deterministic COO order of
    :class:`~repro.dbcsr.coo.CooBlockList`, so a block's unique COO ID also
    addresses its value range.

    Parameters
    ----------
    coo:
        Global block-sparsity pattern.
    block_sizes:
        Sizes of the (square) block rows/columns.
    column_groups:
        Groups of generating block columns, one submatrix per group.
    """

    def __init__(
        self,
        coo: CooBlockList,
        block_sizes: Sequence[int],
        column_groups: Sequence[Sequence[int]],
    ):
        self._init_pattern(coo, np.asarray(list(block_sizes), dtype=int))
        self.column_groups = [list(map(int, group)) for group in column_groups]
        self.groups = [self._plan_group(coo, group) for group in self.column_groups]

    def _init_pattern(self, coo: CooBlockList, block_sizes: np.ndarray) -> None:
        """Pattern-derived state shared by full builds and patching."""
        if coo.n_block_rows != coo.n_block_cols:
            raise ValueError("the submatrix method requires a square block structure")
        self.block_sizes = block_sizes
        if self.block_sizes.size != coo.n_block_rows:
            raise ValueError("block_sizes does not match the pattern dimensions")
        self.coo_rows = coo.rows.copy()
        self.coo_cols = coo.cols.copy()
        self.n_block_rows = coo.n_block_rows
        self.n_block_cols = coo.n_block_cols
        counts = self.block_sizes[self.coo_rows] * self.block_sizes[self.coo_cols]
        self.value_offsets = np.concatenate(
            ([0], np.cumsum(counts, dtype=np.int64))
        )
        self.n_values = int(self.value_offsets[-1])
        # per-COO-entry (key, value range, shape), precomputed so pack and
        # finalize run without per-call integer conversions
        self._pack_entries = [
            (
                (int(bi), int(bj)),
                int(start),
                int(stop),
                (int(self.block_sizes[bi]), int(self.block_sizes[bj])),
            )
            for bi, bj, start, stop in zip(
                self.coo_rows,
                self.coo_cols,
                self.value_offsets[:-1],
                self.value_offsets[1:],
            )
        ]

    def _plan_group(self, coo: CooBlockList, group: List[int]) -> GroupPlan:
        columns = np.asarray(group, dtype=int)
        if columns.size == 0:
            raise ValueError("column groups must be non-empty")
        if columns.min() < 0 or columns.max() >= self.n_block_cols:
            raise IndexError("generating block column out of range")
        rows_union = np.asarray(coo.blocks_in_columns(columns), dtype=int)
        retained = np.unique(np.concatenate([rows_union, columns]))
        sizes = self.block_sizes[retained]
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        dim = int(offsets[-1])
        local_columns = np.searchsorted(retained, columns)
        # every pattern entry whose row AND column are retained contributes a
        # block to the dense submatrix
        ids, entry_rows, entry_cols = coo.entries_in_columns(retained)
        pos = np.searchsorted(retained, entry_rows)
        keep = (pos < retained.size) & (retained[np.minimum(pos, retained.size - 1)] == entry_rows)
        ids, entry_rows, entry_cols = ids[keep], entry_rows[keep], entry_cols[keep]
        local_i = np.searchsorted(retained, entry_rows)
        local_j = np.searchsorted(retained, entry_cols)
        gather_src: List[np.ndarray] = []
        gather_dst: List[np.ndarray] = []
        scatter_src: List[np.ndarray] = []
        scatter_dst: List[np.ndarray] = []
        generating = np.isin(entry_cols, columns)
        for entry, li, lj, in_group in zip(ids, local_i, local_j, generating):
            height = int(sizes[li])
            width = int(sizes[lj])
            src = np.arange(
                self.value_offsets[entry], self.value_offsets[entry + 1], dtype=np.int64
            )
            dst = (
                (offsets[li] + np.arange(height, dtype=np.int64))[:, None] * dim
                + offsets[lj]
                + np.arange(width, dtype=np.int64)[None, :]
            ).reshape(-1)
            gather_src.append(src)
            gather_dst.append(dst)
            if in_group:
                # the scatter is the gather transposed: dense region -> the
                # block's value range in the packed output
                scatter_src.append(dst)
                scatter_dst.append(src)
        return GroupPlan(
            generating_columns=columns,
            indices=retained,
            local_columns=local_columns,
            dimension=dim,
            gather_src=_concat_int(gather_src),
            gather_dst=_concat_int(gather_dst),
            scatter_src=_concat_int(scatter_src),
            scatter_dst=_concat_int(scatter_dst),
            block_sizes=sizes,
            offsets=offsets,
        )

    def pack(self, matrix: BlockSparseMatrix) -> np.ndarray:
        """Concatenate all block values of ``matrix`` in plan (COO) order.

        Pattern entries without a stored block pack as zeros, matching the
        naive engine's treatment of a pattern that is a superset of the
        stored blocks (e.g. a symmetrized or pattern-only COO list).
        """
        if (
            matrix.n_block_rows != self.n_block_rows
            or matrix.n_block_cols != self.n_block_cols
        ):
            raise ValueError("matrix block structure does not match the plan")
        blocks = matrix.raw_blocks()
        packed = np.zeros(self.n_values)
        for key, start, stop, _ in self._pack_entries:
            block = blocks.get(key)
            if block is not None:
                packed[start:stop] = block.reshape(-1)
        return packed

    def finalize(self, out: np.ndarray) -> BlockSparseMatrix:
        """Block-sparse result whose blocks are views into ``out`` (zero-copy)."""
        result = BlockSparseMatrix(self.block_sizes, self.block_sizes)
        blocks = result.raw_blocks()
        for key, start, stop, shape in self._pack_entries:
            blocks[key] = out[start:stop].reshape(shape)
        return result

    def segment_offsets(self) -> np.ndarray:
        """One segment per non-zero block (its raveled values, COO order).

        A segment index therefore *is* a block ID of the underlying
        :class:`~repro.dbcsr.coo.CooBlockList`, which is what lets the
        transfer planner translate shard segment requirements into
        per-(owner, consumer) traffic.
        """
        return np.asarray(self.value_offsets, dtype=np.int64)

    def pattern_fingerprint(self) -> str:
        """Content hash of the plan's block pattern.

        Identical to :meth:`CooBlockList.fingerprint` of the pattern the plan
        was built for, so delta-keyed cache entries compose with the
        content-keyed ones.
        """
        digest = hashlib.sha1()
        digest.update(np.int64([self.n_block_rows, self.n_block_cols]).tobytes())
        digest.update(np.ascontiguousarray(self.coo_rows, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(self.coo_cols, dtype=np.int64).tobytes())
        return digest.hexdigest()

    def delta_to(self, new_pattern: CooBlockList) -> BlockPatternDelta:
        """Diff of this plan's pattern against ``new_pattern``."""
        return block_pattern_delta(self.coo_rows, self.coo_cols, new_pattern)

    # ------------------------------------------------------------------ #
    # incremental replanning
    # ------------------------------------------------------------------ #
    def _membership_index(self):
        """Memoized block → group inverted indices for dirty detection.

        Two sorted (block, owner) arrays: which groups *generate* each block
        column and which groups *retain* each block in their dense
        submatrix.  Built lazily once per plan object (vectorized), so a
        plan patched toward several targets pays for it once.
        """
        cached = self.__dict__.get("_membership_cache")
        if cached is not None:
            return cached
        gen_cols = _concat_int(
            [np.asarray(columns, dtype=np.int64) for columns in self.column_groups]
        )
        gen_owner = np.repeat(
            np.arange(len(self.column_groups), dtype=np.int64),
            [len(columns) for columns in self.column_groups],
        )
        order = np.argsort(gen_cols, kind="stable")
        ret_blocks = _concat_int(
            [np.asarray(group.indices, dtype=np.int64) for group in self.groups]
        )
        ret_owner = np.repeat(
            np.arange(len(self.groups), dtype=np.int64),
            [group.indices.size for group in self.groups],
        )
        ret_order = np.argsort(ret_blocks, kind="stable")
        cached = (
            gen_cols[order],
            gen_owner[order],
            ret_blocks[ret_order],
            ret_owner[ret_order],
        )
        self.__dict__["_membership_cache"] = cached
        return cached

    def _dirty_groups(self, delta: BlockPatternDelta, new_coo: CooBlockList) -> np.ndarray:
        """Groups whose index arrays a pattern delta invalidates.

        A group is dirty when a changed block's column is one of its
        generating columns (its retained set — and hence its dimension —
        may change), or when a changed block has both endpoints in its
        retained set (an interior block of its dense submatrix appeared or
        vanished).  Every other group's bookkeeping survives verbatim up to
        a shift of packed value positions.
        """
        dirty = np.zeros(len(self.groups), dtype=bool)
        if delta.n_changed == 0:
            return dirty
        changed_rows = np.concatenate(
            [self.coo_rows[delta.removed], new_coo.rows[delta.added]]
        )
        changed_cols = np.concatenate(
            [self.coo_cols[delta.removed], new_coo.cols[delta.added]]
        )
        gen_cols, gen_owner, ret_blocks, ret_owner = self._membership_index()

        def owners_of(sorted_keys, owners, key):
            start, stop = np.searchsorted(sorted_keys, [key, key + 1])
            return owners[start:stop]

        for row, col in zip(changed_rows.tolist(), changed_cols.tolist()):
            dirty[owners_of(gen_cols, gen_owner, col)] = True
            row_groups = owners_of(ret_blocks, ret_owner, row)
            col_groups = owners_of(ret_blocks, ret_owner, col)
            if row_groups.size and col_groups.size:
                dirty[np.intersect1d(row_groups, col_groups)] = True
        return dirty

    def patch(
        self, new_pattern, delta: Optional[BlockPatternDelta] = None
    ) -> "BlockSubmatrixPlan":
        """Incrementally replan against a drifted block pattern.

        Diffs this plan's pattern against ``new_pattern``, rebuilds only the
        :class:`GroupPlan` entries the delta invalidates, and translates every
        untouched group's gather/scatter arrays onto the new packed value
        layout with one vectorized position remap (the packed layout
        concatenates block values in COO order, so insertions and deletions
        shift surviving segments without reordering them).

        The patched plan is **bitwise identical** to a freshly built
        ``BlockSubmatrixPlan(new_pattern, ...)`` in every pack / extract /
        scatter / finalize result (property-tested in
        ``tests/test_incremental_replan.py``), and carries a
        :class:`PlanPatchReport` as ``patch_report``.  Callers that already
        diffed the patterns pass the :class:`BlockPatternDelta` to avoid
        recomputing it.

        Raises :class:`ValueError` when the block grid (block count or block
        sizes) differs — dimension changes of the *blocks* themselves require
        a full rebuild.
        """
        new_coo = (
            new_pattern
            if isinstance(new_pattern, CooBlockList)
            else CooBlockList.from_pattern(new_pattern)
        )
        if (
            new_coo.n_block_rows != self.n_block_rows
            or new_coo.n_block_cols != self.n_block_cols
        ):
            raise ValueError(
                "patching requires an unchanged block grid: the new pattern "
                f"has {new_coo.n_block_rows}x{new_coo.n_block_cols} blocks, "
                f"the plan {self.n_block_rows}x{self.n_block_cols}"
            )
        if delta is None:
            delta = self.delta_to(new_coo)
        dirty = self._dirty_groups(delta, new_coo)

        patched = object.__new__(BlockSubmatrixPlan)
        patched._init_pattern(new_coo, self.block_sizes)
        patched.column_groups = [list(group) for group in self.column_groups]
        _, remap = make_segment_remap(
            self.value_offsets, patched.value_offsets, delta.new_id_of_old
        )
        # clean groups reference surviving segments only (a removed interior
        # block would have marked them dirty), so the dense side is untouched
        # and the packed side just shifts.  All clean gather/scatter arrays
        # are translated in ONE concatenated remap (a single searchsorted
        # over the whole batch instead of two per group — the segment lookup
        # is the dominant patch cost once few groups are dirty).
        clean_indices = np.flatnonzero(~dirty)
        clean_arrays: List[np.ndarray] = []
        for group_index in clean_indices:
            group = self.groups[group_index]
            clean_arrays.append(group.gather_src)
            clean_arrays.append(group.scatter_dst)
        if clean_arrays:
            lengths = np.array([a.size for a in clean_arrays], dtype=np.int64)
            remapped = remap(np.concatenate(clean_arrays))
            pieces = iter(np.split(remapped, np.cumsum(lengths)[:-1]))
        else:
            pieces = iter(())
        groups: List[GroupPlan] = []
        for group_index, group in enumerate(self.groups):
            if dirty[group_index]:
                groups.append(
                    patched._plan_group(new_coo, patched.column_groups[group_index])
                )
            else:
                groups.append(
                    dataclasses.replace(
                        group,
                        gather_src=next(pieces),
                        scatter_dst=next(pieces),
                    )
                )
        patched.groups = groups
        patched.patch_report = PlanPatchReport(
            source_ref=weakref.ref(self),
            dirty_groups=np.flatnonzero(dirty).astype(np.int64),
            new_id_of_old=delta.new_id_of_old,
            groups_rebuilt=int(np.count_nonzero(dirty)),
            groups_reused=int(len(groups) - np.count_nonzero(dirty)),
            blocks_added=int(delta.added.size),
            blocks_removed=int(delta.removed.size),
        )
        return patched


# --------------------------------------------------------------------------- #
# plan cache
# --------------------------------------------------------------------------- #
def plan_nbytes(plan: "SubmatrixPlan") -> int:
    """Approximate resident size of a plan's index arrays, in bytes.

    Counts the numpy bookkeeping that dominates a plan's footprint — the
    per-group gather/scatter/index arrays plus the pattern-level arrays —
    and a flat per-entry constant for the Python-level pack map.  Used by
    :class:`PlanCache` for memory-budget accounting; it deliberately ignores
    the lazily memoized stack/membership caches, which are bounded by the
    same arrays it already counts.
    """
    total = 0
    for group in plan.groups:
        for array in (
            group.generating_columns,
            group.indices,
            group.local_columns,
            group.gather_src,
            group.gather_dst,
            group.scatter_src,
            group.scatter_dst,
            group.block_sizes,
            group.offsets,
        ):
            if array is not None:
                total += int(np.asarray(array).nbytes)
    for name in ("value_offsets", "coo_rows", "coo_cols", "indptr", "indices"):
        array = getattr(plan, name, None)
        if array is not None:
            total += int(np.asarray(array).nbytes)
    # per-block Python tuples of the pack map (block level only)
    total += 96 * len(getattr(plan, "_pack_entries", ()))
    return total


class PlanCache:
    """LRU cache of extraction plans keyed by pattern + grouping content.

    Two matrices with bitwise-identical sparsity patterns and the same column
    grouping share one plan, so the μ-bisection, repeated SCF/MD evaluations
    and the per-group loop within one evaluation all reuse the precomputed
    index arrays.

    The cache is **thread-safe**: one re-entrant lock guards lookup, insert,
    eviction and the statistics counters, and the lock is held *across* plan
    construction, so N threads racing on the same pattern build exactly one
    plan (the others block and then hit).  This is what lets a single cache
    back every tenant of the serving layer (:mod:`repro.serve`).
    """

    def __init__(self, max_plans: int = 64, max_bytes: Optional[int] = None):
        if max_plans < 1:
            raise ValueError("max_plans must be at least 1")
        self.max_plans = int(max_plans)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._plans: "collections.OrderedDict[tuple, SubmatrixPlan]" = (
            collections.OrderedDict()
        )
        self._nbytes: Dict[tuple, int] = {}
        self._total_bytes = 0
        self._lock = threading.RLock()
        self._reset_counters()

    def _reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.patches = 0
        self.groups_rebuilt = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        """Drop all cached plans and reset every statistics counter.

        After ``clear()`` the cache is indistinguishable from a fresh one:
        no plans, no LRU history, and all ``stats`` counters (hits, misses,
        builds, patches, groups_rebuilt, evictions) back at zero.
        """
        with self._lock:
            self._plans.clear()
            self._nbytes.clear()
            self._total_bytes = 0
            self._reset_counters()

    @property
    def total_bytes(self) -> int:
        """Accounted bytes of all resident plans (see :func:`plan_nbytes`)."""
        with self._lock:
            return self._total_bytes

    @property
    def stats(self) -> Dict[str, int]:
        """Counter snapshot.

        ``misses`` counts lookups that had to build (``builds`` is the same
        number of constructions, of which ``patches`` were incremental);
        ``groups_rebuilt`` accumulates the group plans rebuilt by patching;
        ``evictions`` counts plans dropped by LRU overflow, the byte budget,
        or :meth:`evict_to`.  Resident bytes are exposed separately via
        :attr:`total_bytes`.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "patches": self.patches,
                "groups_rebuilt": self.groups_rebuilt,
                "evictions": self.evictions,
                "plans": len(self._plans),
            }

    def _evict_lru(self) -> None:
        key, _ = self._plans.popitem(last=False)
        self._total_bytes -= self._nbytes.pop(key, 0)
        self.evictions += 1

    def _lookup(self, key: tuple, builder) -> SubmatrixPlan:
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.misses += 1
            plan = builder()
            self.builds += 1
            self._plans[key] = plan
            size = plan_nbytes(plan)
            self._nbytes[key] = size
            self._total_bytes += size
            while len(self._plans) > self.max_plans:
                self._evict_lru()
            if self.max_bytes is not None:
                # keep at least the plan just built, even when it alone
                # exceeds the budget — evicting it would defeat the lookup
                while len(self._plans) > 1 and self._total_bytes > self.max_bytes:
                    self._evict_lru()
            return plan

    def evict_to(self, max_bytes: int) -> int:
        """Evict least-recently-used plans until ``total_bytes <= max_bytes``.

        Returns the number of plans evicted.  The serving layer's admission
        controller calls this under memory pressure; unlike the constructor
        budget it may empty the cache entirely.
        """
        evicted = 0
        with self._lock:
            while self._plans and self._total_bytes > max_bytes:
                self._evict_lru()
                evicted += 1
        return evicted

    def reuse(self, plan: SubmatrixPlan) -> SubmatrixPlan:
        """Count a reuse of an externally tracked plan as a cache hit.

        The session layer keeps per-(grouping, sizes) anchor plans so that a
        delta-keyed *patched* plan can serve later value-only steps without a
        content-keyed entry; those reuses are cache hits in every sense that
        matters for the trajectory statistics.
        """
        with self._lock:
            self.hits += 1
        return plan

    def element_plan(
        self, matrix: sp.spmatrix, column_groups: Sequence[Sequence[int]]
    ) -> ElementSubmatrixPlan:
        """Plan for a SciPy sparse matrix (built or fetched from cache)."""
        csc = _canonical_csc(matrix)
        digest = hashlib.sha1()
        digest.update(np.int64(csc.shape).tobytes())
        digest.update(np.ascontiguousarray(csc.indptr, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(csc.indices, dtype=np.int64).tobytes())
        key = ("element", digest.hexdigest(), _groups_key(column_groups))
        return self._lookup(key, lambda: ElementSubmatrixPlan(csc, column_groups))

    def block_plan(
        self,
        coo: CooBlockList,
        block_sizes: Sequence[int],
        column_groups: Sequence[Sequence[int]],
    ) -> BlockSubmatrixPlan:
        """Plan for a block pattern (built or fetched from cache)."""
        sizes = np.asarray(list(block_sizes), dtype=int)
        key = (
            "block",
            coo.fingerprint(),
            hashlib.sha1(sizes.astype(np.int64).tobytes()).hexdigest(),
            _groups_key(column_groups),
        )
        return self._lookup(key, lambda: BlockSubmatrixPlan(coo, sizes, column_groups))

    def patched_block_plan(
        self,
        old_plan: BlockSubmatrixPlan,
        new_pattern,
        delta: Optional[BlockPatternDelta] = None,
    ) -> BlockSubmatrixPlan:
        """Patched plan for a drifted pattern (built or fetched from cache).

        Keyed by the *transition* — a fingerprint of (old pattern hash, block
        delta) plus the block sizes and grouping — not by the new pattern's
        content, so a patched plan never collides with (or masquerades as)
        the full plan a content-keyed :meth:`block_plan` lookup would build
        for the same pattern.  Identical drifts from an identical source hit
        the cache.  ``delta`` lets callers that already diffed the patterns
        skip the re-diff.
        """
        new_coo = (
            new_pattern
            if isinstance(new_pattern, CooBlockList)
            else CooBlockList.from_pattern(new_pattern)
        )
        if delta is None:
            delta = old_plan.delta_to(new_coo)
        key = (
            "block-patch",
            old_plan.pattern_fingerprint(),
            delta.fingerprint(new_coo.rows, new_coo.cols),
            hashlib.sha1(
                old_plan.block_sizes.astype(np.int64).tobytes()
            ).hexdigest(),
            _groups_key(old_plan.column_groups),
        )

        def build() -> BlockSubmatrixPlan:
            plan = old_plan.patch(new_coo, delta=delta)
            self.patches += 1
            self.groups_rebuilt += plan.patch_report.groups_rebuilt
            return plan

        return self._lookup(key, build)


#: Process-wide default cache used when callers do not bring their own.
DEFAULT_PLAN_CACHE = PlanCache()


def element_plan(
    matrix: sp.spmatrix,
    column_groups: Sequence[Sequence[int]],
    cache: Optional[PlanCache] = None,
) -> ElementSubmatrixPlan:
    """Fetch (or build) the element-level plan for ``matrix``."""
    # explicit None check: an empty PlanCache is falsy (it has __len__)
    cache = DEFAULT_PLAN_CACHE if cache is None else cache
    return cache.element_plan(matrix, column_groups)


def block_plan(
    coo: CooBlockList,
    block_sizes: Sequence[int],
    column_groups: Sequence[Sequence[int]],
    cache: Optional[PlanCache] = None,
) -> BlockSubmatrixPlan:
    """Fetch (or build) the block-level plan for the pattern ``coo``."""
    cache = DEFAULT_PLAN_CACHE if cache is None else cache
    return cache.block_plan(coo, block_sizes, column_groups)


def _concat_int(pieces: List[np.ndarray]) -> np.ndarray:
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pieces).astype(np.int64, copy=False)


def _groups_key(column_groups: Sequence[Sequence[int]]) -> tuple:
    # tuple(map(tuple, ...)) runs at C speed; numpy integers hash and compare
    # equal to Python ints, so mixed-origin groups still share cache entries
    return tuple(map(tuple, column_groups))
