"""Density-matrix construction via the submatrix sign method (legacy facade).

:class:`SubmatrixDFTSolver` is the historical entry point for the paper's
application of the submatrix method — computing the one-particle reduced
density matrix from the Kohn–Sham and overlap matrices (Eq. 16), in the
grand-canonical and canonical ensembles.  Since the session API refactor it
is a thin facade over :meth:`repro.api.context.SubmatrixContext.density`
(implemented in :mod:`repro.api.density`): the constructor folds its
keyword arguments into an :class:`~repro.api.config.EngineConfig`, results
are bitwise identical to the session path, and with ``n_ranks > 1`` in the
config the eigendecomposition cache + μ-bisection run rank-sharded through
the :class:`~repro.core.runner.DistributedSubmatrixPipeline`.

Deprecated legacy kwargs (still accepted, with a :class:`DeprecationWarning`):

* ``use_plan=`` — use ``config=EngineConfig(engine=...)``; ``use_plan=False``
  maps to ``engine="naive"``, ``use_plan=True`` to ``engine="batched"``;
* bare ``backend=`` / ``max_workers=`` — use
  ``config=EngineConfig(backend=..., max_workers=...)``.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.api.config import EngineConfig
from repro.api.results import DecomposedSubmatrix, SubmatrixDFTResult
from repro.chem.hamiltonian import BlockStructure
from repro.core.combination import ColumnGrouping
from repro.core.plan import PlanCache
from repro.signfn.registry import get_kernel

__all__ = ["SubmatrixDFTSolver", "SubmatrixDFTResult"]

#: Backwards-compatible alias of the relocated eigendecomposition cache entry.
_DecomposedSubmatrix = DecomposedSubmatrix

_UNSET = object()


class SubmatrixDFTSolver:
    """Linear-scaling density-matrix solver based on the submatrix method.

    Parameters
    ----------
    eps_filter:
        Truncation threshold applied to the orthogonalized Kohn–Sham matrix
        (CP2K's ``eps_filter``); controls the sparsity and hence the
        submatrix dimensions, the runtime and the accuracy (Figs. 6/7).
    temperature:
        Electronic temperature in Kelvin; 0 uses the extended signum
        (Eq. 12), > 0 uses Fermi occupations (Sec. IV-F).
    solver:
        Per-submatrix sign kernel, resolved through the kernel registry:
        ``"eigen"`` (dense eigendecomposition, the paper's choice; its
        cached spectra are required for canonical ensembles),
        ``"newton_schulz"`` / ``"pade"`` (iterative, grand-canonical only;
        used by the solver ablation study), or any user-registered
        matrix-function sign kernel.
    grouping:
        Optional :class:`ColumnGrouping` combining block columns into larger
        submatrices (Sec. IV-C); default is one submatrix per block column.
    config:
        The :class:`~repro.api.config.EngineConfig` of the solver's session:
        engine, backend, workers, bucket padding, rank count, balancing.
        ``eps_filter``/``temperature``/``spin_degeneracy`` given as explicit
        keyword arguments override the config's fields.
    spin_degeneracy:
        2 for closed-shell systems.
    bucket_pad:
        Padding granularity of the bucketed stacks used by the *iterative*
        solvers (an integer, ``None`` for exact-dimension buckets or
        ``"auto"`` to pick from the dimension histogram).  The
        eigendecomposition path always uses exact-dimension buckets:
        Algorithm 1 reuses the cached per-submatrix eigendecompositions
        during the μ-bisection, and a padded block-diagonal embedding has a
        different spectrum bookkeeping.
    plan_cache:
        Optional private plan cache; the process-wide default cache is used
        when omitted.
    backend, max_workers, use_plan:
        **Deprecated** — configure through ``config=`` instead (see module
        docstring for the mapping).  Still honored, with a
        :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        eps_filter=_UNSET,
        temperature=_UNSET,
        solver: str = "eigen",
        grouping: Optional[ColumnGrouping] = None,
        backend=_UNSET,
        max_workers=_UNSET,
        spin_degeneracy=_UNSET,
        use_plan=_UNSET,
        bucket_pad=_UNSET,
        plan_cache: Optional[PlanCache] = None,
        config: Optional[EngineConfig] = None,
    ):
        # the single registry-backed solver-string validation (fail fast on
        # typos; solver capabilities are checked at compute time)
        get_kernel(solver)
        if config is None:
            # the legacy default was use_plan=True: plan extraction plus
            # bucketed batched decomposition
            config = EngineConfig(engine="batched")
        # only explicitly passed kwargs override the config; the sentinel
        # keeps config=EngineConfig(eps_filter=..., temperature=...) intact
        overrides = {}
        if eps_filter is not _UNSET:
            overrides["eps_filter"] = float(eps_filter)
        if temperature is not _UNSET:
            overrides["temperature"] = float(temperature)
        if spin_degeneracy is not _UNSET:
            overrides["spin_degeneracy"] = float(spin_degeneracy)
        if bucket_pad is not _UNSET:
            overrides["bucket_pad"] = bucket_pad
        if backend is not _UNSET:
            warnings.warn(
                "SubmatrixDFTSolver(backend=...) is deprecated; pass "
                "config=EngineConfig(backend=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides["backend"] = backend
        if max_workers is not _UNSET:
            warnings.warn(
                "SubmatrixDFTSolver(max_workers=...) is deprecated; pass "
                "config=EngineConfig(max_workers=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides["max_workers"] = max_workers
        if use_plan is not _UNSET:
            warnings.warn(
                "SubmatrixDFTSolver(use_plan=...) is deprecated; pass "
                "config=EngineConfig(engine='batched') (use_plan=True) or "
                "EngineConfig(engine='naive') (use_plan=False) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides["engine"] = "batched" if use_plan else "naive"
        if overrides:
            config = config.replace(**overrides)

        from repro.api.context import SubmatrixContext
        from repro.core.plan import DEFAULT_PLAN_CACHE

        self.solver = solver
        self.grouping = grouping
        # legacy contract: the process-wide default cache when none is given
        self.context = SubmatrixContext(
            config,
            plan_cache=DEFAULT_PLAN_CACHE if plan_cache is None else plan_cache,
        )

    # legacy attribute surface, now views into the session config
    @property
    def config(self) -> EngineConfig:
        return self.context.config

    @property
    def eps_filter(self) -> float:
        return self.config.eps_filter

    @property
    def temperature(self) -> float:
        return self.config.temperature

    @property
    def spin_degeneracy(self) -> float:
        return self.config.spin_degeneracy

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def max_workers(self) -> Optional[int]:
        return self.config.max_workers

    @property
    def use_plan(self) -> bool:
        return self.config.uses_plan

    @property
    def bucket_pad(self) -> Optional[Union[int, str]]:
        return self.config.bucket_pad

    @property
    def plan_cache(self) -> PlanCache:
        return self.context.plan_cache

    def close(self) -> None:
        """Shut down the private session's persistent executor (idempotent)."""
        self.context.close()

    def __enter__(self) -> "SubmatrixDFTSolver":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def compute_density(
        self,
        K: Union[np.ndarray, sp.spmatrix],
        S: Union[np.ndarray, sp.spmatrix],
        blocks: BlockStructure,
        mu: Optional[float] = None,
        n_electrons: Optional[float] = None,
        mu_tolerance: float = 1e-9,
        max_mu_iterations: int = 200,
    ) -> SubmatrixDFTResult:
        """Compute the density matrix for a given K, S and ensemble.

        Exactly one of ``mu`` (grand-canonical) and ``n_electrons``
        (canonical) must be provided.  Delegates to
        :meth:`repro.api.context.SubmatrixContext.density`; with
        ``config.n_ranks > 1`` the eigendecomposition cache is rank-sharded
        through the distributed pipeline.
        """
        return self.context.density(
            K,
            S,
            blocks,
            mu=mu,
            n_electrons=n_electrons,
            solver=self.solver,
            grouping=self.grouping,
            mu_tolerance=mu_tolerance,
            max_mu_iterations=max_mu_iterations,
        )
