"""Density-matrix construction via the submatrix sign method (Sec. IV-F/G).

This is the paper's application of the submatrix method: computing the
one-particle reduced density matrix from the Kohn–Sham and overlap matrices,

    D = 1/2 · S^{-1/2} (I − sign(S^{-1/2} K S^{-1/2} − μ I)) S^{-1/2}   (Eq. 16)

by evaluating the sign function with one dense eigendecomposition per
submatrix (Eq. 17), with the extension sign(0) = 0 (Eq. 12) and, at finite
temperature, the Fermi function instead of the Heaviside step.

Both ensembles of the paper are supported:

* **grand canonical** — the chemical potential μ is fixed and the electron
  count follows from it;
* **canonical** — the electron count is fixed and μ is adjusted by bisection.
  Because every submatrix is eigendecomposed anyway, the bisection can reuse
  the cached eigendecompositions and only has to re-apply the (shifted)
  signum to the eigenvalues (Algorithm 1 of the paper) — no sign function or
  eigendecomposition is recomputed during the search.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.chem.density import (
    SPIN_DEGENERACY,
    band_structure_energy,
    electron_count,
    fermi_occupation,
)
from repro.chem.hamiltonian import BlockStructure
from repro.chem.orthogonalize import orthogonalized_ks
from repro.core.batch import make_stack_tasks
from repro.core.combination import ColumnGrouping, single_column_groups
from repro.core.load_balance import resolve_bucket_pad
from repro.core.plan import BlockSubmatrixPlan, PlanCache, block_plan
from repro.core.submatrix import (
    Submatrix,
    extract_block_submatrix,
    scatter_block_submatrix_result,
)
from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.convert import block_matrix_from_csr, block_matrix_to_csr
from repro.dbcsr.coo import CooBlockList
from repro.parallel.executor import make_executor, map_parallel
from repro.signfn.newton_schulz import (
    sign_newton_schulz,
    sign_newton_schulz_batched,
)
from repro.signfn.pade import sign_pade

__all__ = ["SubmatrixDFTSolver", "SubmatrixDFTResult"]


@dataclasses.dataclass
class SubmatrixDFTResult:
    """Result of a submatrix-method density-matrix calculation.

    Attributes
    ----------
    density_ao:
        Density matrix in the original (non-orthogonal) AO basis, Eq. 16.
    density_ortho:
        Density matrix in the Löwdin-orthogonalized basis (sparse, with the
        sparsity pattern of the filtered orthogonalized Kohn–Sham matrix).
    mu:
        Chemical potential used (fixed for grand-canonical, bisected for
        canonical calculations).
    n_electrons:
        Electron count of the computed density matrix (Eq. 18, times the
        spin degeneracy).
    band_energy:
        Band-structure energy Tr(D K) (Eq. 10, times the spin degeneracy).
    submatrix_dimensions:
        Dense dimensions of all solved submatrices.
    mu_iterations:
        Bisection iterations spent adjusting μ (0 for grand-canonical runs).
    eps_filter:
        Filter threshold applied to the orthogonalized Kohn–Sham matrix.
    wall_time:
        Wall-clock seconds for the full computation.
    """

    density_ao: np.ndarray
    density_ortho: sp.csr_matrix
    mu: float
    n_electrons: float
    band_energy: float
    submatrix_dimensions: List[int]
    mu_iterations: int
    eps_filter: float
    wall_time: float

    @property
    def n_submatrices(self) -> int:
        return len(self.submatrix_dimensions)

    @property
    def max_submatrix_dimension(self) -> int:
        return max(self.submatrix_dimensions) if self.submatrix_dimensions else 0


@dataclasses.dataclass
class _DecomposedSubmatrix:
    """Cached eigendecomposition of one submatrix (input to Algorithm 1)."""

    submatrix: Submatrix
    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    generating_function_rows: np.ndarray  # local dense rows of the generating columns
    # Σ_rows Q²[generating rows, :] — the electron count at chemical potential
    # μ is just weights · f(λ − μ), so the whole bisection works on two flat
    # vectors instead of re-slicing the eigenvectors every iteration
    generating_weights: Optional[np.ndarray] = None

    def weights(self) -> np.ndarray:
        if self.generating_weights is None:
            q_rows = self.eigenvectors[self.generating_function_rows, :]
            self.generating_weights = np.sum(q_rows**2, axis=0)
        return self.generating_weights


class SubmatrixDFTSolver:
    """Linear-scaling density-matrix solver based on the submatrix method.

    Parameters
    ----------
    eps_filter:
        Truncation threshold applied to the orthogonalized Kohn–Sham matrix
        (CP2K's ``eps_filter``); controls the sparsity and hence the
        submatrix dimensions, the runtime and the accuracy (Figs. 6/7).
    temperature:
        Electronic temperature in Kelvin; 0 uses the extended signum
        (Eq. 12), > 0 uses Fermi occupations (Sec. IV-F).
    solver:
        Per-submatrix sign algorithm: ``"eigen"`` (dense eigendecomposition,
        the paper's choice, required for canonical ensembles),
        ``"newton_schulz"`` or ``"pade"`` (iterative, grand-canonical only;
        used by the solver ablation study).
    grouping:
        Optional :class:`ColumnGrouping` combining block columns into larger
        submatrices (Sec. IV-C); default is one submatrix per block column.
    backend, max_workers:
        Parallel execution of the per-submatrix solves.
    spin_degeneracy:
        2 for closed-shell systems.
    use_plan:
        Use the vectorized submatrix engine (:mod:`repro.core.plan`) for
        extraction/scatter and bucketed batched eigendecompositions; set to
        false for the naive reference path (same results, slower).
    bucket_pad:
        Padding granularity of the bucketed stacks used by the *iterative*
        solvers (an integer, ``None`` for exact-dimension buckets or
        ``"auto"`` to pick from the dimension histogram).  The
        eigendecomposition path always uses exact-dimension buckets:
        Algorithm 1 reuses the cached per-submatrix eigendecompositions
        during the μ-bisection, and a padded block-diagonal embedding has a
        different spectrum bookkeeping.
    plan_cache:
        Optional private plan cache; the process-wide default is used when
        omitted.
    """

    def __init__(
        self,
        eps_filter: float = 1e-5,
        temperature: float = 0.0,
        solver: str = "eigen",
        grouping: Optional[ColumnGrouping] = None,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        spin_degeneracy: float = SPIN_DEGENERACY,
        use_plan: bool = True,
        bucket_pad: Optional[Union[int, str]] = None,
        plan_cache: Optional[PlanCache] = None,
    ):
        if eps_filter < 0:
            raise ValueError("eps_filter must be non-negative")
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        if solver not in ("eigen", "newton_schulz", "pade"):
            raise ValueError("solver must be 'eigen', 'newton_schulz' or 'pade'")
        self.eps_filter = float(eps_filter)
        self.temperature = float(temperature)
        self.solver = solver
        self.grouping = grouping
        self.backend = backend
        self.max_workers = max_workers
        self.spin_degeneracy = float(spin_degeneracy)
        self.use_plan = bool(use_plan)
        self.bucket_pad = bucket_pad
        self.plan_cache = plan_cache

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def compute_density(
        self,
        K: Union[np.ndarray, sp.spmatrix],
        S: Union[np.ndarray, sp.spmatrix],
        blocks: BlockStructure,
        mu: Optional[float] = None,
        n_electrons: Optional[float] = None,
        mu_tolerance: float = 1e-9,
        max_mu_iterations: int = 200,
    ) -> SubmatrixDFTResult:
        """Compute the density matrix for a given K, S and ensemble.

        Exactly one of ``mu`` (grand-canonical) and ``n_electrons``
        (canonical) must be provided.
        """
        start = time.perf_counter()
        if (mu is None) == (n_electrons is None):
            raise ValueError("specify exactly one of mu and n_electrons")
        canonical = n_electrons is not None
        if canonical and self.solver != "eigen":
            raise ValueError(
                "canonical-ensemble calculations require the eigendecomposition "
                "solver (Algorithm 1 reuses the cached eigendecompositions)"
            )

        k_ortho, s_inv_sqrt = orthogonalized_ks(K, S, eps_filter=self.eps_filter)
        block_k = block_matrix_from_csr(
            k_ortho, blocks.block_sizes, threshold=0.0
        )
        coo = CooBlockList.from_block_matrix(block_k)
        grouping = self.grouping or single_column_groups(block_k.n_block_cols)
        grouping.validate(block_k.n_block_cols)

        # one pool for the whole computation: decomposition, any repeated
        # (μ-bisection style) evaluations and the iterative solvers all map
        # through the same executor instead of re-creating one per call
        executor = make_executor(self.backend, self.max_workers)
        try:
            if self.solver == "eigen":
                decomposed, plan = self._decompose_submatrices(
                    block_k, grouping, coo, blocks, executor=executor
                )
                mu_iterations = 0
                if canonical:
                    mu, mu_iterations = self._bisect_mu(
                        decomposed, float(n_electrons), mu_tolerance, max_mu_iterations
                    )
                assert mu is not None
                occupation_block = self._scatter_occupations(
                    block_k, decomposed, coo, float(mu), plan
                )
                dimensions = [d.submatrix.dimension for d in decomposed]
            else:
                occupation_block, dimensions = self._iterative_occupations(
                    block_k, grouping, coo, float(mu), executor=executor
                )
                mu_iterations = 0
        finally:
            if executor is not None:
                executor.shutdown()

        density_ortho = block_matrix_to_csr(occupation_block)
        density_ao = s_inv_sqrt @ density_ortho.toarray() @ s_inv_sqrt
        k_dense = K.toarray() if sp.issparse(K) else np.asarray(K, dtype=float)
        energy = band_structure_energy(density_ao, k_dense, self.spin_degeneracy)
        n_elec = electron_count(density_ortho, self.spin_degeneracy)
        wall = time.perf_counter() - start
        return SubmatrixDFTResult(
            density_ao=density_ao,
            density_ortho=density_ortho,
            mu=float(mu),
            n_electrons=n_elec,
            band_energy=energy,
            submatrix_dimensions=dimensions,
            mu_iterations=mu_iterations,
            eps_filter=self.eps_filter,
            wall_time=wall,
        )

    # ------------------------------------------------------------------ #
    # eigendecomposition path (grand-canonical and canonical)
    # ------------------------------------------------------------------ #
    def _decompose_submatrices(
        self,
        block_k: BlockSparseMatrix,
        grouping: ColumnGrouping,
        coo: CooBlockList,
        blocks: BlockStructure,
        executor=None,
    ) -> Tuple[List[_DecomposedSubmatrix], Optional[BlockSubmatrixPlan]]:
        """Extract and eigendecompose every submatrix (Eq. 17, first step).

        With ``use_plan`` the extraction runs through the cached vectorized
        plan and the eigendecompositions are evaluated one bucket (stack of
        equal-dimension submatrices) at a time.
        """
        del blocks  # block structure is already encoded in block_k
        groups = list(grouping.groups)
        if not self.use_plan:

            def decompose(group: Sequence[int]) -> _DecomposedSubmatrix:
                submatrix = extract_block_submatrix(block_k, group, coo)
                eigenvalues, eigenvectors = np.linalg.eigh(submatrix.data)
                return self._make_entry(submatrix, eigenvalues, eigenvectors)

            return (
                map_parallel(
                    decompose, groups, self.max_workers, self.backend,
                    executor=executor,
                ),
                None,
            )

        plan = block_plan(
            coo, block_k.row_block_sizes, groups, cache=self.plan_cache
        )
        packed = plan.pack(block_k)
        buckets = make_stack_tasks(plan.dimensions)

        def decompose_bucket(bucket):
            stack = plan.extract_stack(packed, bucket.members, bucket.dimension)
            eigenvalues, eigenvectors = np.linalg.eigh(stack)
            return [
                self._make_entry(
                    plan.groups[group_index].make_submatrix(),
                    eigenvalues[slot],
                    eigenvectors[slot],
                )
                for slot, group_index in enumerate(bucket.members)
            ]

        per_bucket = map_parallel(
            decompose_bucket, buckets, self.max_workers, self.backend,
            executor=executor,
        )
        entries: List[Optional[_DecomposedSubmatrix]] = [None] * len(groups)
        for bucket, bucket_entries in zip(buckets, per_bucket):
            for group_index, entry in zip(bucket.members, bucket_entries):
                entries[group_index] = entry
        return entries, plan  # type: ignore[return-value]

    @staticmethod
    def _make_entry(
        submatrix: Submatrix, eigenvalues: np.ndarray, eigenvectors: np.ndarray
    ) -> _DecomposedSubmatrix:
        offsets = np.concatenate(([0], np.cumsum(submatrix.block_sizes)))
        generating_rows: List[np.ndarray] = []
        for local_column in submatrix.local_columns:
            generating_rows.append(
                np.arange(offsets[local_column], offsets[local_column + 1])
            )
        return _DecomposedSubmatrix(
            submatrix=submatrix,
            eigenvalues=eigenvalues,
            eigenvectors=eigenvectors,
            generating_function_rows=np.concatenate(generating_rows),
        )

    def _occupations(self, eigenvalues: np.ndarray, mu: float) -> np.ndarray:
        """Occupation numbers f(λ − μ) (Heaviside with f=1/2 at μ, or Fermi)."""
        return fermi_occupation(eigenvalues, mu, self.temperature)

    def _bisect_mu(
        self,
        decomposed: Sequence[_DecomposedSubmatrix],
        n_electrons: float,
        tolerance: float,
        max_iterations: int,
    ) -> Tuple[float, int]:
        """Adjust μ by bisection on the cached eigendecompositions (Alg. 1).

        Implements Algorithm 1: only the rows of Q that correspond to the
        generating block columns contribute (only those columns enter the
        sparse result), and the contribution of one submatrix reduces to
        ``weights · f(λ − μ)``.  The eigenvalues and weights of all
        submatrices are concatenated once, so every bisection step is a
        single vectorized occupation evaluation plus a dot product.
        """
        all_eigenvalues = np.concatenate([d.eigenvalues for d in decomposed])
        all_weights = np.concatenate([d.weights() for d in decomposed])
        lo = float(all_eigenvalues.min()) - 1.0
        hi = float(all_eigenvalues.max()) + 1.0
        iterations = 0
        mu = 0.5 * (lo + hi)
        for iterations in range(1, max_iterations + 1):
            mu = 0.5 * (lo + hi)
            occupations = self._occupations(all_eigenvalues, mu)
            count = self.spin_degeneracy * float(np.dot(all_weights, occupations))
            error = count - n_electrons
            if abs(error) <= tolerance:
                break
            if error < 0:
                lo = mu
            else:
                hi = mu
        return mu, iterations

    def _scatter_occupations(
        self,
        block_k: BlockSparseMatrix,
        decomposed: Sequence[_DecomposedSubmatrix],
        coo: CooBlockList,
        mu: float,
        plan: Optional[BlockSubmatrixPlan] = None,
    ) -> BlockSparseMatrix:
        """Form f(a − μ) per submatrix and scatter the generating columns.

        With a plan, the scatter is one vectorized write per submatrix into a
        preallocated packed output buffer and the result blocks are zero-copy
        views into that buffer.
        """
        if plan is not None:
            out = plan.new_output()
            for group_index, entry in enumerate(decomposed):
                occupations = self._occupations(entry.eigenvalues, mu)
                occupation_matrix = (
                    entry.eigenvectors * occupations
                ) @ entry.eigenvectors.T
                plan.scatter(out, group_index, occupation_matrix)
            return plan.finalize(out)
        result = BlockSparseMatrix(block_k.row_block_sizes, block_k.col_block_sizes)
        for entry in decomposed:
            occupations = self._occupations(entry.eigenvalues, mu)
            occupation_matrix = (
                entry.eigenvectors * occupations
            ) @ entry.eigenvectors.T
            scatter_block_submatrix_result(
                result, occupation_matrix, entry.submatrix, coo
            )
        return result

    # ------------------------------------------------------------------ #
    # iterative path (grand-canonical only, used for the solver ablation)
    # ------------------------------------------------------------------ #
    def _iterative_occupations(
        self,
        block_k: BlockSparseMatrix,
        grouping: ColumnGrouping,
        coo: CooBlockList,
        mu: float,
        executor=None,
    ) -> Tuple[BlockSparseMatrix, List[int]]:
        """Occupation matrices via Newton–Schulz / Padé sign iterations.

        With ``use_plan``, extraction and scatter run through the cached plan
        and the Newton–Schulz solver iterates whole equal-or-padded-dimension
        buckets at once
        (:func:`repro.signfn.newton_schulz.sign_newton_schulz_batched`).
        Bucket padding embeds a small submatrix block-diagonally with
        ``1 + μ`` on the padding diagonal, so after the μ-shift the padding
        eigenvalues sit at exactly 1 (well inside the sign iteration's
        convergence region) and the padded rows never reach the scatter.
        """
        groups = list(grouping.groups)
        if not self.use_plan:

            def solve(group: Sequence[int]):
                submatrix = extract_block_submatrix(block_k, group, coo)
                shifted = submatrix.data - mu * np.eye(submatrix.dimension)
                if self.solver == "newton_schulz":
                    sign = sign_newton_schulz(shifted).sign
                else:
                    sign = sign_pade(shifted, order=3).sign
                occupation = 0.5 * (np.eye(submatrix.dimension) - sign)
                return submatrix, occupation

            solved = map_parallel(
                solve, groups, self.max_workers, self.backend, executor=executor
            )
            result = BlockSparseMatrix(
                block_k.row_block_sizes, block_k.col_block_sizes
            )
            dimensions = []
            for submatrix, occupation in solved:
                dimensions.append(submatrix.dimension)
                scatter_block_submatrix_result(result, occupation, submatrix, coo)
            return result, dimensions

        plan = block_plan(
            coo, block_k.row_block_sizes, groups, cache=self.plan_cache
        )
        packed = plan.pack(block_k)
        dimensions = plan.dimensions
        pad = resolve_bucket_pad(self.bucket_pad, dimensions)
        buckets = make_stack_tasks(dimensions, pad_to=pad)

        def solve_bucket(bucket):
            dim = bucket.dimension
            identity = np.eye(dim)
            stack = plan.extract_stack(
                packed, bucket.members, dim, pad_value=1.0 + mu
            )
            stack -= mu * identity
            if self.solver == "newton_schulz":
                signs = sign_newton_schulz_batched(stack).sign
            else:
                signs = np.stack(
                    [sign_pade(stack[slot], order=3).sign for slot in range(len(bucket.members))]
                )
            return 0.5 * (identity - signs)

        per_bucket = map_parallel(
            solve_bucket, buckets, self.max_workers, self.backend,
            executor=executor,
        )
        out = plan.new_output()
        for bucket, occupations in zip(buckets, per_bucket):
            plan.scatter_stack(out, bucket.members, occupations, bucket.dimension)
        return plan.finalize(out), list(dimensions)
