"""The distributed submatrix pipeline and run cost models.

The paper's scaling experiments (Figs. 6, 8, 9, 10) ran on 40–1280 cores.
This reproduction executes the numerics inside one process, but models the
*work and traffic distribution across ranks* — which is what determines the
scaling behaviour — exactly, from the block-sparsity pattern.

Since this refactor the distributed layer executes *through* the vectorized
plan engine instead of beside it:

* :class:`DistributedSubmatrixPipeline` splits the extraction plan across
  simulated ranks (:class:`~repro.core.shard.ShardedPlan`), plans the
  packed-segment initialization exchange
  (:func:`~repro.core.transfers.plan_transfers`), and per rank runs shard
  extraction → bucketed batch evaluation (:mod:`repro.core.batch`) →
  zero-copy scatter into the shared output, one
  :func:`~repro.parallel.executor.map_parallel` task per rank.  Results are
  bitwise identical to the single-process ``engine="batched"`` path for any
  rank count (scatter ranges are disjoint across ranks and every submatrix
  sees the same dense values).
* :func:`submatrix_method_cost` is a thin wrapper over that pipeline: it
  builds the same assignment, transfer plan and
  :class:`~repro.parallel.stats.TrafficLog` the execution path uses and
  feeds them to the machine model — no separate standalone cost formula.
* for the **Newton–Schulz baseline**, :func:`newton_schulz_cost` keeps the
  analytic model: every iteration performs two sparse block multiplications
  whose FLOPs follow from the (filtered) block pattern and whose traffic
  follows from libDBCSR's Cannon algorithm (each rank ships its panels √P
  times per multiplication).

The machine model (:class:`repro.parallel.machine.MachineModel`) converts
both into simulated wall-clock times.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.api.config import (
    BALANCE_STRATEGIES,
    EIGENSOLVE_FLOP_CONSTANT,
    EngineConfig,
    ResiliencePolicy,
)
from repro.core.batch import (
    MAX_BATCH_ELEMENTS,
    count_stack_tasks,
    evaluate_batched,
    make_stack_tasks,
)
from repro.core.combination import ColumnGrouping, single_column_groups
from repro.core.load_balance import (
    assign_balanced_stacks,
    assign_consecutive_chunks,
    pad_dimensions,
    resolve_bucket_pad,
    submatrix_flop_costs,
)
from repro.core.overlap import OverlappedExchange, OverlapReport, RankOverlapReport
from repro.core.plan import BlockSubmatrixPlan, PlanCache, block_plan
from repro.core.shard import ShardedPlan
from repro.core.transfers import (
    TransferDelta,
    TransferPlan,
    patch_transfer_plan,
    plan_transfers,
)
from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.coo import CooBlockList
from repro.dbcsr.distribution import BlockDistribution, ProcessGrid2D
from repro.parallel.executor import executor_backend, map_parallel
from repro.parallel.machine import MachineModel, PAPER_MACHINE, SimulatedTime
from repro.parallel.stats import TrafficLog
from repro.parallel.topology import balanced_dims
from repro.signfn.registry import resolve_kernel

__all__ = [
    "DistributedSubmatrixPipeline",
    "PipelineRankReport",
    "PipelineResult",
    "PipelineExecutionError",
    "ResilienceReport",
    "SubmatrixRunCost",
    "submatrix_method_cost",
    "newton_schulz_cost",
    "estimate_newton_schulz_iterations",
    "EIGENSOLVE_FLOP_CONSTANT",
    "BALANCE_STRATEGIES",
]

# EIGENSOLVE_FLOP_CONSTANT and BALANCE_STRATEGIES moved to
# repro.api.config (the shared configuration layer); re-exported here for
# backwards compatibility.

PatternLike = Union[sp.spmatrix, CooBlockList]


@dataclasses.dataclass
class SubmatrixRunCost:
    """Cost summary of one simulated distributed run."""

    method: str
    n_ranks: int
    traffic: TrafficLog
    simulated: SimulatedTime
    total_flops: float
    total_comm_bytes: float
    details: Dict[str, float]

    @property
    def simulated_seconds(self) -> float:
        """Total simulated wall-clock time."""
        return self.simulated.total


@dataclasses.dataclass
class PipelineRankReport:
    """Per-rank summary of one pipeline execution."""

    rank: int
    n_submatrices: int
    n_stacks: int
    flops: float
    segment_fetch_bytes: float
    block_fetch_bytes: float
    writeback_bytes: float


@dataclasses.dataclass
class ResilienceReport:
    """What the resilience machinery did during one pipeline execution.

    Attributes
    ----------
    rank_retries:
        Rank tasks re-executed after a failure (summed over retry rounds).
    kernel_retries:
        Submatrices whose iterative sign solve was restarted with an
        escalated iteration budget after failing convergence.
    kernel_fallbacks:
        Submatrices ultimately evaluated by the policy's fallback kernel.
    reassigned_stacks:
        Bucketed stack tasks of failed ranks' shards shipped to surviving
        ranks for re-execution (0 when ``rank_rebalance`` is off or no
        survivor existed).
    degraded:
        Whether the run fell back to the single-process batched engine
        after exhausting the rank retries.
    reassignments:
        ``(retry_round, failed_rank, executing_rank)`` triples; the
        executing rank equals the failed rank when rebalancing was off or
        every rank had failed.
    failures:
        Human-readable reprs of the errors that triggered recovery.
    """

    rank_retries: int = 0
    kernel_retries: int = 0
    kernel_fallbacks: int = 0
    reassigned_stacks: int = 0
    degraded: bool = False
    reassignments: List[tuple] = dataclasses.field(default_factory=list)
    failures: List[str] = dataclasses.field(default_factory=list)

    @property
    def retries(self) -> int:
        """Total recovery retries (rank re-executions + kernel restarts)."""
        return self.rank_retries + self.kernel_retries

    @property
    def clean(self) -> bool:
        """Whether the execution needed no recovery at all."""
        return (
            self.rank_retries == 0
            and self.kernel_retries == 0
            and self.kernel_fallbacks == 0
            and not self.degraded
        )


class PipelineExecutionError(RuntimeError):
    """Rank tasks kept failing after every configured retry round.

    Raised by :meth:`DistributedSubmatrixPipeline.execute_ranks` when an
    active :class:`~repro.api.config.ResiliencePolicy` exhausts its
    ``max_rank_retries`` (or its ``stage_timeout``); callers with
    ``degrade_to_batched`` catch it and fall back to the single-process
    batched engine.  ``failures`` maps the failed rank indices to their
    last exceptions; the first of them is chained as ``__cause__``.
    """

    def __init__(self, failures: Dict[int, BaseException], attempts: int):
        self.failures = dict(failures)
        self.attempts = int(attempts)
        ranks = ", ".join(str(rank) for rank in sorted(self.failures))
        first = self.failures[min(self.failures)] if self.failures else None
        detail = f": {first!r}" if first is not None else ""
        super().__init__(
            f"rank tasks {{{ranks}}} failed after {attempts} attempt(s){detail}"
        )


@dataclasses.dataclass
class PipelineResult:
    """Result of one :class:`DistributedSubmatrixPipeline` execution."""

    result: BlockSparseMatrix
    traffic: TrafficLog
    transfer_plan: TransferPlan
    per_rank: List[PipelineRankReport]
    rank_of_group: np.ndarray
    submatrix_dimensions: List[int]
    wall_time: float
    resilience: Optional[ResilienceReport] = None
    overlap: Optional[OverlapReport] = None

    @property
    def n_ranks(self) -> int:
        return len(self.per_rank)

    @property
    def total_segment_fetch_bytes(self) -> float:
        return float(sum(r.segment_fetch_bytes for r in self.per_rank))

    @property
    def total_block_fetch_bytes(self) -> float:
        return float(sum(r.block_fetch_bytes for r in self.per_rank))


def _as_coo(pattern: PatternLike) -> CooBlockList:
    if isinstance(pattern, CooBlockList):
        return pattern
    return CooBlockList.from_pattern(pattern)


class DistributedSubmatrixPipeline:
    """Rank-sharded execution of the submatrix method through the plan engine.

    The pipeline fixes, once per (pattern, grouping, rank count):

    1. the submatrix→rank assignment (``balance=`` strategy),
    2. the sharded extraction plan — per rank, the gather/scatter arrays of
       its own groups re-based onto a rank-local packed buffer,
    3. the transfer plan of the initialization exchange, reporting both
       whole-block and packed-segment volumes.

    :meth:`run` then evaluates a matrix function on actual values (bitwise
    identical to the single-process batched engine), while
    :meth:`traffic_log` / :meth:`cost` expose the same execution's work and
    traffic distribution to the machine model without running numerics —
    which is all :func:`submatrix_method_cost` does.

    Parameters
    ----------
    pattern:
        Block-sparsity pattern (SciPy pattern matrix or COO block list).
    block_sizes:
        Basis functions per block column.
    n_ranks:
        Number of simulated ranks.
    grouping:
        Block-column grouping (default: one submatrix per block column).
    distribution:
        Block ownership; defaults to a round-robin distribution over a
        near-square process grid, like DBCSR's default.
    balance:
        ``"chunks"`` (default) — the paper's greedy consecutive chunks over
        c·n³ costs (Sec. IV-E, maximises block reuse);
        ``"stacks"`` — bucket-aware: groups are bucketed by (padded)
        dimension exactly as the batched evaluator will execute them and
        whole stacks are balanced over ranks with an LPT heuristic;
        ``"round_robin"`` — equal counts, the ablation baseline.
    bucket_pad:
        Padding granularity of the batched evaluator: an integer, ``None``
        (exact-dimension buckets, keeps results bitwise identical) or
        ``"auto"`` (chosen from the dimension histogram via
        :func:`repro.core.load_balance.choose_bucket_pad`).
    flop_constant:
        Cost of the per-submatrix solve as a multiple of n³.
    plan_cache:
        Optional private plan cache for the extraction plan.
    exact_transfers:
        ``True`` (default) builds the sharded plan eagerly and plans
        per-submatrix deduplicated transfers including packed-segment
        volumes.  ``False`` defers the sharded plan until :meth:`run` and
        uses the fast pattern-level transfer planning — preferred for very
        large cost sweeps.
    bytes_per_element:
        Storage size of a matrix element (8 for float64).
    """

    def __init__(
        self,
        pattern: PatternLike,
        block_sizes: Sequence[int],
        n_ranks: int,
        grouping: Optional[ColumnGrouping] = None,
        distribution: Optional[BlockDistribution] = None,
        balance: str = "chunks",
        bucket_pad: Optional[Union[int, str]] = None,
        flop_constant: float = EIGENSOLVE_FLOP_CONSTANT,
        plan_cache: Optional[PlanCache] = None,
        exact_transfers: bool = True,
        bytes_per_element: int = 8,
    ):
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        if balance not in BALANCE_STRATEGIES:
            raise ValueError(f"balance must be one of {BALANCE_STRATEGIES}")
        self.coo = _as_coo(pattern)
        self.block_sizes = np.asarray(list(block_sizes), dtype=int)
        self.n_ranks = int(n_ranks)
        n_blocks = self.coo.n_block_cols
        self.grouping = grouping or single_column_groups(n_blocks)
        if distribution is None:
            grid = ProcessGrid2D(n_ranks, balanced_dims(n_ranks))
            distribution = BlockDistribution(n_blocks, n_blocks, grid)
        if distribution.n_ranks != self.n_ranks:
            raise ValueError("distribution rank count does not match n_ranks")
        self.distribution = distribution
        self.balance = balance
        self.flop_constant = float(flop_constant)
        self.plan_cache = plan_cache
        self.bytes_per_element = int(bytes_per_element)

        self.dimensions = self.grouping.submatrix_dimensions(
            self.coo, self.block_sizes
        )
        self.bucket_pad = resolve_bucket_pad(bucket_pad, self.dimensions)
        self.costs = submatrix_flop_costs(self.dimensions, self.flop_constant)
        self.rank_of_group = self._assign_ranks()
        self.rank_flops = np.zeros(self.n_ranks)
        np.add.at(self.rank_flops, self.rank_of_group, self._executed_costs())

        self.plan: Optional[BlockSubmatrixPlan] = None
        self.sharded: Optional[ShardedPlan] = None
        self._exact_transfers = bool(exact_transfers)
        # filled by patch() (incremental exchange diff) and by overlapped
        # run()/run_stacks() (modeled overlap accounting) respectively
        self.transfer_delta: Optional[TransferDelta] = None
        self.last_overlap: Optional[OverlapReport] = None
        # chunk schedules are pure functions of (shards, bucket layout),
        # so engines are cached per layout and reset per execution
        self._overlap_engines: Dict[tuple, OverlappedExchange] = {}
        # Cost-model side planning needs no extraction plan: with exact
        # per-group planning, the required-block sets *are* the shard's
        # segment index (a shard references exactly the blocks of its
        # submatrices' retained sub-patterns), so the packed-segment volumes
        # come for free.  The extraction plan and shards are built lazily on
        # the first run().
        self.transfer_plan: TransferPlan = plan_transfers(
            self.coo,
            self.block_sizes,
            self.distribution,
            self.grouping,
            self.rank_of_group,
            bytes_per_element=self.bytes_per_element,
            per_group_dedup=self._exact_transfers,
            segment_index="required" if self._exact_transfers else None,
        )

    @classmethod
    def from_config(
        cls,
        pattern: PatternLike,
        block_sizes: Sequence[int],
        config: EngineConfig,
        n_ranks: Optional[int] = None,
        grouping: Optional[ColumnGrouping] = None,
        distribution: Optional[BlockDistribution] = None,
        plan_cache: Optional[PlanCache] = None,
        **overrides,
    ) -> "DistributedSubmatrixPipeline":
        """Build a pipeline from an :class:`~repro.api.config.EngineConfig`.

        ``balance``, ``bucket_pad``, ``flop_constant`` and
        ``exact_transfers`` come from the config; ``**overrides`` replace
        individual constructor arguments.
        """
        kwargs = dict(
            grouping=grouping,
            distribution=distribution,
            balance=config.balance,
            bucket_pad=config.bucket_pad,
            flop_constant=config.flop_constant,
            plan_cache=plan_cache,
            exact_transfers=config.exact_transfers,
        )
        kwargs.update(overrides)
        return cls(
            pattern,
            block_sizes,
            config.n_ranks if n_ranks is None else int(n_ranks),
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def _assign_ranks(self) -> np.ndarray:
        n_groups = self.grouping.n_submatrices
        rank_of_group = np.zeros(n_groups, dtype=int)
        if self.balance == "chunks":
            for rank, (start, stop) in enumerate(
                assign_consecutive_chunks(self.costs, self.n_ranks)
            ):
                rank_of_group[start:stop] = rank
        elif self.balance == "round_robin":
            rank_of_group[:] = np.arange(n_groups) % self.n_ranks
        else:  # "stacks": balance whole padded-dimension stacks (LPT)
            padded = pad_dimensions(self.dimensions, self.bucket_pad)
            # split large buckets into enough indivisible stack tasks that
            # the LPT heuristic has room to balance (~4 stacks per rank),
            # while never splitting below one full stack slot
            total_elements = int(np.sum(padded.astype(np.int64) ** 2))
            cap = max(
                int(padded.max()) ** 2 if padded.size else 1,
                total_elements // max(1, 4 * self.n_ranks),
            )
            stacks = make_stack_tasks(
                self.dimensions, pad_to=self.bucket_pad, max_batch_elements=cap
            )
            stack_costs = [
                self.flop_constant * len(stack.members) * float(stack.dimension) ** 3
                for stack in stacks
            ]
            for rank, stack_ids in enumerate(
                assign_balanced_stacks(stack_costs, self.n_ranks)
            ):
                for stack_id in stack_ids:
                    rank_of_group[stacks[stack_id].members] = rank
        return rank_of_group

    def _executed_costs(self) -> np.ndarray:
        """Per-group FLOPs the batched evaluator will actually execute.

        With bucket padding a group of dimension d runs inside a stack of
        dimension pad(d) ≥ d, so the executed (and balanced, and logged)
        cost is c·pad(d)³ rather than c·d³.
        """
        if self.bucket_pad is None:
            return self.costs
        return submatrix_flop_costs(
            pad_dimensions(self.dimensions, self.bucket_pad), self.flop_constant
        )

    def patch(
        self,
        pattern: PatternLike,
        plan_cache: Optional[PlanCache] = None,
        delta=None,
    ) -> "DistributedSubmatrixPipeline":
        """Pipeline for a drifted pattern, by incremental replanning.

        Patches the extraction plan (rebuilding only the dirty groups, via
        the plan cache's delta-keyed lookup when a cache is available),
        patches the sharded plan (clean ranks keep their local buffer
        layouts, bucket layouts and stacked index caches), re-buckets only
        the dirty ranks' stacks, and replans the initialization exchange on
        the patched shards' segment requirements.

        The group→rank assignment and the resolved bucket padding are
        carried over from this pipeline (a full rebuild may balance
        differently, which redistributes work and traffic but never changes
        results — scatter ranges stay disjoint and every submatrix sees the
        same dense values).  Execution results are bitwise identical to a
        freshly built pipeline for the new pattern.
        """
        new_coo = _as_coo(pattern)
        self._ensure_execution()
        assert self.plan is not None and self.sharded is not None
        cache = self.plan_cache if plan_cache is None else plan_cache
        if cache is not None:
            new_plan = cache.patched_block_plan(self.plan, new_coo, delta=delta)
        else:
            new_plan = self.plan.patch(new_coo, delta=delta)
        patched = object.__new__(DistributedSubmatrixPipeline)
        patched.coo = new_coo
        patched.block_sizes = self.block_sizes
        patched.n_ranks = self.n_ranks
        patched.grouping = self.grouping
        patched.distribution = self.distribution
        patched.balance = self.balance
        patched.flop_constant = self.flop_constant
        patched.plan_cache = cache
        patched.bytes_per_element = self.bytes_per_element
        patched.dimensions = [int(group.dimension) for group in new_plan.groups]
        patched.bucket_pad = self.bucket_pad
        patched.costs = submatrix_flop_costs(
            patched.dimensions, patched.flop_constant
        )
        patched.rank_of_group = self.rank_of_group
        patched.rank_flops = np.zeros(patched.n_ranks)
        np.add.at(
            patched.rank_flops, patched.rank_of_group, patched._executed_costs()
        )
        patched.plan = new_plan
        report = new_plan.patch_report
        patched._exact_transfers = self._exact_transfers
        patched.transfer_delta = None
        patched.last_overlap = None
        # engines are bound to this pipeline's shards; the patched shards
        # need their own schedules
        patched._overlap_engines = {}
        if report is not None and report.source is self.plan:
            patched.sharded = self.sharded.patch(new_plan)
            # incremental exchange replan: only the ranks owning a dirty
            # group re-run the per-group planning walk; every clean rank's
            # summary is carried over with remapped block IDs, and the
            # delta records the newly required segments each rank would
            # actually have to fetch on top of its buffered blocks
            dirty_ranks = {
                int(patched.rank_of_group[group])
                for group in report.dirty_groups
            }
            patched.transfer_plan, patched.transfer_delta = patch_transfer_plan(
                self.transfer_plan,
                new_coo,
                patched.block_sizes,
                patched.distribution,
                patched.grouping,
                patched.rank_of_group,
                dirty_ranks,
                report.new_id_of_old,
                bytes_per_element=patched.bytes_per_element,
                per_group_dedup=patched._exact_transfers,
                segment_index=patched.sharded.required_segments_per_rank(),
            )
        else:
            # a delta-keyed cache hit may return a plan patched from an
            # equal-content but distinct plan object; the shard layouts
            # cannot be carried over, so rebuild them for the new plan
            patched.sharded = ShardedPlan(
                new_plan, patched.rank_of_group, patched.n_ranks
            )
            patched.transfer_plan = plan_transfers(
                new_coo,
                patched.block_sizes,
                patched.distribution,
                patched.grouping,
                patched.rank_of_group,
                bytes_per_element=patched.bytes_per_element,
                per_group_dedup=patched._exact_transfers,
                segment_index=patched.sharded.required_segments_per_rank(),
            )
        return patched

    def overlap_engine(
        self,
        machine: Optional[MachineModel] = None,
        pad_to: Optional[int] = None,
        max_batch_elements: int = MAX_BATCH_ELEMENTS,
        fault_injector=None,
    ) -> OverlappedExchange:
        """Cached arrival-driven engine for the given bucket layout.

        Building an engine walks every bucket's gather arrays to assign
        segments to their first referencing bucket, which is far too
        expensive to repeat per execution (a canonical density bisects μ
        over many ``run_stacks`` calls, a trajectory runs one pipeline per
        step).  Schedules depend only on the shards and the bucket layout,
        so one engine per ``(machine, pad_to, max_batch_elements)`` is
        cached and merely :meth:`~repro.core.overlap.OverlappedExchange.
        reset` per execution.
        """
        self._ensure_execution()
        resolved = machine if machine is not None else PAPER_MACHINE
        key = (resolved, pad_to, int(max_batch_elements))
        engine = self._overlap_engines.get(key)
        if engine is None:
            engine = OverlappedExchange(
                self.sharded,
                self.coo,
                self.distribution,
                resolved,
                pad_to=pad_to,
                max_batch_elements=max_batch_elements,
                flop_constant=self.flop_constant,
                bytes_per_element=self.bytes_per_element,
                fault_injector=fault_injector,
            )
            self._overlap_engines[key] = engine
        engine.reset(fault_injector)
        return engine

    def prepare(self):
        """Build (or fetch) the extraction plan and sharded plan eagerly.

        Returns ``(plan, sharded)``.  Used by the session API's rank-sharded
        density driver, which needs the shards to build the per-rank
        eigendecomposition cache without running a matrix function.
        """
        self._ensure_execution()
        assert self.plan is not None and self.sharded is not None
        return self.plan, self.sharded

    def _ensure_execution(self) -> None:
        """Build the extraction plan and shards lazily (first run() only)."""
        if self.sharded is not None:
            return
        self.plan = block_plan(
            self.coo,
            self.block_sizes,
            self.grouping.groups,
            cache=self.plan_cache,
        )
        self.sharded = ShardedPlan(self.plan, self.rank_of_group, self.n_ranks)
        # in fast-transfer mode, replace the pattern-level segment
        # approximation (none) with the volumes measured on the actual shard
        # gather arrays; exact mode already has the identical index and
        # skips the second (expensive) planning pass
        if not self.transfer_plan.has_segments:
            self.transfer_plan = plan_transfers(
                self.coo,
                self.block_sizes,
                self.distribution,
                self.grouping,
                self.rank_of_group,
                bytes_per_element=self.bytes_per_element,
                per_group_dedup=self._exact_transfers,
                segment_index=self.sharded.required_segments_per_rank(),
            )

    # ------------------------------------------------------------------ #
    # cost-model side
    # ------------------------------------------------------------------ #
    def traffic_log(
        self, include_coo_allgather: bool = True, use_segments: Optional[bool] = None
    ) -> TrafficLog:
        """Work and traffic of one pipeline execution, per rank.

        The initialization exchange is charged at packed-segment granularity
        whenever segment volumes are available (``use_segments=None``), and
        every rank's assigned submatrix solves are charged as dense FLOPs.
        """
        if use_segments is None:
            use_segments = self.transfer_plan.has_segments
        log = self.transfer_plan.to_traffic_log(
            include_coo_allgather=include_coo_allgather,
            coo_length=len(self.coo),
            use_segments=use_segments,
        )
        for rank in range(self.n_ranks):
            log.record_flops(rank, float(self.rank_flops[rank]), sparse=False)
        return log

    def cost(
        self, machine: MachineModel, cores_per_rank: int = 1
    ) -> SubmatrixRunCost:
        """Simulated run cost of this pipeline on ``machine``."""
        log = self.traffic_log()
        simulated = machine.simulate(log, cores_per_rank=cores_per_rank)
        plan = self.transfer_plan
        dimensions = self.dimensions
        details: Dict[str, float] = {
            "n_submatrices": float(self.grouping.n_submatrices),
            "max_submatrix_dimension": float(max(dimensions) if dimensions else 0),
            "mean_submatrix_dimension": float(
                np.mean(dimensions) if dimensions else 0
            ),
            "dedup_savings": plan.deduplication_savings,
            "fetch_bytes": plan.total_fetch_bytes,
            "writeback_bytes": plan.total_writeback_bytes,
            "flop_imbalance": log.flop_imbalance(),
        }
        if plan.has_segments:
            details["segment_fetch_bytes"] = float(plan.total_segment_fetch_bytes)
            details["segment_savings"] = plan.segment_savings
        if self.bucket_pad is not None:
            details["bucket_pad"] = float(self.bucket_pad)
        return SubmatrixRunCost(
            method="submatrix",
            n_ranks=self.n_ranks,
            traffic=log,
            simulated=simulated,
            total_flops=log.total_flops(),
            total_comm_bytes=log.total_bytes_sent(),
            details=details,
        )

    # ------------------------------------------------------------------ #
    # execution side
    # ------------------------------------------------------------------ #
    def _shard_stack_count(self, rank: int, max_batch_elements: int) -> int:
        """Bucketed stack tasks of one rank's shard (for the reassignment
        bookkeeping); falls back to the group count before shards exist."""
        if self.sharded is None:
            return int(np.count_nonzero(self.rank_of_group == rank))
        return count_stack_tasks(
            self.sharded.shards[rank].dimensions,
            pad_to=self.bucket_pad,
            max_batch_elements=max_batch_elements,
        )

    def execute_ranks(
        self,
        run_rank: Callable[[int], object],
        max_workers: Optional[int] = None,
        backend: str = "serial",
        executor=None,
        policy: Optional[ResiliencePolicy] = None,
        report: Optional[ResilienceReport] = None,
        max_batch_elements: int = MAX_BATCH_ELEMENTS,
    ) -> List[object]:
        """Run ``run_rank`` once per rank, with retry/rebalance on failure.

        The fault-tolerant core shared by :meth:`run`, :meth:`run_stacks`
        and the session's sharded eigendecomposition cache.  Without an
        *active* policy this is exactly one :func:`map_parallel` over the
        ranks — the unguarded pre-resilience path, with zero overhead and
        unchanged exception behaviour.

        With an active policy every rank task is guarded (and, when the
        policy carries a fault injector, its ``"rank"`` site is consulted
        first).  Failed ranks are retried for up to
        ``policy.max_rank_retries`` rounds — within ``stage_timeout`` and
        after the exponential ``backoff_base`` sleep — by re-executing the
        *same* rank closure: scatter ranges are disjoint across ranks and
        idempotent per rank, so a re-execution writes exactly the bytes
        the failed attempt would have written and the recovered result is
        bitwise identical to a fault-free run.  With ``rank_rebalance``
        the failed shards are assigned to surviving ranks via the LPT
        load-balance heuristic
        (:func:`~repro.core.load_balance.assign_balanced_stacks` over the
        shards' executed FLOPs) and the shipped stack tasks are recorded
        on the ``report``.  Ranks that still fail raise
        :class:`PipelineExecutionError` for the caller's degradation
        logic.
        """
        ranks = list(range(self.n_ranks))
        if policy is None or not policy.active:
            return map_parallel(
                run_rank, ranks, max_workers, backend, executor=executor
            )
        injector = policy.fault_injector

        def guarded(rank: int):
            try:
                if injector is not None:
                    injector.maybe_crash("rank", rank)
                return run_rank(rank), None
            except Exception as error:
                return None, error

        outcomes = map_parallel(
            guarded, ranks, max_workers, backend, executor=executor
        )
        results: List[object] = [result for result, _ in outcomes]
        failures: Dict[int, BaseException] = {
            rank: error
            for rank, (_, error) in zip(ranks, outcomes)
            if error is not None
        }
        if not failures:
            return results
        if report is not None:
            report.failures.extend(
                repr(failures[rank]) for rank in sorted(failures)
            )
        deadline = None
        if policy.stage_timeout is not None:
            deadline = time.monotonic() + float(policy.stage_timeout)
        attempt = 0
        while failures and attempt < policy.max_rank_retries:
            if deadline is not None and time.monotonic() > deadline:
                break
            attempt += 1
            if policy.backoff_base > 0.0:
                time.sleep(policy.backoff_base * 2.0 ** (attempt - 1))
            failed = sorted(failures)
            survivors = [rank for rank in ranks if rank not in failures]
            if report is not None:
                report.rank_retries += len(failed)
                if policy.rank_rebalance and survivors:
                    # reassign the failed shards to survivors with the same
                    # LPT machinery that balances whole stacks across ranks
                    shares = assign_balanced_stacks(
                        [float(self.rank_flops[rank]) for rank in failed],
                        len(survivors),
                    )
                    for slot, indices in enumerate(shares):
                        for failed_index in indices:
                            report.reassignments.append(
                                (attempt, failed[failed_index], survivors[slot])
                            )
                            report.reassigned_stacks += self._shard_stack_count(
                                failed[failed_index], max_batch_elements
                            )
                else:
                    report.reassignments.extend(
                        (attempt, rank, rank) for rank in failed
                    )
            retried = map_parallel(
                guarded, failed, max_workers, backend, executor=executor
            )
            for rank, (result, error) in zip(failed, retried):
                if error is None:
                    results[rank] = result
                    del failures[rank]
                else:
                    failures[rank] = error
                    if report is not None:
                        report.failures.append(repr(error))
        if failures:
            raise PipelineExecutionError(failures, attempts=attempt + 1)
        return results

    def run(
        self,
        matrix: BlockSparseMatrix,
        function=None,
        batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        pad_value: float = 1.0,
        max_workers: Optional[int] = None,
        backend: str = "serial",
        executor=None,
        max_batch_elements: int = MAX_BATCH_ELEMENTS,
        policy: Optional[ResiliencePolicy] = None,
        overlap: bool = False,
        machine: Optional[MachineModel] = None,
        **kernel_params,
    ) -> PipelineResult:
        """Evaluate f on every submatrix through the sharded pipeline.

        ``function`` may be a callable or a registered kernel name
        (``"eigen"``, ``"newton_schulz"``, …; ``**kernel_params`` such as
        ``mu=`` are forwarded to the kernel factory, which also supplies the
        batched variant unless ``batch_function`` overrides it).

        Per rank: gather the rank-local packed buffer (the modelled
        initialization fetch), run the bucketed batch evaluator on the
        rank's shard, and scatter every evaluated stack straight into the
        shared packed output (disjoint across ranks — the zero-copy
        write-back).  One ``map_parallel`` task per rank; pass a pre-built
        ``executor`` to reuse one pool across repeated evaluations (e.g.
        μ-bisection iterations).

        Ranks scatter into shared process memory, so only the serial and
        thread backends are supported (a process pool could neither pickle
        the rank closure nor write back into the shared output).

        With an *active* ``policy`` (see
        :class:`~repro.api.config.ResiliencePolicy`) failed rank tasks are
        retried/rebalanced via :meth:`execute_ranks`, and once the retries
        are exhausted the evaluation degrades to the single-process
        batched engine over the full plan — bitwise identical to the
        sharded execution — instead of raising; the
        :attr:`PipelineResult.resilience` report records what happened.

        With ``overlap=True`` every rank executes arrival-driven through
        the :class:`~repro.core.overlap.OverlappedExchange` engine: the
        initialization exchange is split into per-bucket segment chunks
        and each bucketed stack is evaluated as soon as its chunks land
        rather than after the full exchange.  Results stay bitwise
        identical; :attr:`PipelineResult.overlap` (and
        :attr:`last_overlap`) report the modeled hidden-exchange time
        against ``machine`` (default :data:`PAPER_MACHINE`).
        """
        if backend == "process" or executor_backend(executor) == "process":
            raise ValueError(
                "the pipeline's per-rank tasks share the packed output "
                "buffer; use the 'serial' or 'thread' backend"
            )
        if function is not None or kernel_params:
            bound = resolve_kernel(
                function, batch_function=batch_function, **kernel_params
            )
            function, batch_function = bound.function, bound.batch_function
        start = time.perf_counter()
        self._ensure_execution()
        assert self.plan is not None and self.sharded is not None
        self.last_overlap = None
        packed = self.plan.pack(matrix)
        out = self.plan.new_output()
        engine: Optional[OverlappedExchange] = None
        overlap_reports: List[Optional[RankOverlapReport]] = [None] * self.n_ranks
        if overlap:
            engine = self.overlap_engine(
                machine,
                pad_to=self.bucket_pad,
                max_batch_elements=max_batch_elements,
                fault_injector=policy.fault_injector if policy is not None else None,
            )

        def run_rank(rank: int) -> int:
            shard = self.sharded.shards[rank]
            if shard.n_groups == 0:
                return 0
            if engine is not None:

                def consume(bucket, stack):
                    # exactly the batched evaluator's per-task arithmetic
                    if batch_function is not None:
                        evaluated = np.asarray(
                            batch_function(stack), dtype=stack.dtype
                        )
                    else:
                        evaluated = np.stack(
                            [
                                np.asarray(function(stack[slot]), dtype=stack.dtype)
                                for slot in range(len(bucket.members))
                            ]
                        )
                    if evaluated.shape != stack.shape:
                        raise ValueError(
                            f"batched matrix function returned shape "
                            f"{evaluated.shape}, expected {stack.shape}"
                        )
                    shard.view.scatter_stack(
                        out, bucket.members, evaluated, bucket.dimension
                    )

                overlap_reports[rank] = engine.run_rank(
                    rank, packed, consume, pad_value=pad_value
                )
            else:
                local = shard.pack_local(packed)
                evaluate_batched(
                    shard.view,
                    local,
                    function=function,
                    batch_function=batch_function,
                    pad_to=self.bucket_pad,
                    pad_value=pad_value,
                    max_batch_elements=max_batch_elements,
                    backend="serial",
                    out=out,
                )
            return count_stack_tasks(
                shard.dimensions,
                pad_to=self.bucket_pad,
                max_batch_elements=max_batch_elements,
            )

        report = (
            ResilienceReport() if policy is not None and policy.active else None
        )
        try:
            stacks_per_rank = self.execute_ranks(
                run_rank,
                max_workers,
                backend,
                executor=executor,
                policy=policy,
                report=report,
                max_batch_elements=max_batch_elements,
            )
        except PipelineExecutionError:
            if policy is None or not policy.degrade_to_batched:
                raise
            # graceful degradation: the single-process batched engine over
            # the full plan writes every scatter range the shards would
            # have written (bitwise identical for any rank count)
            assert report is not None
            report.degraded = True
            engine = None
            overlap_reports = [None] * self.n_ranks
            evaluate_batched(
                self.plan,
                packed,
                function=function,
                batch_function=batch_function,
                pad_to=self.bucket_pad,
                pad_value=pad_value,
                max_batch_elements=max_batch_elements,
                backend="serial",
                out=out,
            )
            stacks_per_rank = [0] * self.n_ranks
        result = self.plan.finalize(out)
        overlap_report = engine.report(overlap_reports) if engine is not None else None
        self.last_overlap = overlap_report
        transfer_plan = self.transfer_plan
        per_rank = [
            PipelineRankReport(
                rank=rank,
                n_submatrices=summary.n_submatrices,
                n_stacks=int(stacks_per_rank[rank]),
                flops=float(self.rank_flops[rank]),
                segment_fetch_bytes=float(summary.segment_fetch_bytes or 0.0),
                block_fetch_bytes=float(summary.fetch_bytes),
                writeback_bytes=float(summary.writeback_bytes),
            )
            for rank, summary in enumerate(transfer_plan.per_rank)
        ]
        return PipelineResult(
            result=result,
            traffic=self.traffic_log(),
            transfer_plan=transfer_plan,
            per_rank=per_rank,
            rank_of_group=self.rank_of_group.copy(),
            submatrix_dimensions=list(self.dimensions),
            wall_time=time.perf_counter() - start,
            resilience=report,
            overlap=overlap_report,
        )

    def run_stacks(
        self,
        packed: np.ndarray,
        solve_stack: Callable[[np.ndarray], np.ndarray],
        out: np.ndarray,
        pad_value: float = 1.0,
        max_workers: Optional[int] = None,
        backend: str = "serial",
        executor=None,
        max_batch_elements: int = MAX_BATCH_ELEMENTS,
        policy: Optional[ResiliencePolicy] = None,
        report: Optional[ResilienceReport] = None,
        overlap: bool = False,
        machine: Optional[MachineModel] = None,
    ) -> Optional[ResilienceReport]:
        """Map a custom stack solver over every rank's bucketed stacks.

        The structural twin of :meth:`run` for callers that need to control
        the per-bucket numerics themselves (e.g. the density driver's
        μ-shifted iterative occupation path): per rank, gather the
        rank-local packed buffer, assemble each bucketed ``(k, d, d)`` stack
        (padded with ``pad_value``), evaluate ``solve_stack(stack)`` and
        scatter the result straight into the shared packed output ``out``
        (disjoint across ranks).  Bucket layouts are memoized on the shards
        (:meth:`~repro.core.shard.RankShard.stack_tasks`), so repeated calls
        over an unchanged pattern skip all layout work.

        Like :meth:`run`, the shared output restricts execution to the
        serial and thread backends.  With an *active* ``policy``, failed
        rank tasks are retried/rebalanced via :meth:`execute_ranks` and a
        persistent failure degrades to a single-process bucket loop over
        the full plan (bitwise identical: the solver operates per matrix,
        independent of stack composition).  Returns the resilience report
        (``None`` without an active policy); pass ``report`` to accumulate
        into a caller-owned one.

        ``overlap=True`` routes every rank through the arrival-driven
        :class:`~repro.core.overlap.OverlappedExchange` engine (bitwise
        identical, see :meth:`run`); the modeled accounting lands on
        :attr:`last_overlap`.
        """
        if backend == "process" or executor_backend(executor) == "process":
            raise ValueError(
                "the pipeline's per-rank tasks share the packed output "
                "buffer; use the 'serial' or 'thread' backend"
            )
        self._ensure_execution()
        assert self.sharded is not None
        self.last_overlap = None
        engine: Optional[OverlappedExchange] = None
        overlap_reports: List[Optional[RankOverlapReport]] = [None] * self.n_ranks
        if overlap:
            engine = self.overlap_engine(
                machine,
                pad_to=self.bucket_pad,
                max_batch_elements=max_batch_elements,
                fault_injector=policy.fault_injector if policy is not None else None,
            )

        def run_rank(rank: int) -> None:
            shard = self.sharded.shards[rank]
            if shard.n_groups == 0:
                return
            if engine is not None:

                def consume(bucket, stack):
                    evaluated = np.asarray(solve_stack(stack), dtype=stack.dtype)
                    if evaluated.shape != stack.shape:
                        raise ValueError(
                            f"stack solver returned shape {evaluated.shape}, "
                            f"expected {stack.shape}"
                        )
                    shard.view.scatter_stack(
                        out, bucket.members, evaluated, bucket.dimension
                    )

                overlap_reports[rank] = engine.run_rank(
                    rank, packed, consume, pad_value=pad_value
                )
                return
            local = shard.pack_local(packed)
            for bucket in shard.stack_tasks(
                pad_to=self.bucket_pad, max_batch_elements=max_batch_elements
            ):
                stack = shard.view.extract_stack(
                    local, bucket.members, bucket.dimension, pad_value=pad_value
                )
                evaluated = np.asarray(solve_stack(stack), dtype=stack.dtype)
                if evaluated.shape != stack.shape:
                    raise ValueError(
                        f"stack solver returned shape {evaluated.shape}, "
                        f"expected {stack.shape}"
                    )
                shard.view.scatter_stack(
                    out, bucket.members, evaluated, bucket.dimension
                )

        if report is None and policy is not None and policy.active:
            report = ResilienceReport()
        try:
            self.execute_ranks(
                run_rank,
                max_workers,
                backend,
                executor=executor,
                policy=policy,
                report=report,
                max_batch_elements=max_batch_elements,
            )
        except PipelineExecutionError:
            if policy is None or not policy.degrade_to_batched:
                raise
            assert report is not None and self.plan is not None
            report.degraded = True
            engine = None
            for bucket in make_stack_tasks(
                self.plan.dimensions,
                pad_to=self.bucket_pad,
                max_batch_elements=max_batch_elements,
            ):
                stack = self.plan.extract_stack(
                    packed, bucket.members, bucket.dimension, pad_value=pad_value
                )
                evaluated = np.asarray(solve_stack(stack), dtype=stack.dtype)
                if evaluated.shape != stack.shape:
                    raise ValueError(
                        f"stack solver returned shape {evaluated.shape}, "
                        f"expected {stack.shape}"
                    )
                self.plan.scatter_stack(
                    out, bucket.members, evaluated, bucket.dimension
                )
        if engine is not None:
            self.last_overlap = engine.report(overlap_reports)
        return report


def submatrix_method_cost(
    pattern: PatternLike,
    block_sizes: Sequence[int],
    n_ranks: int,
    machine: MachineModel,
    grouping: Optional[ColumnGrouping] = None,
    flop_constant: float = EIGENSOLVE_FLOP_CONSTANT,
    cores_per_rank: int = 1,
    distribution: Optional[BlockDistribution] = None,
    exact_transfers: bool = True,
    balance: str = "chunks",
    bucket_pad: Optional[Union[int, str]] = None,
) -> SubmatrixRunCost:
    """Cost of a distributed submatrix-method sign evaluation.

    A thin wrapper over :class:`DistributedSubmatrixPipeline`: the work and
    traffic fed to the machine model are exactly those of an actual pipeline
    execution (same assignment, same transfer plan, same per-rank FLOPs) —
    only the numerics are skipped.

    Parameters
    ----------
    pattern:
        Block-sparsity pattern of the (filtered, orthogonalized) Kohn–Sham
        matrix.
    block_sizes:
        Basis functions per block column.
    n_ranks:
        Number of MPI ranks (the paper uses one rank per core for the
        submatrix method, Sec. V).
    machine:
        Machine model used to convert work/traffic into seconds.
    grouping:
        Block-column grouping (default: one submatrix per block column).
    flop_constant:
        Cost of the per-submatrix solve as a multiple of n³.
    cores_per_rank:
        Cores available to each rank (1 in the paper's submatrix runs).
    distribution:
        Block ownership; defaults to a round-robin distribution over a
        near-square process grid, like DBCSR's default.
    exact_transfers:
        ``True`` plans block transfers per submatrix (exact deduplication
        bookkeeping, including packed-segment volumes); ``False`` uses the
        faster pattern-level planning — preferred for very large
        pattern-level cost sweeps.
    balance, bucket_pad:
        Assignment strategy and bucket padding of the pipeline (see
        :class:`DistributedSubmatrixPipeline`).
    """
    pipeline = DistributedSubmatrixPipeline(
        pattern,
        block_sizes,
        n_ranks,
        grouping=grouping,
        distribution=distribution,
        balance=balance,
        bucket_pad=bucket_pad,
        flop_constant=flop_constant,
        exact_transfers=exact_transfers,
    )
    return pipeline.cost(machine, cores_per_rank=cores_per_rank)


def estimate_newton_schulz_iterations(eps_filter: float, base_iterations: int = 14) -> int:
    """Heuristic iteration count of the Newton–Schulz purification.

    The quadratically convergent iteration needs a few extra steps to push
    the residual below a tighter filter/convergence threshold (CP2K couples
    the convergence criterion to ``eps_filter``, Sec. V-A).  The heuristic
    adds one iteration per two orders of magnitude of requested accuracy on
    top of a base count measured on the reproduction's water systems.
    """
    if eps_filter <= 0:
        raise ValueError("eps_filter must be positive")
    extra = max(0.0, -math.log10(eps_filter) - 4.0) / 2.0
    return int(round(base_iterations + extra))


def newton_schulz_cost(
    pattern: PatternLike,
    block_sizes: Sequence[int],
    n_ranks: int,
    machine: MachineModel,
    n_iterations: int = 20,
    cores_per_rank: int = 5,
    fill_pattern: bool = True,
) -> SubmatrixRunCost:
    """Cost of the distributed 2nd-order Newton–Schulz baseline.

    Parameters
    ----------
    pattern:
        Block-sparsity pattern of the filtered orthogonalized Kohn–Sham
        matrix.
    block_sizes:
        Basis functions per block.
    n_ranks:
        Number of MPI ranks (the paper uses 8 ranks × 5 threads per node for
        Newton–Schulz, hence the default ``cores_per_rank=5``).
    machine:
        Machine model.
    n_iterations:
        Number of Newton–Schulz iterations (use
        :func:`estimate_newton_schulz_iterations` or a measured count).
    fill_pattern:
        Model the fill-in of the iterate: the steady-state pattern of X_k is
        approximated by the boolean square of the input pattern (the filtered
        density-matrix pattern is denser than the Hamiltonian's).
    """
    coo = _as_coo(pattern)
    block_sizes = np.asarray(list(block_sizes), dtype=float)
    base = coo.to_pattern().astype(bool)
    iterate_pattern = ((base @ base) + base).astype(bool) if fill_pattern else base

    # FLOPs of one block sparse multiply X·Y with X, Y having `iterate_pattern`:
    # sum_k b_k * (sum_i P[i,k] b_i) * (sum_j P[k,j] b_j)
    col_weight = np.asarray(
        iterate_pattern.T.astype(float) @ block_sizes
    ).ravel()  # sum_i P[i,k] b_i
    row_weight = np.asarray(iterate_pattern.astype(float) @ block_sizes).ravel()
    multiply_flops = 2.0 * float(np.sum(block_sizes * col_weight * row_weight))
    # one iteration: X² and X·(3I − X²)  ->  two multiplications
    total_flops = 2.0 * multiply_flops * n_iterations

    # matrix volume of the iterate (bytes of all stored blocks)
    pattern_coo = iterate_pattern.tocoo()
    matrix_bytes = float(
        np.sum(block_sizes[pattern_coo.row] * block_sizes[pattern_coo.col]) * 8.0
    )

    log = TrafficLog(n_ranks)
    flops_per_rank = total_flops / n_ranks
    grid_p = max(1, int(round(math.sqrt(n_ranks))))
    local_bytes = matrix_bytes / n_ranks
    # Cannon: per multiplication every rank ships its A and B panels √P times
    bytes_per_rank_per_multiply = 2.0 * grid_p * local_bytes
    messages_per_rank_per_multiply = 2 * grid_p
    multiplications = 2 * n_iterations
    for rank in range(n_ranks):
        log.record_flops(rank, flops_per_rank, sparse=True)
        if n_ranks > 1:
            neighbor = (rank + 1) % n_ranks
            total_bytes = bytes_per_rank_per_multiply * multiplications
            total_messages = messages_per_rank_per_multiply * multiplications
            log.ranks[rank].bytes_sent += total_bytes
            log.ranks[rank].messages_sent += total_messages
            log.ranks[neighbor].bytes_received += total_bytes
            log.ranks[neighbor].messages_received += total_messages

    simulated = machine.simulate(log, cores_per_rank=cores_per_rank)
    return SubmatrixRunCost(
        method="newton_schulz",
        n_ranks=n_ranks,
        traffic=log,
        simulated=simulated,
        total_flops=total_flops,
        total_comm_bytes=log.total_bytes_sent(),
        details={
            "n_iterations": float(n_iterations),
            "multiply_flops": multiply_flops,
            "matrix_bytes": matrix_bytes,
            "grid_p": float(grid_p),
        },
    )
