"""Distributed-run cost models for the submatrix method and Newton–Schulz.

The paper's scaling experiments (Figs. 6, 8, 9, 10) ran on 40–1280 cores.
This reproduction executes the numerics inside one process, but the *work and
traffic distribution across ranks* — which is what determines the scaling
behaviour — can be computed exactly from the block-sparsity pattern:

* for the **submatrix method**: the per-rank FLOPs follow from the greedy
  load balancing over the O(n³) submatrix costs (Sec. IV-E), and the per-rank
  traffic from the deduplicated block-transfer plan (Sec. IV-B) plus the COO
  allgather of the initialization (Sec. IV-A1);
* for the **Newton–Schulz baseline**: every iteration performs two sparse
  block multiplications whose FLOPs follow from the (filtered) block pattern
  and whose traffic follows from libDBCSR's Cannon algorithm (each rank ships
  its panels √P times per multiplication).

The machine model (:class:`repro.parallel.machine.MachineModel`) then
converts both into simulated wall-clock times.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.core.combination import ColumnGrouping, single_column_groups
from repro.core.load_balance import assign_consecutive_chunks, submatrix_flop_costs
from repro.core.transfers import plan_transfers
from repro.dbcsr.coo import CooBlockList
from repro.dbcsr.distribution import BlockDistribution, ProcessGrid2D
from repro.parallel.machine import MachineModel, SimulatedTime
from repro.parallel.stats import TrafficLog
from repro.parallel.topology import balanced_dims

__all__ = [
    "SubmatrixRunCost",
    "submatrix_method_cost",
    "newton_schulz_cost",
    "estimate_newton_schulz_iterations",
    "EIGENSOLVE_FLOP_CONSTANT",
]

#: FLOPs of a dense symmetric eigendecomposition plus the two back
#: transformations Q·diag·Qᵀ, expressed as a multiple of n³.  dsyevd costs
#: roughly 4/3·n³ for the tridiagonal reduction plus ~4·n³ for the
#: divide-and-conquer back-transformation; forming Q Λ' Qᵀ adds ~4·n³.
EIGENSOLVE_FLOP_CONSTANT = 9.0

PatternLike = Union[sp.spmatrix, CooBlockList]


@dataclasses.dataclass
class SubmatrixRunCost:
    """Cost summary of one simulated distributed run."""

    method: str
    n_ranks: int
    traffic: TrafficLog
    simulated: SimulatedTime
    total_flops: float
    total_comm_bytes: float
    details: Dict[str, float]

    @property
    def simulated_seconds(self) -> float:
        """Total simulated wall-clock time."""
        return self.simulated.total


def _as_coo(pattern: PatternLike) -> CooBlockList:
    if isinstance(pattern, CooBlockList):
        return pattern
    return CooBlockList.from_pattern(pattern)


def submatrix_method_cost(
    pattern: PatternLike,
    block_sizes: Sequence[int],
    n_ranks: int,
    machine: MachineModel,
    grouping: Optional[ColumnGrouping] = None,
    flop_constant: float = EIGENSOLVE_FLOP_CONSTANT,
    cores_per_rank: int = 1,
    distribution: Optional[BlockDistribution] = None,
    exact_transfers: bool = True,
) -> SubmatrixRunCost:
    """Cost of a distributed submatrix-method sign evaluation.

    Parameters
    ----------
    pattern:
        Block-sparsity pattern of the (filtered, orthogonalized) Kohn–Sham
        matrix.
    block_sizes:
        Basis functions per block column.
    n_ranks:
        Number of MPI ranks (the paper uses one rank per core for the
        submatrix method, Sec. V).
    machine:
        Machine model used to convert work/traffic into seconds.
    grouping:
        Block-column grouping (default: one submatrix per block column).
    flop_constant:
        Cost of the per-submatrix solve as a multiple of n³.
    cores_per_rank:
        Cores available to each rank (1 in the paper's submatrix runs).
    distribution:
        Block ownership; defaults to a round-robin distribution over a
        near-square process grid, like DBCSR's default.
    exact_transfers:
        ``True`` plans block transfers per submatrix (exact deduplication
        bookkeeping); ``False`` uses the faster per-rank planning of
        :func:`repro.core.transfers.plan_transfers` — preferred for very
        large pattern-level cost sweeps.
    """
    coo = _as_coo(pattern)
    block_sizes = np.asarray(list(block_sizes), dtype=int)
    n_blocks = coo.n_block_cols
    if grouping is None:
        grouping = single_column_groups(n_blocks)
    if distribution is None:
        grid = ProcessGrid2D(n_ranks, balanced_dims(n_ranks))
        distribution = BlockDistribution(n_blocks, n_blocks, grid)

    dimensions = grouping.submatrix_dimensions(coo, block_sizes)
    costs = submatrix_flop_costs(dimensions, flop_constant)
    chunks = assign_consecutive_chunks(costs, n_ranks)
    rank_of_group = np.empty(grouping.n_submatrices, dtype=int)
    for rank, (start, stop) in enumerate(chunks):
        rank_of_group[start:stop] = rank

    plan = plan_transfers(
        coo,
        block_sizes,
        distribution,
        grouping,
        rank_of_group,
        per_group_dedup=exact_transfers,
    )
    log = plan.to_traffic_log(include_coo_allgather=True, coo_length=len(coo))
    for rank, (start, stop) in enumerate(chunks):
        log.record_flops(rank, float(costs[start:stop].sum()), sparse=False)

    simulated = machine.simulate(log, cores_per_rank=cores_per_rank)
    return SubmatrixRunCost(
        method="submatrix",
        n_ranks=n_ranks,
        traffic=log,
        simulated=simulated,
        total_flops=log.total_flops(),
        total_comm_bytes=log.total_bytes_sent(),
        details={
            "n_submatrices": float(grouping.n_submatrices),
            "max_submatrix_dimension": float(max(dimensions) if dimensions else 0),
            "mean_submatrix_dimension": float(np.mean(dimensions) if dimensions else 0),
            "dedup_savings": plan.deduplication_savings,
            "fetch_bytes": plan.total_fetch_bytes,
            "writeback_bytes": plan.total_writeback_bytes,
            "flop_imbalance": log.flop_imbalance(),
        },
    )


def estimate_newton_schulz_iterations(eps_filter: float, base_iterations: int = 14) -> int:
    """Heuristic iteration count of the Newton–Schulz purification.

    The quadratically convergent iteration needs a few extra steps to push
    the residual below a tighter filter/convergence threshold (CP2K couples
    the convergence criterion to ``eps_filter``, Sec. V-A).  The heuristic
    adds one iteration per two orders of magnitude of requested accuracy on
    top of a base count measured on the reproduction's water systems.
    """
    if eps_filter <= 0:
        raise ValueError("eps_filter must be positive")
    extra = max(0.0, -math.log10(eps_filter) - 4.0) / 2.0
    return int(round(base_iterations + extra))


def newton_schulz_cost(
    pattern: PatternLike,
    block_sizes: Sequence[int],
    n_ranks: int,
    machine: MachineModel,
    n_iterations: int = 20,
    cores_per_rank: int = 5,
    fill_pattern: bool = True,
) -> SubmatrixRunCost:
    """Cost of the distributed 2nd-order Newton–Schulz baseline.

    Parameters
    ----------
    pattern:
        Block-sparsity pattern of the filtered orthogonalized Kohn–Sham
        matrix.
    block_sizes:
        Basis functions per block.
    n_ranks:
        Number of MPI ranks (the paper uses 8 ranks × 5 threads per node for
        Newton–Schulz, hence the default ``cores_per_rank=5``).
    machine:
        Machine model.
    n_iterations:
        Number of Newton–Schulz iterations (use
        :func:`estimate_newton_schulz_iterations` or a measured count).
    fill_pattern:
        Model the fill-in of the iterate: the steady-state pattern of X_k is
        approximated by the boolean square of the input pattern (the filtered
        density-matrix pattern is denser than the Hamiltonian's).
    """
    coo = _as_coo(pattern)
    block_sizes = np.asarray(list(block_sizes), dtype=float)
    base = coo.to_pattern().astype(bool)
    iterate_pattern = ((base @ base) + base).astype(bool) if fill_pattern else base

    # FLOPs of one block sparse multiply X·Y with X, Y having `iterate_pattern`:
    # sum_k b_k * (sum_i P[i,k] b_i) * (sum_j P[k,j] b_j)
    col_weight = np.asarray(
        iterate_pattern.T.astype(float) @ block_sizes
    ).ravel()  # sum_i P[i,k] b_i
    row_weight = np.asarray(iterate_pattern.astype(float) @ block_sizes).ravel()
    multiply_flops = 2.0 * float(np.sum(block_sizes * col_weight * row_weight))
    # one iteration: X² and X·(3I − X²)  ->  two multiplications
    total_flops = 2.0 * multiply_flops * n_iterations

    # matrix volume of the iterate (bytes of all stored blocks)
    pattern_coo = iterate_pattern.tocoo()
    matrix_bytes = float(
        np.sum(block_sizes[pattern_coo.row] * block_sizes[pattern_coo.col]) * 8.0
    )

    log = TrafficLog(n_ranks)
    flops_per_rank = total_flops / n_ranks
    grid_p = max(1, int(round(math.sqrt(n_ranks))))
    local_bytes = matrix_bytes / n_ranks
    # Cannon: per multiplication every rank ships its A and B panels √P times
    bytes_per_rank_per_multiply = 2.0 * grid_p * local_bytes
    messages_per_rank_per_multiply = 2 * grid_p
    multiplications = 2 * n_iterations
    for rank in range(n_ranks):
        log.record_flops(rank, flops_per_rank, sparse=True)
        if n_ranks > 1:
            neighbor = (rank + 1) % n_ranks
            total_bytes = bytes_per_rank_per_multiply * multiplications
            total_messages = messages_per_rank_per_multiply * multiplications
            log.ranks[rank].bytes_sent += total_bytes
            log.ranks[rank].messages_sent += total_messages
            log.ranks[neighbor].bytes_received += total_bytes
            log.ranks[neighbor].messages_received += total_messages

    simulated = machine.simulate(log, cores_per_rank=cores_per_rank)
    return SubmatrixRunCost(
        method="newton_schulz",
        n_ranks=n_ranks,
        traffic=log,
        simulated=simulated,
        total_flops=total_flops,
        total_comm_bytes=log.total_bytes_sent(),
        details={
            "n_iterations": float(n_iterations),
            "multiply_flops": multiply_flops,
            "matrix_bytes": matrix_bytes,
            "grid_p": float(grid_p),
        },
    )
