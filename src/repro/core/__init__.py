"""The submatrix method (the paper's primary contribution).

Workflow (Fig. 3 of the paper):

1. for each (block) column i of the sparse input matrix a principal
   submatrix a_i is assembled from the rows/columns where column i is
   non-zero (:mod:`repro.core.submatrix`);
2. the matrix function of interest is evaluated on every dense submatrix
   (:mod:`repro.core.method` orchestrates this, using the solvers from
   :mod:`repro.signfn`);
3. the column of f(a_i) that corresponds to column i is copied back into the
   sparse result matrix, preserving the input sparsity pattern.

The hot path has two interchangeable engines: the naive reference kernels in
:mod:`repro.core.submatrix` and the vectorized submatrix engine — cached
extraction plans (:mod:`repro.core.plan`) plus bucketed batch evaluation
(:mod:`repro.core.batch`) — which produces identical results while replacing
the per-call Python loops with precomputed single-shot gathers/scatters.

On top of this core, the subpackage implements the CP2K-specific machinery
described in Sec. IV of the paper: grouping of block columns into combined
submatrices (:mod:`repro.core.combination`), greedy and bucket-aware load
balancing (:mod:`repro.core.load_balance`), rank-sharding of extraction
plans (:mod:`repro.core.shard`), deduplicated block- and packed-segment
transfer planning (:mod:`repro.core.transfers`), the density-matrix driver
with grand-canonical and canonical ensembles (:mod:`repro.core.sign_dft`)
and the rank-sharded execution pipeline plus distributed run cost models
(:mod:`repro.core.runner`).
"""

from repro.core.submatrix import (
    Submatrix,
    extract_submatrix,
    extract_block_submatrix,
    submatrix_dimension,
    submatrix_block_rows,
)
from repro.core.plan import (
    SubmatrixPlan,
    ElementSubmatrixPlan,
    BlockSubmatrixPlan,
    BlockPatternDelta,
    PlanPatchReport,
    PlanCache,
    DEFAULT_PLAN_CACHE,
    PATCH_DELTA_FRACTION,
    element_plan,
    block_plan,
    block_pattern_delta,
)
from repro.core.batch import Bucket, make_buckets, evaluate_batched
from repro.core.method import SubmatrixMethod, SubmatrixMethodResult
from repro.core.combination import (
    ColumnGrouping,
    single_column_groups,
    group_columns_kmeans,
    group_columns_graph,
    group_columns_greedy_chunks,
    estimated_speedup,
)
from repro.core.load_balance import (
    assign_consecutive_chunks,
    assign_consecutive_chunks_reference,
    assign_round_robin,
    assign_balanced_stacks,
    choose_bucket_pad,
    submatrix_flop_costs,
    load_imbalance,
)
from repro.core.shard import RankShard, ShardView, ShardedPlan
from repro.core.splitting import (
    SplitSolveResult,
    split_submatrix_solve,
    splitting_flop_estimate,
)
from repro.core.transfers import TransferPlan, plan_transfers
from repro.core.sign_dft import SubmatrixDFTSolver, SubmatrixDFTResult
from repro.core.runner import (
    DistributedSubmatrixPipeline,
    PipelineRankReport,
    PipelineResult,
    SubmatrixRunCost,
    submatrix_method_cost,
    newton_schulz_cost,
    estimate_newton_schulz_iterations,
    EIGENSOLVE_FLOP_CONSTANT,
    BALANCE_STRATEGIES,
)
# the session API's configuration layer (safe to import here: config sits
# below the core facades in the dependency graph)
from repro.api.config import ENGINES, EngineConfig

__all__ = [
    "Submatrix",
    "extract_submatrix",
    "extract_block_submatrix",
    "submatrix_dimension",
    "submatrix_block_rows",
    "SubmatrixPlan",
    "ElementSubmatrixPlan",
    "BlockSubmatrixPlan",
    "BlockPatternDelta",
    "PlanPatchReport",
    "PlanCache",
    "DEFAULT_PLAN_CACHE",
    "PATCH_DELTA_FRACTION",
    "element_plan",
    "block_plan",
    "block_pattern_delta",
    "Bucket",
    "make_buckets",
    "evaluate_batched",
    "SubmatrixMethod",
    "SubmatrixMethodResult",
    "ColumnGrouping",
    "single_column_groups",
    "group_columns_kmeans",
    "group_columns_graph",
    "group_columns_greedy_chunks",
    "estimated_speedup",
    "assign_consecutive_chunks",
    "assign_consecutive_chunks_reference",
    "assign_round_robin",
    "assign_balanced_stacks",
    "choose_bucket_pad",
    "submatrix_flop_costs",
    "load_imbalance",
    "RankShard",
    "ShardView",
    "ShardedPlan",
    "SplitSolveResult",
    "split_submatrix_solve",
    "splitting_flop_estimate",
    "TransferPlan",
    "plan_transfers",
    "SubmatrixDFTSolver",
    "SubmatrixDFTResult",
    "DistributedSubmatrixPipeline",
    "PipelineRankReport",
    "PipelineResult",
    "submatrix_method_cost",
    "newton_schulz_cost",
    "estimate_newton_schulz_iterations",
    "SubmatrixRunCost",
    "EIGENSOLVE_FLOP_CONSTANT",
    "BALANCE_STRATEGIES",
    "ENGINES",
    "EngineConfig",
]
