"""Block-transfer planning with deduplication (Sec. IV-A3 / IV-B).

To assemble its submatrices a rank needs a copy of every non-zero block that
appears in any of them.  Blocks are typically shared between many overlapping
submatrices; transferring them once per submatrix would multiply the traffic.
The CP2K implementation therefore exchanges each required block exactly once
per (owner rank, consumer rank) pair during initialization, buffers it
locally, and assembles the submatrices from the local buffer without further
communication.  After the computation the result blocks are copied back to
their owners.

:func:`plan_transfers` reproduces this planning step: given the global block
sparsity pattern, the block→rank ownership and the submatrix→rank assignment
it derives, per rank, which blocks must be fetched (deduplicated), how many
bytes that is, how much would have been transferred without deduplication,
and the write-back volume — and can convert the plan into a
:class:`~repro.parallel.stats.TrafficLog` for the machine model.

Two granularities of the fetch volume are reported:

* **whole-block** — every required remote block's full storage, derived from
  the pattern (the classic model, and the only one available without an
  extraction plan);
* **packed-segment** — the bytes of the value segments actually referenced
  by the rank's sharded gather arrays
  (:class:`repro.core.shard.ShardedPlan`).  Each segment is shipped once
  into the rank-local packed buffer, so this volume is deduplicated by
  construction and never exceeds the whole-block volume; it is strictly
  smaller whenever the pattern-level model over-approximates the required
  set (e.g. the fast ``per_group_dedup=False`` planning, which merges all of
  a rank's columns into one retained set).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.core.combination import ColumnGrouping
from repro.core.submatrix import submatrix_block_rows
from repro.dbcsr.coo import CooBlockList
from repro.dbcsr.distribution import BlockDistribution
from repro.parallel.stats import TrafficLog

__all__ = [
    "RankTransferSummary",
    "TransferPlan",
    "TransferDelta",
    "plan_transfers",
    "patch_transfer_plan",
]


@dataclasses.dataclass
class RankTransferSummary:
    """Transfer summary of a single rank.

    Attributes
    ----------
    required_blocks:
        Sorted array of IDs (positions in the COO list) of all blocks needed
        by this rank's submatrices.
    remote_blocks:
        Subset of ``required_blocks`` owned by other ranks (must be fetched),
        as a sorted ID array.
    fetch_bytes:
        Bytes fetched from remote ranks (each remote block counted once —
        the deduplicated whole-block volume).
    fetch_bytes_without_dedup:
        Bytes that would be fetched if every submatrix transferred its blocks
        independently (each block counted once per submatrix that uses it).
    segment_fetch_bytes:
        Bytes of the deduplicated packed value segments the rank's shard
        actually references (``None`` when no segment index was supplied).
        Always ≤ ``fetch_bytes``.
    writeback_bytes:
        Bytes of result blocks sent back to their owning ranks.
    n_submatrices:
        Number of submatrices assembled by this rank.
    """

    required_blocks: np.ndarray
    remote_blocks: np.ndarray
    fetch_bytes: float
    fetch_bytes_without_dedup: float
    writeback_bytes: float
    n_submatrices: int
    segment_fetch_bytes: Optional[float] = None


@dataclasses.dataclass
class TransferPlan:
    """Complete transfer plan of a distributed submatrix-method run."""

    per_rank: List[RankTransferSummary]
    fetch_matrix: np.ndarray  # (n_ranks, n_ranks) bytes, owner -> consumer
    writeback_matrix: np.ndarray  # (n_ranks, n_ranks) bytes, consumer -> owner
    #: (n_ranks, n_ranks) packed-segment bytes, owner -> consumer; None when
    #: the plan was built without a segment index.
    segment_fetch_matrix: Optional[np.ndarray] = None

    @property
    def n_ranks(self) -> int:
        return len(self.per_rank)

    @property
    def total_fetch_bytes(self) -> float:
        """Total deduplicated whole-block fetch volume."""
        return float(sum(summary.fetch_bytes for summary in self.per_rank))

    @property
    def total_fetch_bytes_without_dedup(self) -> float:
        """Total fetch volume without deduplication."""
        return float(
            sum(summary.fetch_bytes_without_dedup for summary in self.per_rank)
        )

    @property
    def has_segments(self) -> bool:
        """Whether packed-segment volumes were planned."""
        return self.segment_fetch_matrix is not None

    @property
    def total_segment_fetch_bytes(self) -> Optional[float]:
        """Total deduplicated packed-segment fetch volume (None if absent)."""
        if not self.has_segments:
            return None
        return float(
            sum(summary.segment_fetch_bytes or 0.0 for summary in self.per_rank)
        )

    @property
    def deduplication_savings(self) -> float:
        """Fraction of transfer volume saved by deduplication (0..1)."""
        without = self.total_fetch_bytes_without_dedup
        if without == 0:
            return 0.0
        return 1.0 - self.total_fetch_bytes / without

    @property
    def segment_savings(self) -> float:
        """Fraction of the whole-block volume saved by segment shipping."""
        segments = self.total_segment_fetch_bytes
        blocks = self.total_fetch_bytes
        if segments is None or blocks == 0:
            return 0.0
        return 1.0 - segments / blocks

    @property
    def total_writeback_bytes(self) -> float:
        """Total write-back volume."""
        return float(sum(summary.writeback_bytes for summary in self.per_rank))

    def to_traffic_log(
        self,
        include_coo_allgather: bool = True,
        coo_length: int = 0,
        use_segments: bool = False,
    ) -> TrafficLog:
        """Convert the plan into a per-rank traffic log.

        Parameters
        ----------
        include_coo_allgather:
            Also account the allgather of the COO block list performed during
            initialization (Sec. IV-A1): every rank must learn the global
            sparsity pattern (two 4-byte integers per non-zero block from
            every other rank).
        coo_length:
            Number of non-zero blocks (needed for the allgather volume).
        use_segments:
            Charge the initialization exchange at packed-segment granularity
            instead of whole blocks.  Requires the plan to have been built
            with a segment index (raises otherwise).
        """
        if use_segments and not self.has_segments:
            raise ValueError(
                "transfer plan has no packed-segment volumes; build it with "
                "a ShardedPlan segment index"
            )
        fetch = self.segment_fetch_matrix if use_segments else self.fetch_matrix
        log = TrafficLog(self.n_ranks)
        log.record_message_matrix(fetch)
        log.record_message_matrix(self.writeback_matrix)
        if include_coo_allgather and self.n_ranks > 1 and coo_length > 0:
            log.record_allgather(8.0 * coo_length / self.n_ranks)
        return log


@dataclasses.dataclass
class TransferDelta:
    """Per-rank diff between a previous and a patched transfer plan.

    Records what an *incremental* initialization exchange would actually
    ship when a pattern drifts: only the segments a rank newly requires
    (plus the bookkeeping of what it no longer needs), instead of the full
    replanned exchange.

    Attributes
    ----------
    dirty_ranks:
        Ranks whose required-segment sets were replanned (they own at
        least one dirty group); every other rank's requirements carried
        over by ID remap.
    added_segments_per_rank:
        Per rank, sorted new-COO block IDs required now but not before.
    removed_per_rank:
        Per rank, the number of previously required segments that no
        longer exist or are no longer referenced.
    added_fetch_bytes_per_rank:
        Per rank, the remote bytes of the newly required segments — the
        volume an incremental exchange ships to that rank.
    full_fetch_bytes:
        Deduplicated whole-block fetch volume of the full (patched)
        exchange, for comparison.
    """

    dirty_ranks: frozenset
    added_segments_per_rank: List[np.ndarray]
    removed_per_rank: np.ndarray
    added_fetch_bytes_per_rank: np.ndarray
    full_fetch_bytes: float

    @property
    def n_ranks(self) -> int:
        return len(self.added_segments_per_rank)

    @property
    def total_added_fetch_bytes(self) -> float:
        """Total volume of the incremental exchange."""
        return float(self.added_fetch_bytes_per_rank.sum())

    @property
    def total_added_segments(self) -> int:
        return int(sum(ids.size for ids in self.added_segments_per_rank))

    @property
    def incremental_savings(self) -> float:
        """Fraction of the full exchange volume the delta avoids (0..1)."""
        if self.full_fetch_bytes <= 0:
            return 0.0
        return 1.0 - self.total_added_fetch_bytes / self.full_fetch_bytes


@dataclasses.dataclass
class _PlanningTables:
    """Precomputed per-pattern lookup tables of one planning pass."""

    coo: CooBlockList
    id_matrix: sp.csr_matrix
    owners_by_id: np.ndarray
    bytes_by_id: np.ndarray
    column_start: np.ndarray

    @classmethod
    def build(
        cls,
        coo: CooBlockList,
        block_sizes: np.ndarray,
        distribution: BlockDistribution,
        bytes_per_element: int,
    ) -> "_PlanningTables":
        # CSR matrix whose stored values are (block ID + 1); indexing a
        # sub-pattern of it recovers the global block IDs of the retained
        # blocks without any search.
        id_matrix = sp.coo_matrix(
            (
                np.arange(1, len(coo) + 1, dtype=np.int64),
                (coo.rows, coo.cols),
            ),
            shape=(coo.n_block_rows, coo.n_block_cols),
        ).tocsr()
        owners_by_id = distribution.owners_of_blocks(coo.rows, coo.cols)
        bytes_by_id = (
            block_sizes[coo.rows]
            * block_sizes[coo.cols]
            * float(bytes_per_element)
        )
        # blocks of one block column occupy a contiguous ID range (the COO
        # list is sorted by column): column_start[c] .. column_start[c+1]
        column_start = np.searchsorted(coo.cols, np.arange(coo.n_block_cols + 1))
        return cls(
            coo=coo,
            id_matrix=id_matrix,
            owners_by_id=owners_by_id,
            bytes_by_id=bytes_by_id,
            column_start=column_start,
        )


def _plan_rank(
    rank: int,
    group_indices: List[int],
    tables: _PlanningTables,
    grouping: ColumnGrouping,
    per_group_dedup: bool,
    segment_ids: Optional[np.ndarray],
    segments_from_required: bool,
    n_ranks: int,
):
    """Plan one rank's transfers; the per-rank body of :func:`plan_transfers`.

    Returns ``(summary, fetch_column, writeback_row, segment_column)`` —
    the rank's :class:`RankTransferSummary` plus its column/row of the
    owner→consumer byte matrices (``segment_column`` is ``None`` when no
    segment volumes were requested).
    """
    coo = tables.coo
    owners_by_id = tables.owners_by_id
    bytes_by_id = tables.bytes_by_id
    column_start = tables.column_start
    duplicate_bytes = 0.0
    writeback = 0.0
    required_flags = np.zeros(len(coo), dtype=bool)
    fetch_column = np.zeros(n_ranks)
    writeback_row = np.zeros(n_ranks)
    if per_group_dedup:
        column_batches = [
            np.asarray(grouping.groups[g], dtype=int) for g in group_indices
        ]
    else:
        merged = [
            column for g in group_indices for column in grouping.groups[g]
        ]
        column_batches = [np.asarray(merged, dtype=int)] if merged else []
    for columns in column_batches:
        retained = submatrix_block_rows(coo, columns)
        # non-zero blocks inside the submatrix: their IDs come straight
        # out of the sub-pattern of the ID matrix
        block_ids = tables.id_matrix[retained][:, retained].data - 1
        owners = owners_by_id[block_ids]
        nbytes = bytes_by_id[block_ids]
        remote_mask = owners != rank
        duplicate_bytes += float(nbytes[remote_mask].sum())
        required_flags[block_ids] = True
        # result blocks written back: blocks of the generating columns
        wb_ids = np.concatenate(
            [np.arange(column_start[c], column_start[c + 1]) for c in columns]
        )
        wb_owners = owners_by_id[wb_ids]
        wb_bytes = bytes_by_id[wb_ids]
        wb_remote = wb_owners != rank
        writeback += float(wb_bytes[wb_remote].sum())
        np.add.at(writeback_row, wb_owners[wb_remote], wb_bytes[wb_remote])
    required_ids = np.flatnonzero(required_flags)
    unique_owners = owners_by_id[required_ids]
    unique_bytes = bytes_by_id[required_ids]
    remote_mask = unique_owners != rank
    remote_ids = required_ids[remote_mask]
    fetch = float(unique_bytes[remote_mask].sum())
    np.add.at(fetch_column, unique_owners[remote_mask], unique_bytes[remote_mask])
    segment_column: Optional[np.ndarray] = None
    segment_fetch: Optional[float] = None
    if segment_ids is not None or segments_from_required:
        resolved_ids = (
            required_ids
            if segments_from_required
            else np.asarray(segment_ids, dtype=np.int64)
        )
        segment_fetch, segment_column = _segment_volumes(
            rank, resolved_ids, tables, n_ranks
        )
    summary = RankTransferSummary(
        required_blocks=required_ids,
        remote_blocks=remote_ids,
        fetch_bytes=fetch,
        fetch_bytes_without_dedup=duplicate_bytes,
        writeback_bytes=writeback,
        n_submatrices=len(group_indices),
        segment_fetch_bytes=segment_fetch,
    )
    return summary, fetch_column, writeback_row, segment_column


def _segment_volumes(
    rank: int, segment_ids: np.ndarray, tables: _PlanningTables, n_ranks: int
):
    """Packed-segment fetch bytes and owner column of one rank's index."""
    if segment_ids.size and (
        segment_ids.min() < 0 or segment_ids.max() >= len(tables.coo)
    ):
        raise IndexError("segment ID out of range of the COO list")
    segment_column = np.zeros(n_ranks)
    segment_owners = tables.owners_by_id[segment_ids]
    segment_bytes = tables.bytes_by_id[segment_ids]
    segment_remote = segment_owners != rank
    segment_fetch = float(segment_bytes[segment_remote].sum())
    np.add.at(
        segment_column, segment_owners[segment_remote], segment_bytes[segment_remote]
    )
    return segment_fetch, segment_column


def plan_transfers(
    coo: CooBlockList,
    block_sizes: Sequence[int],
    distribution: BlockDistribution,
    grouping: ColumnGrouping,
    rank_of_group: Sequence[int],
    bytes_per_element: int = 8,
    per_group_dedup: bool = True,
    segment_index: Union[Sequence[np.ndarray], str, None] = None,
) -> TransferPlan:
    """Plan all block transfers of a distributed submatrix-method run.

    Parameters
    ----------
    coo:
        Global block sparsity pattern (deterministically sorted COO list).
    block_sizes:
        Block sizes (one per block row/column; the matrix is square at block
        level).
    distribution:
        Block→rank ownership of the DBCSR matrix.
    grouping:
        Grouping of block columns into submatrices.
    rank_of_group:
        Rank responsible for each group (same length as ``grouping.groups``).
    bytes_per_element:
        Storage size of a matrix element (8 for float64).
    per_group_dedup:
        ``True`` (default) walks every submatrix individually, which yields
        both the deduplicated fetch volume and the volume that would be
        transferred without deduplication.  ``False`` computes the per-rank
        required-block set from the union of each rank's retained block rows
        in one step — much faster for large patterns with many block columns
        per rank, at the cost of a slight overestimate of the fetch volume
        and no "without deduplication" figure (it is reported equal to the
        fetch volume).  The fast path is used by the large-system cost
        models.
    segment_index:
        Optional per-rank arrays of required segment (block) IDs, e.g.
        ``ShardedPlan.required_segments_per_rank()``.  When given, the plan
        additionally reports the packed-segment fetch volume: the bytes of
        exactly those segments, shipped once each into the rank-local
        buffer.  The string ``"required"`` derives the index from the exact
        per-group required-block sets computed here — at block granularity a
        shard references exactly the blocks of its submatrices' retained
        sub-patterns, so this equals the sharded plan's index without
        building an extraction plan (requires ``per_group_dedup=True``; used
        by the cost models).
    """
    block_sizes = np.asarray(list(block_sizes), dtype=int)
    rank_of_group = list(rank_of_group)
    if len(rank_of_group) != grouping.n_submatrices:
        raise ValueError("rank_of_group must assign a rank to every group")
    n_ranks = distribution.n_ranks
    segments_from_required = False
    if isinstance(segment_index, str):
        if segment_index != "required":
            raise ValueError("segment_index must be 'required', arrays or None")
        if not per_group_dedup:
            raise ValueError(
                "segment_index='required' needs the exact per-group planning "
                "(per_group_dedup=True); the fast path over-approximates the "
                "required sets"
            )
        segments_from_required = True
        segment_index = None
    if segment_index is not None and len(segment_index) != n_ranks:
        raise ValueError("segment_index must provide one ID array per rank")

    tables = _PlanningTables.build(coo, block_sizes, distribution, bytes_per_element)
    want_segments = segment_index is not None or segments_from_required

    per_rank: List[RankTransferSummary] = []
    fetch_matrix = np.zeros((n_ranks, n_ranks))
    writeback_matrix = np.zeros((n_ranks, n_ranks))
    segment_matrix = np.zeros((n_ranks, n_ranks)) if want_segments else None

    groups_of_rank = _groups_of_rank(rank_of_group, n_ranks)
    for rank in range(n_ranks):
        summary, fetch_column, writeback_row, segment_column = _plan_rank(
            rank,
            groups_of_rank[rank],
            tables,
            grouping,
            per_group_dedup,
            segment_index[rank] if segment_index is not None else None,
            segments_from_required,
            n_ranks,
        )
        per_rank.append(summary)
        fetch_matrix[:, rank] = fetch_column
        writeback_matrix[rank] = writeback_row
        if segment_matrix is not None and segment_column is not None:
            segment_matrix[:, rank] = segment_column
    return TransferPlan(
        per_rank=per_rank,
        fetch_matrix=fetch_matrix,
        writeback_matrix=writeback_matrix,
        segment_fetch_matrix=segment_matrix,
    )


def _groups_of_rank(
    rank_of_group: Sequence[int], n_ranks: int
) -> Dict[int, List[int]]:
    """Group submatrices per rank, validating the assignment range."""
    groups_of_rank: Dict[int, List[int]] = {rank: [] for rank in range(n_ranks)}
    for group_index, rank in enumerate(rank_of_group):
        if not 0 <= rank < n_ranks:
            raise IndexError(f"rank {rank} out of range")
        groups_of_rank[rank].append(group_index)
    return groups_of_rank


def patch_transfer_plan(
    previous: TransferPlan,
    coo: CooBlockList,
    block_sizes: Sequence[int],
    distribution: BlockDistribution,
    grouping: ColumnGrouping,
    rank_of_group: Sequence[int],
    dirty_ranks: Sequence[int],
    new_id_of_old: np.ndarray,
    bytes_per_element: int = 8,
    per_group_dedup: bool = True,
    segment_index: Optional[Sequence[np.ndarray]] = None,
):
    """Incrementally replan the initialization exchange after a pattern patch.

    Instead of re-walking every rank's submatrices
    (:func:`plan_transfers`), only the ``dirty_ranks`` — those owning a
    group whose sub-pattern changed — re-run the per-group planning body.
    Every clean rank's requirements are *carried over*: its retained
    block sets are unchanged as (row, column) sets, so its byte volumes
    are verbatim those of ``previous`` and only the block IDs move, via
    the patch report's ``new_id_of_old`` remap.  Segment volumes are
    recomputed from ``segment_index`` when given (a cheap vectorized
    lookup — the expensive part is the per-group walk, not the volumes).

    Returns ``(plan, delta)``: a :class:`TransferPlan` equal to a full
    replan (property-tested), plus the :class:`TransferDelta` describing
    what an incremental exchange would actually ship — the newly required
    segments per rank rather than the whole initialization exchange.

    Parameters mirror :func:`plan_transfers`; ``dirty_ranks`` and
    ``new_id_of_old`` come from the plan patch
    (:class:`~repro.core.plan.PlanPatchReport` /
    :meth:`~repro.core.shard.ShardedPlan.patch`'s dirty-rank derivation).
    """
    block_sizes = np.asarray(list(block_sizes), dtype=int)
    rank_of_group = list(rank_of_group)
    if len(rank_of_group) != grouping.n_submatrices:
        raise ValueError("rank_of_group must assign a rank to every group")
    n_ranks = distribution.n_ranks
    if len(previous.per_rank) != n_ranks:
        raise ValueError("previous plan rank count does not match distribution")
    if segment_index is not None and len(segment_index) != n_ranks:
        raise ValueError("segment_index must provide one ID array per rank")
    new_id_of_old = np.asarray(new_id_of_old, dtype=np.int64)
    dirty = set(int(rank) for rank in dirty_ranks)

    tables = _PlanningTables.build(coo, block_sizes, distribution, bytes_per_element)
    want_segments = segment_index is not None
    groups_of_rank = _groups_of_rank(rank_of_group, n_ranks)

    per_rank: List[RankTransferSummary] = []
    fetch_matrix = np.zeros((n_ranks, n_ranks))
    writeback_matrix = np.zeros((n_ranks, n_ranks))
    segment_matrix = np.zeros((n_ranks, n_ranks)) if want_segments else None
    added_segments: List[np.ndarray] = []
    removed_counts = np.zeros(n_ranks, dtype=np.int64)
    added_bytes = np.zeros(n_ranks)

    for rank in range(n_ranks):
        old_summary = previous.per_rank[rank]
        old_in_new = new_id_of_old[old_summary.required_blocks]
        surviving = old_in_new[old_in_new >= 0]
        if rank in dirty:
            summary, fetch_column, writeback_row, segment_column = _plan_rank(
                rank,
                groups_of_rank[rank],
                tables,
                grouping,
                per_group_dedup,
                segment_index[rank] if segment_index is not None else None,
                False,
                n_ranks,
            )
            fetch_matrix[:, rank] = fetch_column
            writeback_matrix[rank] = writeback_row
            if segment_matrix is not None and segment_column is not None:
                segment_matrix[:, rank] = segment_column
        else:
            # a clean rank's groups kept their sub-patterns: the required
            # blocks survive with unchanged sizes and owners, so every
            # byte volume carries over verbatim and only the IDs move
            summary = dataclasses.replace(
                old_summary,
                required_blocks=np.sort(surviving),
                remote_blocks=np.sort(
                    new_id_of_old[old_summary.remote_blocks]
                ),
            )
            fetch_matrix[:, rank] = previous.fetch_matrix[:, rank]
            writeback_matrix[rank] = previous.writeback_matrix[rank]
            if segment_matrix is not None:
                segment_fetch, segment_column = _segment_volumes(
                    rank,
                    np.asarray(segment_index[rank], dtype=np.int64),
                    tables,
                    n_ranks,
                )
                segment_matrix[:, rank] = segment_column
                summary = dataclasses.replace(
                    summary, segment_fetch_bytes=segment_fetch
                )
        per_rank.append(summary)
        added = np.setdiff1d(summary.required_blocks, surviving)
        added_segments.append(added)
        # old requirements gone from the new plan: blocks deleted by the
        # patch plus surviving blocks this rank no longer needs
        removed_counts[rank] = old_summary.required_blocks.size - np.intersect1d(
            surviving, summary.required_blocks
        ).size
        if added.size:
            owners = tables.owners_by_id[added]
            remote = owners != rank
            added_bytes[rank] = float(tables.bytes_by_id[added][remote].sum())
    plan = TransferPlan(
        per_rank=per_rank,
        fetch_matrix=fetch_matrix,
        writeback_matrix=writeback_matrix,
        segment_fetch_matrix=segment_matrix,
    )
    delta = TransferDelta(
        dirty_ranks=frozenset(dirty),
        added_segments_per_rank=added_segments,
        removed_per_rank=removed_counts,
        added_fetch_bytes_per_rank=added_bytes,
        full_fetch_bytes=plan.total_fetch_bytes,
    )
    return plan, delta
