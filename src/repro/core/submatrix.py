"""Principal-submatrix extraction and result scatter-back.

This is the heart of the submatrix method (Sec. III-A of the paper):

1. For a set of generating columns C of the sparse symmetric matrix A, the
   retained index set R is the union of the rows with a non-zero entry in any
   column of C.  The principal submatrix a_C = A[R, R] is dense (or nearly
   dense) and much smaller than A in the linear-scaling regime.
2. After evaluating the matrix function f on a_C, only the columns of f(a_C)
   that correspond to the generating columns are copied back into the result
   matrix, and only at the rows that were non-zero in the corresponding input
   column — the result inherits the sparsity pattern of the input.

Both granularities used in the paper are supported: single matrix columns
(element-level, operating on ``scipy.sparse`` matrices) and DBCSR block
columns (block-level, operating on :class:`BlockSparseMatrix` or on a pure
block-sparsity pattern for the large pattern-only analyses).

These kernels are the *naive reference implementations*: they rebuild all
index bookkeeping on every call and move data with Python loops.  The
production hot path is the vectorized engine in :mod:`repro.core.plan`
(cached extraction plans) and :mod:`repro.core.batch` (bucketed batch
evaluation), which is property-tested to produce bitwise-identical results.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.coo import CooBlockList

__all__ = [
    "Submatrix",
    "extract_submatrix",
    "scatter_submatrix_result",
    "extract_block_submatrix",
    "scatter_block_submatrix_result",
    "submatrix_block_rows",
    "submatrix_dimension",
]


@dataclasses.dataclass
class Submatrix:
    """A principal submatrix together with its index bookkeeping.

    Attributes
    ----------
    generating_columns:
        The (element or block) columns this submatrix was generated for.
    indices:
        The retained (element or block) rows/columns, sorted ascending, in the
        indexing of the original matrix.
    local_columns:
        Positions of the generating columns inside ``indices``.
    data:
        The dense submatrix (``None`` for pattern-level extraction).
    block_sizes:
        For block-level submatrices, the sizes of the retained blocks (in the
        same order as ``indices``); ``None`` at element level.
    """

    generating_columns: np.ndarray
    indices: np.ndarray
    local_columns: np.ndarray
    data: Optional[np.ndarray] = None
    block_sizes: Optional[np.ndarray] = None

    @property
    def dimension(self) -> int:
        """Dense dimension of the submatrix."""
        if self.block_sizes is not None:
            return int(self.block_sizes.sum())
        return int(self.indices.size)

    @property
    def n_retained(self) -> int:
        """Number of retained (element or block) rows."""
        return int(self.indices.size)


# --------------------------------------------------------------------------- #
# element-level submatrices
# --------------------------------------------------------------------------- #
def extract_submatrix(
    matrix: sp.spmatrix, columns: Union[int, Sequence[int]]
) -> Submatrix:
    """Assemble the principal submatrix for one or several matrix columns.

    Parameters
    ----------
    matrix:
        Sparse symmetric matrix (any SciPy format; converted to CSC).
    columns:
        Generating column index or indices.

    Returns
    -------
    Submatrix
        With ``data`` filled as a dense array.
    """
    columns = np.atleast_1d(np.asarray(columns, dtype=int))
    csc = matrix.tocsc()
    if columns.size == 0:
        raise ValueError("at least one generating column is required")
    if columns.min() < 0 or columns.max() >= csc.shape[1]:
        raise IndexError("generating column out of range")
    row_sets = [csc.indices[csc.indptr[c] : csc.indptr[c + 1]] for c in columns]
    indices = np.unique(np.concatenate(row_sets + [columns]))
    # ensure the generating columns themselves are present even if their
    # diagonal entry is (numerically) zero
    local_columns = np.searchsorted(indices, columns)
    # two-step slicing (column slice, then row slice) is much faster than the
    # equivalent csc[np.ix_(indices, indices)] fancy indexing; the C-ordered
    # copy keeps the memory layout identical to the planned engine's buffers
    # so both paths feed BLAS bitwise-identical inputs
    data = np.ascontiguousarray(csc[:, indices][indices, :].toarray())
    return Submatrix(
        generating_columns=columns,
        indices=indices,
        local_columns=local_columns,
        data=data,
    )


def scatter_submatrix_result(
    result: Dict[int, Dict[int, float]],
    f_submatrix: np.ndarray,
    submatrix: Submatrix,
    input_csc: sp.csc_matrix,
) -> None:
    """Copy the relevant columns of f(a_C) into a result accumulator.

    Parameters
    ----------
    result:
        Nested dict ``result[column][row] = value`` collecting the columns of
        the approximate result matrix.
    f_submatrix:
        Dense f(a_C).
    submatrix:
        The submatrix bookkeeping produced by :func:`extract_submatrix`.
    input_csc:
        The original matrix in CSC format; its per-column sparsity pattern
        defines which rows of the result column are kept (the result retains
        the input sparsity pattern).
    """
    for column, local_column in zip(
        submatrix.generating_columns, submatrix.local_columns
    ):
        rows = input_csc.indices[
            input_csc.indptr[column] : input_csc.indptr[column + 1]
        ]
        local_rows = np.searchsorted(submatrix.indices, rows)
        values = f_submatrix[local_rows, local_column]
        column_store = result.setdefault(int(column), {})
        for row, value in zip(rows, values):
            column_store[int(row)] = float(value)


# --------------------------------------------------------------------------- #
# block-level submatrices
# --------------------------------------------------------------------------- #
def submatrix_block_rows(
    pattern_or_coo: Union[sp.spmatrix, CooBlockList],
    block_columns: Union[int, Sequence[int]],
) -> np.ndarray:
    """Non-zero block rows of the given block columns (sorted union).

    Accepts either a block-sparsity pattern matrix or a
    :class:`~repro.dbcsr.coo.CooBlockList`.
    """
    block_columns = np.atleast_1d(np.asarray(block_columns, dtype=int))
    if isinstance(pattern_or_coo, CooBlockList):
        rows = pattern_or_coo.blocks_in_columns(block_columns)
        rows = np.asarray(rows, dtype=int)
    else:
        csc = pattern_or_coo.tocsc()
        row_sets = [
            csc.indices[csc.indptr[c] : csc.indptr[c + 1]] for c in block_columns
        ]
        rows = np.unique(np.concatenate(row_sets)) if row_sets else np.empty(0, int)
    return np.unique(np.concatenate([rows, block_columns]))


def submatrix_dimension(
    pattern_or_coo: Union[sp.spmatrix, CooBlockList],
    block_sizes: Sequence[int],
    block_columns: Union[int, Sequence[int]],
) -> int:
    """Dense dimension of the submatrix generated by ``block_columns``.

    This is the quantity plotted in Fig. 4 of the paper (dim(SM)): the sum of
    the block sizes of all retained block rows.
    """
    block_sizes = np.asarray(list(block_sizes), dtype=int)
    rows = submatrix_block_rows(pattern_or_coo, block_columns)
    return int(block_sizes[rows].sum())


def extract_block_submatrix(
    matrix: BlockSparseMatrix,
    block_columns: Union[int, Sequence[int]],
    coo: Optional[CooBlockList] = None,
) -> Submatrix:
    """Assemble the dense submatrix for one or several DBCSR block columns.

    Parameters
    ----------
    matrix:
        The block-sparse input matrix (must have a square block structure).
    block_columns:
        Generating block column(s).
    coo:
        Optional pre-built COO block list (the global sparsity view); built
        on the fly when omitted.

    Returns
    -------
    Submatrix
        With ``data`` the dense submatrix, ``indices`` the retained block
        rows, ``block_sizes`` their sizes and ``local_columns`` the positions
        of the generating block columns within the retained blocks.
    """
    if not np.array_equal(matrix.row_block_sizes, matrix.col_block_sizes):
        raise ValueError("the submatrix method requires a square block structure")
    block_columns = np.atleast_1d(np.asarray(block_columns, dtype=int))
    if coo is None:
        coo = CooBlockList.from_block_matrix(matrix)
    retained = submatrix_block_rows(coo, block_columns)
    sizes = matrix.row_block_sizes[retained]
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    dimension = int(offsets[-1])
    data = np.zeros((dimension, dimension))
    position = {int(block): index for index, block in enumerate(retained)}
    for local_i, bi in enumerate(retained):
        for local_j, bj in enumerate(retained):
            block = matrix.get_block(int(bi), int(bj))
            if block is None:
                continue
            data[
                offsets[local_i] : offsets[local_i + 1],
                offsets[local_j] : offsets[local_j + 1],
            ] = block
    local_columns = np.array([position[int(c)] for c in block_columns], dtype=int)
    return Submatrix(
        generating_columns=block_columns,
        indices=retained,
        local_columns=local_columns,
        data=data,
        block_sizes=sizes,
    )


def scatter_block_submatrix_result(
    result: BlockSparseMatrix,
    f_submatrix: np.ndarray,
    submatrix: Submatrix,
    coo: CooBlockList,
) -> None:
    """Copy the generating block columns of f(a_C) back into ``result``.

    Only blocks that were non-zero in the input pattern are written (the
    approximate result retains the sparsity pattern of the input, step 3 of
    the method).  ``result`` must have the same block structure as the input
    matrix.
    """
    if submatrix.block_sizes is None:
        raise ValueError("scatter_block_submatrix_result requires a block submatrix")
    offsets = np.concatenate(([0], np.cumsum(submatrix.block_sizes)))
    retained = submatrix.indices
    for column, local_column in zip(
        submatrix.generating_columns, submatrix.local_columns
    ):
        column_rows = np.asarray(coo.blocks_in_column(int(column)), dtype=int)
        c0, c1 = offsets[local_column], offsets[local_column + 1]
        # one vectorized lookup per generating column instead of one
        # searchsorted call per block row
        local_rows = np.searchsorted(retained, column_rows)
        for bi, local_row in zip(column_rows, local_rows):
            r0, r1 = offsets[local_row], offsets[local_row + 1]
            result.put_block(int(bi), int(column), f_submatrix[r0:r1, c0:c1])
