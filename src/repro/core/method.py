"""End-to-end submatrix evaluation of a matrix function.

:class:`SubmatrixMethod` wires together submatrix extraction, evaluation of
an arbitrary unary matrix function on every (dense) submatrix, and the
scatter-back of the generating columns into a sparse result with the input's
sparsity pattern.  It supports both granularities used in the paper:

* element level — one submatrix per matrix column (or per group of columns),
  operating on ``scipy.sparse`` matrices; this matches the original
  formulation of the submatrix method;
* block level — one submatrix per DBCSR block column (or per group of block
  columns), operating on :class:`BlockSparseMatrix`; this is the granularity
  of the CP2K implementation (Sec. IV-C).

Three execution engines are available (``engine=`` on the constructor or per
call):

* ``"naive"`` — the reference implementation: per-call index bookkeeping,
  Python block loops and dict accumulators (kept for equivalence testing
  and as executable documentation of the method);
* ``"plan"`` (default) — the vectorized engine of :mod:`repro.core.plan`:
  gather/scatter index arrays are precomputed once per (pattern, grouping)
  and cached, every extraction/scatter is a single vectorized operation,
  and the result is assembled zero-copy.  Bitwise identical to ``"naive"``;
* ``"batched"`` — the plan engine plus the bucketed batch evaluator of
  :mod:`repro.core.batch`: submatrices of equal (or padded-to-bucket)
  dimension are stacked into 3-D arrays and evaluated with one batched call
  per stack (supply ``batch_function`` for a truly batched kernel).

The per-submatrix evaluations are embarrassingly parallel and can be executed
on a thread or process pool.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.core.batch import evaluate_batched
from repro.core.load_balance import resolve_bucket_pad
from repro.core.plan import (
    PlanCache,
    SubmatrixPlan,
    block_plan,
    element_plan,
)
from repro.core.submatrix import (
    extract_block_submatrix,
    extract_submatrix,
    scatter_block_submatrix_result,
    scatter_submatrix_result,
)
from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.coo import CooBlockList
from repro.parallel.executor import map_parallel

__all__ = ["SubmatrixMethod", "SubmatrixMethodResult"]

MatrixFunction = Callable[[np.ndarray], np.ndarray]

ENGINES = ("naive", "plan", "batched")


@dataclasses.dataclass
class SubmatrixMethodResult:
    """Result of an approximate matrix-function evaluation.

    Attributes
    ----------
    result:
        The approximate f(A) with the sparsity pattern of A (CSR matrix for
        element-level evaluation, :class:`BlockSparseMatrix` for block-level).
    submatrix_dimensions:
        Dense dimension of every submatrix that was solved.
    wall_time:
        Wall-clock seconds spent (extraction + evaluation + scatter).
    flop_estimate:
        Σ c·n_i³ estimate of the evaluation cost with c = 1 (callers rescale
        with their solver's constant); this is the cost model used for load
        balancing and for the combination heuristic (Eq. 14).
    """

    result: Union[sp.csr_matrix, BlockSparseMatrix]
    submatrix_dimensions: List[int]
    wall_time: float
    flop_estimate: float

    @property
    def n_submatrices(self) -> int:
        return len(self.submatrix_dimensions)

    @property
    def max_dimension(self) -> int:
        return max(self.submatrix_dimensions) if self.submatrix_dimensions else 0


class SubmatrixMethod:
    """Approximate evaluation of a matrix function via the submatrix method.

    Parameters
    ----------
    function:
        Unary matrix function applied to each dense submatrix, e.g.
        ``lambda a: sign_via_eigendecomposition(a, mu)``.
    max_workers:
        Worker count for the parallel evaluation of submatrices.
    backend:
        ``"serial"`` (default, deterministic), ``"thread"`` or ``"process"``.
    engine:
        Default execution engine: ``"naive"``, ``"plan"`` or ``"batched"``.
    batch_function:
        Optional batched kernel ``(k, d, d) -> (k, d, d)`` used by the
        ``"batched"`` engine; without it the stack is evaluated with one
        ``function`` call per slice (extraction/scatter stay vectorized).
    bucket_pad:
        Padding granularity for the ``"batched"`` engine (see
        :func:`repro.core.batch.make_buckets`); padding requires ``function``
        to be a genuine matrix function.  ``"auto"`` picks the granularity
        from the plan's measured dimension histogram
        (:func:`repro.core.load_balance.choose_bucket_pad`).
    plan_cache:
        Optional private :class:`~repro.core.plan.PlanCache`; the process-wide
        default cache is used when omitted.
    """

    def __init__(
        self,
        function: MatrixFunction,
        max_workers: Optional[int] = None,
        backend: str = "serial",
        engine: str = "plan",
        batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        bucket_pad: Optional[Union[int, str]] = None,
        plan_cache: Optional[PlanCache] = None,
    ):
        if not callable(function):
            raise TypeError("function must be callable")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")
        self.function = function
        self.max_workers = max_workers
        self.backend = backend
        self.engine = engine
        self.batch_function = batch_function
        self.bucket_pad = bucket_pad
        self.plan_cache = plan_cache

    # ------------------------------------------------------------------ #
    # element level
    # ------------------------------------------------------------------ #
    def apply_elementwise(
        self,
        matrix: sp.spmatrix,
        column_groups: Optional[Sequence[Sequence[int]]] = None,
        engine: Optional[str] = None,
        plan: Optional[SubmatrixPlan] = None,
    ) -> SubmatrixMethodResult:
        """Apply the matrix function column-by-column on a SciPy matrix.

        Parameters
        ----------
        matrix:
            Sparse symmetric matrix.
        column_groups:
            Groups of columns that share a submatrix; defaults to one
            submatrix per column (the original formulation).
        engine:
            Per-call engine override.
        plan:
            Pre-built :class:`~repro.core.plan.ElementSubmatrixPlan` to reuse
            (skips the cache lookup).
        """
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("the submatrix method requires a square matrix")
        engine = self._resolve_engine(engine)
        start = time.perf_counter()
        csc = matrix.tocsc()
        n = csc.shape[1]
        if column_groups is None:
            column_groups = [[c] for c in range(n)]
        self._validate_groups(column_groups, n)
        if engine == "naive":
            result, dimensions = self._apply_elementwise_naive(csc, column_groups)
        else:
            if plan is None:
                plan = element_plan(csc, column_groups, cache=self.plan_cache)
            result, dimensions = self._apply_planned(csc, plan, engine)
        wall = time.perf_counter() - start
        return SubmatrixMethodResult(
            result=result,
            submatrix_dimensions=dimensions,
            wall_time=wall,
            flop_estimate=float(sum(float(d) ** 3 for d in dimensions)),
        )

    def _apply_elementwise_naive(
        self, csc: sp.csc_matrix, column_groups: Sequence[Sequence[int]]
    ):
        """Reference path: per-call extraction and dict-of-dict accumulation."""

        def solve(group: Sequence[int]):
            submatrix = extract_submatrix(csc, group)
            evaluated = self.function(submatrix.data)
            return submatrix, np.asarray(evaluated, dtype=float)

        solved = map_parallel(
            solve, list(column_groups), self.max_workers, self.backend
        )
        accumulator: dict = {}
        dimensions: List[int] = []
        for submatrix, evaluated in solved:
            self._check_shape(submatrix.dimension, evaluated)
            dimensions.append(submatrix.dimension)
            scatter_submatrix_result(accumulator, evaluated, submatrix, csc)
        return self._assemble_csr(accumulator, csc.shape[1]), dimensions

    # ------------------------------------------------------------------ #
    # block level
    # ------------------------------------------------------------------ #
    def apply_blockwise(
        self,
        matrix: BlockSparseMatrix,
        column_groups: Optional[Sequence[Sequence[int]]] = None,
        coo: Optional[CooBlockList] = None,
        engine: Optional[str] = None,
        plan: Optional[SubmatrixPlan] = None,
    ) -> SubmatrixMethodResult:
        """Apply the matrix function block-column-wise on a DBCSR-style matrix.

        Parameters
        ----------
        matrix:
            Block-sparse symmetric matrix.
        column_groups:
            Groups of block columns that share a submatrix; defaults to one
            submatrix per block column (the granularity CP2K gets "for free"
            because sparsity is only resolved at block level, Sec. IV-C).
        coo:
            Optional pre-built global COO block list.
        engine:
            Per-call engine override.
        plan:
            Pre-built :class:`~repro.core.plan.BlockSubmatrixPlan` to reuse.
        """
        engine = self._resolve_engine(engine)
        start = time.perf_counter()
        if coo is None:
            coo = CooBlockList.from_block_matrix(matrix)
        n_block_cols = matrix.n_block_cols
        if column_groups is None:
            column_groups = [[c] for c in range(n_block_cols)]
        self._validate_groups(column_groups, n_block_cols)
        if engine == "naive":
            result, dimensions = self._apply_blockwise_naive(
                matrix, column_groups, coo
            )
        else:
            if plan is None:
                plan = block_plan(
                    coo,
                    matrix.row_block_sizes,
                    column_groups,
                    cache=self.plan_cache,
                )
            result, dimensions = self._apply_planned(matrix, plan, engine)
        wall = time.perf_counter() - start
        return SubmatrixMethodResult(
            result=result,
            submatrix_dimensions=dimensions,
            wall_time=wall,
            flop_estimate=float(sum(float(d) ** 3 for d in dimensions)),
        )

    def _apply_blockwise_naive(
        self,
        matrix: BlockSparseMatrix,
        column_groups: Sequence[Sequence[int]],
        coo: CooBlockList,
    ):
        """Reference path: per-call block loops and copying scatter."""

        def solve(group: Sequence[int]):
            submatrix = extract_block_submatrix(matrix, group, coo)
            evaluated = self.function(submatrix.data)
            return submatrix, np.asarray(evaluated, dtype=float)

        solved = map_parallel(
            solve, list(column_groups), self.max_workers, self.backend
        )
        result = BlockSparseMatrix(matrix.row_block_sizes, matrix.col_block_sizes)
        dimensions: List[int] = []
        for submatrix, evaluated in solved:
            self._check_shape(submatrix.dimension, evaluated)
            dimensions.append(submatrix.dimension)
            scatter_block_submatrix_result(result, evaluated, submatrix, coo)
        return result, dimensions

    # ------------------------------------------------------------------ #
    # plan / batched engines (granularity-agnostic)
    # ------------------------------------------------------------------ #
    def _apply_planned(self, matrix, plan: SubmatrixPlan, engine: str):
        """Evaluate through a plan: pack, gather, evaluate, scatter, finalize."""
        packed = plan.pack(matrix)
        dimensions = plan.dimensions
        out = plan.new_output()
        if engine == "batched":
            # stacks are scattered straight into the output buffer, one
            # vectorized write per stack
            evaluate_batched(
                plan,
                packed,
                function=self.function,
                batch_function=self.batch_function,
                pad_to=resolve_bucket_pad(self.bucket_pad, dimensions),
                max_workers=self.max_workers,
                backend=self.backend,
                out=out,
            )
        else:

            def solve(group_index: int) -> np.ndarray:
                dense = plan.extract(packed, group_index)
                return np.asarray(self.function(dense), dtype=float)

            evaluated = map_parallel(
                solve, list(range(plan.n_groups)), self.max_workers, self.backend
            )
            for group_index, f_submatrix in enumerate(evaluated):
                self._check_shape(dimensions[group_index], f_submatrix)
                plan.scatter(out, group_index, f_submatrix)
        return plan.finalize(out), list(dimensions)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _resolve_engine(self, engine: Optional[str]) -> str:
        engine = engine or self.engine
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")
        return engine

    @staticmethod
    def _validate_groups(groups: Sequence[Sequence[int]], n_columns: int) -> None:
        seen = np.zeros(n_columns, dtype=bool)
        for group in groups:
            if len(group) == 0:
                raise ValueError("column groups must be non-empty")
            for column in group:
                if not 0 <= column < n_columns:
                    raise IndexError(f"column {column} out of range")
                if seen[column]:
                    raise ValueError(f"column {column} appears in more than one group")
                seen[column] = True
        if not np.all(seen):
            missing = int(np.flatnonzero(~seen)[0])
            raise ValueError(f"column {missing} is not covered by any group")

    @staticmethod
    def _check_shape(dimension: int, evaluated: np.ndarray) -> None:
        expected = (dimension, dimension)
        if evaluated.shape != expected:
            raise ValueError(
                f"matrix function returned shape {evaluated.shape}, "
                f"expected {expected}"
            )

    @staticmethod
    def _assemble_csr(accumulator: dict, n: int) -> sp.csr_matrix:
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []
        for column, column_store in accumulator.items():
            for row, value in column_store.items():
                rows.append(row)
                cols.append(column)
                values.append(value)
        return sp.coo_matrix((values, (rows, cols)), shape=(n, n)).tocsr()
