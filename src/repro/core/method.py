"""End-to-end submatrix evaluation of a matrix function (legacy facade).

:class:`SubmatrixMethod` is the historical entry point for evaluating an
arbitrary unary matrix function on every (dense) submatrix and scattering
the generating columns back into a sparse result.  Since the session API
refactor it is a thin facade over :class:`repro.api.context.SubmatrixContext`:
the constructor folds its keyword arguments into an
:class:`~repro.api.config.EngineConfig` and every call delegates to a
private context, so results are bitwise identical to
``SubmatrixContext.apply`` and both surfaces share one implementation.

It supports both granularities used in the paper:

* element level — one submatrix per matrix column (or per group of columns),
  operating on ``scipy.sparse`` matrices; this matches the original
  formulation of the submatrix method;
* block level — one submatrix per DBCSR block column (or per group of block
  columns), operating on :class:`BlockSparseMatrix`; this is the granularity
  of the CP2K implementation (Sec. IV-C).

Three execution engines are available (``engine=`` on the constructor or per
call): ``"naive"`` (the reference implementation), ``"plan"`` (default; the
cached vectorized engine of :mod:`repro.core.plan`, bitwise identical to
``"naive"``) and ``"batched"`` (plan plus the bucketed batch evaluator of
:mod:`repro.core.batch`).

New code should prefer the session API directly — one
:class:`~repro.api.context.SubmatrixContext` amortizes plans and worker
pools across many evaluations and accepts registered kernel names
(``context.apply(matrix, "eigen", mu=0.2)``).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.api.config import ENGINES, EngineConfig
from repro.api.results import SubmatrixMethodResult
from repro.core.plan import PlanCache, SubmatrixPlan
from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.coo import CooBlockList

__all__ = ["SubmatrixMethod", "SubmatrixMethodResult", "ENGINES"]

#: Legacy type alias; the registry's :class:`repro.signfn.registry.MatrixFunction`
#: is the named-kernel counterpart of this bare-callable contract.
MatrixFunction = Callable[[np.ndarray], np.ndarray]

_UNSET = object()


class SubmatrixMethod:
    """Approximate evaluation of a matrix function via the submatrix method.

    Parameters
    ----------
    function:
        Unary matrix function applied to each dense submatrix, e.g.
        ``lambda a: sign_via_eigendecomposition(a, mu)``, or the name of a
        registered kernel (``"eigen"``, ``"newton_schulz"``, …).
    max_workers:
        Worker count for the parallel evaluation of submatrices.
    backend:
        ``"serial"`` (default, deterministic), ``"thread"`` or ``"process"``.
    engine:
        Default execution engine: ``"naive"``, ``"plan"`` or ``"batched"``.
    batch_function:
        Optional batched kernel ``(k, d, d) -> (k, d, d)`` used by the
        ``"batched"`` engine; without it the stack is evaluated with one
        ``function`` call per slice (extraction/scatter stay vectorized).
    bucket_pad:
        Padding granularity for the ``"batched"`` engine (see
        :func:`repro.core.batch.make_buckets`); padding requires ``function``
        to be a genuine matrix function.  ``"auto"`` picks the granularity
        from the plan's measured dimension histogram
        (:func:`repro.core.load_balance.choose_bucket_pad`).
    plan_cache:
        Optional private :class:`~repro.core.plan.PlanCache`; the process-wide
        default cache is used when omitted.
    config:
        An :class:`~repro.api.config.EngineConfig` supplying all of the
        above at once; individual keyword arguments override its fields.
    """

    def __init__(
        self,
        function: Union[MatrixFunction, str],
        max_workers=_UNSET,
        backend=_UNSET,
        engine=_UNSET,
        batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        bucket_pad=_UNSET,
        plan_cache: Optional[PlanCache] = None,
        config: Optional[EngineConfig] = None,
    ):
        if isinstance(function, str):
            from repro.signfn.registry import get_kernel

            get_kernel(function)  # fail fast (UnknownKernelError) on typos
        elif not callable(function):
            raise TypeError("function must be callable")
        if config is None:
            config = EngineConfig()
        # only explicitly passed kwargs override the config; the sentinel
        # keeps default-valued explicit kwargs (engine="plan", ...) working
        overrides = {}
        if engine is not _UNSET:
            overrides["engine"] = engine
        if backend is not _UNSET:
            overrides["backend"] = backend
        if max_workers is not _UNSET:
            overrides["max_workers"] = max_workers
        if bucket_pad is not _UNSET:
            overrides["bucket_pad"] = bucket_pad
        if overrides:
            config = config.replace(**overrides)
        from repro.api.context import SubmatrixContext
        from repro.core.plan import DEFAULT_PLAN_CACHE

        self.function = function
        self.batch_function = batch_function
        # legacy contract: the process-wide default cache when none is given
        # (a SubmatrixContext built directly owns a private cache instead)
        self.context = SubmatrixContext(
            config,
            plan_cache=DEFAULT_PLAN_CACHE if plan_cache is None else plan_cache,
        )

    # legacy attribute surface, now views into the session config
    @property
    def config(self) -> EngineConfig:
        return self.context.config

    @property
    def max_workers(self) -> Optional[int]:
        return self.config.max_workers

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def engine(self) -> str:
        return self.config.engine

    @property
    def bucket_pad(self) -> Optional[Union[int, str]]:
        return self.config.bucket_pad

    @property
    def plan_cache(self) -> PlanCache:
        return self.context.plan_cache

    def close(self) -> None:
        """Shut down the private session's persistent executor (idempotent)."""
        self.context.close()

    def __enter__(self) -> "SubmatrixMethod":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # element level
    # ------------------------------------------------------------------ #
    def apply_elementwise(
        self,
        matrix: sp.spmatrix,
        column_groups: Optional[Sequence[Sequence[int]]] = None,
        engine: Optional[str] = None,
        plan: Optional[SubmatrixPlan] = None,
    ) -> SubmatrixMethodResult:
        """Apply the matrix function column-by-column on a SciPy matrix.

        Parameters
        ----------
        matrix:
            Sparse symmetric matrix.
        column_groups:
            Groups of columns that share a submatrix; defaults to one
            submatrix per column (the original formulation).
        engine:
            Per-call engine override.
        plan:
            Pre-built :class:`~repro.core.plan.ElementSubmatrixPlan` to reuse
            (skips the cache lookup).
        """
        return self.context.apply_elementwise(
            matrix,
            self.function,
            column_groups=column_groups,
            engine=engine,
            batch_function=self.batch_function,
            plan=plan,
        )

    # ------------------------------------------------------------------ #
    # block level
    # ------------------------------------------------------------------ #
    def apply_blockwise(
        self,
        matrix: BlockSparseMatrix,
        column_groups: Optional[Sequence[Sequence[int]]] = None,
        coo: Optional[CooBlockList] = None,
        engine: Optional[str] = None,
        plan: Optional[SubmatrixPlan] = None,
    ) -> SubmatrixMethodResult:
        """Apply the matrix function block-column-wise on a DBCSR-style matrix.

        Parameters
        ----------
        matrix:
            Block-sparse symmetric matrix.
        column_groups:
            Groups of block columns that share a submatrix; defaults to one
            submatrix per block column (the granularity CP2K gets "for free"
            because sparsity is only resolved at block level, Sec. IV-C).
        coo:
            Optional pre-built global COO block list.
        engine:
            Per-call engine override.
        plan:
            Pre-built :class:`~repro.core.plan.BlockSubmatrixPlan` to reuse.
        """
        return self.context.apply_blockwise(
            matrix,
            self.function,
            column_groups=column_groups,
            coo=coo,
            engine=engine,
            batch_function=self.batch_function,
            plan=plan,
        )
