"""Splitting submatrices into sub-submatrices (Sec. IV-C1).

A block-column submatrix assembled at DBCSR granularity is stored densely but
may itself still be sparse at the element level.  The paper notes that the
submatrix method can be applied *a second time* inside such a submatrix, at
the level of single columns: because only the columns that originate from the
generating block column contribute to the overall result, it suffices to
build and solve sub-submatrices for exactly those columns.

:func:`split_submatrix_solve` implements this: given the dense submatrix, the
local element columns that must be produced and a matrix function, it builds
one element-level sub-submatrix per needed column (from the element sparsity
of the dense submatrix), evaluates the function on each, and assembles the
needed columns of the result.  :func:`splitting_flop_estimate` exposes the
Σ n³ comparison that decides whether splitting is worthwhile.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.submatrix import extract_submatrix

__all__ = [
    "SplitSolveResult",
    "split_submatrix_solve",
    "splitting_flop_estimate",
]

MatrixFunction = Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass
class SplitSolveResult:
    """Result of solving a submatrix by splitting into sub-submatrices.

    Attributes
    ----------
    columns:
        The dense result columns that were requested, as a (dimension,
        n_columns) array in the order of the requested column indices.
    sub_dimensions:
        Dimension of every sub-submatrix that was solved.
    flop_estimate:
        Σ n³ over the sub-submatrices (c = 1).
    """

    columns: np.ndarray
    sub_dimensions: List[int]
    flop_estimate: float


def split_submatrix_solve(
    submatrix: np.ndarray,
    needed_columns: Sequence[int],
    function: MatrixFunction,
    element_threshold: float = 0.0,
) -> SplitSolveResult:
    """Evaluate ``function`` for selected columns via sub-submatrices.

    Parameters
    ----------
    submatrix:
        Dense (block-level) submatrix a_i.
    needed_columns:
        Local column indices whose result columns are required (the columns
        originating from the generating block column).
    function:
        Unary matrix function applied to each dense sub-submatrix.
    element_threshold:
        Elements of ``submatrix`` with absolute value <= this threshold are
        treated as zero when determining the sub-submatrix supports.

    Returns
    -------
    SplitSolveResult
        The requested result columns (rows outside a column's sparsity
        support are zero, mirroring the outer submatrix method's behaviour)
        plus the cost bookkeeping.
    """
    submatrix = np.asarray(submatrix, dtype=float)
    if submatrix.ndim != 2 or submatrix.shape[0] != submatrix.shape[1]:
        raise ValueError("submatrix must be square")
    needed_columns = np.asarray(list(needed_columns), dtype=int)
    if needed_columns.size == 0:
        raise ValueError("at least one needed column is required")
    dimension = submatrix.shape[0]
    if needed_columns.min() < 0 or needed_columns.max() >= dimension:
        raise IndexError("needed column out of range")

    masked = np.where(np.abs(submatrix) > element_threshold, submatrix, 0.0)
    sparse = sp.csc_matrix(masked)
    result = np.zeros((dimension, needed_columns.size))
    sub_dimensions: List[int] = []
    for output_index, column in enumerate(needed_columns):
        sub = extract_submatrix(sparse, int(column))
        evaluated = np.asarray(function(sub.data), dtype=float)
        if evaluated.shape != sub.data.shape:
            raise ValueError(
                f"matrix function returned shape {evaluated.shape}, "
                f"expected {sub.data.shape}"
            )
        local_column = int(sub.local_columns[0])
        result[sub.indices, output_index] = evaluated[:, local_column]
        sub_dimensions.append(sub.dimension)
    return SplitSolveResult(
        columns=result,
        sub_dimensions=sub_dimensions,
        flop_estimate=float(sum(float(d) ** 3 for d in sub_dimensions)),
    )


def splitting_flop_estimate(
    submatrix: np.ndarray,
    needed_columns: Sequence[int],
    element_threshold: float = 0.0,
) -> float:
    """Estimated relative cost of splitting vs. solving the whole submatrix.

    Returns Σ n_sub³ / n³: values below 1 mean splitting into per-column
    sub-submatrices is expected to be cheaper than one dense solve of the
    full submatrix (ignoring constant factors).
    """
    submatrix = np.asarray(submatrix, dtype=float)
    dimension = submatrix.shape[0]
    masked = np.where(np.abs(submatrix) > element_threshold, submatrix, 0.0)
    sparse = sp.csc_matrix(masked)
    total = 0.0
    for column in needed_columns:
        sub_dimension = sparse[:, int(column)].nnz
        total += float(sub_dimension) ** 3
    return total / float(dimension) ** 3
