"""Bucketed batch evaluation of planned submatrices.

One Python call into NumPy/LAPACK per submatrix leaves most of the wall time
in interpreter overhead once the submatrices are small (the common case in
the linear-scaling regime, where dimensions saturate around a few hundred —
Fig. 4 of the paper).  This module groups the submatrices of a
:class:`~repro.core.plan.SubmatrixPlan` into *buckets* of equal dense
dimension, stacks every bucket into one contiguous 3-D array of shape
``(k, d, d)``, and evaluates the matrix function with a single batched call
per stack (``numpy.linalg.eigh`` and the ``@`` operator broadcast over the
leading axis, dispatching one C-level loop instead of ``k`` Python calls).

Submatrices of unequal dimension can optionally share a bucket by padding to
a common bucket dimension: a submatrix ``a`` of dimension ``d < b`` is
embedded as ``blockdiag(a, pad_value·I)``.  Because block-diagonal structure
is invariant under any (analytic) matrix function, the top-left ``d×d``
corner of ``f(blockdiag(a, c·I))`` equals ``f(a)`` exactly — padding is
only valid for genuine matrix functions, not for arbitrary elementwise
callables, which must use ``pad_to=None``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.load_balance import pad_dimensions
from repro.core.plan import SubmatrixPlan
from repro.parallel.executor import map_parallel, split_chunks

__all__ = [
    "Bucket",
    "make_buckets",
    "make_stack_tasks",
    "count_stack_tasks",
    "evaluate_batched",
]

#: Soft cap on the element count of one 3-D stack (k·d² ≤ this); large
#: buckets are split into several stacks to bound peak memory.
MAX_BATCH_ELEMENTS = 1 << 24


@dataclasses.dataclass
class Bucket:
    """A set of submatrices evaluated together as one 3-D stack.

    Attributes
    ----------
    dimension:
        Common (padded) dense dimension of the stack.
    members:
        Indices of the plan groups in this bucket, in plan order.
    """

    dimension: int
    members: List[int]


def make_buckets(
    dimensions: Sequence[int], pad_to: Optional[int] = None
) -> List[Bucket]:
    """Bucket submatrix dimensions for batched evaluation.

    Parameters
    ----------
    dimensions:
        Dense dimension of every submatrix, in plan order.
    pad_to:
        If given, dimensions are rounded up to the next multiple of
        ``pad_to`` and submatrices sharing a rounded dimension share a
        bucket (fewer, larger stacks at the cost of padded flops).  With
        ``None`` only exactly equal dimensions are batched.
    """
    by_dim: Dict[int, List[int]] = {}
    for index, key in enumerate(pad_dimensions(dimensions, pad_to)):
        by_dim.setdefault(int(key), []).append(index)
    return [Bucket(dimension=dim, members=by_dim[dim]) for dim in sorted(by_dim)]


def make_stack_tasks(
    dimensions: Sequence[int],
    pad_to: Optional[int] = None,
    max_batch_elements: int = MAX_BATCH_ELEMENTS,
) -> List[Bucket]:
    """Buckets split into memory-capped stack tasks.

    Each returned bucket obeys ``k·d² ≤ max_batch_elements`` (at least one
    member per stack), which bounds the peak size of one 3-D stack and keeps
    enough independent tasks around for the worker pool.
    """
    tasks: List[Bucket] = []
    for bucket in make_buckets(dimensions, pad_to=pad_to):
        per_stack = max(1, max_batch_elements // max(1, bucket.dimension**2))
        for chunk in split_chunks(bucket.members, per_stack):
            tasks.append(Bucket(dimension=bucket.dimension, members=chunk))
    return tasks


def count_stack_tasks(
    dimensions: Sequence[int],
    pad_to: Optional[int] = None,
    max_batch_elements: int = MAX_BATCH_ELEMENTS,
) -> int:
    """Number of stack tasks :func:`make_stack_tasks` would produce.

    Arithmetic only — no task objects are built, so callers that merely
    report the stack count (e.g. the pipeline's per-rank summaries) don't
    duplicate the bucketing work the evaluator performs anyway.
    """
    total = 0
    for bucket in make_buckets(dimensions, pad_to=pad_to):
        per_stack = max(1, max_batch_elements // max(1, bucket.dimension**2))
        total += -(-len(bucket.members) // per_stack)
    return total


def evaluate_batched(
    plan: SubmatrixPlan,
    packed: np.ndarray,
    function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    batch_function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    pad_to: Optional[int] = None,
    pad_value: float = 1.0,
    max_batch_elements: int = MAX_BATCH_ELEMENTS,
    max_workers: Optional[int] = None,
    backend: str = "serial",
    out: Optional[np.ndarray] = None,
    executor=None,
    xp=None,
) -> Optional[List[np.ndarray]]:
    """Evaluate f on every planned submatrix via bucketed 3-D stacks.

    Parameters
    ----------
    plan:
        The extraction plan (element or block level).
    packed:
        Packed input values from ``plan.pack(matrix)``.
    function:
        Per-matrix fallback ``f(a) -> f_a``; used when ``batch_function`` is
        not given (the stack is still assembled once, so extraction stays
        vectorized).
    batch_function:
        Batched kernel mapping a ``(k, d, d)`` stack to the ``(k, d, d)``
        stack of results, e.g.
        :func:`repro.signfn.eigen.sign_via_eigendecomposition_batched`.
    pad_to:
        Bucket padding granularity (see :func:`make_buckets`); requires a
        genuine matrix function.
    pad_value:
        Diagonal value of the padding block (must be in f's domain; the
        default 1.0 suits sign/occupation functions).
    max_batch_elements:
        Soft cap on ``k·d²`` per stack.
    max_workers, backend, executor:
        Stacks are independent and dispatched through
        :func:`repro.parallel.executor.map_parallel`; a pre-built
        ``executor`` is reused across calls instead of creating a pool per
        evaluation.
    out:
        Optional preallocated packed output vector (``plan.new_output()``).
        When given, every evaluated stack is scattered straight into it with
        one vectorized write per stack (zero-copy path) and the function
        returns ``None``; finalize with ``plan.finalize(out)``.
    xp:
        Optional :class:`~repro.backend.base.ArrayBackend` the extracted
        stacks are moved onto before the kernel call (``xp.asarray``).
        ``None`` (default) hands the kernels the packed NumPy stacks
        directly — the pre-seam behaviour, bitwise unchanged.  Either way
        the evaluated stacks are coerced back to the packed buffer's dtype
        for validation and scatter.

    Returns
    -------
    list or None
        ``f(a_i)`` for every plan group in plan order, or ``None`` when
        ``out`` was given.
    """
    if function is None and batch_function is None:
        raise ValueError("provide function or batch_function")
    dimensions = plan.dimensions
    tasks = make_stack_tasks(
        dimensions, pad_to=pad_to, max_batch_elements=max_batch_elements
    )

    def run(task: Bucket) -> Optional[List[np.ndarray]]:
        stack_dim = task.dimension
        stack = plan.extract_stack(
            packed, task.members, stack_dim, pad_value=pad_value
        )
        kernel_stack = stack if xp is None else xp.asarray(stack)
        if batch_function is not None:
            evaluated = np.asarray(batch_function(kernel_stack), dtype=stack.dtype)
        else:
            evaluated = np.stack(
                [
                    np.asarray(function(kernel_stack[slot]), dtype=stack.dtype)
                    for slot in range(len(task.members))
                ]
            )
        if evaluated.shape != stack.shape:
            raise ValueError(
                f"batched matrix function returned shape {evaluated.shape}, "
                f"expected {stack.shape}"
            )
        if out is not None:
            plan.scatter_stack(out, task.members, evaluated, stack_dim)
            return None
        return [
            np.ascontiguousarray(
                evaluated[slot, : dimensions[gi], : dimensions[gi]]
            )
            for slot, gi in enumerate(task.members)
        ]

    per_task = map_parallel(run, tasks, max_workers, backend, executor=executor)
    if out is not None:
        return None
    results: List[Optional[np.ndarray]] = [None] * plan.n_groups
    for task, task_results in zip(tasks, per_task):
        for group_index, value in zip(task.members, task_results):
            results[group_index] = value
    return results  # type: ignore[return-value]
