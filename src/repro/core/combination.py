"""Grouping of block columns into combined submatrices (Sec. IV-C).

The submatrix method leaves a trade-off: generating one submatrix per block
column minimises the dimension of each submatrix but maximises their number
(and the redundant work between overlapping submatrices); combining several
block columns into one submatrix reduces the total number of submatrices N_S
at the cost of somewhat larger dimensions.  The paper quantifies the benefit
with the estimated speedup (Eq. 15)

    S = Σ_i ñ_i³  /  Σ_i n_i³

where ñ_i are the submatrix dimensions for single block columns and n_i the
dimensions of the combined submatrices, assuming O(n³) cost per submatrix
(Eq. 14).

Two grouping heuristics are proposed and reproduced here (Fig. 5):

* k-means clustering of the real-space coordinates of the block columns,
* graph partitioning of the block-sparsity pattern (METIS in the paper,
  the greedy partitioner of :mod:`repro.clustering.graph_partition` here),

plus the simple greedy chunking of consecutive block columns that the paper
actually used in its CP2K measurements (Sec. V: "submatrices have instead
been combined based on a simple greedy heuristic that only considers using a
single block column or combining multiples of these basic regions").
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.clustering.graph_partition import partition_graph
from repro.clustering.kmeans import kmeans
from repro.core.submatrix import submatrix_dimension
from repro.dbcsr.coo import CooBlockList

__all__ = [
    "ColumnGrouping",
    "single_column_groups",
    "group_columns_kmeans",
    "group_columns_graph",
    "group_columns_greedy_chunks",
    "groups_from_labels",
    "estimated_speedup",
]

PatternLike = Union[sp.spmatrix, CooBlockList]


@dataclasses.dataclass
class ColumnGrouping:
    """A grouping of block columns into submatrices.

    Attributes
    ----------
    groups:
        List of lists of block-column indices; every block column appears in
        exactly one group.
    method:
        Human-readable name of the heuristic that produced the grouping.
    """

    groups: List[List[int]]
    method: str = "custom"

    @property
    def n_submatrices(self) -> int:
        return len(self.groups)

    def validate(self, n_columns: int) -> None:
        """Check that the grouping is a partition of range(n_columns)."""
        seen = np.zeros(n_columns, dtype=bool)
        for group in self.groups:
            if not group:
                raise ValueError("groups must be non-empty")
            for column in group:
                if not 0 <= column < n_columns:
                    raise IndexError(f"block column {column} out of range")
                if seen[column]:
                    raise ValueError(f"block column {column} in more than one group")
                seen[column] = True
        if not bool(np.all(seen)):
            missing = int(np.flatnonzero(~seen)[0])
            raise ValueError(f"block column {missing} not covered by any group")

    def submatrix_dimensions(
        self, pattern: PatternLike, block_sizes: Sequence[int]
    ) -> List[int]:
        """Dense dimension of every combined submatrix."""
        return [
            submatrix_dimension(pattern, block_sizes, group) for group in self.groups
        ]


def single_column_groups(n_columns: int) -> ColumnGrouping:
    """One submatrix per block column (the method's default granularity)."""
    if n_columns < 1:
        raise ValueError("n_columns must be positive")
    return ColumnGrouping([[c] for c in range(n_columns)], method="single")


def groups_from_labels(labels: Sequence[int], method: str = "labels") -> ColumnGrouping:
    """Build a grouping from per-column cluster labels (empty labels dropped)."""
    labels = np.asarray(labels, dtype=int)
    groups: List[List[int]] = []
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label).tolist()
        if members:
            groups.append(members)
    return ColumnGrouping(groups, method=method)


def group_columns_kmeans(
    centers: np.ndarray,
    n_submatrices: int,
    seed: Optional[int] = 0,
) -> ColumnGrouping:
    """Group block columns by k-means clustering of their real-space positions.

    Parameters
    ----------
    centers:
        (n_block_columns, 3) array of the real-space positions associated
        with each block column (the centre of the atoms behind the column,
        Sec. IV-C2).
    n_submatrices:
        Desired number of submatrices (clusters).
    seed:
        Random seed of the k-means initialisation.
    """
    result = kmeans(np.asarray(centers, dtype=float), n_submatrices, seed=seed)
    return groups_from_labels(result.labels, method="kmeans")


def group_columns_graph(
    pattern: sp.spmatrix,
    n_submatrices: int,
) -> ColumnGrouping:
    """Group block columns by partitioning the block-sparsity graph."""
    result = partition_graph(pattern, n_submatrices)
    return groups_from_labels(result.labels, method="graph")


def group_columns_greedy_chunks(
    n_columns: int, columns_per_group: int
) -> ColumnGrouping:
    """Combine consecutive block columns into fixed-size chunks.

    This reproduces the simple heuristic used for the paper's CP2K
    measurements: consecutive block columns (which correspond to consecutive
    32-molecule building blocks of the benchmark systems) are combined in
    multiples of the basic region.
    """
    if columns_per_group < 1:
        raise ValueError("columns_per_group must be positive")
    groups = [
        list(range(start, min(start + columns_per_group, n_columns)))
        for start in range(0, n_columns, columns_per_group)
    ]
    return ColumnGrouping(groups, method="greedy-chunks")


def estimated_speedup(
    pattern: PatternLike,
    block_sizes: Sequence[int],
    grouping: ColumnGrouping,
    single_dimensions: Optional[Sequence[int]] = None,
) -> float:
    """Estimated additional speedup S of a grouping (Eq. 15).

    Parameters
    ----------
    pattern:
        Block-sparsity pattern (or COO list) of the input matrix.
    block_sizes:
        Size of every block column.
    grouping:
        Candidate grouping of block columns into submatrices.
    single_dimensions:
        Optional precomputed submatrix dimensions for single block columns
        (the ñ_i of Eq. 15); computed on the fly if omitted.

    Returns
    -------
    float
        S > 1 means the grouping is expected to be faster than one submatrix
        per block column; S < 1 means it is expected to be slower.
    """
    block_sizes = np.asarray(list(block_sizes), dtype=int)
    n_columns = block_sizes.size
    if single_dimensions is None:
        single = single_column_groups(n_columns)
        single_dimensions = single.submatrix_dimensions(pattern, block_sizes)
    numerator = float(np.sum(np.asarray(single_dimensions, dtype=float) ** 3))
    grouped_dimensions = grouping.submatrix_dimensions(pattern, block_sizes)
    denominator = float(np.sum(np.asarray(grouped_dimensions, dtype=float) ** 3))
    if denominator == 0:
        raise ValueError("grouping produced only empty submatrices")
    return numerator / denominator
