"""Load balancing of submatrices over ranks (Sec. IV-E).

Submatrix dimensions vary with the local chemistry (a solvated molecule
induces larger submatrices than the surrounding solvent), so assigning the
same *number* of submatrices to every rank does not balance the *work*.  The
paper assigns one consecutive chunk of submatrices to every rank (to maximise
block reuse, Sec. IV-B2) using a greedy algorithm driven by the O(n³) cost
estimate: submatrices are appended to the current rank while its load stays
below FLOP_total / #ranks, and every rank receives at least one submatrix.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "submatrix_flop_costs",
    "assign_consecutive_chunks",
    "assign_round_robin",
    "load_imbalance",
]


def submatrix_flop_costs(
    dimensions: Sequence[int], flop_constant: float = 1.0
) -> np.ndarray:
    """Estimated cost c·n³ per submatrix (Eq. 14)."""
    dimensions = np.asarray(list(dimensions), dtype=float)
    if np.any(dimensions < 0):
        raise ValueError("submatrix dimensions must be non-negative")
    if flop_constant <= 0:
        raise ValueError("flop_constant must be positive")
    return flop_constant * dimensions**3


def assign_consecutive_chunks(
    costs: Sequence[float], n_ranks: int
) -> List[Tuple[int, int]]:
    """Assign consecutive chunks of submatrices to ranks (greedy, Sec. IV-E).

    Parameters
    ----------
    costs:
        Estimated cost per submatrix, in submatrix order.
    n_ranks:
        Number of ranks.

    Returns
    -------
    list of (start, stop):
        Half-open index ranges, one per rank, covering all submatrices in
        order.  Every rank receives at least one submatrix as long as there
        are at least as many submatrices as ranks; trailing ranks may receive
        an empty range otherwise.
    """
    costs = np.asarray(list(costs), dtype=float)
    if np.any(costs < 0):
        raise ValueError("costs must be non-negative")
    if n_ranks < 1:
        raise ValueError("n_ranks must be positive")
    n = costs.size
    assignments: List[Tuple[int, int]] = []
    total = float(costs.sum())
    target = total / n_ranks if n_ranks else total
    start = 0
    for rank in range(n_ranks):
        remaining_ranks = n_ranks - rank
        remaining_items = n - start
        if remaining_items <= 0:
            assignments.append((start, start))
            continue
        if remaining_items <= remaining_ranks:
            # exactly one item per remaining rank
            assignments.append((start, start + 1))
            start += 1
            continue
        load = 0.0
        stop = start
        # keep appending while below the target, but leave at least one
        # submatrix for every remaining rank
        while stop < n - (remaining_ranks - 1):
            load += costs[stop]
            stop += 1
            if load >= target and rank < n_ranks - 1:
                break
        if rank == n_ranks - 1:
            stop = n
        assignments.append((start, stop))
        start = stop
    return assignments


def assign_round_robin(n_items: int, n_ranks: int) -> List[List[int]]:
    """Naïve round-robin assignment (equal counts), used as an ablation.

    This is the "just assign the same number of submatrices to each rank"
    strategy the paper argues against in Sec. IV-E.
    """
    if n_items < 0 or n_ranks < 1:
        raise ValueError("invalid item or rank count")
    assignment: List[List[int]] = [[] for _ in range(n_ranks)]
    for item in range(n_items):
        assignment[item % n_ranks].append(item)
    return assignment


def load_imbalance(costs: Sequence[float], assignment) -> float:
    """Ratio of the largest to the average per-rank load (1.0 = balanced).

    ``assignment`` may be a list of (start, stop) ranges (consecutive
    chunks) or a list of explicit index lists.
    """
    costs = np.asarray(list(costs), dtype=float)
    loads: List[float] = []
    for entry in assignment:
        if isinstance(entry, tuple) and len(entry) == 2:
            start, stop = entry
            loads.append(float(costs[start:stop].sum()))
        else:
            loads.append(float(costs[list(entry)].sum()) if len(entry) else 0.0)
    loads_array = np.asarray(loads, dtype=float)
    total = float(loads_array.sum())
    if total == 0:
        return 1.0
    mean = total / len(loads_array)
    return float(loads_array.max() / mean)
