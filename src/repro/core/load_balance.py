"""Load balancing of submatrices over ranks (Sec. IV-E).

Submatrix dimensions vary with the local chemistry (a solvated molecule
induces larger submatrices than the surrounding solvent), so assigning the
same *number* of submatrices to every rank does not balance the *work*.  The
paper assigns one consecutive chunk of submatrices to every rank (to maximise
block reuse, Sec. IV-B2) using a greedy algorithm driven by the O(n³) cost
estimate: submatrices are appended to the current rank while its load stays
below FLOP_total / #ranks, and every rank receives at least one submatrix.

On top of the chunked assignment this module provides the *bucket-aware*
strategy used by the sharded pipeline: the padding granularity of the
batched evaluator is chosen from the measured dimension histogram
(:func:`choose_bucket_pad`) and whole equal-dimension stacks — the unit the
batched kernels actually execute — are balanced over workers with a
longest-processing-time heuristic (:func:`assign_balanced_stacks`) instead
of splitting individual submatrices across stack boundaries.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "pad_dimensions",
    "submatrix_flop_costs",
    "assign_consecutive_chunks",
    "assign_consecutive_chunks_reference",
    "assign_round_robin",
    "assign_balanced_stacks",
    "choose_bucket_pad",
    "resolve_bucket_pad",
    "load_imbalance",
]


def pad_dimensions(dimensions, pad_to: Optional[int]) -> np.ndarray:
    """Round every dimension up to the next multiple of ``pad_to``.

    The single definition of the bucket-rounding rule shared by the batched
    evaluator's bucketing, the pad-choice heuristic and the pipeline's
    padded-cost accounting — so the three can never disagree on which
    bucket a dimension lands in.  ``pad_to=None`` returns the dimensions
    unchanged (exact-dimension buckets).
    """
    dimensions = np.asarray(list(dimensions), dtype=np.int64)
    if pad_to is None:
        return dimensions
    if pad_to < 1:
        raise ValueError("pad_to must be a positive integer")
    return -(-dimensions // pad_to) * pad_to


def submatrix_flop_costs(
    dimensions: Sequence[int], flop_constant: float = 1.0
) -> np.ndarray:
    """Estimated cost c·n³ per submatrix (Eq. 14)."""
    dimensions = np.asarray(list(dimensions), dtype=float)
    if np.any(dimensions < 0):
        raise ValueError("submatrix dimensions must be non-negative")
    if flop_constant <= 0:
        raise ValueError("flop_constant must be positive")
    return flop_constant * dimensions**3


def _validated_costs(costs: Sequence[float], n_ranks: int) -> np.ndarray:
    costs = np.asarray(list(costs), dtype=float)
    if np.any(costs < 0):
        raise ValueError("costs must be non-negative")
    if n_ranks < 1:
        raise ValueError("n_ranks must be positive")
    return costs


def assign_consecutive_chunks(
    costs: Sequence[float], n_ranks: int
) -> List[Tuple[int, int]]:
    """Assign consecutive chunks of submatrices to ranks (greedy, Sec. IV-E).

    Vectorized implementation of the paper's greedy: one cumulative sum of
    the costs is computed up front and every rank's chunk boundary is found
    with a single ``searchsorted`` (the first position where the cumulative
    load reaches FLOP_total / #ranks), instead of walking the cost vector
    item by item.  Equivalent to :func:`assign_consecutive_chunks_reference`
    up to floating-point summation order — property-tested exact on random
    integer-valued cost vectors; with cost magnitudes spread over ~16 orders
    of magnitude the two may pick a boundary one item apart (the global
    cumulative sum absorbs tiny costs that the reference's per-chunk
    accumulator retains), which is immaterial for c·n³ submatrix costs.

    Parameters
    ----------
    costs:
        Estimated cost per submatrix, in submatrix order.
    n_ranks:
        Number of ranks.

    Returns
    -------
    list of (start, stop):
        Half-open index ranges, one per rank, covering all submatrices in
        order.  Every rank receives at least one submatrix as long as there
        are at least as many submatrices as ranks; trailing ranks may receive
        an empty range otherwise.
    """
    costs = _validated_costs(costs, n_ranks)
    n = costs.size
    cumulative = np.concatenate(([0.0], np.cumsum(costs)))
    target = float(cumulative[-1]) / n_ranks
    assignments: List[Tuple[int, int]] = []
    start = 0
    for rank in range(n_ranks):
        remaining_ranks = n_ranks - rank
        remaining_items = n - start
        if remaining_items <= 0:
            assignments.append((start, start))
            continue
        if remaining_items <= remaining_ranks:
            # exactly one item per remaining rank
            assignments.append((start, start + 1))
            start += 1
            continue
        if rank == n_ranks - 1:
            assignments.append((start, n))
            start = n
            continue
        # first stop with cumulative[stop] - cumulative[start] >= target,
        # bounded so every remaining rank still gets at least one item
        limit = n - (remaining_ranks - 1)
        found = int(
            np.searchsorted(cumulative, cumulative[start] + target, side="left")
        )
        stop = max(start + 1, min(found, limit))
        assignments.append((start, stop))
        start = stop
    return assignments


def assign_consecutive_chunks_reference(
    costs: Sequence[float], n_ranks: int
) -> List[Tuple[int, int]]:
    """Item-by-item greedy reference of :func:`assign_consecutive_chunks`.

    Kept as executable documentation of the paper's algorithm and as the
    oracle for the equivalence property tests.
    """
    costs = _validated_costs(costs, n_ranks)
    n = costs.size
    assignments: List[Tuple[int, int]] = []
    total = float(costs.sum())
    target = total / n_ranks if n_ranks else total
    start = 0
    for rank in range(n_ranks):
        remaining_ranks = n_ranks - rank
        remaining_items = n - start
        if remaining_items <= 0:
            assignments.append((start, start))
            continue
        if remaining_items <= remaining_ranks:
            # exactly one item per remaining rank
            assignments.append((start, start + 1))
            start += 1
            continue
        load = 0.0
        stop = start
        # keep appending while below the target, but leave at least one
        # submatrix for every remaining rank
        while stop < n - (remaining_ranks - 1):
            load += costs[stop]
            stop += 1
            if load >= target and rank < n_ranks - 1:
                break
        if rank == n_ranks - 1:
            stop = n
        assignments.append((start, stop))
        start = stop
    return assignments


def assign_round_robin(n_items: int, n_ranks: int) -> List[List[int]]:
    """Naïve round-robin assignment (equal counts), used as an ablation.

    This is the "just assign the same number of submatrices to each rank"
    strategy the paper argues against in Sec. IV-E.
    """
    if n_items < 0 or n_ranks < 1:
        raise ValueError("invalid item or rank count")
    assignment: List[List[int]] = [[] for _ in range(n_ranks)]
    for item in range(n_items):
        assignment[item % n_ranks].append(item)
    return assignment


def assign_balanced_stacks(
    costs: Sequence[float], n_ranks: int
) -> List[List[int]]:
    """Balance whole stacks over ranks (longest-processing-time greedy).

    The batched evaluator executes one 3-D stack of equal-(padded-)dimension
    submatrices per kernel call, so splitting a stack across ranks would
    force both ranks to relaunch a partial kernel.  This assigner therefore
    treats each stack as indivisible: stacks are sorted by decreasing cost
    and each is placed on the currently least-loaded rank — the classic LPT
    heuristic, within 4/3 of the optimal makespan.

    Parameters
    ----------
    costs:
        Cost of each stack (e.g. k·D³ of a (k, D, D) stack).
    n_ranks:
        Number of ranks; ranks may end up with an empty stack list when
        there are fewer stacks than ranks.

    Returns
    -------
    list of list of int:
        Stack indices per rank; each index appears exactly once, and within
        one rank the indices are in ascending (deterministic) order.
    """
    costs = _validated_costs(costs, n_ranks)
    assignment: List[List[int]] = [[] for _ in range(n_ranks)]
    if costs.size == 0:
        return assignment
    # stable order: decreasing cost, ties by ascending index
    order = np.lexsort((np.arange(costs.size), -costs))
    heap = [(0.0, rank) for rank in range(n_ranks)]
    heapq.heapify(heap)
    for index in order:
        load, rank = heapq.heappop(heap)
        assignment[rank].append(int(index))
        heapq.heappush(heap, (load + float(costs[index]), rank))
    for stacks in assignment:
        stacks.sort()
    return assignment


def choose_bucket_pad(
    dimensions: Sequence[int],
    max_overhead: float = 0.15,
    candidates: Optional[Sequence[int]] = None,
) -> Optional[int]:
    """Pick the bucket padding granularity from the dimension histogram.

    A fixed ``bucket_pad`` is wrong in both directions: too small and nearly
    every dimension keeps its own bucket (many tiny stacks, Python overhead
    per stack); too large and the padded c·D³ work dwarfs the useful c·d³
    work.  This heuristic measures both on the actual histogram: for every
    candidate granularity it computes the padded-FLOP overhead
    Σ(pad(d))³ / Σd³ − 1 and the resulting bucket count, then returns the
    candidate producing the fewest buckets whose overhead stays below
    ``max_overhead`` (ties broken toward smaller overhead).

    Returns ``None`` when the histogram gives no reason to pad — fewer than
    two distinct dimensions, or no candidate that reduces the bucket count
    within the overhead budget — which callers pass straight through as
    "exact-dimension buckets only".
    """
    dimensions = np.asarray(list(dimensions), dtype=np.int64)
    if dimensions.size == 0 or np.any(dimensions < 0):
        return None
    if max_overhead < 0:
        raise ValueError("max_overhead must be non-negative")
    distinct = np.unique(dimensions)
    if distinct.size < 2:
        return None
    if candidates is None:
        # powers of two up to the largest dimension plus the spread of the
        # central half of the histogram (a natural "histogram width" scale)
        spread = int(np.percentile(dimensions, 75) - np.percentile(dimensions, 25))
        candidates = [2, 4, 8, 16, 32, 64, 128, 256]
        if spread > 1:
            candidates.append(spread)
    exact_flops = float(np.sum(dimensions.astype(float) ** 3))
    best: Optional[Tuple[int, float, int]] = None  # (n_buckets, overhead, pad)
    for pad in sorted({int(p) for p in candidates if int(p) >= 1}):
        padded = pad_dimensions(dimensions, pad)
        n_buckets = int(np.unique(padded).size)
        if n_buckets >= distinct.size:
            continue  # padding must actually merge buckets
        if exact_flops > 0:
            overhead = float(np.sum(padded.astype(float) ** 3)) / exact_flops - 1.0
        else:
            overhead = 0.0
        if overhead > max_overhead:
            continue
        key = (n_buckets, overhead, pad)
        if best is None or key[:2] < best[:2]:
            best = key
    return best[2] if best is not None else None


def resolve_bucket_pad(
    bucket_pad, dimensions: Sequence[int], max_overhead: float = 0.15
) -> Optional[int]:
    """Resolve a ``bucket_pad`` setting (int, None or ``"auto"``) to a value.

    ``"auto"`` defers to :func:`choose_bucket_pad` on the measured dimension
    histogram; integers and ``None`` pass through unchanged.
    """
    if bucket_pad == "auto":
        return choose_bucket_pad(dimensions, max_overhead=max_overhead)
    if bucket_pad is None:
        return None
    pad = int(bucket_pad)
    if pad < 1:
        raise ValueError("bucket_pad must be a positive integer, None or 'auto'")
    return pad


def load_imbalance(costs: Sequence[float], assignment) -> float:
    """Ratio of the largest to the average per-rank load (1.0 = balanced).

    ``assignment`` may be a list of (start, stop) ranges (consecutive
    chunks) or a list of explicit index lists.
    """
    costs = np.asarray(list(costs), dtype=float)
    loads: List[float] = []
    for entry in assignment:
        if isinstance(entry, tuple) and len(entry) == 2:
            start, stop = entry
            loads.append(float(costs[start:stop].sum()))
        else:
            loads.append(float(costs[list(entry)].sum()) if len(entry) else 0.0)
    loads_array = np.asarray(loads, dtype=float)
    total = float(loads_array.sum())
    if total == 0:
        return 1.0
    mean = total / len(loads_array)
    return float(loads_array.max() / mean)
