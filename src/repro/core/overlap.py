"""Arrival-driven overlapped execution of the initialization exchange.

The bulk-synchronous pipeline *models the whole initialization exchange,
then computes*: :meth:`~repro.parallel.machine.MachineModel.simulate`
explicitly assumes communication and compute do not overlap.  This module
removes that barrier.  Every (owner → consumer) transfer is split into
**per-bucket chunks**: each required segment is assigned to the earliest
bucketed stack that references it, and the chunks are posted bucket-major
through :meth:`~repro.parallel.comm.SimComm.isend`, so a rank can start
evaluating its first bucket the moment that bucket's segments have landed
— long before its full exchange has drained.

Concretely, per rank:

1. post one :meth:`~repro.parallel.comm.SimComm.irecv` per expected chunk
   and fill the self-owned portion of the rank-local buffer immediately;
2. walk the buckets in execution order, waiting
   (:meth:`~repro.parallel.comm.SimComm.wait_all`) only for the chunks of
   the current bucket — readiness is prefix-closed because chunks are
   ingress-serialized in bucket order;
3. evaluate the bucket with exactly the batched evaluator's per-task
   arithmetic (extract → function → shape check → disjoint scatter), so
   the result is bitwise identical to the synchronous path by
   construction;
4. advance a greedy virtual timeline ``start(b) = max(t, arrival(b))``,
   ``t = start(b) + compute(b)``.

The per-rank timelines make the overlap *measurable*:
``sync = max_r(exchange_r) + max_r(compute_r)`` (the machine model's
non-overlap assumption) versus ``async = max_r(makespan_r)`` (the greedy
timelines); the difference is the exchange time hidden behind compute.

The real packed segment values travel in the message payloads, so the
consumer's local buffer is filled with exactly the bytes
:meth:`~repro.core.shard.RankShard.pack_local` would have gathered — data
identity is structural, not accidental.  Fault injection flows through
the communicator unchanged: a dropped chunk (``"message"`` site) or a
crashed endpoint (``"comm_crash"`` site) raises out of the rank's
closure, which the pipeline's retry/rebalance machinery
(:meth:`~repro.core.runner.DistributedSubmatrixPipeline.execute_ranks`)
handles like any other rank failure; a retried rank restarts its
exchange under a fresh attempt tag.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.shard import RankShard, ShardedPlan
from repro.parallel.comm import SimComm
from repro.parallel.machine import MachineModel
from repro.parallel.stats import TrafficLog

__all__ = [
    "SegmentChunk",
    "RankOverlapReport",
    "OverlapReport",
    "OverlappedExchange",
]


@dataclasses.dataclass(frozen=True)
class SegmentChunk:
    """One per-bucket message chunk of an (owner → consumer) transfer.

    ``local_indices`` are the positions the chunk's values occupy in the
    consumer's rank-local packed buffer; the payload is exactly
    ``packed[local_to_global[local_indices]]``.
    """

    bucket: int
    source: int
    local_indices: np.ndarray
    nbytes: int


@dataclasses.dataclass
class RankOverlapReport:
    """Modeled timeline of one rank's arrival-driven execution.

    ``exchange_seconds`` is the rank's full serialized inbound exchange
    (what the bulk-synchronous model charges before any compute),
    ``compute_seconds`` the sum of its bucket evaluations, and
    ``makespan_seconds`` the greedy arrival-driven finish time; the
    difference ``exchange + compute − makespan`` is the exchange time the
    rank's compute hid.
    """

    rank: int
    n_buckets: int = 0
    n_chunks: int = 0
    inbound_bytes: float = 0.0
    exchange_seconds: float = 0.0
    compute_seconds: float = 0.0
    makespan_seconds: float = 0.0

    @property
    def hidden_seconds(self) -> float:
        return max(
            0.0, self.exchange_seconds + self.compute_seconds - self.makespan_seconds
        )

    @property
    def hidden_fraction(self) -> float:
        """Fraction of the rank's exchange hidden behind its compute.

        Trivially 1.0 when the rank has no inbound exchange (everything
        self-owned — e.g. any rank of a single-rank run).
        """
        if self.exchange_seconds <= 0.0:
            return 1.0
        return self.hidden_seconds / self.exchange_seconds


@dataclasses.dataclass
class OverlapReport:
    """Aggregated overlap accounting of one asynchronous pipeline run.

    ``modeled_sync_seconds`` reproduces the machine model's
    bulk-synchronous assumption (max-over-ranks exchange plus
    max-over-ranks compute); ``modeled_async_seconds`` is the max over
    the greedy per-rank timelines.  ``exchange_hidden_fraction`` relates
    the saving to the exchange it hides.
    """

    per_rank: List[RankOverlapReport]
    machine: MachineModel

    @property
    def max_exchange_seconds(self) -> float:
        return max((r.exchange_seconds for r in self.per_rank), default=0.0)

    @property
    def max_compute_seconds(self) -> float:
        return max((r.compute_seconds for r in self.per_rank), default=0.0)

    @property
    def modeled_sync_seconds(self) -> float:
        return self.max_exchange_seconds + self.max_compute_seconds

    @property
    def modeled_async_seconds(self) -> float:
        return max((r.makespan_seconds for r in self.per_rank), default=0.0)

    @property
    def overlap_seconds(self) -> float:
        return max(0.0, self.modeled_sync_seconds - self.modeled_async_seconds)

    @property
    def exchange_hidden_fraction(self) -> float:
        """Fraction of the modeled exchange hidden by overlap (1.0 when
        there is no inbound exchange to hide)."""
        exchange = self.max_exchange_seconds
        if exchange <= 0.0:
            return 1.0
        return min(1.0, self.overlap_seconds / exchange)

    @property
    def total_inbound_bytes(self) -> float:
        return float(sum(r.inbound_bytes for r in self.per_rank))


@dataclasses.dataclass
class _RankSchedule:
    """Precomputed chunk schedule and bucket costs of one rank."""

    buckets: list
    chunks: List[SegmentChunk]
    self_indices: np.ndarray
    bucket_flops: List[float]


class OverlappedExchange:
    """The asynchronous exchange/execution engine of one sharded plan.

    Owns the :class:`~repro.parallel.comm.SimComm` the chunks travel
    through and the per-rank chunk schedules.  One engine instance serves
    one pipeline execution; retried ranks re-run their exchange under a
    fresh attempt tag (their scatter writes are idempotent).
    """

    def __init__(
        self,
        sharded: ShardedPlan,
        coo,
        distribution,
        machine: MachineModel,
        pad_to: Optional[int],
        max_batch_elements: int,
        flop_constant: float,
        bytes_per_element: int = 8,
        fault_injector=None,
    ):
        self.sharded = sharded
        self.machine = machine
        self.pad_to = pad_to
        self.max_batch_elements = int(max_batch_elements)
        self.flop_constant = float(flop_constant)
        self.bytes_per_element = int(bytes_per_element)
        self.n_ranks = sharded.n_ranks
        self.comm = SimComm(
            self.n_ranks,
            log=TrafficLog(self.n_ranks),
            fault_injector=fault_injector,
            machine=machine,
        )
        self._owners_by_id = distribution.owners_of_blocks(coo.rows, coo.cols)
        self._lock = threading.Lock()
        self._attempts: Dict[int, int] = {}
        self._fault_injector = fault_injector
        self._schedules: List[_RankSchedule] = [
            self._build_schedule(rank) for rank in range(self.n_ranks)
        ]

    def reset(self, fault_injector=None) -> None:
        """Prepare the engine for a fresh pipeline execution.

        The chunk schedules are a pure function of the sharded plan and
        the bucket layout, so a pipeline can cache one engine per layout
        and reuse it across executions (μ-bisection iterations, trajectory
        steps); only the communicator state — mailboxes, the modeled
        ingress clocks and crash/attempt bookkeeping — belongs to a single
        execution and is renewed here, under the current run's fault
        injector.
        """
        self.comm = SimComm(
            self.n_ranks,
            log=TrafficLog(self.n_ranks),
            fault_injector=fault_injector,
            machine=self.machine,
        )
        self._fault_injector = fault_injector
        self._attempts = {}

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def _build_schedule(self, rank: int) -> _RankSchedule:
        shard = self.sharded.shards[rank]
        buckets = shard.stack_tasks(
            pad_to=self.pad_to, max_batch_elements=self.max_batch_elements
        )
        n_segments = int(shard.required_segments.size)
        owners = (
            self._owners_by_id[shard.required_segments]
            if n_segments
            else np.empty(0, dtype=np.int64)
        )
        lengths = shard.segment_lengths
        local_offsets = shard.local_offsets
        self_mask = owners == rank
        self_indices = _segment_positions(
            np.flatnonzero(self_mask), local_offsets, lengths
        )
        bucket_flops = [
            self.flop_constant
            * len(bucket.members)
            * float(bucket.dimension) ** 3
            for bucket in buckets
        ]
        if bool(self_mask.all()):
            # everything self-owned (e.g. any rank of a single-rank run):
            # no chunks to schedule, so skip the first-reference scan —
            # the overlap machinery must cost ~nothing when there is no
            # exchange to overlap
            return _RankSchedule(
                buckets=buckets,
                chunks=[],
                self_indices=self_indices,
                bucket_flops=bucket_flops,
            )
        # assign every remote segment to the earliest bucket whose gather
        # arrays reference it (prefix-closed readiness: bucket b can start
        # once every source has delivered its chunks for buckets <= b)
        first_bucket = np.full(n_segments, -1, dtype=np.int64)
        for bucket_index, bucket in enumerate(buckets):
            for member in bucket.members:
                gather = shard.view.groups[int(member)].gather_src
                if len(gather) == 0:
                    continue
                segments = np.unique(
                    np.searchsorted(
                        local_offsets,
                        np.asarray(gather, dtype=np.int64),
                        side="right",
                    )
                    - 1
                )
                unseen = segments[first_bucket[segments] < 0]
                first_bucket[unseen] = bucket_index
        chunks: List[SegmentChunk] = []
        # bucket-major per source: the ingress serialization then delivers
        # early buckets' data first, which is what creates the overlap
        for bucket_index in range(len(buckets)):
            in_bucket = np.flatnonzero(
                (first_bucket == bucket_index) & ~self_mask
            )
            if not in_bucket.size:
                continue
            for source in np.unique(owners[in_bucket]):
                of_source = in_bucket[owners[in_bucket] == source]
                local_indices = _segment_positions(
                    of_source, local_offsets, lengths
                )
                chunks.append(
                    SegmentChunk(
                        bucket=bucket_index,
                        source=int(source),
                        local_indices=local_indices,
                        nbytes=int(local_indices.size * self.bytes_per_element),
                    )
                )
        return _RankSchedule(
            buckets=buckets,
            chunks=chunks,
            self_indices=self_indices,
            bucket_flops=bucket_flops,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_rank(
        self,
        rank: int,
        packed: np.ndarray,
        consume_stack: Callable,
        pad_value: float = 1.0,
        xp=None,
    ) -> RankOverlapReport:
        """Arrival-driven evaluation of one rank's shard.

        Posts the rank's chunk exchange, then hands bucket ``b``'s
        extracted ``(k, d, d)`` stack to ``consume_stack(bucket, stack)``
        as soon as its chunks have landed.  The consumer applies the same
        per-task arithmetic the synchronous bucket loop would (evaluate +
        scatter, or eigendecompose + collect), so the produced values are
        bitwise identical — the extraction input is exactly the
        :meth:`~repro.core.shard.RankShard.pack_local` buffer, filled
        incrementally from the real message payloads.

        Raises :class:`~repro.parallel.comm.CommError` subclasses on
        injected message loss or endpoint crashes; the caller's
        retry/rebalance machinery re-invokes this method, which restarts
        the rank's exchange under a fresh attempt tag (an earlier partial
        scatter is harmlessly overwritten with identical values).

        ``xp`` optionally routes the rank-local buffer allocation through
        an :class:`~repro.backend.base.ArrayBackend`; the default ``None``
        allocates with ``np.empty`` exactly as before (the NumPy backend's
        ``empty`` *is* ``np.empty``, so both spellings are identical).
        """
        shard = self.sharded.shards[rank]
        schedule = self._schedules[rank]
        report = RankOverlapReport(rank=rank, n_buckets=len(schedule.buckets))
        if shard.n_groups == 0:
            return report
        with self._lock:
            attempt = self._attempts.get(rank, 0)
            self._attempts[rank] = attempt + 1
            if rank in self.comm.crashed_ranks and attempt > 0:
                # a retried rank is a restarted process: bring it back so
                # the fresh attempt can post and drain its exchange
                self.comm.restore_rank(rank)
            requests = []
            for chunk in schedule.chunks:
                tag = ("segchunk", rank, attempt, chunk.bucket, chunk.source)
                self.comm.isend(
                    chunk.source,
                    rank,
                    packed[shard.local_to_global[chunk.local_indices]],
                    tag,
                )
                requests.append(
                    (chunk, self.comm.irecv(rank, tag, source=chunk.source))
                )
        if xp is None:
            local = np.empty(shard.n_local_values, dtype=packed.dtype)
        else:
            local = xp.empty(shard.n_local_values, dtype=packed.dtype)
        if schedule.self_indices.size:
            local[schedule.self_indices] = packed[
                shard.local_to_global[schedule.self_indices]
            ]
        by_bucket: Dict[int, List] = {}
        for chunk, request in requests:
            by_bucket.setdefault(chunk.bucket, []).append((chunk, request))
        report.n_chunks = len(requests)
        report.inbound_bytes = float(sum(c.nbytes for c, _ in requests))
        report.exchange_seconds = float(
            sum(self.machine.message_time(c.nbytes, 1) for c, _ in requests)
        )
        timeline = 0.0
        arrived = 0.0
        for bucket_index, bucket in enumerate(schedule.buckets):
            waiting = by_bucket.pop(bucket_index, ())
            if waiting:
                with self._lock:
                    self.comm.wait_all([request for _, request in waiting])
                for chunk, request in waiting:
                    local[chunk.local_indices] = request.payload
                    arrived = max(arrived, request.ready_time)
            start = max(timeline, arrived)
            stack = shard.view.extract_stack(
                local, bucket.members, bucket.dimension, pad_value=pad_value
            )
            consume_stack(bucket, stack)
            cost = self.machine.compute_time(
                schedule.bucket_flops[bucket_index], cores=1, sparse=False
            )
            timeline = start + cost
            report.compute_seconds += cost
        report.makespan_seconds = max(timeline, arrived)
        return report

    def report(
        self, per_rank: Sequence[Optional[RankOverlapReport]]
    ) -> OverlapReport:
        """Aggregate per-rank reports (missing ranks count as idle)."""
        reports = [
            r if r is not None else RankOverlapReport(rank=rank)
            for rank, r in enumerate(per_rank)
        ]
        return OverlapReport(per_rank=reports, machine=self.machine)


def _segment_positions(
    segment_indices: np.ndarray, local_offsets: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Flat local-buffer positions of the given shard-local segments."""
    segment_indices = np.asarray(segment_indices, dtype=np.int64)
    if not segment_indices.size:
        return np.empty(0, dtype=np.int64)
    seg_lengths = lengths[segment_indices]
    starts = local_offsets[segment_indices]
    total = int(seg_lengths.sum())
    # arange per segment, vectorized: global position = start + offset-in-run
    run_starts = np.concatenate(([0], np.cumsum(seg_lengths)[:-1]))
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(run_starts, seg_lengths)
        + np.repeat(starts, seg_lengths)
    )
