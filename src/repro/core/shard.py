"""Rank-sharding of submatrix extraction plans (Sec. IV-A3 / IV-B).

In the CP2K implementation every MPI rank assembles only the submatrices it
was assigned, from a *local buffer* holding exactly the blocks those
submatrices touch — fetched once per (owner, consumer) pair during
initialization.  The vectorized plan engine of :mod:`repro.core.plan`, by
contrast, is a single-process monolith: one packed value vector covering the
whole pattern, one set of gather/scatter arrays indexing into it.

:class:`ShardedPlan` closes that gap.  It splits one
:class:`~repro.core.plan.SubmatrixPlan` by a group→rank assignment so that
every rank owns

* the :class:`~repro.core.plan.GroupPlan` bookkeeping of its own column
  groups only, with the gather arrays *re-based onto a rank-local packed
  buffer* that concatenates just the value segments (blocks at block level,
  columns at element level) those groups reference;
* a **block→segment index** — which global segments the rank needs, where
  each lands in the local buffer, and how many bytes it is — which is
  exactly the information the transfer planner
  (:func:`repro.core.transfers.plan_transfers`) needs to ship deduplicated
  packed value segments instead of whole-pattern block lists;
* an unchanged *global* scatter side: groups partition the generating
  columns, so the scatter destinations of different ranks are disjoint and
  every rank can write its evaluated columns straight into the shared
  output vector (zero-copy, no merge step), keeping the final
  ``plan.finalize(out)`` bitwise identical to the single-process engine.

The per-rank view (:class:`ShardView`) is itself a
:class:`~repro.core.plan.SubmatrixPlan`, so the bucketed batch evaluator of
:mod:`repro.core.batch` runs on a shard unchanged — that is what lets
:class:`repro.core.runner.DistributedSubmatrixPipeline` execute simulated
ranks *through* the fast engine instead of beside it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import MAX_BATCH_ELEMENTS, Bucket, make_stack_tasks
from repro.core.plan import (
    GroupPlan,
    SubmatrixPlan,
    _StackPlan,
    make_segment_remap,
)

__all__ = ["ShardView", "RankShard", "ShardedPlan"]


class ShardView(SubmatrixPlan):
    """The :class:`SubmatrixPlan` interface of one rank's shard.

    Gather indices address the rank-local packed buffer
    (``local_values`` entries); scatter indices still address the *global*
    packed output vector (``n_values`` entries), which is safe because group
    scatter ranges are disjoint across ranks.
    """

    def __init__(self, groups: List[GroupPlan], n_values: int, local_values: int):
        self.groups = groups
        self.n_values = int(n_values)
        self.local_values = int(local_values)

    def pack(self, matrix) -> np.ndarray:
        raise NotImplementedError(
            "a shard has no global pack; use RankShard.pack_local on the "
            "owning plan's packed values"
        )

    def finalize(self, out: np.ndarray):
        raise NotImplementedError(
            "shards scatter into the shared output vector; finalize through "
            "the unsharded plan"
        )


@dataclasses.dataclass
class RankShard:
    """One rank's share of a sharded extraction plan.

    Attributes
    ----------
    rank:
        The simulated rank this shard belongs to.
    group_indices:
        Global plan-group indices owned by this rank (ascending).
    required_segments:
        Sorted unique global segment IDs referenced by the rank's gather
        arrays.  At block level a segment ID is a COO block ID, so this *is*
        the rank's deduplicated required-block set.
    segment_starts / segment_lengths:
        Global packed start and length (in values) of every required
        segment, aligned with ``required_segments``.
    local_offsets:
        Position of every required segment in the rank-local packed buffer
        (length ``len(required_segments) + 1``); together with
        ``required_segments`` this is the block→segment index used by the
        transfer planner and by :meth:`pack_local`.
    local_to_global:
        Flat global packed positions of the local buffer's entries, so
        ``local = packed[local_to_global]`` fills the buffer with one gather.
    view:
        The rank's :class:`ShardView` (plan interface over the local buffer).
    """

    rank: int
    group_indices: np.ndarray
    required_segments: np.ndarray
    segment_starts: np.ndarray
    segment_lengths: np.ndarray
    local_offsets: np.ndarray
    local_to_global: np.ndarray
    view: ShardView
    # bucketed stack layouts by (pad_to, max_batch_elements); the shard (and
    # with it this cache) lives as long as its pipeline, so repeated
    # evaluations over an unchanged pattern — μ-bisections, MD trajectories —
    # rebuild neither the bucket lists nor the view's stacked index arrays
    _stack_tasks: Dict[Tuple, List[Bucket]] = dataclasses.field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def n_groups(self) -> int:
        return int(self.group_indices.size)

    @property
    def n_local_values(self) -> int:
        return int(self.local_offsets[-1]) if self.local_offsets.size else 0

    @property
    def dimensions(self) -> List[int]:
        """Dense dimensions of the rank's submatrices (shard order)."""
        return self.view.dimensions

    def pack_local(self, packed: np.ndarray) -> np.ndarray:
        """Rank-local packed buffer: the required segments, concatenated.

        In a real distributed run this is the result of the initialization
        exchange — every remote segment arrives once and lands contiguously
        in the local buffer.  Here it is a single vectorized gather from the
        global packed values.
        """
        return packed[self.local_to_global]

    def segment_bytes(self, bytes_per_element: int = 8) -> float:
        """Total bytes of all required segments (local buffer size)."""
        return float(self.n_local_values * bytes_per_element)

    def stack_tasks(
        self,
        pad_to: Optional[int] = None,
        max_batch_elements: int = MAX_BATCH_ELEMENTS,
    ) -> List[Bucket]:
        """Cached bucketed stack layout of this shard's submatrices.

        The buckets index into :attr:`view` (shard-local member order) and
        are memoized per ``(pad_to, max_batch_elements)``, so cross-step
        reuse of a sharded plan also reuses its stack layout.
        """
        key = (pad_to, int(max_batch_elements))
        tasks = self._stack_tasks.get(key)
        if tasks is None:
            tasks = make_stack_tasks(
                self.dimensions, pad_to=pad_to, max_batch_elements=max_batch_elements
            )
            self._stack_tasks[key] = tasks
        return tasks


class ShardedPlan:
    """A :class:`SubmatrixPlan` split across simulated ranks.

    Parameters
    ----------
    plan:
        The plan to shard.  Any plan implementing
        :meth:`~repro.core.plan.SubmatrixPlan.segment_offsets` works (both
        the block-level and the element-level plan do).
    rank_of_group:
        Owning rank of every plan group (length ``plan.n_groups``).
    n_ranks:
        Total rank count; defaults to ``max(rank_of_group) + 1``.  Ranks
        without any group receive an empty shard.
    """

    def __init__(
        self,
        plan: SubmatrixPlan,
        rank_of_group: Sequence[int],
        n_ranks: Optional[int] = None,
    ):
        rank_of_group = np.asarray(list(rank_of_group), dtype=np.int64)
        if rank_of_group.size != plan.n_groups:
            raise ValueError("rank_of_group must assign a rank to every group")
        if n_ranks is None:
            n_ranks = int(rank_of_group.max()) + 1 if rank_of_group.size else 1
        n_ranks = int(n_ranks)
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        if rank_of_group.size and (
            rank_of_group.min() < 0 or rank_of_group.max() >= n_ranks
        ):
            raise IndexError("rank assignment out of range")
        self.plan = plan
        self.rank_of_group = rank_of_group
        self.n_ranks = n_ranks
        self._offsets = np.asarray(plan.segment_offsets(), dtype=np.int64)
        self.shards: List[RankShard] = [
            self._build_shard(rank) for rank in range(n_ranks)
        ]

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _segments_of(self, positions: np.ndarray) -> np.ndarray:
        """Segment ID of every global packed position (vectorized)."""
        return np.searchsorted(self._offsets, positions, side="right") - 1

    def _build_shard(self, rank: int) -> RankShard:
        offsets = self._offsets
        owned = np.flatnonzero(self.rank_of_group == rank)
        gather_all = (
            np.concatenate(
                [self.plan.groups[g].gather_src for g in owned]
            ).astype(np.int64, copy=False)
            if owned.size
            else np.empty(0, dtype=np.int64)
        )
        required = np.unique(self._segments_of(gather_all))
        lengths = offsets[required + 1] - offsets[required]
        starts = offsets[required]
        local_offsets = np.concatenate(
            ([0], np.cumsum(lengths, dtype=np.int64))
        )
        n_local = int(local_offsets[-1])
        # flat global positions of the local buffer: for each segment s at
        # local offset o, positions start(s) + 0..len(s)-1 land at o..o+len-1
        local_to_global = (
            np.arange(n_local, dtype=np.int64)
            - np.repeat(local_offsets[:-1], lengths)
            + np.repeat(starts, lengths)
        )
        groups: List[GroupPlan] = []
        for g in owned:
            group = self.plan.groups[g]
            gsrc = np.asarray(group.gather_src, dtype=np.int64)
            segment = self._segments_of(gsrc)
            local_index = np.searchsorted(required, segment)
            local_src = local_offsets[local_index] + (gsrc - offsets[segment])
            groups.append(dataclasses.replace(group, gather_src=local_src))
        view = ShardView(groups, n_values=self.plan.n_values, local_values=n_local)
        return RankShard(
            rank=rank,
            group_indices=owned,
            required_segments=required,
            segment_starts=starts,
            segment_lengths=lengths,
            local_offsets=local_offsets,
            local_to_global=local_to_global,
            view=view,
        )

    # ------------------------------------------------------------------ #
    # incremental replanning
    # ------------------------------------------------------------------ #
    def patch(self, new_plan: SubmatrixPlan) -> "ShardedPlan":
        """Sharded plan for a patched extraction plan, reusing clean shards.

        ``new_plan`` must be the result of patching this sharded plan's
        underlying plan (``self.plan.patch(...)`` or the plan cache's
        delta-keyed lookup) — its :class:`~repro.core.plan.PlanPatchReport`
        names the dirty groups and the segment ID remap.  Ranks that own a
        dirty group rebuild their shard; every other rank keeps its local
        buffer layout, rank-local gather arrays, memoized bucket layouts and
        stacked index caches verbatim, translating only the global side
        (required segment IDs, global buffer positions, stacked scatter
        destinations) onto the new packed layout with vectorized remaps.

        The group→rank assignment is carried over unchanged.
        """
        report = getattr(new_plan, "patch_report", None)
        if report is None or report.source is not self.plan:
            raise ValueError(
                "ShardedPlan.patch requires a plan patched from this sharded "
                "plan's own extraction plan (plan.patch / "
                "PlanCache.patched_block_plan)"
            )
        patched = object.__new__(ShardedPlan)
        patched.plan = new_plan
        patched.rank_of_group = self.rank_of_group
        patched.n_ranks = self.n_ranks
        patched._offsets = np.asarray(new_plan.segment_offsets(), dtype=np.int64)
        new_id_of_old = np.asarray(report.new_id_of_old, dtype=np.int64)
        shift, remap_positions = make_segment_remap(
            self._offsets, patched._offsets, new_id_of_old
        )
        dirty_ranks = {
            int(self.rank_of_group[group]) for group in report.dirty_groups
        }
        shards: List[RankShard] = []
        for rank in range(self.n_ranks):
            old_shard = self.shards[rank]
            if rank in dirty_ranks:
                shard = patched._build_shard(rank)
                # carry the bucket layouts when the rank's dimensions survived
                if shard.dimensions == old_shard.dimensions:
                    shard._stack_tasks.update(old_shard._stack_tasks)
            else:
                shard = self._patch_clean_shard(
                    old_shard, new_plan, new_id_of_old, shift, remap_positions
                )
            shards.append(shard)
        patched.shards = shards
        return patched

    def _patch_clean_shard(
        self,
        old_shard: RankShard,
        new_plan: SubmatrixPlan,
        new_id_of_old: np.ndarray,
        shift: np.ndarray,
        remap_positions,
    ) -> RankShard:
        """Translate a shard without dirty groups onto the new packed layout.

        The rank's required segments all survive (a deleted segment would
        have dirtied one of its groups), keep their relative order and their
        lengths — so the local buffer layout, the rank-local gather arrays
        and the dense-side index arrays are reused as-is; only global
        positions move.
        """
        required = new_id_of_old[old_shard.required_segments]
        # the view reuses the rank-local gather arrays but must pick up the
        # new plan's (remapped) global scatter arrays
        groups = [
            dataclasses.replace(
                new_plan.groups[int(group_index)], gather_src=view_group.gather_src
            )
            for group_index, view_group in zip(
                old_shard.group_indices, old_shard.view.groups
            )
        ]
        view = ShardView(
            groups,
            n_values=new_plan.n_values,
            local_values=old_shard.view.local_values,
        )
        old_cache = old_shard.view.__dict__.get("_stack_cache")
        if old_cache:
            view.__dict__["_stack_cache"] = {
                key: _StackPlan(
                    gather_src=stacked.gather_src,
                    gather_dst=stacked.gather_dst,
                    scatter_src=stacked.scatter_src,
                    scatter_dst=remap_positions(stacked.scatter_dst),
                    pad=stacked.pad,
                )
                for key, stacked in old_cache.items()
            }
        local_to_global = old_shard.local_to_global + np.repeat(
            shift[old_shard.required_segments], old_shard.segment_lengths
        )
        shard = RankShard(
            rank=old_shard.rank,
            group_indices=old_shard.group_indices,
            required_segments=required,
            segment_starts=np.asarray(
                new_plan.segment_offsets(), dtype=np.int64
            )[required],
            segment_lengths=old_shard.segment_lengths,
            local_offsets=old_shard.local_offsets,
            local_to_global=local_to_global,
            view=view,
        )
        shard._stack_tasks.update(old_shard._stack_tasks)
        return shard

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def n_groups(self) -> int:
        return self.plan.n_groups

    def required_segments_per_rank(self) -> List[np.ndarray]:
        """The block→segment transfer index: required segment IDs per rank."""
        return [shard.required_segments for shard in self.shards]

    def total_segment_values(self) -> int:
        """Sum of all rank-local buffer sizes (values, including local data)."""
        return int(sum(shard.n_local_values for shard in self.shards))
