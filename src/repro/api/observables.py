"""Observable-generic execution pipeline over the submatrix method.

The submatrix method of the paper evaluates an *arbitrary* matrix function
of the Hamiltonian through independent dense submatrix solves (Eq. 17).
Historically this repo only ever asked for one observable — the ground-state
density matrix — and the whole execution skeleton (plan lookup → sharded or
batched stack evaluation → μ-bisection → scatter/assembly) lived inside
``compute_density``.  This module hosts that skeleton in observable-generic
form plus a small registry of *observables*, sibling to the
:class:`~repro.signfn.registry.MatrixFunction` kernel registry:

* an :class:`Observable` describes what a physical quantity needs from the
  engine (the cached eigendecompositions, μ, the scatter plan) and how to
  assemble its result from one :class:`SharedEvaluation`;
* :func:`compute_observables` runs the shared skeleton **once** — one
  eigendecomposition pass per submatrix stack, one μ-bisection — and then
  assembles every requested observable from the same cached decompositions;
* ``density`` is just one registered instance, and
  :func:`repro.api.density.compute_density` is a thin wrapper requesting it
  alone — bitwise identical to the historical single-observable path.

Built-in observables:

``density``
    The one-particle reduced density matrix (Eq. 16) — the historical
    result, a :class:`~repro.api.results.SubmatrixDFTResult`.
``pdos``
    Projected / total density of states from the generating-row spectral
    weights of the cached decompositions (the same measure Algorithm 1's
    electron count integrates), Gaussian-broadened on an energy grid.
``energy_weighted_density``
    The energy-weighted density matrix W = Q (λ·f(λ−μ)) Qᵀ (AO basis via
    the Löwdin back-transform) and the spectral band-structure energy
    ``g_s · Tr(W)`` — the quantity entering Pulay-force contractions.

Only ``density`` is available through the diagonalization-free iterative
kernels (Newton–Schulz, Padé, Chebyshev): the other observables need the
spectral data that only the eigendecomposition cache carries.
"""

from __future__ import annotations

import dataclasses
import difflib
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np
import scipy.sparse as sp

from repro.api.results import (
    DecomposedSubmatrix,
    EnergyWeightedDensityResult,
    ObservableBundle,
    PDOSResult,
    SubmatrixDFTResult,
)
from repro.backend.mixed import PrecisionReport, solve_reduced_sign
from repro.chem.density import (
    band_structure_energy,
    electron_count,
    fermi_occupation,
)
from repro.core.batch import MAX_BATCH_ELEMENTS, make_stack_tasks
from repro.core.combination import ColumnGrouping, single_column_groups
from repro.core.load_balance import resolve_bucket_pad
from repro.core.plan import BlockSubmatrixPlan
from repro.core.submatrix import (
    Submatrix,
    extract_block_submatrix,
    scatter_block_submatrix_result,
)
from repro.chem.orthogonalize import orthogonalized_ks
from repro.core.runner import PipelineExecutionError, ResilienceReport
from repro.parallel.machine import PAPER_MACHINE
from repro.dbcsr.block_matrix import BlockSparseMatrix
from repro.dbcsr.convert import block_matrix_from_csr, block_matrix_to_csr
from repro.dbcsr.coo import CooBlockList
from repro.signfn.registry import get_kernel, resilient_stack_solver

__all__ = [
    "Observable",
    "SharedEvaluation",
    "UnknownObservableError",
    "available_observables",
    "compute_observables",
    "get_observable",
    "normalize_observables",
    "register_observable",
    "assemble_result",
    "prepare_step",
    "PreparedStep",
]


# --------------------------------------------------------------------------- #
# step preparation (pure, prefetchable)
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class PreparedStep:
    """Context-free preparation of one density calculation's inputs.

    Everything here is a pure function of ``(K, S, block_sizes,
    eps_filter)`` — orthogonalization, block conversion, the COO pattern
    and its fingerprint — so it can be computed ahead of time on another
    thread (the trajectory driver's step prefetch) without touching the
    session's plan cache or pipelines.  :func:`compute_observables` accepts
    it via ``prepared=`` and skips the preparation work after verifying the
    filter threshold and block sizes still match.
    """

    k_ortho: sp.csr_matrix
    s_inv_sqrt: np.ndarray
    block_k: BlockSparseMatrix
    coo: CooBlockList
    eps_filter: float
    block_sizes: Tuple[int, ...]

    def matches(self, blocks, eps_filter: float) -> bool:
        return (
            float(self.eps_filter) == float(eps_filter)
            and self.block_sizes == tuple(int(b) for b in blocks.block_sizes)
        )


def prepare_step(K, S, blocks, eps_filter: float) -> PreparedStep:
    """Precompute the pure preparation of one step (see :class:`PreparedStep`)."""
    k_ortho, s_inv_sqrt = orthogonalized_ks(K, S, eps_filter=eps_filter)
    block_k = block_matrix_from_csr(k_ortho, blocks.block_sizes, threshold=0.0)
    coo = CooBlockList.from_block_matrix(block_k)
    return PreparedStep(
        k_ortho=k_ortho,
        s_inv_sqrt=s_inv_sqrt,
        block_k=block_k,
        coo=coo,
        eps_filter=float(eps_filter),
        block_sizes=tuple(int(b) for b in blocks.block_sizes),
    )


# --------------------------------------------------------------------------- #
# shared evaluation state
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class SharedEvaluation:
    """Everything one pass over the engine produced, ready for assembly.

    One :class:`SharedEvaluation` is built per :func:`compute_observables`
    call (and per request by the serving layer's cross-request batcher) and
    handed to every requested observable's ``assemble`` hook — the cached
    per-submatrix eigendecompositions are computed exactly once no matter
    how many observables consume them.
    """

    config: Any
    K: Any
    s_inv_sqrt: np.ndarray
    block_k: BlockSparseMatrix
    coo: CooBlockList
    mu: float
    mu_iterations: int
    dimensions: List[int]
    decomposed: Optional[Sequence[DecomposedSubmatrix]] = None
    plan: Optional[BlockSubmatrixPlan] = None
    pipeline: Any = None
    ranks: int = 1
    report: Any = None
    precision_report: Any = None
    # the iterative path scatters its occupation matrices during the solve;
    # the eigen path leaves this None and density's assembly scatters from
    # the cached decompositions
    occupation_block: Optional[BlockSparseMatrix] = None
    start: Optional[float] = None
    wall_time: Optional[float] = None
    stack_decompositions: int = 0

    def elapsed(self) -> float:
        if self.start is not None:
            return time.perf_counter() - self.start
        return float(self.wall_time or 0.0)


# --------------------------------------------------------------------------- #
# observable registry
# --------------------------------------------------------------------------- #
class UnknownObservableError(ValueError):
    """Raised for an observable name missing from the registry."""


@dataclasses.dataclass(frozen=True)
class Observable:
    """Registry entry describing one physical observable.

    Attributes
    ----------
    name:
        Registry key (``observables=("density", "pdos")``).
    assemble:
        ``assemble(evaluation, params) -> result`` — build the observable's
        result object from one :class:`SharedEvaluation` (cached
        decompositions, μ, scatter plan) and the caller's per-observable
        parameter mapping.
    description:
        One-line human description.
    needs_eigendecomposition:
        Whether assembly reads the spectral data (``evaluation.decomposed``).
    supports_iterative:
        Whether the observable can also be produced by the
        diagonalization-free iterative sign kernels (only ``density``).
    checkpoint_save / checkpoint_load:
        Optional npz (de)serialization hooks for trajectory checkpoints:
        ``checkpoint_save(result) -> {suffix: ndarray}`` and
        ``checkpoint_load({suffix: ndarray}) -> result``.
    """

    name: str
    assemble: Callable[[SharedEvaluation, Mapping[str, Any]], Any]
    description: str = ""
    needs_eigendecomposition: bool = True
    supports_iterative: bool = False
    checkpoint_save: Optional[Callable[[Any], Dict[str, np.ndarray]]] = None
    checkpoint_load: Optional[Callable[[Dict[str, np.ndarray]], Any]] = None


_OBSERVABLES: Dict[str, Observable] = {}


def register_observable(observable: Observable, overwrite: bool = False) -> Observable:
    """Register an :class:`Observable`; set ``overwrite`` to replace."""
    if not observable.name:
        raise ValueError("observable name must be non-empty")
    if observable.name in _OBSERVABLES and not overwrite:
        raise ValueError(
            f"observable {observable.name!r} is already registered "
            "(pass overwrite=True to replace)"
        )
    _OBSERVABLES[observable.name] = observable
    return observable


def get_observable(name: str) -> Observable:
    """Look up a registered observable by name, with did-you-mean help."""
    try:
        return _OBSERVABLES[name]
    except KeyError:
        suggestions = difflib.get_close_matches(
            str(name), list(_OBSERVABLES), n=1
        )
        hint = f" — did you mean {suggestions[0]!r}?" if suggestions else ""
        raise UnknownObservableError(
            f"unknown observable {name!r}; available: "
            f"{', '.join(sorted(_OBSERVABLES))}{hint}"
        ) from None


def available_observables() -> Tuple[str, ...]:
    """Names of all registered observables, sorted."""
    return tuple(sorted(_OBSERVABLES))


def normalize_observables(
    observables: Union[str, Sequence[str]],
) -> Tuple[str, ...]:
    """Validate and canonicalize an observable request to a name tuple."""
    if isinstance(observables, str):
        names: Tuple[str, ...] = (observables,)
    else:
        names = tuple(str(name) for name in observables)
    if not names:
        raise ValueError("request at least one observable")
    seen: Dict[str, None] = {}
    for name in names:
        get_observable(name)  # raises UnknownObservableError with a hint
        seen.setdefault(name, None)
    return tuple(seen)


# --------------------------------------------------------------------------- #
# the shared skeleton
# --------------------------------------------------------------------------- #
def compute_observables(
    context,
    K,
    S,
    blocks,
    observables: Union[str, Sequence[str]] = ("density",),
    mu: Optional[float] = None,
    n_electrons: Optional[float] = None,
    solver: str = "eigen",
    grouping: Optional[ColumnGrouping] = None,
    mu_tolerance: float = 1e-9,
    max_mu_iterations: int = 200,
    ranks: Optional[int] = None,
    distribution=None,
    replan: str = "full",
    mu_bracket: Optional[Tuple[float, float]] = None,
    prepared: Optional[PreparedStep] = None,
    observable_params: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> ObservableBundle:
    """Evaluate one or more observables from a single decomposition pass.

    The observable-generic skeleton: prepare (or accept a prefetched
    :class:`PreparedStep`), look up/patch the extraction plan, run exactly
    one eigendecomposition pass over the bucketed submatrix stacks (batched
    single-process or rank-sharded, optionally overlapped), bisect μ once
    for canonical ensembles, then assemble every requested observable from
    the same cached :class:`~repro.api.results.DecomposedSubmatrix` entries.

    Exactly one of ``mu`` (grand-canonical) and ``n_electrons`` (canonical)
    must be provided.  ``observables`` names registered
    :class:`Observable` instances (order-preserving, duplicates dropped);
    ``observable_params`` optionally maps observable name → keyword
    parameters for its assembly (e.g. the PDOS grid).  All other parameters
    behave exactly as documented on
    :func:`repro.api.density.compute_density`, which is a thin wrapper for
    ``observables=("density",)``.

    Iterative sign kernels (``kernel.supports_mu_bisection == False``)
    never build the spectral cache, so they only support observables with
    ``supports_iterative`` (built-in: ``density`` alone).
    """
    config = context.config
    start = time.perf_counter()
    names = normalize_observables(observables)
    params_by_name: Mapping[str, Mapping[str, Any]] = observable_params or {}
    for key in params_by_name:
        if key not in names:
            raise ValueError(
                f"observable_params given for {key!r}, which is not in the "
                f"requested observables {names!r}"
            )
    policy = config.resilience if config.resilience.active else None
    report = ResilienceReport() if policy is not None else None
    precision = config.precision if config.precision.active else None
    precision_report = PrecisionReport() if precision is not None else None
    if (mu is None) == (n_electrons is None):
        raise ValueError("specify exactly one of mu and n_electrons")
    canonical = n_electrons is not None
    # the single (registry-backed) solver-string validation path; kernels
    # with supports_mu_bisection run through the eigendecomposition cache
    # (Algorithm 1), everything else through the iterative sign path
    kernel = get_kernel(solver)
    eigen_cache = kernel.supports_mu_bisection
    if canonical and not eigen_cache:
        raise ValueError(
            "canonical-ensemble calculations require the eigendecomposition "
            "solver (Algorithm 1 reuses the cached eigendecompositions)"
        )
    if not eigen_cache:
        unsupported = [
            name
            for name in names
            if not get_observable(name).supports_iterative
        ]
        if unsupported:
            raise ValueError(
                f"observables {unsupported!r} need the spectral data of an "
                f"eigendecomposition-cache solver; the iterative kernel "
                f"{kernel.name!r} only supports: "
                + ", ".join(
                    name
                    for name in available_observables()
                    if get_observable(name).supports_iterative
                )
            )
    explicit_ranks = ranks is not None
    ranks = config.n_ranks if ranks is None else int(ranks)
    if ranks < 1:
        raise ValueError("ranks must be positive")
    engine = config.engine
    if ranks > 1 and engine == "naive":
        raise ValueError(
            "rank-sharded density calculations require the plan engine "
            "(engine='plan' or 'batched')"
        )

    if prepared is not None and prepared.matches(blocks, config.eps_filter):
        # the trajectory driver prepared this step's pure pieces on a
        # background thread while the previous step was still computing
        k_ortho, s_inv_sqrt = prepared.k_ortho, prepared.s_inv_sqrt
        block_k, coo = prepared.block_k, prepared.coo
    else:
        k_ortho, s_inv_sqrt = orthogonalized_ks(
            K, S, eps_filter=config.eps_filter
        )
        block_k = block_matrix_from_csr(
            k_ortho, blocks.block_sizes, threshold=0.0
        )
        coo = CooBlockList.from_block_matrix(block_k)
    grouping = grouping or single_column_groups(block_k.n_block_cols)
    grouping.validate(block_k.n_block_cols)

    # an explicitly requested rank count exercises the sharded path even at
    # ranks == 1 (a single shard of everything), so the bitwise-identity
    # guarantee covers the sharding machinery itself
    use_sharded = engine != "naive" and (
        ranks > 1 or (explicit_ranks and ranks == 1)
    )
    pipeline = None
    if use_sharded:
        pipeline = context.pipeline(
            coo,
            block_k.row_block_sizes,
            n_ranks=ranks,
            grouping=grouping,
            distribution=distribution,
            replan=replan,
            # Algorithm 1 needs exact-dimension buckets (see
            # _decompose_planned); the iterative kernels pad safely
            **({"bucket_pad": None} if eigen_cache else {}),
        )
    decomposed: Optional[List[DecomposedSubmatrix]] = None
    occupation_block: Optional[BlockSparseMatrix] = None
    if eigen_cache:
        if engine == "naive":
            decomposed, plan = _decompose_naive(context, block_k, grouping, coo)
        elif use_sharded:
            try:
                decomposed, plan = _decompose_sharded(
                    context, block_k, pipeline, policy, report
                )
            except PipelineExecutionError:
                if policy is None or not policy.degrade_to_batched:
                    raise
                # graceful degradation: rebuild the cache with the
                # single-process planned path — the per-submatrix
                # eigendecompositions are slice-deterministic, so the
                # recovered cache (and everything downstream) is bitwise
                # identical to the sharded run
                assert report is not None
                report.degraded = True
                decomposed, plan = _decompose_planned(
                    context, block_k, grouping, coo, replan
                )
        else:
            decomposed, plan = _decompose_planned(
                context, block_k, grouping, coo, replan
            )
        mu_iterations = 0
        if canonical:
            mu, mu_iterations = _bisect_mu(
                config,
                decomposed,
                float(n_electrons),
                mu_tolerance,
                max_mu_iterations,
                bracket=mu_bracket,
            )
        assert mu is not None
        dimensions = [d.submatrix.dimension for d in decomposed]
        n_stacks = _count_stack_decompositions(
            context, engine, use_sharded, pipeline, plan, grouping
        )
    else:
        occupation_block, dimensions = _iterative_occupations(
            context,
            block_k,
            grouping,
            coo,
            float(mu),
            kernel,
            pipeline,
            replan,
            policy=policy,
            report=report,
            precision=precision,
            precision_report=precision_report,
        )
        mu_iterations = 0
        plan = None
        n_stacks = 0

    evaluation = SharedEvaluation(
        config=config,
        K=K,
        s_inv_sqrt=s_inv_sqrt,
        block_k=block_k,
        coo=coo,
        mu=float(mu),
        mu_iterations=mu_iterations,
        dimensions=dimensions,
        decomposed=decomposed,
        plan=plan,
        pipeline=pipeline,
        ranks=ranks,
        report=report,
        precision_report=precision_report,
        occupation_block=occupation_block,
        start=start,
        stack_decompositions=n_stacks,
    )
    results: Dict[str, Any] = {}
    for name in names:
        observable = get_observable(name)
        results[name] = observable.assemble(
            evaluation, params_by_name.get(name, {})
        )
    return ObservableBundle(
        results=results, observables=names, stack_decompositions=n_stacks
    )


def _count_stack_decompositions(
    context, engine, use_sharded, pipeline, plan, grouping
) -> int:
    """Logical eigendecomposition passes of this evaluation, one per stack.

    Deterministic bookkeeping (independent of retries/overlap): the naive
    engine decomposes one submatrix at a time, the planned engine one
    equal-dimension bucket at a time, the sharded pipeline one bucket per
    shard — the number the shared-decomposition tests pin to be invariant
    in the number of observables requested.
    """
    if engine == "naive":
        return len(list(grouping.groups))
    if use_sharded and pipeline is not None:
        _, sharded = pipeline.prepare()
        return sum(
            len(list(shard.stack_tasks()))
            for shard in sharded.shards
            if shard.n_groups > 0
        )
    if plan is not None:
        return len(make_stack_tasks(plan.dimensions))
    return 0


# --------------------------------------------------------------------------- #
# built-in observables
# --------------------------------------------------------------------------- #
def _assemble_density(
    evaluation: SharedEvaluation, params: Mapping[str, Any]
) -> SubmatrixDFTResult:
    if params:
        raise ValueError(
            f"the density observable takes no parameters, got {dict(params)!r}"
        )
    occupation_block = evaluation.occupation_block
    if occupation_block is None:
        assert evaluation.decomposed is not None
        occupation_block = _scatter_occupations(
            evaluation.config,
            evaluation.block_k,
            evaluation.decomposed,
            evaluation.coo,
            evaluation.mu,
            evaluation.plan,
        )
    return assemble_result(
        evaluation.config,
        evaluation.K,
        evaluation.s_inv_sqrt,
        occupation_block,
        evaluation.coo,
        evaluation.mu,
        evaluation.mu_iterations,
        evaluation.dimensions,
        wall_time=evaluation.elapsed(),
        ranks=evaluation.ranks,
        pipeline=evaluation.pipeline,
        report=evaluation.report,
        precision_report=evaluation.precision_report,
    )


def _assemble_pdos(
    evaluation: SharedEvaluation, params: Mapping[str, Any]
) -> PDOSResult:
    if evaluation.decomposed is None:
        raise ValueError(
            "the pdos observable needs the eigendecomposition cache"
        )
    known = {"broadening", "n_points", "energy_window"}
    unknown = set(params) - known
    if unknown:
        raise ValueError(
            f"unknown pdos parameters {sorted(unknown)!r}; known: {sorted(known)!r}"
        )
    config = evaluation.config
    broadening = float(params.get("broadening", 0.1))
    if broadening <= 0.0:
        raise ValueError("pdos broadening must be positive")
    n_points = int(params.get("n_points", 400))
    if n_points < 2:
        raise ValueError("pdos n_points must be at least 2")
    eigenvalues = np.concatenate(
        [entry.eigenvalues for entry in evaluation.decomposed]
    )
    weights = np.concatenate(
        [entry.weights() for entry in evaluation.decomposed]
    )
    window = params.get("energy_window")
    if window is None:
        lo = float(eigenvalues.min()) - 5.0 * broadening
        hi = float(eigenvalues.max()) + 5.0 * broadening
    else:
        lo, hi = float(window[0]), float(window[1])
        if not lo < hi:
            raise ValueError("pdos energy_window must satisfy lo < hi")
    energies = np.linspace(lo, hi, n_points)
    norm = config.spin_degeneracy / (broadening * np.sqrt(2.0 * np.pi))
    projections = np.zeros((len(evaluation.decomposed), n_points))
    for group_index, entry in enumerate(evaluation.decomposed):
        delta = (energies[None, :] - entry.eigenvalues[:, None]) / broadening
        projections[group_index] = norm * np.sum(
            entry.weights()[:, None] * np.exp(-0.5 * delta * delta), axis=0
        )
    occupations = fermi_occupation(eigenvalues, evaluation.mu, config.temperature)
    n_elec = config.spin_degeneracy * float(np.dot(weights, occupations))
    return PDOSResult(
        energies=energies,
        dos=projections.sum(axis=0),
        projections=projections,
        eigenvalues=eigenvalues,
        weights=weights,
        mu=evaluation.mu,
        broadening=broadening,
        n_electrons=n_elec,
    )


def _assemble_energy_weighted(
    evaluation: SharedEvaluation, params: Mapping[str, Any]
) -> EnergyWeightedDensityResult:
    if params:
        raise ValueError(
            "the energy_weighted_density observable takes no parameters, "
            f"got {dict(params)!r}"
        )
    if evaluation.decomposed is None:
        raise ValueError(
            "the energy_weighted_density observable needs the "
            "eigendecomposition cache"
        )
    config = evaluation.config
    mu = evaluation.mu
    if evaluation.plan is not None:
        out = evaluation.plan.new_output()
        for group_index, entry in enumerate(evaluation.decomposed):
            occupations = fermi_occupation(
                entry.eigenvalues, mu, config.temperature
            )
            weighted = (
                entry.eigenvectors * (entry.eigenvalues * occupations)
            ) @ entry.eigenvectors.T
            evaluation.plan.scatter(out, group_index, weighted)
        block = evaluation.plan.finalize(out)
    else:
        block = BlockSparseMatrix(
            evaluation.block_k.row_block_sizes,
            evaluation.block_k.col_block_sizes,
        )
        for entry in evaluation.decomposed:
            occupations = fermi_occupation(
                entry.eigenvalues, mu, config.temperature
            )
            weighted = (
                entry.eigenvectors * (entry.eigenvalues * occupations)
            ) @ entry.eigenvectors.T
            scatter_block_submatrix_result(
                block, weighted, entry.submatrix, evaluation.coo
            )
    ortho = block_matrix_to_csr(block)
    ao = evaluation.s_inv_sqrt @ ortho.toarray() @ evaluation.s_inv_sqrt
    # same g_s·trace contraction electron_count uses, applied to W:
    # E_band = g_s Σ w·λ·f(λ−μ) = g_s Tr(W)
    band = electron_count(ortho, config.spin_degeneracy)
    return EnergyWeightedDensityResult(
        energy_weighted_ao=ao,
        energy_weighted_ortho=ortho,
        band_energy=float(band),
        mu=mu,
    )


# --- checkpoint (de)serialization hooks ------------------------------------ #
def _save_pdos(result: PDOSResult) -> Dict[str, np.ndarray]:
    return {
        "energies": np.asarray(result.energies, dtype=np.float64),
        "dos": np.asarray(result.dos, dtype=np.float64),
        "projections": np.asarray(result.projections, dtype=np.float64),
        "eigenvalues": np.asarray(result.eigenvalues, dtype=np.float64),
        "weights": np.asarray(result.weights, dtype=np.float64),
        "scalars": np.array(
            [result.mu, result.broadening, result.n_electrons], dtype=np.float64
        ),
    }


def _load_pdos(arrays: Dict[str, np.ndarray]) -> PDOSResult:
    scalars = arrays["scalars"]
    return PDOSResult(
        energies=arrays["energies"],
        dos=arrays["dos"],
        projections=arrays["projections"],
        eigenvalues=arrays["eigenvalues"],
        weights=arrays["weights"],
        mu=float(scalars[0]),
        broadening=float(scalars[1]),
        n_electrons=float(scalars[2]),
    )


def _save_energy_weighted(
    result: EnergyWeightedDensityResult,
) -> Dict[str, np.ndarray]:
    ortho = result.energy_weighted_ortho
    return {
        "ao": np.asarray(result.energy_weighted_ao, dtype=np.float64),
        "ortho_data": np.asarray(ortho.data, dtype=np.float64),
        "ortho_indices": np.asarray(ortho.indices, dtype=np.int64),
        "ortho_indptr": np.asarray(ortho.indptr, dtype=np.int64),
        "ortho_shape": np.asarray(ortho.shape, dtype=np.int64),
        "scalars": np.array([result.band_energy, result.mu], dtype=np.float64),
    }


def _load_energy_weighted(
    arrays: Dict[str, np.ndarray],
) -> EnergyWeightedDensityResult:
    shape = tuple(int(n) for n in arrays["ortho_shape"])
    ortho = sp.csr_matrix(
        (arrays["ortho_data"], arrays["ortho_indices"], arrays["ortho_indptr"]),
        shape=shape,
    )
    scalars = arrays["scalars"]
    return EnergyWeightedDensityResult(
        energy_weighted_ao=arrays["ao"],
        energy_weighted_ortho=ortho,
        band_energy=float(scalars[0]),
        mu=float(scalars[1]),
    )


register_observable(
    Observable(
        name="density",
        assemble=_assemble_density,
        description=(
            "one-particle reduced density matrix D = 1/2·(I − sign(K̃ − μI)) "
            "(Eq. 16), AO and orthogonal basis"
        ),
        needs_eigendecomposition=False,
        supports_iterative=True,
        # density uses the checkpoint's native layout (see
        # repro.api.checkpoint), not the per-observable hooks
    )
)
register_observable(
    Observable(
        name="pdos",
        assemble=_assemble_pdos,
        description=(
            "projected/total density of states from the generating-row "
            "spectral weights, Gaussian-broadened"
        ),
        needs_eigendecomposition=True,
        checkpoint_save=_save_pdos,
        checkpoint_load=_load_pdos,
    )
)
register_observable(
    Observable(
        name="energy_weighted_density",
        assemble=_assemble_energy_weighted,
        description=(
            "energy-weighted density matrix W = Q(λ·f(λ−μ))Qᵀ and spectral "
            "band-structure energy g_s·Tr(W)"
        ),
        needs_eigendecomposition=True,
        checkpoint_save=_save_energy_weighted,
        checkpoint_load=_load_energy_weighted,
    )
)


# --------------------------------------------------------------------------- #
# the assembly tail (shared with the serving layer's batcher)
# --------------------------------------------------------------------------- #
def assemble_result(
    config,
    K,
    s_inv_sqrt: np.ndarray,
    occupation_block: BlockSparseMatrix,
    coo: CooBlockList,
    mu: float,
    mu_iterations: int,
    dimensions: List[int],
    wall_time: float,
    ranks: int = 1,
    pipeline=None,
    report=None,
    precision_report=None,
) -> SubmatrixDFTResult:
    """Finalize a density calculation from its scattered occupation matrix.

    The tail shared by the ``density`` observable and the serving layer's
    cross-request batcher (:mod:`repro.serve.batcher`): convert the packed
    occupation blocks to CSR, back-transform to the AO basis, evaluate the
    band-structure energy and electron count, and collect the transfer /
    overlap accounting of an optional sharded ``pipeline``.  Using one tail
    for both callers is part of the served-equals-direct bitwise contract.
    """
    density_ortho = block_matrix_to_csr(occupation_block)
    density_ao = s_inv_sqrt @ density_ortho.toarray() @ s_inv_sqrt
    k_dense = K.toarray() if sp.issparse(K) else np.asarray(K, dtype=float)
    energy = band_structure_energy(density_ao, k_dense, config.spin_degeneracy)
    n_elec = electron_count(density_ortho, config.spin_degeneracy)
    segment_fetch_bytes = None
    block_fetch_bytes = None
    overlap_seconds = 0.0
    exchange_hidden_fraction = None
    if pipeline is not None:
        transfer = pipeline.transfer_plan
        block_fetch_bytes = float(transfer.total_fetch_bytes)
        if transfer.has_segments:
            segment_fetch_bytes = float(transfer.total_segment_fetch_bytes)
        if pipeline.last_overlap is not None:
            overlap_seconds = float(pipeline.last_overlap.overlap_seconds)
            exchange_hidden_fraction = float(
                pipeline.last_overlap.exchange_hidden_fraction
            )
    return SubmatrixDFTResult(
        density_ao=density_ao,
        density_ortho=density_ortho,
        mu=float(mu),
        n_electrons=n_elec,
        band_energy=energy,
        submatrix_dimensions=dimensions,
        mu_iterations=mu_iterations,
        eps_filter=config.eps_filter,
        wall_time=wall_time,
        n_ranks=ranks,
        pattern_fingerprint=coo.fingerprint(),
        segment_fetch_bytes=segment_fetch_bytes,
        block_fetch_bytes=block_fetch_bytes,
        retries=report.retries if report is not None else 0,
        reassigned_stacks=report.reassigned_stacks if report is not None else 0,
        kernel_fallbacks=report.kernel_fallbacks if report is not None else 0,
        degraded=report.degraded if report is not None else False,
        overlap_seconds=overlap_seconds,
        exchange_hidden_fraction=exchange_hidden_fraction,
        stacks_reduced=(
            precision_report.stacks_reduced if precision_report is not None else 0
        ),
        refinement_passes=(
            precision_report.refinement_passes
            if precision_report is not None
            else 0
        ),
        precision_error_bound=(
            precision_report.error_bound
            if precision_report is not None and precision_report.stacks_reduced
            else None
        ),
    )


# --------------------------------------------------------------------------- #
# eigendecomposition cache (grand-canonical and canonical)
# --------------------------------------------------------------------------- #
def _make_entry(
    submatrix: Submatrix, eigenvalues: np.ndarray, eigenvectors: np.ndarray
) -> DecomposedSubmatrix:
    offsets = np.concatenate(([0], np.cumsum(submatrix.block_sizes)))
    generating_rows: List[np.ndarray] = []
    for local_column in submatrix.local_columns:
        generating_rows.append(
            np.arange(offsets[local_column], offsets[local_column + 1])
        )
    return DecomposedSubmatrix(
        submatrix=submatrix,
        eigenvalues=eigenvalues,
        eigenvectors=eigenvectors,
        generating_function_rows=np.concatenate(generating_rows),
    )


def _decompose_naive(
    context, block_k: BlockSparseMatrix, grouping: ColumnGrouping, coo: CooBlockList
) -> Tuple[List[DecomposedSubmatrix], Optional[BlockSubmatrixPlan]]:
    """Reference path: per-group extraction and one eigh call per submatrix."""

    def decompose(group: Sequence[int]) -> DecomposedSubmatrix:
        submatrix = extract_block_submatrix(block_k, group, coo)
        eigenvalues, eigenvectors = np.linalg.eigh(submatrix.data)
        return _make_entry(submatrix, eigenvalues, eigenvectors)

    return context._map(decompose, list(grouping.groups)), None


def _decompose_planned(
    context,
    block_k: BlockSparseMatrix,
    grouping: ColumnGrouping,
    coo: CooBlockList,
    replan: str = "full",
) -> Tuple[List[DecomposedSubmatrix], BlockSubmatrixPlan]:
    """Extract and eigendecompose every submatrix (Eq. 17, first step).

    Extraction runs through the cached vectorized plan and the
    eigendecompositions are evaluated one bucket (stack of equal-dimension
    submatrices) at a time.  Buckets stay exact-dimension: Algorithm 1
    reuses the cached per-submatrix eigendecompositions during the
    μ-bisection, and a padded block-diagonal embedding has a different
    spectrum bookkeeping.
    """
    groups = list(grouping.groups)
    plan = context.block_plan_for(
        coo, block_k.row_block_sizes, groups, replan=replan
    )
    packed = plan.pack(block_k)
    buckets = make_stack_tasks(plan.dimensions)

    def decompose_bucket(bucket):
        stack = plan.extract_stack(packed, bucket.members, bucket.dimension)
        eigenvalues, eigenvectors = np.linalg.eigh(stack)
        return [
            _make_entry(
                plan.groups[group_index].make_submatrix(),
                eigenvalues[slot],
                eigenvectors[slot],
            )
            for slot, group_index in enumerate(bucket.members)
        ]

    per_bucket = context._map(decompose_bucket, buckets)
    entries: List[Optional[DecomposedSubmatrix]] = [None] * len(groups)
    for bucket, bucket_entries in zip(buckets, per_bucket):
        for group_index, entry in zip(bucket.members, bucket_entries):
            entries[group_index] = entry
    return entries, plan  # type: ignore[return-value]


def _decompose_sharded(
    context, block_k: BlockSparseMatrix, pipeline, policy=None, report=None
) -> Tuple[List[DecomposedSubmatrix], BlockSubmatrixPlan]:
    """Build the eigendecomposition cache rank-sharded through the pipeline.

    The context-cached :class:`~repro.core.runner.DistributedSubmatrixPipeline`
    fixes the submatrix→rank assignment (``config.balance``), the sharded
    extraction plan and the packed-segment transfer plan; each rank then
    gathers its local buffer and eigendecomposes its shard bucket by bucket
    — the same per-rank execution :meth:`run` uses, with the decomposition
    kept instead of an evaluated matrix function.  Entries are reassembled
    in global group order, so the subsequent μ-bisection and scatter are
    bitwise identical to the single-process path.

    With an active ``policy`` the rank tasks run through
    :meth:`~repro.core.runner.DistributedSubmatrixPipeline.execute_ranks`
    (retry/rebalance on injected or genuine rank failures — the rank
    closures are idempotent, so a re-execution rebuilds exactly the same
    cache entries); a persistent failure raises
    :class:`~repro.core.runner.PipelineExecutionError` for
    :func:`compute_observables`'s degradation logic.

    With ``config.overlap`` the rank closures run arrival-driven through
    an :class:`~repro.core.overlap.OverlappedExchange` engine — each
    bucket is eigendecomposed the moment its segment chunks land instead
    of after the rank's full gather — and the modeled hidden-exchange
    accounting is published on ``pipeline.last_overlap``.  The per-bucket
    arithmetic (extract → ``eigh`` → collect) is unchanged, so the cache
    is bitwise identical either way.
    """
    plan, sharded = pipeline.prepare()
    packed = plan.pack(block_k)
    pipeline.last_overlap = None
    engine = None
    overlap_reports: List[Optional[object]] = [None] * pipeline.n_ranks
    if context.config.overlap:
        engine = pipeline.overlap_engine(
            PAPER_MACHINE,
            pad_to=None,
            max_batch_elements=MAX_BATCH_ELEMENTS,
            fault_injector=policy.fault_injector if policy is not None else None,
        )

    def decompose_rank(rank: int) -> List[Tuple[int, DecomposedSubmatrix]]:
        shard = sharded.shards[rank]
        if shard.n_groups == 0:
            return []
        entries: List[Tuple[int, DecomposedSubmatrix]] = []

        def collect(bucket, stack):
            eigenvalues, eigenvectors = np.linalg.eigh(stack)
            for slot, local_index in enumerate(bucket.members):
                group_index = int(shard.group_indices[local_index])
                entries.append(
                    (
                        group_index,
                        _make_entry(
                            plan.groups[group_index].make_submatrix(),
                            eigenvalues[slot],
                            eigenvectors[slot],
                        ),
                    )
                )

        if engine is not None:
            overlap_reports[rank] = engine.run_rank(rank, packed, collect)
            return entries
        local = shard.pack_local(packed)
        for bucket in shard.stack_tasks():
            stack = shard.view.extract_stack(local, bucket.members, bucket.dimension)
            collect(bucket, stack)
        return entries

    backend, executor = context._rank_resources()
    per_rank = pipeline.execute_ranks(
        decompose_rank,
        context.config.max_workers,
        backend,
        executor=executor,
        policy=policy,
        report=report,
    )
    if engine is not None:
        pipeline.last_overlap = engine.report(overlap_reports)
    entries: List[Optional[DecomposedSubmatrix]] = [None] * plan.n_groups
    for rank_entries in per_rank:
        for group_index, entry in rank_entries:
            entries[group_index] = entry
    return entries, plan  # type: ignore[return-value]


def _occupations(config, eigenvalues: np.ndarray, mu: float) -> np.ndarray:
    """Occupation numbers f(λ − μ) (Heaviside with f=1/2 at μ, or Fermi)."""
    return fermi_occupation(eigenvalues, mu, config.temperature)


def _bisect_mu(
    config,
    decomposed: Sequence[DecomposedSubmatrix],
    n_electrons: float,
    tolerance: float,
    max_iterations: int,
    bracket: Optional[Tuple[float, float]] = None,
) -> Tuple[float, int]:
    """Adjust μ by bisection on the cached eigendecompositions (Alg. 1).

    Implements Algorithm 1: only the rows of Q that correspond to the
    generating block columns contribute (only those columns enter the
    sparse result), and the contribution of one submatrix reduces to
    ``weights · f(λ − μ)``.  The eigenvalues and weights of all
    submatrices are concatenated once, so every bisection step is a
    single vectorized occupation evaluation plus a dot product.

    ``bracket`` optionally warm-starts the search (SCF/MD trajectories seed
    it from the previous step's μ): the bracket is clipped to the spectrum
    bounds and expanded geometrically — each expansion's electron-count
    evaluation billed as an iteration — until it encloses the target
    electron count, so convergence never depends on the seed's quality.
    Warm starts change the iterate sequence and therefore the exact
    floating-point μ; without a bracket the iterates are identical to the
    cold-start search.
    """
    all_eigenvalues = np.concatenate([d.eigenvalues for d in decomposed])
    all_weights = np.concatenate([d.weights() for d in decomposed])
    full_lo = float(all_eigenvalues.min()) - 1.0
    full_hi = float(all_eigenvalues.max()) + 1.0

    def electron_count_at(mu: float) -> float:
        occupations = _occupations(config, all_eigenvalues, mu)
        return config.spin_degeneracy * float(np.dot(all_weights, occupations))

    lo, hi = full_lo, full_hi
    iterations = 0
    if bracket is not None:
        warm_lo = max(float(bracket[0]), full_lo)
        warm_hi = min(float(bracket[1]), full_hi)
        if warm_lo < warm_hi:
            width = warm_hi - warm_lo
            # expand until count(lo) ≤ N ≤ count(hi) (occupation is
            # nondecreasing in μ), falling back to the spectrum bounds
            while warm_lo > full_lo and electron_count_at(warm_lo) > n_electrons:
                iterations += 1
                warm_lo = max(full_lo, warm_lo - width)
                width *= 2.0
            while warm_hi < full_hi and electron_count_at(warm_hi) < n_electrons:
                iterations += 1
                warm_hi = min(full_hi, warm_hi + width)
                width *= 2.0
            lo, hi = warm_lo, warm_hi
    mu = 0.5 * (lo + hi)
    while iterations < max_iterations:
        iterations += 1
        mu = 0.5 * (lo + hi)
        error = electron_count_at(mu) - n_electrons
        if abs(error) <= tolerance:
            break
        if error < 0:
            lo = mu
        else:
            hi = mu
    return mu, iterations


def _scatter_occupations(
    config,
    block_k: BlockSparseMatrix,
    decomposed: Sequence[DecomposedSubmatrix],
    coo: CooBlockList,
    mu: float,
    plan: Optional[BlockSubmatrixPlan] = None,
) -> BlockSparseMatrix:
    """Form f(a − μ) per submatrix and scatter the generating columns.

    With a plan, the scatter is one vectorized write per submatrix into a
    preallocated packed output buffer and the result blocks are zero-copy
    views into that buffer.
    """
    if plan is not None:
        out = plan.new_output()
        for group_index, entry in enumerate(decomposed):
            occupations = _occupations(config, entry.eigenvalues, mu)
            occupation_matrix = (
                entry.eigenvectors * occupations
            ) @ entry.eigenvectors.T
            plan.scatter(out, group_index, occupation_matrix)
        return plan.finalize(out)
    result = BlockSparseMatrix(block_k.row_block_sizes, block_k.col_block_sizes)
    for entry in decomposed:
        occupations = _occupations(config, entry.eigenvalues, mu)
        occupation_matrix = (
            entry.eigenvectors * occupations
        ) @ entry.eigenvectors.T
        scatter_block_submatrix_result(result, occupation_matrix, entry.submatrix, coo)
    return result


# --------------------------------------------------------------------------- #
# iterative path (grand-canonical only, used for the solver ablation)
# --------------------------------------------------------------------------- #
def _occupation_stack_solver(
    kernel,
    bound,
    mu: float,
    policy=None,
    report=None,
    precision=None,
    precision_report=None,
):
    """Per-stack occupation solver 1/2·(I − sign(A − μI)) for ``kernel``.

    Both the single-process bucket loop and the rank-sharded pipeline map
    this same closure over their ``(k, d, d)`` stacks, so the two paths
    perform identical per-submatrix arithmetic — and because the batched
    sign iterations prescale and freeze each matrix individually, the
    results are independent of the stack composition (the basis of the
    sharded path's bitwise-identity guarantee).

    With an active ``policy`` and a kernel that provides a
    convergence-checked batched variant, the sign evaluation runs through
    :func:`~repro.signfn.registry.resilient_stack_solver`: non-converged
    submatrices are restarted with an escalated iteration budget and
    ultimately handed to the policy's fallback kernel — recorded on the
    ``report``, not raised.  A retried matrix restarts from its original
    shifted values, so a recovered solve is bitwise identical to a
    fault-free converged one.

    With an active ``precision`` policy and a kernel that declares
    ``supports_reduced_precision``, a reduced-precision sign solve with an
    FP64 refinement pass (:func:`~repro.backend.mixed.solve_reduced_sign`)
    is attempted *first*; whenever it declines or fails (mode gate,
    non-finite reduced estimate, refinement non-convergence) the stack
    silently falls through to the ordinary FP64 chain below — including
    its resilience ladder.
    """
    resilient = resilient_stack_solver(kernel, policy, report)

    def solve(stack: np.ndarray) -> np.ndarray:
        identity = np.eye(stack.shape[-1])
        shifted = stack - mu * identity
        if precision is not None:
            signs = solve_reduced_sign(kernel, shifted, precision, precision_report)
            if signs is not None:
                return 0.5 * (identity - signs)
        if resilient is not None:
            signs = np.asarray(resilient(shifted), dtype=float)
        elif bound.batch_function is not None:
            signs = np.asarray(bound.batch_function(shifted), dtype=float)
        else:
            signs = np.stack(
                [
                    np.asarray(bound.function(shifted[slot]), dtype=float)
                    for slot in range(shifted.shape[0])
                ]
            )
        if signs.shape != shifted.shape:
            raise ValueError(
                f"sign kernel {kernel.name!r} returned shape {signs.shape}, "
                f"expected {shifted.shape}"
            )
        return 0.5 * (identity - signs)

    return solve


def _iterative_occupations(
    context,
    block_k: BlockSparseMatrix,
    grouping: ColumnGrouping,
    coo: CooBlockList,
    mu: float,
    kernel,
    pipeline=None,
    replan: str = "full",
    policy=None,
    report=None,
    precision=None,
    precision_report=None,
) -> Tuple[BlockSparseMatrix, List[int]]:
    """Occupation matrices 1/2·(I − sign(A − μI)) via an iterative sign kernel.

    ``kernel`` is any registered :class:`~repro.signfn.registry.MatrixFunction`
    without an eigendecomposition cache — the built-in Newton–Schulz,
    Padé and Chebyshev iterations, or a user-registered sign kernel.  The
    μ-shift is applied here, so parameterless kernels work unchanged; the
    kernel is bound without parameters and receives the shifted submatrices.

    With the plan engine, extraction and scatter run through the cached plan
    and the kernel's batched variant (when it has one) iterates whole
    equal-or-padded-dimension buckets at once.  Bucket padding embeds a
    small submatrix block-diagonally with the kernel's
    :meth:`~repro.signfn.registry.MatrixFunction.padding_value` (``1 + μ``
    for the built-in sign iterations) on the padding diagonal, so after the
    μ-shift the padding eigenvalues sit at exactly 1 (well inside the sign
    iteration's convergence region) and the padded rows never reach the
    scatter.

    With a ``pipeline``, each simulated rank gathers its rank-local packed
    buffer and runs the same per-stack solver over its shard's buckets
    (:meth:`~repro.core.runner.DistributedSubmatrixPipeline.run_stacks`),
    scattering into the shared output — bitwise identical to the
    single-process path for any rank count.
    """
    config = context.config
    bound = kernel.bind()
    groups = list(grouping.groups)
    if config.engine == "naive":

        def solve(group: Sequence[int]):
            submatrix = extract_block_submatrix(block_k, group, coo)
            shifted = submatrix.data - mu * np.eye(submatrix.dimension)
            sign = np.asarray(bound.function(shifted), dtype=float)
            occupation = 0.5 * (np.eye(submatrix.dimension) - sign)
            return submatrix, occupation

        solved = context._map(solve, groups)
        result = BlockSparseMatrix(block_k.row_block_sizes, block_k.col_block_sizes)
        dimensions = []
        for submatrix, occupation in solved:
            dimensions.append(submatrix.dimension)
            scatter_block_submatrix_result(result, occupation, submatrix, coo)
        return result, dimensions

    solve_stack = _occupation_stack_solver(
        kernel, bound, mu, policy, report, precision, precision_report
    )
    pad_value = kernel.padding_value(mu)

    if pipeline is not None:
        # rank-sharded: the pipeline owns the plan, the shard layouts and
        # the transfer plan (all cached on the context across calls)
        if pipeline.bucket_pad is not None and not kernel.matrix_function:
            raise ValueError(
                f"kernel {kernel.name!r} is not a genuine matrix function; "
                "bucket padding requires exact-dimension buckets "
                "(bucket_pad=None)"
            )
        plan, _ = pipeline.prepare()
        packed = plan.pack(block_k)
        out = plan.new_output()
        backend, executor = context._rank_resources()
        pipeline.run_stacks(
            packed,
            solve_stack,
            out,
            pad_value=pad_value,
            max_workers=config.max_workers,
            backend=backend,
            executor=executor,
            policy=policy,
            report=report,
            overlap=config.overlap,
        )
        return plan.finalize(out), list(plan.dimensions)

    plan = context.block_plan_for(
        coo, block_k.row_block_sizes, groups, replan=replan
    )
    packed = plan.pack(block_k)
    dimensions = plan.dimensions
    pad = resolve_bucket_pad(config.bucket_pad, dimensions)
    if pad is not None and not kernel.matrix_function:
        raise ValueError(
            f"kernel {kernel.name!r} is not a genuine matrix function; "
            "bucket padding requires exact-dimension buckets (bucket_pad=None)"
        )
    buckets = make_stack_tasks(dimensions, pad_to=pad)

    def solve_bucket(bucket):
        stack = plan.extract_stack(
            packed, bucket.members, bucket.dimension, pad_value=pad_value
        )
        return solve_stack(stack)

    per_bucket = context._map(solve_bucket, buckets)
    out = plan.new_output()
    for bucket, occupations in zip(buckets, per_bucket):
        plan.scatter_stack(out, bucket.members, occupations, bucket.dimension)
    return plan.finalize(out), list(dimensions)
